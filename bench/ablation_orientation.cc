// Ablation: entropic edge resolution vs random orientation (DESIGN.md §5).
//
// With the full variable set, the structural constraints orient most edges
// before the entropic stage runs. To expose the resolution step we learn
// over the *event + objective* subtable only: the hidden options act as
// genuine latent confounders (FCI's raison d'être) and the event-event edges
// come out of FCI with circle marks that entropic resolution must decide.
// The random baseline flips a coin per circle edge.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "causal/entropic.h"
#include "causal/fci.h"
#include "graph/algorithms.h"
#include "stats/independence.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

// Ground-truth orientation score: fraction of learned directed event-event
// edges whose direction matches the ground-truth graph (only edges present
// in the truth count).
double DirectionAgreement(const MixedGraph& learned, const MixedGraph& truth,
                          const std::vector<size_t>& node_map) {
  size_t correct = 0;
  size_t scored = 0;
  for (size_t a = 0; a < learned.NumNodes(); ++a) {
    for (size_t b = 0; b < learned.NumNodes(); ++b) {
      if (a == b || !learned.IsDirected(a, b)) {
        continue;
      }
      const size_t ta = node_map[a];
      const size_t tb = node_map[b];
      if (truth.IsDirected(ta, tb)) {
        ++correct;
        ++scored;
      } else if (truth.IsDirected(tb, ta)) {
        ++scored;
      }
    }
  }
  return scored == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(scored);
}

void ResolveRandomly(const StructuralConstraints& constraints, Rng* rng, MixedGraph* pag) {
  const auto& roles = constraints.roles();
  const size_t n = pag->NumNodes();
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (!pag->HasEdge(a, b)) {
        continue;
      }
      if (pag->EndMark(b, a) != Mark::kCircle && pag->EndMark(a, b) != Mark::kCircle) {
        continue;
      }
      const bool fwd_ok = roles[b] != VarRole::kOption && roles[a] != VarRole::kObjective;
      const bool bwd_ok = roles[a] != VarRole::kOption && roles[b] != VarRole::kObjective;
      if (fwd_ok && (!bwd_ok || rng->Bernoulli(0.5))) {
        pag->AddDirected(a, b);
      } else if (bwd_ok) {
        pag->AddDirected(b, a);
      } else {
        pag->AddBidirected(a, b);
      }
    }
  }
}

void BM_EntropicResolutionEventsOnly(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 15;
  const SystemModel model = BuildSystem(SystemId::kX264, spec);
  Rng rng(41);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 200; ++i) {
    configs.push_back(model.SampleConfig(&rng));
  }
  const DataTable full = model.MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
  std::vector<size_t> keep = model.EventIndices();
  const DataTable data = full.SelectVars(keep);
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);
  for (auto _ : state) {
    FciResult fci = RunFci(test, constraints, data.NumVars(), {});
    Rng resolver(42);
    ResolveWithEntropy(data, constraints, {}, &resolver, &fci.pag);
    benchmark::DoNotOptimize(fci.pag);
  }
}
BENCHMARK(BM_EntropicResolutionEventsOnly)->Iterations(2);

void RunAblation() {
  std::printf("\n=== Ablation: entropic vs random circle-mark resolution ===\n");
  std::printf("(events-only view: hidden options act as latent confounders)\n");
  TextTable table({"system", "samples", "circles", "dir. agreement entropic",
                   "dir. agreement random", "SHD entropic", "SHD random"});
  for (SystemId id : {SystemId::kX264, SystemId::kXception, SystemId::kSqlite}) {
    SystemSpec spec;
    spec.num_events = 15;
    const SystemModel model = BuildSystem(id, spec);
    const MixedGraph truth = model.GroundTruthGraph();
    for (size_t n : {200u, 600u}) {
      Rng rng(430 + n);
      std::vector<std::vector<double>> configs;
      for (size_t i = 0; i < n; ++i) {
        configs.push_back(model.SampleConfig(&rng));
      }
      const DataTable full = model.MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
      std::vector<size_t> keep = model.EventIndices();
      for (size_t obj : model.ObjectiveIndices()) {
        keep.push_back(obj);
      }
      const DataTable data = full.SelectVars(keep);
      const StructuralConstraints constraints(data.Variables());
      const CompositeTest test(data);
      FciOptions fci_options;
      fci_options.skeleton.alpha = 0.05;
      fci_options.skeleton.max_cond_size = 2;
      fci_options.skeleton.max_subsets = 24;
      fci_options.max_pds_cond_size = 1;
      const FciResult fci = RunFci(test, constraints, data.NumVars(), fci_options);
      const size_t circles = fci.pag.NumCircleMarks();

      // Truth restricted to the kept nodes needs an index map.
      std::vector<size_t> node_map = keep;
      MixedGraph truth_sub(keep.size());
      for (size_t a = 0; a < keep.size(); ++a) {
        for (size_t b = 0; b < keep.size(); ++b) {
          if (a != b && truth.IsDirected(keep[a], keep[b])) {
            truth_sub.AddDirected(a, b);
          }
        }
      }
      std::vector<size_t> identity(keep.size());
      for (size_t i = 0; i < keep.size(); ++i) {
        identity[i] = i;
      }

      MixedGraph entropic_graph = fci.pag;
      Rng resolver(431);
      EntropicOptions entropic_options;
      entropic_options.latent.restarts = 2;
      ResolveWithEntropy(data, constraints, entropic_options, &resolver, &entropic_graph);

      MixedGraph random_graph = fci.pag;
      Rng coin(433 + n);
      ResolveRandomly(constraints, &coin, &random_graph);

      table.AddRow({bench::SystemLabel(id), std::to_string(n), std::to_string(circles),
                    FormatDouble(DirectionAgreement(entropic_graph, truth_sub, identity), 2),
                    FormatDouble(DirectionAgreement(random_graph, truth_sub, identity), 2),
                    std::to_string(StructuralHammingDistance(entropic_graph, truth_sub)),
                    std::to_string(StructuralHammingDistance(random_graph, truth_sub))});
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(expected shape: entropic resolution orients more event-event edges in the\n"
              " ground-truth direction than coin flipping)\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunAblation();
  return 0;
}
