// Ablation: causal-effect-guided active sampling (Unicorn's Stage III)
// vs uniform-random sampling with the same measurement budget, for
// single-objective latency optimization.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <limits>

#include "bench/common.h"
#include "unicorn/measurement_broker.h"
#include "unicorn/optimizer.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_GuidedOptimization(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kBert, spec));
  const PerformanceTask task = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 44);
  OptimizeOptions options;
  options.initial_samples = 15;
  options.max_iterations = 20;
  options.model.fci.skeleton.max_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  for (auto _ : state) {
    UnicornOptimizer optimizer(task, options);
    benchmark::DoNotOptimize(optimizer.Minimize(model->ObjectiveIndices()[0]));
  }
}
BENCHMARK(BM_GuidedOptimization)->Iterations(1);

void RunAblation() {
  std::printf("\n=== Ablation: ACE-guided sampling vs uniform random search ===\n");
  TextTable table({"system", "budget", "Unicorn (guided)", "random search"});
  for (SystemId id : {SystemId::kXception, SystemId::kBert, SystemId::kX264}) {
    SystemSpec spec;
    spec.num_events = 12;
    auto model = std::make_shared<SystemModel>(BuildSystem(id, spec));
    DataTable meta(model->variables());
    const size_t latency = *meta.IndexOf(kLatencyName);
    for (size_t budget : {60u, 150u}) {
      // Guided.
      const PerformanceTask task_g = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 440);
      OptimizeOptions options;
      options.initial_samples = 25;
      options.max_iterations = budget - options.initial_samples;
      options.relearn_every = 15;
      options.model.fci.skeleton.alpha = 0.1;
      options.model.fci.skeleton.max_cond_size = 2;
      options.model.fci.skeleton.max_subsets = 24;
      options.model.fci.max_pds_cond_size = 1;
      options.model.entropic.latent.restarts = 1;
      UnicornOptimizer optimizer(task_g, options);
      const auto guided = optimizer.Minimize(latency);

      // Uniform random with the identical budget, measured as one batch
      // through the measurement plane (rows identical to a serial loop).
      const PerformanceTask task_r = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 441);
      BrokerOptions broker_options;
      broker_options.num_threads = 4;
      MeasurementBroker broker(task_r, broker_options);
      Rng rng(442);
      std::vector<std::vector<double>> batch;
      batch.reserve(budget);
      for (size_t i = 0; i < budget; ++i) {
        batch.push_back(task_r.sample_config(&rng));
      }
      double best_random = std::numeric_limits<double>::infinity();
      for (const auto& row : broker.MeasureBatch(batch)) {
        best_random = std::min(best_random, row[latency]);
      }
      table.AddRow({bench::SystemLabel(id), std::to_string(budget),
                    FormatDouble(guided.best_value, 2), FormatDouble(best_random, 2)});
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(expected shape: guided search matches or beats random at every budget,\n"
              " with the margin widening at larger budgets)\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunAblation();
  return 0;
}
