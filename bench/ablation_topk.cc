// Ablation: sensitivity to K, the number of top-ranked causal paths used for
// repair generation (appendix B.2 says K in [3, 25]).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_DebugTopK(benchmark::State& state) {
  bench::DebugExperimentSpec spec;
  spec.system = SystemId::kXception;
  spec.env = Tx2();
  spec.workload = DefaultWorkload();
  spec.kind = bench::FaultKind::kLatency;
  spec.max_faults = 1;
  spec.unicorn_options = bench::BenchDebugOptions();
  spec.unicorn_options.top_k_paths = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::RunDebugComparison(spec));
  }
}
BENCHMARK(BM_DebugTopK)->Arg(3)->Arg(25)->Iterations(1);

void RunAblation() {
  std::printf("\n=== Ablation: top-K causal paths (K sweep) ===\n");
  SystemSpec sys_spec;
  sys_spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, sys_spec));
  Rng rng(451);
  const FaultCuration curation =
      CurateFaults(*model, Tx2(), DefaultWorkload(), 2000, &rng, 0.97);
  const auto faults = bench::SelectFaults(*model, curation, bench::FaultKind::kLatency, 3);
  if (faults.empty()) {
    std::printf("no faults found\n");
    return;
  }
  DataTable meta(model->variables());
  const auto weights =
      TrueAceWeights(*model, *meta.IndexOf(kLatencyName), Tx2(), DefaultWorkload(), 452, 12);

  TextTable table({"K", "accuracy", "recall", "gain%", "measurements"});
  for (size_t k : {3u, 5u, 10u, 15u, 25u}) {
    double accuracy = 0.0;
    double recall = 0.0;
    double gain = 0.0;
    double samples = 0.0;
    for (size_t f = 0; f < faults.size(); ++f) {
      const auto& fault = faults[f];
      const PerformanceTask task =
          MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 453 + f);
      DebugOptions options = bench::BenchDebugOptions();
      options.top_k_paths = k;
      options.seed = 454 + f;
      UnicornDebugger debugger(task, options);
      const DebugResult result =
          debugger.Debug(fault.config, GoalsForFault(curation, fault));
      accuracy += AceWeightedJaccard(result.predicted_root_causes, fault.root_causes, weights);
      recall += Recall(result.predicted_root_causes, fault.root_causes);
      const size_t obj = fault.objectives[0];
      gain += Gain(fault.measurement[obj], result.fixed_measurement[obj]);
      samples += static_cast<double>(result.measurements_used);
    }
    const double n = static_cast<double>(faults.size());
    table.AddRow({std::to_string(k), FormatDouble(100 * accuracy / n, 0),
                  FormatDouble(100 * recall / n, 0), FormatDouble(gain / n, 0),
                  FormatDouble(samples / n, 0)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(expected shape: small K may miss causes; large K dilutes the repair set;\n"
              " the sweet spot sits in the middle of the paper's [3, 25] range)\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunAblation();
  return 0;
}
