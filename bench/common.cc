#include "bench/common.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "baselines/bugdoc.h"
#include "baselines/cbi.h"
#include "baselines/dd.h"
#include "baselines/encore.h"

namespace unicorn {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Gain over the fault: mean over the fault's objectives.
double MeanGain(const Fault& fault, const std::vector<double>& fixed_row) {
  double total = 0.0;
  for (size_t obj : fault.objectives) {
    total += Gain(fault.measurement[obj], fixed_row[obj]);
  }
  return fault.objectives.empty() ? 0.0
                                  : total / static_cast<double>(fault.objectives.size());
}

}  // namespace

DebugOptions BenchDebugOptions() {
  DebugOptions options;
  options.initial_samples = 25;
  options.max_iterations = 25;
  options.stall_termination = 25;
  options.repairs_per_iteration = 2;
  options.model.fci.skeleton.alpha = 0.1;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.skeleton.max_subsets = 24;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  options.model.entropic.latent.iterations = 30;
  // Threads and the CI cache are exactness-preserving, so the accuracy
  // tables stay apples-to-apples with a from-scratch relearn. The
  // approximate warm-start knobs (stale_epsilon) are enabled only where
  // their effect is what's being measured (table3's incremental study).
  options.engine.num_threads = 4;
  // Measurement plane: batches fan out over 4 threads with rows
  // bit-identical to serial, so this is exactness-preserving too.
  options.broker.num_threads = 4;
  return options;
}

std::vector<Fault> SelectFaults(const SystemModel& model, const FaultCuration& curation,
                                FaultKind kind, size_t max_faults) {
  DataTable meta(model.variables());
  std::vector<Fault> selected;
  const auto want_single = [&](const char* name) {
    const auto idx = meta.IndexOf(name);
    if (!idx.has_value()) {
      return;
    }
    for (const auto& fault : FaultsOn(curation, *idx)) {
      if (!fault.root_causes.empty() && selected.size() < max_faults) {
        selected.push_back(fault);
      }
    }
  };
  switch (kind) {
    case FaultKind::kLatency:
      want_single(kLatencyName);
      break;
    case FaultKind::kEnergy:
      want_single(kEnergyName);
      break;
    case FaultKind::kHeat:
      want_single(kHeatName);
      break;
    case FaultKind::kMulti:
      for (const auto& fault : MultiObjectiveFaults(curation)) {
        if (!fault.root_causes.empty() && selected.size() < max_faults) {
          selected.push_back(fault);
        }
      }
      break;
  }
  return selected;
}

std::vector<MethodScore> RunDebugComparison(const DebugExperimentSpec& spec) {
  SystemSpec sys_spec;
  sys_spec.num_events = spec.num_events;
  auto model = std::make_shared<SystemModel>(BuildSystem(spec.system, sys_spec));
  Rng rng(spec.seed);
  const FaultCuration curation =
      CurateFaults(*model, spec.env, spec.workload, spec.curation_samples, &rng,
                   spec.percentile);
  const auto faults = SelectFaults(*model, curation, spec.kind, spec.max_faults);

  std::vector<MethodScore> scores(5);
  scores[0].method = "Unicorn";
  scores[1].method = "CBI";
  scores[2].method = "DD";
  scores[3].method = "EnCore";
  scores[4].method = "BugDoc";
  if (faults.empty()) {
    return scores;
  }

  // ACE weights per objective (computed once; faults share objectives).
  std::vector<double> weights(model->NumVars(), 0.0);
  {
    Rng ace_rng(spec.seed + 99);
    for (size_t obj : curation.objective_vars) {
      const auto w = TrueAceWeights(*model, obj, spec.env, spec.workload, spec.seed + 7, 12);
      for (size_t v = 0; v < w.size(); ++v) {
        weights[v] += w[v];
      }
    }
  }

  size_t fault_idx = 0;
  for (const auto& fault : faults) {
    ++fault_idx;
    const auto goals = GoalsForFault(curation, fault);
    const uint64_t fault_seed = spec.seed + 1000 * fault_idx;

    // Unicorn.
    {
      const PerformanceTask task =
          MakeSimulatedTask(model, spec.env, spec.workload, fault_seed);
      DebugOptions options = spec.unicorn_options;
      options.seed = fault_seed;
      UnicornDebugger debugger(task, options);
      const auto start = Clock::now();
      const DebugResult result = debugger.Debug(fault.config, goals);
      scores[0].seconds += SecondsSince(start);
      scores[0].accuracy +=
          AceWeightedJaccard(result.predicted_root_causes, fault.root_causes, weights);
      scores[0].precision += Precision(result.predicted_root_causes, fault.root_causes);
      scores[0].recall += Recall(result.predicted_root_causes, fault.root_causes);
      scores[0].gain += MeanGain(fault, result.fixed_measurement);
      scores[0].samples += static_cast<double>(result.measurements_used);
      scores[0].ci_tests += static_cast<double>(result.engine_stats.total_tests_requested);
      scores[0].cache_hit_rate += result.engine_stats.CacheHitRate();
      scores[0].meas_cache_hit_rate += result.broker_stats.CacheHitRate();
      ++scores[0].faults;
    }

    // Baselines.
    struct Entry {
      size_t index;
      BaselineDebugResult (*run)(const PerformanceTask&, const std::vector<double>&,
                                 const std::vector<ObjectiveGoal>&,
                                 const BaselineDebugOptions&);
    };
    const Entry entries[] = {
        {1, &CbiDebug}, {2, &DdDebug}, {3, &EncoreDebug}, {4, &BugDocDebug}};
    for (const auto& entry : entries) {
      const PerformanceTask task =
          MakeSimulatedTask(model, spec.env, spec.workload, fault_seed + entry.index);
      BaselineDebugOptions options;
      options.sample_budget = spec.baseline_budget;
      options.seed = fault_seed + entry.index;
      const auto start = Clock::now();
      const auto result = entry.run(task, fault.config, goals, options);
      MethodScore& score = scores[entry.index];
      score.seconds += SecondsSince(start);
      score.accuracy +=
          AceWeightedJaccard(result.predicted_root_causes, fault.root_causes, weights);
      score.precision += Precision(result.predicted_root_causes, fault.root_causes);
      score.recall += Recall(result.predicted_root_causes, fault.root_causes);
      score.gain += MeanGain(fault, result.fixed_measurement);
      score.samples += static_cast<double>(result.measurements_used);
      ++score.faults;
    }
  }
  for (auto& score : scores) {
    if (score.faults > 0) {
      const double n = static_cast<double>(score.faults);
      score.accuracy = 100.0 * score.accuracy / n;
      score.precision = 100.0 * score.precision / n;
      score.recall = 100.0 * score.recall / n;
      score.gain /= n;
      score.seconds /= n;
      score.samples /= n;
      score.ci_tests /= n;
      score.cache_hit_rate /= n;
      score.meas_cache_hit_rate /= n;
    }
  }
  return scores;
}

void JsonResults::Add(const std::string& section, const std::string& name, double value) {
  for (Section& s : sections_) {
    if (s.name == section) {
      s.metrics.push_back({name, value});
      return;
    }
  }
  sections_.push_back(Section{section, {{name, value}}});
}

std::string JsonResults::Serialize(const std::string& bench_name) const {
  std::ostringstream out;
  // %.17g round-trips doubles; integers print without an exponent.
  const auto number = [](double v) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    return std::string(buffer);
  };
  out << "{\"bench\": \"" << bench_name << "\", \"sections\": {";
  for (size_t s = 0; s < sections_.size(); ++s) {
    out << (s > 0 ? ", " : "") << "\"" << sections_[s].name << "\": {";
    for (size_t m = 0; m < sections_[s].metrics.size(); ++m) {
      out << (m > 0 ? ", " : "") << "\"" << sections_[s].metrics[m].first
          << "\": " << number(sections_[s].metrics[m].second);
    }
    out << "}";
  }
  out << "}}\n";
  return out.str();
}

bool JsonResults::WriteFile(const std::string& path, const std::string& bench_name) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "json results: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << Serialize(bench_name);
  return static_cast<bool>(out);
}

std::string SystemLabel(SystemId id) {
  switch (id) {
    case SystemId::kDeepstream:
      return "DeepStream";
    case SystemId::kXception:
      return "Xception";
    case SystemId::kBert:
      return "BERT";
    case SystemId::kDeepspeech:
      return "Deepspeech";
    case SystemId::kX264:
      return "x264";
    case SystemId::kSqlite:
      return "SQLite";
  }
  return "?";
}

}  // namespace bench
}  // namespace unicorn
