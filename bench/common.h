// Shared experiment harness for the benchmark binaries.
//
// Every table/figure bench reuses the same pipeline: curate faults from the
// ground-truth simulator, run Unicorn and the baselines on each fault with
// the same QoS goals and budget, score root-cause diagnoses against the
// ground truth (ACE-weighted Jaccard, precision, recall), and score repairs
// by gain. Binaries format the aggregate rows the way the paper's tables do.
#ifndef UNICORN_BENCH_COMMON_H_
#define UNICORN_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "eval/metrics.h"
#include "obs/stats_export.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"
#include "unicorn/debugger.h"

namespace unicorn {
namespace bench {

// Aggregated debugging metrics for one (system, method) cell of Table 2.
struct MethodScore {
  std::string method;
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double gain = 0.0;       // percent improvement over the fault
  double seconds = 0.0;    // wallclock per fault
  double samples = 0.0;    // measurements per fault
  size_t faults = 0;
  // Discovery-cost accounting (Unicorn only; from DebugResult::engine_stats):
  // CI tests requested per fault and the engine's cumulative cache-hit rate.
  double ci_tests = 0.0;
  double cache_hit_rate = 0.0;
  // Measurement-plane accounting (Unicorn only; from
  // DebugResult::broker_stats): dedup-cache hit rate of the broker.
  double meas_cache_hit_rate = 0.0;
};

enum class FaultKind { kLatency, kEnergy, kHeat, kMulti };

struct DebugExperimentSpec {
  SystemId system = SystemId::kXception;
  Environment env;
  Workload workload;
  FaultKind kind = FaultKind::kLatency;
  size_t curation_samples = 2000;
  double percentile = 0.97;
  size_t max_faults = 4;          // faults evaluated per cell
  size_t baseline_budget = 120;   // measurement budget for baselines
  DebugOptions unicorn_options;   // tuned-down model options set by Default()
  uint64_t seed = 1234;
  int num_events = 12;
};

// Default Unicorn options for benches (small conditioning sets: the graphs
// are sparse and the loop relearns frequently).
DebugOptions BenchDebugOptions();

// Runs Unicorn + the four debugging baselines over the curated faults of the
// spec. Returned vector: unicorn, cbi, dd, encore, bugdoc (in that order).
std::vector<MethodScore> RunDebugComparison(const DebugExperimentSpec& spec);

// Selects the faults of the requested kind from a curation.
std::vector<Fault> SelectFaults(const SystemModel& model, const FaultCuration& curation,
                                FaultKind kind, size_t max_faults);

// Pretty system name for table rows.
std::string SystemLabel(SystemId id);

// Machine-readable bench results (the perf trajectory: `--json <path>`
// writes a BENCH_*.json next to the human tables, so successive runs can be
// diffed by tooling instead of by eye). Metrics accumulate as
// (section, name, value) and serialize as one nested JSON object:
//   {"bench": "<name>", "sections": {"<section>": {"<name>": value, ...}}}
// Sections and names keep insertion order. No external JSON dependency.
class JsonResults {
 public:
  void Add(const std::string& section, const std::string& name, double value);
  // One section per stats struct, fields in obs::Fields order — the same
  // schema obs::DumpStatsJson prints, so bench JSON and console stats blocks
  // can never drift apart.
  template <typename Stats>
  void AddStats(const std::string& section, const Stats& stats) {
    for (const auto& [name, value] : obs::Fields(stats)) {
      Add(section, name, value);
    }
  }
  std::string Serialize(const std::string& bench_name) const;
  // Returns false (and prints to stderr) when the file cannot be written.
  bool WriteFile(const std::string& path, const std::string& bench_name) const;

 private:
  struct Section {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::vector<Section> sections_;
};

}  // namespace bench
}  // namespace unicorn

#endif  // UNICORN_BENCH_COMMON_H_
