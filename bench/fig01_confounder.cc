// Fig. 1: the cache-policy confounder demonstration.
//
// Observational data shows Cache Misses positively associated with
// Throughput; the causal model (Cache Policy as common cause) recovers the
// true negative effect. Prints the marginal trend, the per-policy trend, the
// learned graph, and the interventional estimates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "causal/effects.h"
#include "stats/correlation.h"
#include "unicorn/model_learner.h"
#include "util/text_table.h"
#include "util/rng.h"

namespace unicorn {
namespace {

// Throughput in FPS (higher better). Aggressive policies increase misses AND
// throughput; within a policy, misses reduce throughput.
DataTable CacheData(size_t n, Rng* rng) {
  std::vector<Variable> vars = {
      {"cache_policy", VarType::kDiscrete, VarRole::kOption, {0, 1, 2, 3}},
      {"cache_misses", VarType::kContinuous, VarRole::kEvent, {}},
      {"throughput", VarType::kContinuous, VarRole::kObjective, {}},
  };
  DataTable t(vars);
  // The policy shift (20k/level) stays below the within-policy spread (140k)
  // so every policy has support at every misses level (positivity), while
  // the policy->fps effect still dominates the marginal trend.
  for (size_t i = 0; i < n; ++i) {
    const double policy = static_cast<double>(rng->UniformInt(uint64_t{4}));
    const double misses = 20e3 * policy + rng->Uniform(0, 140e3);
    const double fps = 4.0 + 5.5 * policy - misses / 30e3 + rng->Gaussian(0, 0.4);
    t.AddRow({policy, misses, fps});
  }
  return t;
}

void BM_LearnCausalModel(benchmark::State& state) {
  Rng rng(1);
  const DataTable data = CacheData(500, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LearnCausalPerformanceModel(data));
  }
}
BENCHMARK(BM_LearnCausalModel)->Iterations(5);

void RunFigure() {
  Rng rng(1);
  const DataTable data = CacheData(4000, &rng);

  std::printf("\n=== Fig. 1 (a): observational trend ===\n");
  const double marginal = SpearmanCorrelation(data.Col(1), data.Col(2));
  std::printf("Spearman(cache_misses, throughput) = %+.2f  (misleadingly positive)\n",
              marginal);

  std::printf("\n=== Fig. 1 (b): per-policy trend ===\n");
  TextTable per_policy({"cache_policy", "corr(misses, throughput)"});
  for (int policy = 0; policy < 4; ++policy) {
    std::vector<double> misses;
    std::vector<double> fps;
    for (size_t r = 0; r < data.NumRows(); ++r) {
      if (data.At(r, 0) == policy) {
        misses.push_back(data.At(r, 1));
        fps.push_back(data.At(r, 2));
      }
    }
    per_policy.AddRow("policy " + std::to_string(policy),
                      {SpearmanCorrelation(misses, fps)});
  }
  std::printf("%s", per_policy.Render().c_str());
  std::printf("(negative within every policy: the true causal direction)\n");

  std::printf("\n=== Fig. 1 (c): learned causal performance model ===\n");
  const LearnedModel learned = LearnCausalPerformanceModel(data);
  std::printf("%s", learned.admg.ToString({"cache_policy", "cache_misses", "throughput"}).c_str());

  const CausalEffectEstimator est(learned.admg, data, /*max_bins=*/3);
  const int levels = est.NumLevels(1);
  const double low = est.ExpectationDo(2, 1, 0);
  const double high = est.ExpectationDo(2, 1, levels - 1);
  std::printf("\nE[throughput | do(cache_misses = low)]  = %.2f FPS\n", low);
  std::printf("E[throughput | do(cache_misses = high)] = %.2f FPS\n", high);
  std::printf("interventional effect of raising misses: %+.2f FPS (correctly negative)\n",
              high - low);
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunFigure();
  return 0;
}
