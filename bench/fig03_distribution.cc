// Fig. 3: performance distribution of Deepstream on Xavier.
//
// Samples the configuration space, prints distribution statistics
// demonstrating the non-linear, multi-modal, heavy-tailed behaviour, and
// shows one curated misconfiguration (the square marker of Fig. 3a).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "sysmodel/faults.h"
#include "sysmodel/systems.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_MeasureDeepstream(benchmark::State& state) {
  const SystemModel model = BuildSystem(SystemId::kDeepstream);
  Rng rng(3);
  const auto config = model.SampleConfig(&rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Measure(config, Xavier(), DefaultWorkload(), &rng));
  }
}
BENCHMARK(BM_MeasureDeepstream)->Iterations(200);

void RunFigure() {
  const SystemModel model = BuildSystem(SystemId::kDeepstream);
  Rng rng(33);
  // 2461 configurations, as in the paper's Deepstream dataset.
  const FaultCuration curation =
      CurateFaults(model, Xavier(), DefaultWorkload(), 2461, &rng, 0.99);

  DataTable meta(model.variables());
  const size_t latency = *meta.IndexOf(kLatencyName);
  const size_t energy = *meta.IndexOf(kEnergyName);

  auto describe = [&](const char* name, size_t var) {
    std::vector<double> v = curation.samples.Col(var);
    std::sort(v.begin(), v.end());
    const auto pct = [&](double p) {
      return v[static_cast<size_t>(p * (v.size() - 1))];
    };
    double mean = 0.0;
    for (double x : v) {
      mean += x;
    }
    mean /= static_cast<double>(v.size());
    std::printf("%-10s min=%8.2f p25=%8.2f median=%8.2f p75=%8.2f p99=%8.2f max=%9.2f "
                "mean=%8.2f tail/median=%5.1fx\n",
                name, v.front(), pct(0.25), pct(0.5), pct(0.75), pct(0.99), v.back(), mean,
                v.back() / pct(0.5));
  };
  std::printf("\n=== Fig. 3 (a): Deepstream on Xavier, %zu configurations ===\n",
              curation.samples.NumRows());
  describe("latency", latency);
  describe("energy", energy);

  std::printf("\nnon-functional faults (worse than 99th percentile): %zu\n",
              curation.faults.size());
  for (const auto& fault : curation.faults) {
    if (fault.objectives.size() > 1 && !fault.root_causes.empty()) {
      std::printf("\n=== Fig. 3 (b): one multi-objective misconfiguration ===\n");
      std::printf("latency = %.1f (threshold %.1f), energy = %.1f (threshold %.1f)\n",
                  fault.measurement[latency], curation.thresholds[0],
                  fault.measurement[energy], curation.thresholds[1]);
      std::printf("root-cause options:");
      for (size_t cause : fault.root_causes) {
        std::printf(" %s", model.variables()[cause].name.c_str());
      }
      std::printf("\n");
      break;
    }
  }
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunFigure();
  return 0;
}
