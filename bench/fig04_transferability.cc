// Fig. 4 + Fig. 5: transferability of performance-influence models
// (stepwise polynomial regression over options) vs causal performance models
// (structure-constrained polynomial functional nodes), Xavier -> TX2.
//
// Reports, per model class: total terms in source/target, common terms,
// Spearman rank correlation of the common-term coefficients, and MAPE of the
// source-learned model on source and target data; plus the per-term
// coefficient drift of Fig. 5.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>

#include "eval/harness.h"
#include "stats/correlation.h"
#include "stats/regression.h"
#include "sysmodel/systems.h"
#include "unicorn/measurement_broker.h"
#include "unicorn/model_learner.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

// Samples `n` configurations in `env` through the measurement plane (the
// seed bench called SystemModel::MeasureMany directly, so its sample counts
// were invisible to BrokerStats). Requests are tagged with the environment
// name, so the persisted/cached rows carry their provenance.
DataTable SampleEnv(const std::shared_ptr<SystemModel>& model, const Environment& env,
                    size_t n, uint64_t seed) {
  const PerformanceTask task = MakeSimulatedTask(model, env, DefaultWorkload(), seed);
  BrokerOptions broker_options;
  broker_options.num_threads = 4;  // rows are bit-identical to serial
  MeasurementBroker broker(task, broker_options);
  Rng rng(seed);
  std::vector<std::vector<double>> configs;
  for (size_t i = 0; i < n; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const auto rows =
      broker.MeasureBatch(configs, std::vector<std::string>(configs.size(), env.name));
  DataTable data(model->variables());
  data.Reserve(rows.size());
  for (const auto& row : rows) {
    data.AddRow(row);
  }
  std::printf("[measurement plane] %-6s: %zu requests, %zu measured, %.0f%% cache hits\n",
              env.name.c_str(), broker.stats().requests, broker.stats().measured,
              100 * broker.stats().CacheHitRate());
  return data;
}

// MAPE on the non-faulty bulk of the distribution (below the 95th
// percentile): the fault tail is 5-8x multiplicative outliers that drown the
// prediction comparison for every model class.
double BulkMape(const DataTable& data, size_t objective, const InfluenceModel& model) {
  std::vector<double> values = data.Col(objective);
  std::sort(values.begin(), values.end());
  const double cap = values[static_cast<size_t>(0.95 * (values.size() - 1))];
  std::vector<double> truth;
  std::vector<double> pred;
  for (size_t r = 0; r < data.NumRows(); ++r) {
    if (data.At(r, objective) <= cap) {
      truth.push_back(data.At(r, objective));
      pred.push_back(model.Predict(data.Row(r)));
    }
  }
  return Mape(truth, pred);
}

struct ModelReport {
  size_t total_terms_source = 0;
  size_t total_terms_target = 0;
  size_t common_terms = 0;
  double coeff_rank_corr = 0.0;
  double mape_source = 0.0;
  double mape_target = 0.0;  // source model evaluated on target data
};

std::string TermKey(const RegressionTerm& term) {
  std::string key;
  for (size_t v : term.vars) {
    key += std::to_string(v) + ",";
  }
  return key;
}

ModelReport RegressionReport(const SystemModel& model, const DataTable& source,
                             const DataTable& target, size_t objective,
                             std::vector<std::pair<std::string, double>>* drift) {
  const auto features = model.OptionIndices();
  StepwiseOptions options;
  options.max_terms = 20;
  const InfluenceModel src = FitStepwiseRegression(source, features, objective, options);
  const InfluenceModel tgt = FitStepwiseRegression(target, features, objective, options);

  ModelReport report;
  report.total_terms_source = src.terms.size();
  report.total_terms_target = tgt.terms.size();

  std::map<std::string, std::pair<double, double>> common;  // key -> (src, tgt coeff)
  std::map<std::string, size_t> tgt_index;
  for (size_t t = 0; t < tgt.terms.size(); ++t) {
    tgt_index[TermKey(tgt.terms[t])] = t;
  }
  std::vector<double> src_coeffs;
  std::vector<double> tgt_coeffs;
  for (size_t t = 0; t < src.terms.size(); ++t) {
    const auto it = tgt_index.find(TermKey(src.terms[t]));
    if (it == tgt_index.end()) {
      continue;
    }
    ++report.common_terms;
    src_coeffs.push_back(src.coefficients[t + 1]);
    tgt_coeffs.push_back(tgt.coefficients[it->second + 1]);
    if (drift != nullptr) {
      drift->push_back({src.terms[t].Name(source),
                        tgt.coefficients[it->second + 1] - src.coefficients[t + 1]});
    }
  }
  report.coeff_rank_corr = SpearmanCorrelation(src_coeffs, tgt_coeffs);
  report.mape_source = BulkMape(source, objective, src);
  report.mape_target = BulkMape(target, objective, src);
  return report;
}

// Causal performance model: ADMG structure + polynomial functional node for
// the objective (linear in its learned parents — exactly the paper's
// "functional nodes are polynomials" characterization).
ModelReport CausalReport(const DataTable& source, const DataTable& target, size_t objective) {
  CausalModelOptions options;
  options.fci.skeleton.alpha = 0.1;
  options.fci.skeleton.max_cond_size = 2;
  options.fci.skeleton.max_subsets = 24;
  options.fci.max_pds_cond_size = 1;
  options.entropic.latent.restarts = 1;
  const LearnedModel src_model = LearnCausalPerformanceModel(source, options);
  const LearnedModel tgt_model = LearnCausalPerformanceModel(target, options);

  auto parent_terms = [&](const MixedGraph& g) {
    std::vector<RegressionTerm> terms;
    for (size_t p : g.Parents(objective)) {
      terms.push_back({{p}});
    }
    return terms;
  };
  const auto src_terms = parent_terms(src_model.admg);
  const auto tgt_terms = parent_terms(tgt_model.admg);

  ModelReport report;
  report.total_terms_source = src_terms.size();
  report.total_terms_target = tgt_terms.size();

  const InfluenceModel src_fn = FitOls(source, src_terms, objective);
  const InfluenceModel tgt_fn = FitOls(target, tgt_terms, objective);

  std::vector<double> src_coeffs;
  std::vector<double> tgt_coeffs;
  for (size_t a = 0; a < src_terms.size(); ++a) {
    for (size_t b = 0; b < tgt_terms.size(); ++b) {
      if (src_terms[a] == tgt_terms[b]) {
        ++report.common_terms;
        src_coeffs.push_back(src_fn.coefficients[a + 1]);
        tgt_coeffs.push_back(tgt_fn.coefficients[b + 1]);
      }
    }
  }
  report.coeff_rank_corr = SpearmanCorrelation(src_coeffs, tgt_coeffs);
  report.mape_source = BulkMape(source, objective, src_fn);
  report.mape_target = BulkMape(target, objective, src_fn);
  return report;
}

void BM_StepwiseRegression(benchmark::State& state) {
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kDeepstream));
  const DataTable data = SampleEnv(model, Xavier(), 200, 4);
  DataTable meta(model->variables());
  const size_t latency = *meta.IndexOf(kLatencyName);
  StepwiseOptions options;
  options.max_terms = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FitStepwiseRegression(data, model->OptionIndices(), latency, options));
  }
}
BENCHMARK(BM_StepwiseRegression)->Iterations(2);

void RunFigure() {
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kDeepstream));
  DataTable meta(model->variables());
  const size_t latency = *meta.IndexOf(kLatencyName);
  const DataTable source = SampleEnv(model, Xavier(), 1000, 41);
  const DataTable target = SampleEnv(model, Tx2(), 1000, 42);

  std::vector<std::pair<std::string, double>> drift;
  const ModelReport reg = RegressionReport(*model, source, target, latency, &drift);
  const ModelReport causal = CausalReport(source, target, latency);

  std::printf("\n=== Fig. 4: transferability, Xavier (source) -> TX2 (target) ===\n");
  TextTable table({"model class", "terms(src)", "terms(tgt)", "common", "coeff rank-corr",
                   "MAPE src", "MAPE src->tgt"});
  auto add = [&](const char* name, const ModelReport& r) {
    table.AddRow({name, std::to_string(r.total_terms_source),
                  std::to_string(r.total_terms_target), std::to_string(r.common_terms),
                  FormatDouble(r.coeff_rank_corr), FormatDouble(r.mape_source, 1),
                  FormatDouble(r.mape_target, 1)});
  };
  add("perf-influence (regression)", reg);
  add("causal performance model", causal);
  std::printf("%s", table.Render().c_str());
  std::printf("(expected shape: causal model keeps more common terms, higher rank\n"
              " correlation, and a smaller source->target MAPE blow-up)\n");

  std::printf("\n=== Fig. 5: coefficient drift of common regression terms ===\n");
  std::sort(drift.begin(), drift.end(), [](const auto& a, const auto& b) {
    return std::abs(a.second) > std::abs(b.second);
  });
  if (drift.empty()) {
    std::printf("no common terms survived the environment change — the strongest\n"
                "possible form of the paper's instability finding.\n");
  } else {
    TextTable drift_table({"term", "coeff difference (src -> tgt)"});
    for (size_t i = 0; i < drift.size() && i < 15; ++i) {
      drift_table.AddRow({drift[i].first, FormatDouble(drift[i].second, 3)});
    }
    std::printf("%s", drift_table.Render().c_str());
  }
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunFigure();
  return 0;
}
