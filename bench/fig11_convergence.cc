// Fig. 11: (a) Hamming distance between the learned and ground-truth causal
// model shrinks with more samples; (b, c) objective trajectories while
// debugging a multi-objective fault; (d) options selected per iteration.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "graph/algorithms.h"
#include "unicorn/model_learner.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_ModelUpdate(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kDeepstream, spec));
  Rng rng(5);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 100; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable data = model->MeasureMany(configs, Xavier(), DefaultWorkload(), &rng);
  CausalModelOptions options;
  options.fci.skeleton.max_cond_size = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LearnCausalPerformanceModel(data, options));
  }
}
BENCHMARK(BM_ModelUpdate)->Iterations(3);

void RunFigure() {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kDeepstream, spec));
  const MixedGraph truth = model->GroundTruthGraph();

  // (a) SHD vs sample count.
  std::printf("\n=== Fig. 11 (a): Hamming distance to ground truth vs samples ===\n");
  Rng rng(11);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 400; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable all = model->MeasureMany(configs, Xavier(), DefaultWorkload(), &rng);
  CausalModelOptions options;
  options.fci.skeleton.alpha = 0.1;
  options.fci.skeleton.max_cond_size = 2;
  options.fci.skeleton.max_subsets = 24;
  options.fci.max_pds_cond_size = 1;
  options.entropic.latent.restarts = 1;
  TextTable shd_table({"samples", "structural hamming distance"});
  for (size_t n : {25u, 50u, 100u, 200u, 400u}) {
    std::vector<size_t> rows;
    for (size_t r = 0; r < n; ++r) {
      rows.push_back(r);
    }
    const LearnedModel learned = LearnCausalPerformanceModel(all.SelectRows(rows), options);
    shd_table.AddRow({std::to_string(n),
                      std::to_string(StructuralHammingDistance(learned.admg, truth))});
  }
  std::printf("%s", shd_table.Render().c_str());

  // (b, c, d): debugging trajectory of a multi-objective fault.
  Rng fault_rng(12);
  const FaultCuration curation =
      CurateFaults(*model, Xavier(), DefaultWorkload(), 2000, &fault_rng, 0.97);
  const auto faults = bench::SelectFaults(*model, curation, bench::FaultKind::kMulti, 1);
  if (faults.empty()) {
    std::printf("no multi-objective fault found\n");
    return;
  }
  const Fault& fault = faults.front();
  const auto goals = GoalsForFault(curation, fault);
  const PerformanceTask task = MakeSimulatedTask(model, Xavier(), DefaultWorkload(), 13);
  DebugOptions debug_options = bench::BenchDebugOptions();
  debug_options.max_iterations = 40;
  UnicornDebugger debugger(task, debug_options);
  const DebugResult result = debugger.Debug(fault.config, goals);

  std::printf("\n=== Fig. 11 (b, c): objective values per debugging iteration ===\n");
  TextTable traj({"iteration", "latency-like", "energy-like", "option changed"});
  for (size_t i = 0; i < result.objective_trajectory.size(); ++i) {
    const auto& step = result.objective_trajectory[i];
    traj.AddRow({std::to_string(i), FormatDouble(step[0], 1),
                 step.size() > 1 ? FormatDouble(step[1], 1) : "-",
                 model->variables()[result.selected_options[i]].name});
  }
  std::printf("%s", traj.Render().c_str());
  std::printf("fault fixed: %s, measurements used: %zu\n", result.fixed ? "yes" : "no",
              result.measurements_used);
  std::printf("fix changed options (Fig. 11 d, red nodes):");
  for (size_t cause : result.predicted_root_causes) {
    std::printf(" %s", model->variables()[cause].name.c_str());
  }
  std::printf("\ntrue root causes:");
  for (size_t cause : fault.root_causes) {
    std::printf(" %s", model->variables()[cause].name.c_str());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunFigure();
  return 0;
}
