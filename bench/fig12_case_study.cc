// Fig. 12 / §5: the real-world case study. A scene-detection pipeline
// migrated to "TX2" hits a misconfiguration (CUDA_STATIC disabled + low
// clocks) that tanks latency ~7x. Unicorn, SMAC, and BugDoc race to fix it.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "baselines/bugdoc.h"
#include "baselines/smac.h"
#include "bench/common.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_CaseStudyModelLearn(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kDeepstream, spec));
  Rng rng(7);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 60; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable data = model->MeasureMany(configs, Tx2(), DefaultWorkload(), &rng);
  CausalModelOptions options;
  options.fci.skeleton.max_cond_size = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LearnCausalPerformanceModel(data, options));
  }
}
BENCHMARK(BM_CaseStudyModelLearn)->Iterations(3);

void RunFigure() {
  using Clock = std::chrono::steady_clock;
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kDeepstream, spec));
  DataTable meta(model->variables());
  const size_t latency = *meta.IndexOf(kLatencyName);

  // Construct the misconfiguration of the forum post: CUDA_STATIC off with
  // low CPU/GPU/EMC clocks and few cores.
  const auto options_idx = model->OptionIndices();
  auto slot = [&](const char* name) {
    const size_t var = *meta.IndexOf(name);
    for (size_t i = 0; i < options_idx.size(); ++i) {
      if (options_idx[i] == var) {
        return i;
      }
    }
    return size_t{0};
  };
  Rng rng(121);
  std::vector<double> fault_config = model->SampleConfig(&rng);
  fault_config[slot("cuda_static")] = 0;
  fault_config[slot("cpu_cores")] = 1;
  fault_config[slot("cpu_frequency_ghz")] = 0.4;
  fault_config[slot("gpu_frequency_ghz")] = 0.2;
  fault_config[slot("emc_frequency_ghz")] = 0.3;

  const auto fault_row = model->Measure(fault_config, Tx2(), DefaultWorkload(), &rng);
  std::printf("\n=== §5 case study: migrated pipeline, observed fault ===\n");
  std::printf("faulty latency on TX2: %.1f (active rules: %zu)\n", fault_row[latency],
              model->ActiveFaultRules(fault_config).size());
  const std::vector<ObjectiveGoal> goals = {{latency, fault_row[latency] / 4.0}};
  std::printf("QoS goal: latency <= %.1f (4x better than the fault)\n", goals[0].threshold);

  TextTable table({"method", "latency after fix", "gain over fault", "root-cause options",
                   "time (s)", "measurements"});

  // Unicorn.
  {
    const PerformanceTask task = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 500);
    DebugOptions debug_options = bench::BenchDebugOptions();
    debug_options.max_iterations = 40;
    UnicornDebugger debugger(task, debug_options);
    const auto start = Clock::now();
    const DebugResult result = debugger.Debug(fault_config, goals);
    const double secs = std::chrono::duration<double>(Clock::now() - start).count();
    std::string causes;
    for (size_t cause : result.predicted_root_causes) {
      causes += model->variables()[cause].name + " ";
    }
    table.AddRow({"Unicorn", FormatDouble(result.fixed_measurement[latency], 1),
                  FormatDouble(Gain(fault_row[latency], result.fixed_measurement[latency]), 0) +
                      "%",
                  std::to_string(result.predicted_root_causes.size()) + " opts",
                  FormatDouble(secs, 2), std::to_string(result.measurements_used)});
    std::printf("\nUnicorn changed:");
    for (size_t cause : result.predicted_root_causes) {
      std::printf(" %s", model->variables()[cause].name.c_str());
    }
    std::printf("\n");
  }
  // SMAC (optimization pointed at latency).
  {
    const PerformanceTask task = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 501);
    SmacOptions smac_options;
    smac_options.initial_samples = 25;
    smac_options.max_iterations = 100;
    smac_options.forest.num_trees = 12;
    const auto start = Clock::now();
    const SmacResult result = SmacMinimize(task, latency, smac_options, &fault_config);
    const double secs = std::chrono::duration<double>(Clock::now() - start).count();
    size_t changed = 0;
    for (size_t i = 0; i < fault_config.size(); ++i) {
      changed += result.best_config[i] != fault_config[i] ? 1 : 0;
    }
    table.AddRow({"SMAC", FormatDouble(result.best_value, 1),
                  FormatDouble(Gain(fault_row[latency], result.best_value), 0) + "%",
                  std::to_string(changed) + " opts", FormatDouble(secs, 2),
                  std::to_string(result.measurements_used)});
  }
  // BugDoc.
  {
    const PerformanceTask task = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 502);
    BaselineDebugOptions bugdoc_options;
    bugdoc_options.sample_budget = 125;
    const auto start = Clock::now();
    const auto result = BugDocDebug(task, fault_config, goals, bugdoc_options);
    const double secs = std::chrono::duration<double>(Clock::now() - start).count();
    table.AddRow({"BugDoc", FormatDouble(result.fixed_measurement[latency], 1),
                  FormatDouble(Gain(fault_row[latency], result.fixed_measurement[latency]), 0) +
                      "%",
                  std::to_string(result.predicted_root_causes.size()) + " opts",
                  FormatDouble(secs, 2), std::to_string(result.measurements_used)});
  }

  std::printf("\n=== Fig. 12: method comparison on the case-study fault ===\n%s",
              table.Render().c_str());
  std::printf("(expected shape: Unicorn reaches the largest gain with the fewest\n"
              " measurements and the most focused option changes)\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunFigure();
  return 0;
}
