// Fig. 13: distribution of single- and multi-objective non-functional faults
// across the six subject systems, plus root-cause-count statistics (§6
// "Ground truth": most faults have five or more root causes).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_CurateFaults(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 12;
  const SystemModel model = BuildSystem(SystemId::kX264, spec);
  for (auto _ : state) {
    Rng rng(13);
    benchmark::DoNotOptimize(CurateFaults(model, Tx2(), DefaultWorkload(), 500, &rng, 0.99));
  }
}
BENCHMARK(BM_CurateFaults)->Iterations(3);

void RunFigure() {
  const SystemId systems[] = {SystemId::kDeepstream, SystemId::kXception, SystemId::kBert,
                              SystemId::kDeepspeech, SystemId::kX264, SystemId::kSqlite};
  TextTable table({"system", "latency", "energy", "heat", "latency+energy (multi)", "total"});
  size_t total_single = 0;
  size_t total_multi = 0;
  size_t cause_1 = 0;
  size_t cause_2to4 = 0;
  size_t cause_5plus = 0;
  for (SystemId id : systems) {
    SystemSpec spec;
    spec.num_events = 12;
    const SystemModel model = BuildSystem(id, spec);
    Rng rng(1300 + static_cast<uint64_t>(id));
    const FaultCuration curation =
        CurateFaults(model, Tx2(), DefaultWorkload(), 2500, &rng, 0.99);
    DataTable meta(model.variables());
    const size_t latency_count = FaultsOn(curation, *meta.IndexOf(kLatencyName)).size();
    const size_t energy_count = FaultsOn(curation, *meta.IndexOf(kEnergyName)).size();
    const size_t heat_count = FaultsOn(curation, *meta.IndexOf(kHeatName)).size();
    const size_t multi = MultiObjectiveFaults(curation).size();
    total_single += latency_count + energy_count + heat_count;
    total_multi += multi;
    for (const auto& fault : curation.faults) {
      if (fault.root_causes.empty()) {
        continue;
      }
      if (fault.root_causes.size() == 1) {
        ++cause_1;
      } else if (fault.root_causes.size() <= 4) {
        ++cause_2to4;
      } else {
        ++cause_5plus;
      }
    }
    table.AddRow({bench::SystemLabel(id), std::to_string(latency_count),
                  std::to_string(energy_count), std::to_string(heat_count),
                  std::to_string(multi),
                  std::to_string(curation.faults.size())});
  }
  std::printf("\n=== Fig. 13: non-functional faults per system (99th pct tail) ===\n%s",
              table.Render().c_str());
  std::printf("\nsingle-objective faults: %zu, multi-objective faults: %zu\n", total_single,
              total_multi);
  std::printf("root-cause counts: 1 cause: %zu, 2-4 causes: %zu, >=5 causes: %zu\n", cause_1,
              cause_2to4, cause_5plus);
  std::printf("(paper shape: multi-objective faults are the minority; most faults\n"
              " have five or more root causes)\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunFigure();
  return 0;
}
