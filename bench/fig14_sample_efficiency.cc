// Fig. 14: sample efficiency. Gain achieved by each method as a function of
// the measurement budget (latency faults on TX2, energy faults on Xavier).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/bugdoc.h"
#include "baselines/cbi.h"
#include "baselines/dd.h"
#include "baselines/encore.h"
#include "bench/common.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_BudgetedBaseline(benchmark::State& state) {
  SystemSpec sys_spec;
  sys_spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, sys_spec));
  Rng rng(14);
  const auto curation = CurateFaults(*model, Tx2(), DefaultWorkload(), 1000, &rng, 0.97);
  const auto faults = bench::SelectFaults(*model, curation, bench::FaultKind::kLatency, 1);
  if (faults.empty()) {
    return;
  }
  const auto goals = GoalsForFault(curation, faults[0]);
  const PerformanceTask task = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 15);
  BaselineDebugOptions options;
  options.sample_budget = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BugDocDebug(task, faults[0].config, goals, options));
  }
}
BENCHMARK(BM_BudgetedBaseline)->Iterations(1);

void RunSweep(const char* title, const Environment& env, bench::FaultKind kind) {
  std::printf("\n=== Fig. 14: %s — gain%% vs sample budget ===\n", title);
  const SystemId systems[] = {SystemId::kXception, SystemId::kBert, SystemId::kDeepspeech,
                              SystemId::kX264};
  for (SystemId id : systems) {
    SystemSpec sys_spec;
    sys_spec.num_events = 12;
    auto model = std::make_shared<SystemModel>(BuildSystem(id, sys_spec));
    Rng rng(1400 + static_cast<uint64_t>(id));
    const auto curation = CurateFaults(*model, env, DefaultWorkload(), 2000, &rng, 0.97);
    const auto faults = bench::SelectFaults(*model, curation, kind, 2);
    if (faults.empty()) {
      continue;
    }
    TextTable table({"budget", "Unicorn", "CBI", "DD", "EnCore", "BugDoc"});
    for (size_t budget : {50u, 100u, 200u}) {
      std::vector<double> gains(5, 0.0);
      for (size_t f = 0; f < faults.size(); ++f) {
        const auto& fault = faults[f];
        const auto goals = GoalsForFault(curation, fault);
        const size_t obj = fault.objectives[0];
        const uint64_t seed = 1410 + 13 * f + budget;
        // Unicorn: budget translates to iterations (25 initial samples are
        // part of the budget).
        {
          const PerformanceTask task = MakeSimulatedTask(model, env, DefaultWorkload(), seed);
          DebugOptions options = bench::BenchDebugOptions();
          options.max_iterations = (budget - options.initial_samples) /
                                   options.repairs_per_iteration;
          options.seed = seed;
          UnicornDebugger debugger(task, options);
          const auto result = debugger.Debug(fault.config, goals);
          gains[0] += Gain(fault.measurement[obj], result.fixed_measurement[obj]);
        }
        BaselineDebugResult (*baselines[])(const PerformanceTask&, const std::vector<double>&,
                                           const std::vector<ObjectiveGoal>&,
                                           const BaselineDebugOptions&) = {
            &CbiDebug, &DdDebug, &EncoreDebug, &BugDocDebug};
        for (size_t b = 0; b < 4; ++b) {
          const PerformanceTask task =
              MakeSimulatedTask(model, env, DefaultWorkload(), seed + b + 1);
          BaselineDebugOptions options;
          options.sample_budget = budget;
          options.seed = seed + b + 1;
          const auto result = baselines[b](task, fault.config, goals, options);
          gains[b + 1] += Gain(fault.measurement[obj], result.fixed_measurement[obj]);
        }
      }
      for (auto& g : gains) {
        g /= static_cast<double>(faults.size());
      }
      table.AddRow(std::to_string(budget), gains, 0);
    }
    std::printf("\n--- %s ---\n%s", bench::SystemLabel(id).c_str(), table.Render().c_str());
  }
  std::printf("(expected shape: Unicorn reaches high gain at the smallest budgets)\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunSweep("latency faults on TX2", unicorn::Tx2(),
                    unicorn::bench::FaultKind::kLatency);
  unicorn::RunSweep("energy faults on Xavier", unicorn::Xavier(),
                    unicorn::bench::FaultKind::kEnergy);
  return 0;
}
