// Fig. 15: performance optimization on TX2 (Xception).
// (a) single-objective latency, Unicorn vs SMAC; (b) single-objective
// energy; (c) hypervolume-error trace for latency+energy, Unicorn vs
// PESMO-like MOBO; (d) the resulting Pareto fronts.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "baselines/pesmo.h"
#include "baselines/smac.h"
#include "bench/common.h"
#include "unicorn/backend/backend_fleet.h"
#include "unicorn/backend/simulated_device_backend.h"
#include "unicorn/optimizer.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

OptimizeOptions BenchOptimizeOptions(size_t iterations) {
  OptimizeOptions options;
  options.initial_samples = 25;
  options.max_iterations = iterations;
  options.relearn_every = 15;
  options.model.fci.skeleton.alpha = 0.1;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.skeleton.max_subsets = 24;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  return options;
}

void BM_UnicornOptimizeStep(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  const PerformanceTask task = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 150);
  for (auto _ : state) {
    UnicornOptimizer optimizer(task, BenchOptimizeOptions(10));
    benchmark::DoNotOptimize(optimizer.Minimize(model->ObjectiveIndices()[0]));
  }
}
BENCHMARK(BM_UnicornOptimizeStep)->Iterations(1);

void RunFigure() {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  DataTable meta(model->variables());
  const size_t latency = *meta.IndexOf(kLatencyName);
  const size_t energy = *meta.IndexOf(kEnergyName);
  const size_t iterations = 150;

  auto trajectory_rows = [&](const std::vector<double>& unicorn_traj,
                             const std::vector<double>& smac_traj) {
    TextTable table({"iteration", "Unicorn best", "SMAC best"});
    for (size_t i : {10u, 25u, 50u, 75u, 100u, 125u, 150u}) {
      const size_t idx = std::min(i, unicorn_traj.size() - 1);
      const size_t idx2 = std::min(i, smac_traj.size() - 1);
      table.AddRow({std::to_string(i), FormatDouble(unicorn_traj[idx], 2),
                    FormatDouble(smac_traj[idx2], 2)});
    }
    return table.Render();
  };

  for (auto [name, objective] :
       {std::pair<const char*, size_t>{"latency", latency}, {"energy", energy}}) {
    const PerformanceTask task_u = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 151);
    UnicornOptimizer unicorn_opt(task_u, BenchOptimizeOptions(iterations));
    const auto unicorn_result = unicorn_opt.Minimize(objective);

    const PerformanceTask task_s = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 152);
    SmacOptions smac_options;
    smac_options.initial_samples = 25;
    smac_options.max_iterations = iterations;
    smac_options.forest.num_trees = 12;
    const auto smac_result = SmacMinimize(task_s, objective, smac_options);

    std::printf("\n=== Fig. 15 (%s): single-objective %s minimization ===\n",
                objective == latency ? "a" : "b", name);
    std::printf("%s",
                trajectory_rows(unicorn_result.best_trajectory, smac_result.best_trajectory)
                    .c_str());
    std::printf("final: Unicorn %.2f vs SMAC %.2f\n", unicorn_result.best_value,
                smac_result.best_value);
  }

  // (c, d): multi-objective.
  const PerformanceTask task_mu = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 153);
  UnicornOptimizer unicorn_mo(task_mu, BenchOptimizeOptions(iterations));
  const auto unicorn_result = unicorn_mo.MinimizeMulti({latency, energy});

  const PerformanceTask task_p = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 154);
  PesmoOptions pesmo_options;
  pesmo_options.initial_samples = 25;
  pesmo_options.max_iterations = iterations;
  pesmo_options.forest.num_trees = 12;
  const auto pesmo_result = PesmoMinimize(task_p, {latency, energy}, pesmo_options);

  // Reference front and reference point from the union of all evaluations.
  std::vector<std::pair<double, double>> all_points;
  auto collect = [&](const std::vector<std::vector<double>>& evaluated, size_t upto) {
    std::vector<std::pair<double, double>> points;
    for (size_t i = 0; i < evaluated.size() && i < upto; ++i) {
      points.push_back({evaluated[i][0], evaluated[i][1]});
    }
    return points;
  };
  for (const auto& e : unicorn_result.evaluated) {
    all_points.push_back({e[0], e[1]});
  }
  for (const auto& e : pesmo_result.evaluated) {
    all_points.push_back({e[0], e[1]});
  }
  double ref_x = 0.0;
  double ref_y = 0.0;
  for (const auto& p : all_points) {
    ref_x = std::max(ref_x, p.first);
    ref_y = std::max(ref_y, p.second);
  }
  const auto reference_front = ParetoFront2D(all_points);

  std::printf("\n=== Fig. 15 (c): hypervolume error vs iteration ===\n");
  TextTable hv_table({"iteration", "Unicorn HV error", "PESMO HV error"});
  for (size_t i : {25u, 50u, 75u, 100u, 125u, 150u}) {
    const double hv_u = HypervolumeError(collect(unicorn_result.evaluated, 25 + i),
                                         reference_front, ref_x, ref_y);
    const double hv_p =
        HypervolumeError(collect(pesmo_result.evaluated, 25 + i), reference_front, ref_x, ref_y);
    hv_table.AddRow({std::to_string(i), FormatDouble(hv_u, 3), FormatDouble(hv_p, 3)});
  }
  std::printf("%s", hv_table.Render().c_str());

  std::printf("\n=== Fig. 15 (d): Pareto fronts (latency, energy) ===\n");
  auto print_front = [&](const char* name, const std::vector<std::vector<double>>& evaluated) {
    std::vector<std::pair<double, double>> points;
    for (const auto& e : evaluated) {
      points.push_back({e[0], e[1]});
    }
    const auto front = ParetoFront2D(points);
    std::printf("%s front (%zu points):", name, front.size());
    for (const auto& p : front) {
      std::printf(" (%.1f, %.1f)", p.first, p.second);
    }
    std::printf("\n");
  };
  print_front("Unicorn", unicorn_result.evaluated);
  print_front("PESMO", pesmo_result.evaluated);
}

// Batched candidate scoring study (ROADMAP): how much wall time does
// speculative batching buy per unit of extra measurement budget?
//
// candidates_per_round = k proposes k candidates per round as ONE broker
// batch, all derived from the round-start incumbent — the loop trades
// incumbent-rebasing granularity (k=1 is the exact greedy loop) for
// measurement fan-out. The trade is only visible on hardware that takes
// real time per measurement, so each setting runs against a fleet of four
// simulated devices that genuinely sleep their service times: a k-candidate
// round costs ~ceil(k/4) service times instead of k.
//
// Fixed total budget (max_iterations candidates) per setting. Quality is
// compared two ways: the best value at full budget, and "meas to serial
// mid-budget quality" — how many measurements each setting needed to match
// what the serial loop had already reached halfway through its budget (the
// extra measurement budget speculation costs; n/r = not reached at all).
void RunCandidatesPerRoundStudy() {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  DataTable meta(model->variables());
  const size_t latency = *meta.IndexOf(kLatencyName);
  const size_t iterations = 150;

  struct Row {
    size_t k = 0;
    double wall_s = 0.0;
    double measure_wall_s = 0.0;
    size_t refreshes = 0;
    double best = 0.0;
    size_t measurements = 0;
    std::vector<double> trajectory;
  };
  std::vector<Row> rows;
  for (const size_t k : {1u, 2u, 4u, 8u}) {
    OptimizeOptions options = BenchOptimizeOptions(iterations);
    options.candidates_per_round = k;
    const PerformanceTask task = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 155);
    // Four homogeneous devices (same measurement seed as `task`) that sleep
    // a seeded ~4ms service time per measurement.
    std::vector<std::unique_ptr<MeasurementBackend>> backends;
    for (int b = 0; b < 4; ++b) {
      DeviceProfile profile;
      profile.name = "tx2-" + std::to_string(b);
      profile.seed = 700 + static_cast<uint64_t>(b);
      profile.service_time_mean = 0.004;
      profile.service_time_jitter = 0.3;
      profile.sleep = true;
      backends.push_back(
          MakeDeviceBackend(model, Tx2(), DefaultWorkload(), 155, std::move(profile)));
    }
    CampaignRunner runner(task, ToCampaignOptions(options),
                          std::make_unique<BackendFleet>(std::move(backends)));
    OptimizePolicy policy(options, {latency});
    const auto start = std::chrono::steady_clock::now();
    runner.Run({&policy});
    const OptimizeResult result = policy.TakeResult();
    Row row;
    row.k = k;
    row.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    row.measure_wall_s = result.broker_stats.batch_wall_seconds;
    row.refreshes = result.engine_stats.refreshes;
    row.best = result.best_value;
    row.measurements = result.measurements_used;
    row.trajectory = result.best_trajectory;
    rows.push_back(std::move(row));
  }

  // Quality target: what the serial loop had reached by mid-budget.
  const std::vector<double>& serial_traj = rows[0].trajectory;
  const double target = serial_traj[serial_traj.size() / 2];
  std::printf("\n=== candidates_per_round study: speculative batching vs budget "
              "(4 sleeping devices, ~4ms/measurement) ===\n");
  TextTable table({"k", "wall(s)", "measure wall(s)", "refreshes", "best@budget",
                   "meas used", "meas to serial mid-budget quality"});
  for (const Row& row : rows) {
    size_t to_quality = 0;
    bool reached = false;
    for (size_t i = 0; i < row.trajectory.size(); ++i) {
      if (row.trajectory[i] <= target) {
        to_quality = i + 1;
        reached = true;
        break;
      }
    }
    table.AddRow({std::to_string(row.k), FormatDouble(row.wall_s, 2),
                  FormatDouble(row.measure_wall_s, 2), std::to_string(row.refreshes),
                  FormatDouble(row.best, 2), std::to_string(row.measurements),
                  reached ? std::to_string(to_quality) : std::string("n/r")});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(a k-candidate round costs ~ceil(k/4) device service times instead of k,\n"
              " so 'measure wall' falls with k; candidates within a round cannot rebase\n"
              " on each other, so 'meas to serial mid-budget quality' above the k=1 row\n"
              " is the premium paid in measurement budget for that wall-time win)\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunFigure();
  unicorn::RunCandidatesPerRoundStudy();
  return 0;
}
