// Fig. 16: transferring the causal performance model across hardware
// (Xavier source -> TX2 target) for debugging energy faults on Xception —
// run as a first-class transfer campaign on a heterogeneous fleet:
//
//   1. record on the source: measure observational samples through a fleet
//      whose only member is a live simulated Xavier device, persist the
//      broker cache as a MeasurementTable CSV (provenance column "Xavier");
//   2. replay into the target fleet: RecordedBackend (the already-measured
//      source hardware) + live simulated TX2 devices, with environment-
//      aware routing pinning replayed rows to the recording and fresh
//      measurements to TX2;
//   3. debug through TransferPolicy: the shared engine warm-starts from
//      source-provenance rows and refreshes incrementally as target rows
//      stream in.
//
// Scenarios: Unicorn (Reuse) / Unicorn + 25 / Unicorn (Rerun) vs BugDoc
// rerun from scratch. The "Reuse" scenario issues ZERO fresh source-
// hardware measurements — every source row is served by the recording, and
// the fleet ledger printed at the end proves it. `--smoke` shrinks
// everything to CI scale.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "baselines/bugdoc.h"
#include "bench/common.h"
#include "unicorn/backend/recorded_backend.h"
#include "unicorn/campaign.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_WarmStartDebug(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  Rng rng(16);
  const auto curation = CurateFaults(*model, Tx2(), DefaultWorkload(), 800, &rng, 0.97);
  const auto faults = bench::SelectFaults(*model, curation, bench::FaultKind::kEnergy, 1);
  if (faults.empty()) {
    return;
  }
  const PerformanceTask task = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 17);
  DebugOptions options = bench::BenchDebugOptions();
  options.initial_samples = 5;
  for (auto _ : state) {
    UnicornDebugger debugger(task, options);
    benchmark::DoNotOptimize(
        debugger.Debug(faults[0].config, GoalsForFault(curation, faults[0])));
  }
}
BENCHMARK(BM_WarmStartDebug)->Iterations(1);

// Builds the per-fault heterogeneous fleet: the source recording + two live
// TX2 devices. `task_seed` must match the target task so fleet rows equal
// what a pool-mode broker would have measured.
std::unique_ptr<BackendFleet> MakeTransferFleet(
    const std::shared_ptr<SystemModel>& model, const MeasurementTable& source_table,
    uint64_t task_seed) {
  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  backends.push_back(
      std::make_unique<RecordedBackend>(source_table, "xavier-recorded", 1));
  for (int b = 0; b < 2; ++b) {
    DeviceProfile profile;
    profile.name = "tx2-" + std::to_string(b);
    profile.seed = 700 + static_cast<uint64_t>(b);
    backends.push_back(
        MakeDeviceBackend(model, Tx2(), DefaultWorkload(), task_seed, std::move(profile)));
  }
  return std::make_unique<BackendFleet>(std::move(backends));
}

// Returns false when the replay-accounting invariant (every source row
// served by the recording, none measured fresh) broke — main turns that
// into a non-zero exit so the CI smoke job fails instead of logging a
// warning nobody reads.
bool RunFigure(bool smoke) {
  using Clock = std::chrono::steady_clock;
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));

  // --- Stage 1: record on the source hardware, through the plane ----------
  const size_t source_samples = smoke ? 40 : 150;
  const std::string table_path = "bench_fig16_source_table.csv";
  {
    const PerformanceTask src_task = MakeSimulatedTask(model, Xavier(), DefaultWorkload(), 161);
    std::vector<std::unique_ptr<MeasurementBackend>> backends;
    DeviceProfile profile;
    profile.name = "xavier-0";
    profile.seed = 600;
    backends.push_back(
        MakeDeviceBackend(model, Xavier(), DefaultWorkload(), 161, std::move(profile)));
    MeasurementBroker recorder(src_task, std::make_unique<BackendFleet>(std::move(backends)));

    Rng src_rng(161);
    std::vector<std::vector<double>> src_configs;
    for (size_t i = 0; i < source_samples; ++i) {
      src_configs.push_back(model->SampleConfig(&src_rng));
    }
    recorder.MeasureBatch(src_configs,
                          std::vector<std::string>(src_configs.size(), Xavier().name));
    recorder.SaveCache(table_path);
    std::printf("recorded %zu Xavier samples through the measurement plane "
                "(broker: %zu requests, %zu measured)\n",
                source_samples, recorder.stats().requests, recorder.stats().measured);
  }
  MeasurementTable source_table;
  if (!LoadMeasurementTable(table_path, &source_table)) {
    std::printf("failed to load the source recording\n");
    return false;
  }

  // --- Stage 2: target faults on TX2 ---------------------------------------
  Rng tgt_rng(162);
  const FaultCuration curation =
      CurateFaults(*model, Tx2(), DefaultWorkload(), smoke ? 600 : 2000, &tgt_rng, 0.97);
  const auto faults =
      bench::SelectFaults(*model, curation, bench::FaultKind::kEnergy, smoke ? 1 : 3);
  if (faults.empty()) {
    std::printf("no energy faults found\n");
    return false;
  }
  std::vector<double> weights(model->NumVars(), 0.0);
  {
    DataTable meta(model->variables());
    weights = TrueAceWeights(*model, *meta.IndexOf(kEnergyName), Tx2(), DefaultWorkload(), 163,
                             smoke ? 4 : 12);
  }

  struct Scenario {
    std::string name;
    size_t initial_samples;
    bool transfer;
  };
  const Scenario scenarios[] = {
      {"Unicorn (Reuse)", 0, true},   // replayed source rows, no fresh samples
      {"Unicorn + 25", 25, true},     // replayed source rows + 25 target samples
      {"Unicorn (Rerun)", 25, false}  // from scratch on the target fleet
  };

  TextTable table({"scenario", "accuracy", "precision", "recall", "gain%", "time(s)",
                   "src rows", "tgt rows", "replay-served"});
  bool all_scenarios_ok = true;
  for (const auto& scenario : scenarios) {
    double accuracy = 0.0;
    double precision = 0.0;
    double recall = 0.0;
    double gain = 0.0;
    double seconds = 0.0;
    double src_rows = 0.0;
    double tgt_rows = 0.0;
    double replay_served = 0.0;
    bool replay_accounting_ok = true;
    for (size_t f = 0; f < faults.size(); ++f) {
      const auto& fault = faults[f];
      const uint64_t task_seed = 164 + f;
      const PerformanceTask task =
          MakeSimulatedTask(model, Tx2(), DefaultWorkload(), task_seed);
      DebugOptions options = bench::BenchDebugOptions();
      options.initial_samples = scenario.initial_samples;
      options.seed = 165 + f;
      // Pin this policy's fresh measurements to live TX2 devices: they can
      // never be answered from the source recording.
      options.environment = Tx2().name;
      if (smoke) {
        options.max_iterations = 10;
      }

      CampaignRunner runner(task, ToCampaignOptions(options),
                            MakeTransferFleet(model, source_table, task_seed));
      DebugPolicy inner(options, fault.config, GoalsForFault(curation, fault));
      const auto start = Clock::now();
      if (scenario.transfer) {
        TransferOptions transfer_options;
        transfer_options.source_environment = Xavier().name;
        transfer_options.target_environment = Tx2().name;
        TransferPolicy transfer(transfer_options, source_table, &inner);
        runner.Run({&transfer});
      } else {
        runner.Run({&inner});
      }
      seconds += std::chrono::duration<double>(Clock::now() - start).count();

      const DebugResult& result = inner.result();
      accuracy += AceWeightedJaccard(result.predicted_root_causes, fault.root_causes, weights);
      precision += Precision(result.predicted_root_causes, fault.root_causes);
      recall += Recall(result.predicted_root_causes, fault.root_causes);
      const size_t obj = fault.objectives[0];
      gain += Gain(fault.measurement[obj], result.fixed_measurement[obj]);
      src_rows += static_cast<double>(result.source_rows);
      tgt_rows += static_cast<double>(result.target_rows);

      // The acceptance invariant: source-hardware rows only ever come from
      // the recording. Transfer scenarios must have the RecordedBackend
      // serve the WHOLE recording (and the live TX2 members everything
      // else); Rerun must never touch it.
      const FleetStats fleet_stats = runner.broker().fleet_stats();
      size_t recorded_completed = 0;
      for (const auto& backend : fleet_stats.backends) {
        if (backend.name == "xavier-recorded") {
          recorded_completed = backend.completed;
        }
      }
      replay_served += static_cast<double>(recorded_completed);
      const size_t expected =
          scenario.transfer ? source_table.entries.size() : 0;
      replay_accounting_ok =
          replay_accounting_ok && recorded_completed == expected &&
          result.source_rows == expected && fleet_stats.failed == 0;
    }
    const double n = static_cast<double>(faults.size());
    table.AddRow({scenario.name, FormatDouble(100 * accuracy / n, 0),
                  FormatDouble(100 * precision / n, 0), FormatDouble(100 * recall / n, 0),
                  FormatDouble(gain / n, 0), FormatDouble(seconds / n, 2),
                  FormatDouble(src_rows / n, 0), FormatDouble(tgt_rows / n, 0),
                  FormatDouble(replay_served / n, 0)});
    if (!replay_accounting_ok) {
      all_scenarios_ok = false;
      std::printf("FAILED: %s — replay accounting broken (expected every source row\n"
                  " served by the recording in transfer scenarios, none in Rerun)\n",
                  scenario.name.c_str());
    }
  }

  // BugDoc comparison: rerun from scratch in the target (its reuse story
  // requires retraining anyway — the paper's point).
  {
    double gain = 0.0;
    double accuracy = 0.0;
    double seconds = 0.0;
    for (size_t f = 0; f < faults.size(); ++f) {
      const auto& fault = faults[f];
      const PerformanceTask task =
          MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 170 + f);
      BaselineDebugOptions options;
      options.sample_budget = smoke ? 60 : 125;
      options.seed = 171 + f;
      const auto start = Clock::now();
      const auto result = BugDocDebug(task, fault.config, GoalsForFault(curation, fault), options);
      seconds += std::chrono::duration<double>(Clock::now() - start).count();
      accuracy += AceWeightedJaccard(result.predicted_root_causes, fault.root_causes, weights);
      const size_t obj = fault.objectives[0];
      gain += Gain(fault.measurement[obj], result.fixed_measurement[obj]);
    }
    const double n = static_cast<double>(faults.size());
    table.AddRow({"BugDoc (Rerun)", FormatDouble(100 * accuracy / n, 0), "-", "-",
                  FormatDouble(gain / n, 0), FormatDouble(seconds / n, 2), "0", "-",
                  "0"});
  }

  std::printf("\n=== Fig. 16: Xavier -> TX2 transfer campaign on a heterogeneous fleet ===\n%s",
              table.Render().c_str());
  std::printf("(src rows = engine rows replayed from the Xavier recording; tgt rows =\n"
              " fresh TX2 measurements; replay-served = requests the RecordedBackend\n"
              " answered. Zero fresh source-hardware measurements in every scenario.\n"
              " Expected shape: Unicorn+25 approaches Unicorn(Rerun) at a fraction of\n"
              " the fresh samples; Reuse alone degrades gracefully.)\n");
  std::remove(table_path.c_str());
  return all_scenarios_ok;
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  bool smoke = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[kept++] = argv[i];  // leave only benchmark-library flags in argv
    }
  }
  argc = kept;
  if (!smoke) {
    // The CI smoke run skips the registered microbenchmark: the campaign
    // itself is the coverage.
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return unicorn::RunFigure(smoke) ? 0 : 1;
}
