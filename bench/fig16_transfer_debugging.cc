// Fig. 16: transferring the causal performance model across hardware
// (Xavier source -> TX2 target) for debugging energy faults on Xception.
// Scenarios: Unicorn (Reuse) / Unicorn + 25 / Unicorn (Rerun) vs the same
// three variants of BugDoc.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "baselines/bugdoc.h"
#include "bench/common.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_WarmStartDebug(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  Rng rng(16);
  const auto curation = CurateFaults(*model, Tx2(), DefaultWorkload(), 800, &rng, 0.97);
  const auto faults = bench::SelectFaults(*model, curation, bench::FaultKind::kEnergy, 1);
  if (faults.empty()) {
    return;
  }
  const PerformanceTask task = MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 17);
  DebugOptions options = bench::BenchDebugOptions();
  options.initial_samples = 5;
  for (auto _ : state) {
    UnicornDebugger debugger(task, options);
    benchmark::DoNotOptimize(
        debugger.Debug(faults[0].config, GoalsForFault(curation, faults[0])));
  }
}
BENCHMARK(BM_WarmStartDebug)->Iterations(1);

void RunFigure() {
  using Clock = std::chrono::steady_clock;
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));

  // Source data: Xavier measurements (the transferred model's training set).
  Rng src_rng(161);
  std::vector<std::vector<double>> src_configs;
  for (int i = 0; i < 150; ++i) {
    src_configs.push_back(model->SampleConfig(&src_rng));
  }
  const DataTable source = model->MeasureMany(src_configs, Xavier(), DefaultWorkload(), &src_rng);

  // Target faults: energy faults on TX2.
  Rng tgt_rng(162);
  const FaultCuration curation =
      CurateFaults(*model, Tx2(), DefaultWorkload(), 2000, &tgt_rng, 0.97);
  const auto faults = bench::SelectFaults(*model, curation, bench::FaultKind::kEnergy, 3);
  if (faults.empty()) {
    std::printf("no energy faults found\n");
    return;
  }
  std::vector<double> weights(model->NumVars(), 0.0);
  {
    DataTable meta(model->variables());
    weights = TrueAceWeights(*model, *meta.IndexOf(kEnergyName), Tx2(), DefaultWorkload(), 163,
                             12);
  }

  struct Scenario {
    std::string name;
    size_t initial_samples;
    bool warm;
  };
  const Scenario scenarios[] = {
      {"Unicorn (Reuse)", 0, true},   // reuse source data, no fresh samples
      {"Unicorn + 25", 25, true},     // source data + 25 target samples
      {"Unicorn (Rerun)", 25, false}  // from scratch on the target
  };

  TextTable table({"scenario", "accuracy", "precision", "recall", "gain%", "time(s)",
                   "target samples"});
  for (const auto& scenario : scenarios) {
    double accuracy = 0.0;
    double precision = 0.0;
    double recall = 0.0;
    double gain = 0.0;
    double seconds = 0.0;
    double samples = 0.0;
    for (size_t f = 0; f < faults.size(); ++f) {
      const auto& fault = faults[f];
      const PerformanceTask task =
          MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 164 + f);
      DebugOptions options = bench::BenchDebugOptions();
      options.initial_samples = scenario.initial_samples;
      options.seed = 165 + f;
      UnicornDebugger debugger(task, options);
      const auto start = Clock::now();
      const DebugResult result = debugger.Debug(fault.config, GoalsForFault(curation, fault),
                                                scenario.warm ? &source : nullptr);
      seconds += std::chrono::duration<double>(Clock::now() - start).count();
      accuracy += AceWeightedJaccard(result.predicted_root_causes, fault.root_causes, weights);
      precision += Precision(result.predicted_root_causes, fault.root_causes);
      recall += Recall(result.predicted_root_causes, fault.root_causes);
      const size_t obj = fault.objectives[0];
      gain += Gain(fault.measurement[obj], result.fixed_measurement[obj]);
      samples += static_cast<double>(result.measurements_used);
    }
    const double n = static_cast<double>(faults.size());
    table.AddRow({scenario.name, FormatDouble(100 * accuracy / n, 0),
                  FormatDouble(100 * precision / n, 0), FormatDouble(100 * recall / n, 0),
                  FormatDouble(gain / n, 0), FormatDouble(seconds / n, 2),
                  FormatDouble(samples / n, 0)});
  }

  // BugDoc comparison: rerun from scratch in the target (its reuse story
  // requires retraining anyway — the paper's point).
  {
    double gain = 0.0;
    double accuracy = 0.0;
    double seconds = 0.0;
    for (size_t f = 0; f < faults.size(); ++f) {
      const auto& fault = faults[f];
      const PerformanceTask task =
          MakeSimulatedTask(model, Tx2(), DefaultWorkload(), 170 + f);
      BaselineDebugOptions options;
      options.sample_budget = 125;
      options.seed = 171 + f;
      const auto start = Clock::now();
      const auto result = BugDocDebug(task, fault.config, GoalsForFault(curation, fault), options);
      seconds += std::chrono::duration<double>(Clock::now() - start).count();
      accuracy += AceWeightedJaccard(result.predicted_root_causes, fault.root_causes, weights);
      const size_t obj = fault.objectives[0];
      gain += Gain(fault.measurement[obj], result.fixed_measurement[obj]);
    }
    const double n = static_cast<double>(faults.size());
    table.AddRow({"BugDoc (Rerun)", FormatDouble(100 * accuracy / n, 0), "-", "-",
                  FormatDouble(gain / n, 0), FormatDouble(seconds / n, 2), "125"});
  }

  std::printf("\n=== Fig. 16: Xavier -> TX2 transfer, Xception energy faults ===\n%s",
              table.Render().c_str());
  std::printf("(expected shape: Unicorn+25 approaches Unicorn(Rerun) at a fraction of\n"
              " the fresh samples; Reuse alone degrades gracefully)\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunFigure();
  return 0;
}
