// Fig. 17: workload transfer for latency optimization on TX2 (Xception),
// run as a transfer campaign on a heterogeneous fleet. The 5k-image source
// campaign is recorded through the measurement plane (one live simulated
// "tx2-5k" device) and persisted; each larger workload then builds a fleet
// of the source recording (RecordedBackend, zero fresh 5k measurements)
// plus a live device at the target workload, and TransferPolicy warm-starts
// the optimizer's engine from the replayed source rows. Columns:
// Unicorn (Reuse / +10% / +20% budget) vs the same SMAC variants.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "baselines/smac.h"
#include "bench/common.h"
#include "unicorn/backend/recorded_backend.h"
#include "unicorn/campaign.h"
#include "unicorn/optimizer.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

// Workload-specific environment tag: same TX2 board, different deployment.
std::string WorkloadEnv(int thousands) { return "tx2-" + std::to_string(thousands) + "k"; }

OptimizeOptions TransferOptimizeOptions(size_t iterations) {
  OptimizeOptions options;
  options.initial_samples = 20;
  options.max_iterations = iterations;
  options.relearn_every = 15;
  options.model.fci.skeleton.alpha = 0.1;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.skeleton.max_subsets = 24;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  return options;
}

void BM_OptimizeSmallBudget(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  const PerformanceTask task = MakeSimulatedTask(model, Tx2(), ImageWorkload(10), 170);
  for (auto _ : state) {
    UnicornOptimizer optimizer(task, TransferOptimizeOptions(10));
    benchmark::DoNotOptimize(optimizer.Minimize(model->ObjectiveIndices()[0]));
  }
}
BENCHMARK(BM_OptimizeSmallBudget)->Iterations(1);

// Returns false when the replay-accounting invariant broke (see fig16).
bool RunFigure(bool smoke) {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  DataTable meta(model->variables());
  const size_t latency = *meta.IndexOf(kLatencyName);
  const size_t base_budget = smoke ? 30 : 120;
  const std::string table_path = "bench_fig17_source_table.csv";

  // --- Source: optimize at the 5k-image workload, recorded via the plane ---
  const Workload source_wl = ImageWorkload(5);
  const PerformanceTask src_task_u = MakeSimulatedTask(model, Tx2(), source_wl, 171);
  OptimizeOptions src_options = TransferOptimizeOptions(base_budget);
  src_options.environment = WorkloadEnv(5);
  OptimizeResult src_unicorn_result;
  {
    std::vector<std::unique_ptr<MeasurementBackend>> backends;
    DeviceProfile profile;
    profile.name = "tx2-5k-dev";
    profile.environment = WorkloadEnv(5);
    profile.seed = 800;
    backends.push_back(MakeDeviceBackend(model, Tx2(), source_wl, 171, std::move(profile)));

    CampaignRunner runner(src_task_u, ToCampaignOptions(src_options),
                          std::make_unique<BackendFleet>(std::move(backends)));
    OptimizePolicy policy(src_options, {latency});
    runner.Run({&policy});
    src_unicorn_result = policy.TakeResult();
    runner.broker().SaveCache(table_path);  // provenance column = "tx2-5k"
    std::printf("source campaign recorded: %zu measurements persisted as %s\n",
                runner.broker().stats().measured, table_path.c_str());
  }
  MeasurementTable source_table;
  if (!LoadMeasurementTable(table_path, &source_table)) {
    std::printf("failed to load the source recording\n");
    return false;
  }

  const PerformanceTask src_task_s = MakeSimulatedTask(model, Tx2(), source_wl, 172);
  SmacOptions src_smac_options;
  src_smac_options.initial_samples = 20;
  src_smac_options.max_iterations = base_budget;
  src_smac_options.forest.num_trees = 12;
  const auto src_smac_result = SmacMinimize(src_task_s, latency, src_smac_options);

  std::printf("\n=== Fig. 17: workload transfer (5k-image optimum reused) ===\n");
  TextTable table({"workload", "Unicorn Reuse", "Unicorn +10%", "Unicorn +20%", "SMAC Reuse",
                   "SMAC +10%", "SMAC +20%"});
  size_t transfer_campaigns = 0;
  size_t total_target_rows = 0;
  bool replay_accounting_ok = true;
  for (int thousands : {10, 20, 50}) {
    const Workload wl = ImageWorkload(thousands);
    const std::string target_env = WorkloadEnv(thousands);
    // Scoring broker for the target workload: the gain reference (default
    // config) and every candidate optimum are measured through the plane,
    // so their sample counts land in BrokerStats too.
    const PerformanceTask score_task = MakeSimulatedTask(model, Tx2(), wl, 173);
    MeasurementBroker scorer(score_task);
    const double default_latency = scorer.Measure(model->DefaultConfig())[latency];
    auto gain_of = [&](const std::vector<double>& config) {
      return Gain(default_latency, scorer.Measure(config)[latency]);
    };

    std::vector<double> row_values;
    // Unicorn variants.
    row_values.push_back(gain_of(src_unicorn_result.best_config));
    for (double extra : {0.10, 0.20}) {
      const size_t budget =
          static_cast<size_t>(static_cast<double>(base_budget) * extra);
      const uint64_t task_seed = 175 + static_cast<uint64_t>(100 * extra);
      const PerformanceTask task = MakeSimulatedTask(model, Tx2(), wl, task_seed);

      // Heterogeneous fleet: the 5k recording + one live device at the
      // target workload. Replayed rows can only come from the recording;
      // fresh candidates can only run at the target workload.
      std::vector<std::unique_ptr<MeasurementBackend>> backends;
      backends.push_back(std::make_unique<RecordedBackend>(source_table, "tx2-5k-recorded"));
      DeviceProfile profile;
      profile.name = target_env + "-dev";
      profile.environment = target_env;
      profile.seed = 810 + static_cast<uint64_t>(thousands);
      backends.push_back(MakeDeviceBackend(model, Tx2(), wl, task_seed, std::move(profile)));

      OptimizeOptions options = TransferOptimizeOptions(budget);
      options.initial_samples = 5;
      options.environment = target_env;
      // Refine from the reused optimum: the source campaign's best config
      // is re-measured at the target workload and starts as the incumbent.
      options.anchor_configs = {src_unicorn_result.best_config};
      CampaignRunner runner(task, ToCampaignOptions(options),
                            std::make_unique<BackendFleet>(std::move(backends)));
      OptimizePolicy inner(options, {latency});
      TransferOptions transfer_options;
      transfer_options.source_environment = WorkloadEnv(5);
      transfer_options.target_environment = target_env;
      TransferPolicy transfer(transfer_options, source_table, &inner);
      runner.Run({&transfer});
      const OptimizeResult& result = inner.result();
      ++transfer_campaigns;
      total_target_rows += result.target_rows;
      // The claim the footer prints, actually measured: the recording
      // served the whole replay, nothing else did.
      const FleetStats fleet_stats = runner.broker().fleet_stats();
      replay_accounting_ok = replay_accounting_ok && fleet_stats.failed == 0 &&
                             fleet_stats.backends[0].completed == source_table.entries.size() &&
                             result.source_rows == source_table.entries.size();
      row_values.push_back(gain_of(result.best_config));
    }
    // SMAC variants.
    row_values.push_back(gain_of(src_smac_result.best_config));
    for (double extra : {0.10, 0.20}) {
      const size_t budget =
          static_cast<size_t>(static_cast<double>(base_budget) * extra);
      const PerformanceTask task =
          MakeSimulatedTask(model, Tx2(), wl, 179 + static_cast<uint64_t>(100 * extra));
      SmacOptions options;
      options.initial_samples = 5;
      options.max_iterations = budget;
      options.forest.num_trees = 12;
      const auto result = SmacMinimize(task, latency, options, &src_smac_result.best_config);
      row_values.push_back(gain_of(result.best_config));
    }
    table.AddRow(std::to_string(thousands) + "k images", row_values, 0);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(gain%% over the default configuration; each of the %zu Unicorn +N%%\n"
              " campaigns warm-started its engine from the %zu-row 5k recording and\n"
              " together they spent %zu fresh target-workload measurements — zero\n"
              " fresh source-workload measurements, all replay served by the\n"
              " RecordedBackend. Expected shape: Unicorn's reused/refined optima\n"
              " beat the SMAC variants as the workload grows.)\n",
              transfer_campaigns, source_table.entries.size(), total_target_rows);
  if (!replay_accounting_ok) {
    std::printf("FAILED: replay accounting broken — a replayed source row was not\n"
                " served by the RecordedBackend (or a request failed)\n");
  }
  std::remove(table_path.c_str());
  return replay_accounting_ok;
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  bool smoke = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return unicorn::RunFigure(smoke) ? 0 : 1;
}
