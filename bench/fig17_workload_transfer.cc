// Fig. 17: workload transfer for latency optimization on TX2 (Xception).
// The near-optimum found at the 5k-image workload is reused at 10k/20k/50k
// images: Unicorn (Reuse / +10% / +20% budget) vs the same SMAC variants.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/smac.h"
#include "bench/common.h"
#include "unicorn/optimizer.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

OptimizeOptions TransferOptimizeOptions(size_t iterations) {
  OptimizeOptions options;
  options.initial_samples = 20;
  options.max_iterations = iterations;
  options.relearn_every = 15;
  options.model.fci.skeleton.alpha = 0.1;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.skeleton.max_subsets = 24;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  return options;
}

void BM_OptimizeSmallBudget(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  const PerformanceTask task = MakeSimulatedTask(model, Tx2(), ImageWorkload(10), 170);
  for (auto _ : state) {
    UnicornOptimizer optimizer(task, TransferOptimizeOptions(10));
    benchmark::DoNotOptimize(optimizer.Minimize(model->ObjectiveIndices()[0]));
  }
}
BENCHMARK(BM_OptimizeSmallBudget)->Iterations(1);

void RunFigure() {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  DataTable meta(model->variables());
  const size_t latency = *meta.IndexOf(kLatencyName);
  const size_t base_budget = 120;

  // Source: optimize at the 5k-image workload.
  const Workload source_wl = ImageWorkload(5);
  const PerformanceTask src_task_u = MakeSimulatedTask(model, Tx2(), source_wl, 171);
  UnicornOptimizer src_unicorn(src_task_u, TransferOptimizeOptions(base_budget));
  const auto src_unicorn_result = src_unicorn.Minimize(latency);

  const PerformanceTask src_task_s = MakeSimulatedTask(model, Tx2(), source_wl, 172);
  SmacOptions src_smac_options;
  src_smac_options.initial_samples = 20;
  src_smac_options.max_iterations = base_budget;
  src_smac_options.forest.num_trees = 12;
  const auto src_smac_result = SmacMinimize(src_task_s, latency, src_smac_options);

  std::printf("\n=== Fig. 17: workload transfer (5k-image optimum reused) ===\n");
  TextTable table({"workload", "Unicorn Reuse", "Unicorn +10%", "Unicorn +20%", "SMAC Reuse",
                   "SMAC +10%", "SMAC +20%"});
  for (int thousands : {10, 20, 50}) {
    const Workload wl = ImageWorkload(thousands);
    // Default config as the gain reference.
    Rng ref_rng(173);
    const auto default_row = model->Measure(model->DefaultConfig(), Tx2(), wl, &ref_rng);
    const double default_latency = default_row[latency];
    auto gain_of = [&](const std::vector<double>& config, uint64_t seed) {
      Rng rng(seed);
      const auto row = model->Measure(config, Tx2(), wl, &rng);
      return Gain(default_latency, row[latency]);
    };

    std::vector<double> row_values;
    // Unicorn variants.
    row_values.push_back(gain_of(src_unicorn_result.best_config, 174));
    for (double extra : {0.10, 0.20}) {
      const size_t budget = static_cast<size_t>(base_budget * extra);
      const PerformanceTask task =
          MakeSimulatedTask(model, Tx2(), wl, 175 + static_cast<uint64_t>(100 * extra));
      OptimizeOptions options = TransferOptimizeOptions(budget);
      options.initial_samples = 5;
      UnicornOptimizer optimizer(task, options);
      // Warm start: re-measure configs near the source optimum (the causal
      // model transfers; only the mechanism scales change).
      Rng warm_rng(176);
      std::vector<std::vector<double>> warm_configs = {src_unicorn_result.best_config};
      for (int i = 0; i < 30; ++i) {
        warm_configs.push_back(model->SampleConfig(&warm_rng));
      }
      const DataTable warm = model->MeasureMany(warm_configs, Tx2(), wl, &warm_rng);
      const auto result = optimizer.Minimize(latency, &warm);
      row_values.push_back(gain_of(result.best_config, 177));
    }
    // SMAC variants.
    row_values.push_back(gain_of(src_smac_result.best_config, 178));
    for (double extra : {0.10, 0.20}) {
      const size_t budget = static_cast<size_t>(base_budget * extra);
      const PerformanceTask task =
          MakeSimulatedTask(model, Tx2(), wl, 179 + static_cast<uint64_t>(100 * extra));
      SmacOptions options;
      options.initial_samples = 5;
      options.max_iterations = budget;
      options.forest.num_trees = 12;
      const auto result = SmacMinimize(task, latency, options, &src_smac_result.best_config);
      row_values.push_back(gain_of(result.best_config, 180));
    }
    table.AddRow(std::to_string(thousands) + "k images", row_values, 0);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(gain%% over the default configuration; expected shape: Unicorn's\n"
              " reused/refined optima beat the SMAC variants as the workload grows)\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunFigure();
  return 0;
}
