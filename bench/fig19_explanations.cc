// Fig. 19 + Fig. 20 (appendix B.1): micro-scenarios where performance
// influence models produce incorrect explanations while the causal model
// recovers the right structure.
//
// Fig. 19: Batch Size and QoS are unconditionally independent, yet stepwise
// regression can pick a Batch Size x QoS interaction term.
// Fig. 20: CPU Frequency influences Throughput *via* Cycles; the regression
// credits an interaction, the causal model finds the mediation chain.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "stats/independence.h"
#include "stats/regression.h"
#include "unicorn/model_learner.h"
#include "util/rng.h"

namespace unicorn {
namespace {

void BM_TinyScmLearning(benchmark::State& state) {
  Rng rng(19);
  std::vector<Variable> vars = {
      {"cpu_frequency", VarType::kContinuous, VarRole::kOption, {0.3, 2.0}},
      {"cycles", VarType::kContinuous, VarRole::kEvent, {}},
      {"throughput_cost", VarType::kContinuous, VarRole::kObjective, {}},
  };
  DataTable data(vars);
  for (int i = 0; i < 400; ++i) {
    const double f = rng.Uniform(0.3, 2.0);
    const double cycles = 5.0 / f + rng.Gaussian(0, 0.2);
    data.AddRow({f, cycles, 2.0 * cycles + rng.Gaussian(0, 0.2)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LearnCausalPerformanceModel(data));
  }
}
BENCHMARK(BM_TinyScmLearning)->Iterations(5);

void Fig19() {
  std::printf("\n=== Fig. 19: Batch Size vs QoS (independent) ===\n");
  Rng rng(191);
  std::vector<Variable> vars = {
      {"batch_size", VarType::kDiscrete, VarRole::kOption, {1, 5, 10, 20}},
      {"qos", VarType::kDiscrete, VarRole::kOption, {0, 1}},
      {"throughput_cost", VarType::kContinuous, VarRole::kObjective, {}},
  };
  DataTable data(vars);
  const std::vector<double> batch_levels = {1, 5, 10, 20};
  for (int i = 0; i < 800; ++i) {
    const double batch = batch_levels[rng.UniformInt(uint64_t{4})];
    const double qos = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    // Throughput cost depends on batch only; QoS is a dead knob.
    data.AddRow({batch, qos, 100.0 / batch + rng.Gaussian(0, 1.0)});
  }
  StepwiseOptions reg_options;
  reg_options.max_degree = 2;
  const InfluenceModel reg = FitStepwiseRegression(data, {0, 1}, 2, reg_options);
  bool has_interaction = false;
  for (const auto& term : reg.terms) {
    if (term.vars.size() == 2) {
      has_interaction = true;
    }
  }
  std::printf("regression terms: %zu (interaction term present: %s)\n", reg.terms.size(),
              has_interaction ? "yes - a spurious batch x qos coupling" : "no");

  const LearnedModel learned = LearnCausalPerformanceModel(data);
  std::printf("causal model: edge batch->cost: %s, edge qos->cost: %s\n",
              learned.admg.HasEdge(0, 2) ? "present" : "absent",
              learned.admg.HasEdge(1, 2) ? "present (unexpected)" : "absent (correct)");
}

void Fig20() {
  std::printf("\n=== Fig. 20: CPU Frequency -> Cycles -> Throughput mediation ===\n");
  Rng rng(201);
  std::vector<Variable> vars = {
      {"cpu_frequency", VarType::kContinuous, VarRole::kOption, {0.3, 2.0}},
      {"cycles", VarType::kContinuous, VarRole::kEvent, {}},
      {"throughput_cost", VarType::kContinuous, VarRole::kObjective, {}},
  };
  DataTable data(vars);
  for (int i = 0; i < 1000; ++i) {
    const double f = rng.Uniform(0.3, 2.0);
    const double cycles = 5.0 / f + rng.Gaussian(0, 0.35);
    data.AddRow({f, cycles, 2.0 * cycles + rng.Gaussian(0, 0.35)});
  }
  const LearnedModel learned = LearnCausalPerformanceModel(data);
  std::printf("learned edges:\n%s",
              learned.admg.ToString({"cpu_frequency", "cycles", "throughput_cost"}).c_str());
  std::printf("mediation recovered: freq->cycles %s, cycles->cost %s, direct freq->cost %s\n",
              learned.admg.IsDirected(0, 1) ? "yes" : "no",
              learned.admg.IsDirected(1, 2) ? "yes" : "no",
              learned.admg.HasEdge(0, 2) ? "present" : "absent (fully mediated — correct)");

  StepwiseOptions reg_options;
  reg_options.max_degree = 2;
  const InfluenceModel reg = FitStepwiseRegression(data, {0, 1}, 2, reg_options);
  std::printf("regression chose %zu terms:", reg.terms.size());
  for (const auto& term : reg.terms) {
    std::printf(" [%s]", term.Name(data).c_str());
  }
  std::printf("\n(an interaction term like cpu_frequency x cycles mischaracterizes the\n"
              " mediation as a joint effect)\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::Fig19();
  unicorn::Fig20();
  return 0;
}
