// Fig. 21 + Fig. 22 (appendix B.1): model stability vs training-set size.
// Performance influence models churn terms and blow up target error as the
// sample size varies; causal performance models stay stable.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "stats/correlation.h"
#include "stats/regression.h"
#include "sysmodel/systems.h"
#include "unicorn/model_learner.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

std::string TermKey(const RegressionTerm& term) {
  std::string key;
  for (size_t v : term.vars) {
    key += std::to_string(v) + ",";
  }
  return key;
}

void BM_RegressionAtScale(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 12;
  const SystemModel model = BuildSystem(SystemId::kDeepstream, spec);
  Rng rng(21);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 300; ++i) {
    configs.push_back(model.SampleConfig(&rng));
  }
  const DataTable data = model.MeasureMany(configs, Xavier(), DefaultWorkload(), &rng);
  DataTable meta(model.variables());
  StepwiseOptions options;
  options.max_terms = 15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitStepwiseRegression(data, model.OptionIndices(),
                                                   *meta.IndexOf(kLatencyName), options));
  }
}
BENCHMARK(BM_RegressionAtScale)->Iterations(1);

void RunFigure() {
  SystemSpec spec;
  spec.num_events = 12;
  const SystemModel model = BuildSystem(SystemId::kDeepstream, spec);
  DataTable meta(model.variables());
  const size_t latency = *meta.IndexOf(kLatencyName);

  // Target model from 2000 samples (the reference).
  Rng rng(211);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 2000; ++i) {
    configs.push_back(model.SampleConfig(&rng));
  }
  const DataTable full = model.MeasureMany(configs, Xavier(), DefaultWorkload(), &rng);
  StepwiseOptions reg_options;
  reg_options.max_terms = 20;
  const InfluenceModel reference =
      FitStepwiseRegression(full, model.OptionIndices(), latency, reg_options);
  std::map<std::string, bool> reference_terms;
  for (const auto& term : reference.terms) {
    reference_terms[TermKey(term)] = true;
  }

  CausalModelOptions causal_options;
  causal_options.fci.skeleton.alpha = 0.1;
  causal_options.fci.skeleton.max_cond_size = 2;
  causal_options.fci.skeleton.max_subsets = 24;
  causal_options.fci.max_pds_cond_size = 1;
  causal_options.entropic.latent.restarts = 1;
  const LearnedModel causal_reference = LearnCausalPerformanceModel(full, causal_options);
  const auto reference_parents = causal_reference.admg.Parents(latency);

  std::printf("\n=== Fig. 21/22: stability vs training-set size (Deepstream, Xavier) ===\n");
  TextTable table({"samples", "reg terms", "reg common", "reg MAPE(2k)", "causal parents",
                   "causal common", "causal MAPE(2k)"});
  for (size_t n : {50u, 100u, 500u, 1000u, 1500u}) {
    std::vector<size_t> rows;
    for (size_t r = 0; r < n; ++r) {
      rows.push_back(r);
    }
    const DataTable subset = full.SelectRows(rows);

    const InfluenceModel reg =
        FitStepwiseRegression(subset, model.OptionIndices(), latency, reg_options);
    size_t reg_common = 0;
    for (const auto& term : reg.terms) {
      reg_common += reference_terms.count(TermKey(term)) ? 1 : 0;
    }
    const double reg_mape = Mape(full.Col(latency), reg.PredictAll(full));

    const LearnedModel causal = LearnCausalPerformanceModel(subset, causal_options);
    const auto parents = causal.admg.Parents(latency);
    size_t causal_common = 0;
    for (size_t p : parents) {
      for (size_t q : reference_parents) {
        causal_common += p == q ? 1 : 0;
      }
    }
    // Functional node refit on the subset, evaluated on the full data.
    std::vector<RegressionTerm> parent_terms;
    for (size_t p : parents) {
      parent_terms.push_back({{p}});
    }
    const InfluenceModel causal_fn = FitOls(subset, parent_terms, latency);
    const double causal_mape = Mape(full.Col(latency), causal_fn.PredictAll(full));

    table.AddRow({std::to_string(n), std::to_string(reg.terms.size()),
                  std::to_string(reg_common), FormatDouble(reg_mape, 1),
                  std::to_string(parents.size()), std::to_string(causal_common),
                  FormatDouble(causal_mape, 1)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(expected shape: the causal parent set converges quickly and its\n"
              " generalization error stays flat; regression terms keep churning)\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunFigure();
  return 0;
}
