// Table 14 (appendix): heat faults on TX1 — the third objective — for the
// four single-component systems, Unicorn vs the debugging baselines.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_HeatFaultDebug(benchmark::State& state) {
  bench::DebugExperimentSpec spec;
  spec.system = SystemId::kX264;
  spec.env = Tx1();
  spec.workload = DefaultWorkload();
  spec.kind = bench::FaultKind::kHeat;
  spec.max_faults = 1;
  spec.unicorn_options = bench::BenchDebugOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::RunDebugComparison(spec));
  }
}
BENCHMARK(BM_HeatFaultDebug)->Iterations(1);

void RunTable() {
  std::printf("\n=== Table 14 (a): heat faults on TX1 ===\n");
  TextTable table({"system", "method", "accuracy", "precision", "recall", "gain%",
                   "time(s)", "samples"});
  const SystemId systems[] = {SystemId::kXception, SystemId::kBert, SystemId::kDeepspeech,
                              SystemId::kX264};
  for (SystemId id : systems) {
    bench::DebugExperimentSpec spec;
    spec.system = id;
    spec.env = Tx1();
    spec.workload = DefaultWorkload();
    spec.kind = bench::FaultKind::kHeat;
    spec.max_faults = 3;
    spec.curation_samples = 2500;
    spec.unicorn_options = bench::BenchDebugOptions();
    spec.seed = 1400 + static_cast<uint64_t>(id);
    const auto scores = bench::RunDebugComparison(spec);
    for (const auto& score : scores) {
      if (score.faults == 0) {
        continue;
      }
      table.AddRow({bench::SystemLabel(id), score.method, FormatDouble(score.accuracy, 0),
                    FormatDouble(score.precision, 0), FormatDouble(score.recall, 0),
                    FormatDouble(score.gain, 0), FormatDouble(score.seconds, 2),
                    FormatDouble(score.samples, 0)});
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(paper shape: heat gains are small in absolute terms — heat varies much\n"
              " less than latency/energy — but Unicorn still leads)\n");
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunTable();
  return 0;
}
