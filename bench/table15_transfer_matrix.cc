// Table 15 (appendix): transferring causal models across hardware platforms.
// Three scenarios: TX1->TX2 (latency), TX2->Xavier (energy),
// Xavier->TX1 (heat); each with Unicorn (Reuse) / Unicorn+25 /
// Unicorn (Rerun).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_TransferScenario(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kX264, spec));
  Rng rng(15);
  benchmark::DoNotOptimize(CurateFaults(*model, Tx2(), DefaultWorkload(), 400, &rng, 0.97));
  for (auto _ : state) {
  }
}
BENCHMARK(BM_TransferScenario)->Iterations(1);

struct TransferSpec {
  const char* label;
  Environment source;
  Environment target;
  bench::FaultKind kind;
  const char* objective_name;
};

void RunScenario(const TransferSpec& ts, TextTable* table) {
  const SystemId systems[] = {SystemId::kXception, SystemId::kBert, SystemId::kDeepspeech,
                              SystemId::kX264};
  for (SystemId id : systems) {
    SystemSpec spec;
    spec.num_events = 12;
    auto model = std::make_shared<SystemModel>(BuildSystem(id, spec));
    DataTable meta(model->variables());
    const size_t objective = *meta.IndexOf(ts.objective_name);

    // Source data for warm starts.
    Rng src_rng(150 + static_cast<uint64_t>(id));
    std::vector<std::vector<double>> src_configs;
    for (int i = 0; i < 120; ++i) {
      src_configs.push_back(model->SampleConfig(&src_rng));
    }
    const DataTable source =
        model->MeasureMany(src_configs, ts.source, DefaultWorkload(), &src_rng);

    Rng tgt_rng(160 + static_cast<uint64_t>(id));
    const FaultCuration curation =
        CurateFaults(*model, ts.target, DefaultWorkload(), 2000, &tgt_rng, 0.97);
    const auto faults = bench::SelectFaults(*model, curation, ts.kind, 2);
    if (faults.empty()) {
      continue;
    }
    const auto weights =
        TrueAceWeights(*model, objective, ts.target, DefaultWorkload(), 161, 10);

    struct Scenario {
      const char* name;
      size_t initial;
      bool warm;
    };
    const Scenario scenarios[] = {{"Reuse", 0, true}, {"+25", 25, true}, {"Rerun", 25, false}};
    for (const auto& scenario : scenarios) {
      double accuracy = 0.0;
      double recall = 0.0;
      double precision = 0.0;
      double gain = 0.0;
      for (size_t f = 0; f < faults.size(); ++f) {
        const auto& fault = faults[f];
        const PerformanceTask task =
            MakeSimulatedTask(model, ts.target, DefaultWorkload(), 170 + f);
        DebugOptions options = bench::BenchDebugOptions();
        options.initial_samples = scenario.initial;
        options.seed = 171 + f;
        UnicornDebugger debugger(task, options);
        const DebugResult result = debugger.Debug(
            fault.config, GoalsForFault(curation, fault), scenario.warm ? &source : nullptr);
        accuracy +=
            AceWeightedJaccard(result.predicted_root_causes, fault.root_causes, weights);
        precision += Precision(result.predicted_root_causes, fault.root_causes);
        recall += Recall(result.predicted_root_causes, fault.root_causes);
        const size_t obj = fault.objectives[0];
        gain += Gain(fault.measurement[obj], result.fixed_measurement[obj]);
      }
      const double n = static_cast<double>(faults.size());
      table->AddRow({ts.label, bench::SystemLabel(id), scenario.name,
                     FormatDouble(100 * accuracy / n, 0), FormatDouble(100 * recall / n, 0),
                     FormatDouble(100 * precision / n, 0), FormatDouble(gain / n, 0)});
    }
  }
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  using unicorn::bench::FaultKind;
  unicorn::TextTable table(
      {"scenario", "system", "variant", "accuracy", "recall", "precision", "gain%"});
  unicorn::RunScenario({"TX1->TX2 latency", unicorn::Tx1(), unicorn::Tx2(),
                        FaultKind::kLatency, unicorn::kLatencyName},
                       &table);
  unicorn::RunScenario({"TX2->Xavier energy", unicorn::Tx2(), unicorn::Xavier(),
                        FaultKind::kEnergy, unicorn::kEnergyName},
                       &table);
  unicorn::RunScenario({"Xavier->TX1 heat", unicorn::Xavier(), unicorn::Tx1(),
                        FaultKind::kHeat, unicorn::kHeatName},
                       &table);
  std::printf("\n=== Table 15: cross-hardware transfer matrix ===\n%s", table.Render().c_str());
  std::printf("(expected shape: +25 close to Rerun; Reuse degrades but stays useful)\n");
  return 0;
}
