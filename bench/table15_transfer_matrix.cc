// Table 15 (appendix): transferring causal models across hardware
// platforms, each cell a transfer campaign on a heterogeneous fleet. Three
// scenarios: TX1->TX2 (latency), TX2->Xavier (energy), Xavier->TX1 (heat);
// each with Unicorn (Reuse) / Unicorn+25 / Unicorn (Rerun). Per (scenario,
// system): record observational samples on a live simulated source device
// through the measurement plane, persist the table, then debug every fault
// on a fleet of the source recording (RecordedBackend) + live target
// devices — environment-aware routing guarantees zero fresh source-hardware
// measurements in every variant.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "bench/common.h"
#include "unicorn/backend/recorded_backend.h"
#include "unicorn/campaign.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_TransferScenario(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 12;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kX264, spec));
  Rng rng(15);
  benchmark::DoNotOptimize(CurateFaults(*model, Tx2(), DefaultWorkload(), 400, &rng, 0.97));
  for (auto _ : state) {
  }
}
BENCHMARK(BM_TransferScenario)->Iterations(1);

struct TransferSpec {
  const char* label;
  Environment source;
  Environment target;
  bench::FaultKind kind;
  const char* objective_name;
};

void RunScenario(const TransferSpec& ts, TextTable* table) {
  const std::string table_path = "bench_table15_source_table.csv";
  const SystemId systems[] = {SystemId::kXception, SystemId::kBert, SystemId::kDeepspeech,
                              SystemId::kX264};
  for (SystemId id : systems) {
    SystemSpec spec;
    spec.num_events = 12;
    auto model = std::make_shared<SystemModel>(BuildSystem(id, spec));
    DataTable meta(model->variables());
    const size_t objective = *meta.IndexOf(ts.objective_name);

    // Record the source hardware through the measurement plane: one live
    // simulated device of the source environment, persisted with its
    // environment as the provenance column.
    {
      const PerformanceTask src_task =
          MakeSimulatedTask(model, ts.source, DefaultWorkload(), 150 + static_cast<uint64_t>(id));
      std::vector<std::unique_ptr<MeasurementBackend>> backends;
      DeviceProfile profile;
      profile.name = std::string(ts.source.name) + "-dev";
      profile.seed = 900 + static_cast<uint64_t>(id);
      backends.push_back(MakeDeviceBackend(model, ts.source, DefaultWorkload(),
                                           150 + static_cast<uint64_t>(id), std::move(profile)));
      MeasurementBroker recorder(src_task, std::make_unique<BackendFleet>(std::move(backends)));
      Rng src_rng(150 + static_cast<uint64_t>(id));
      std::vector<std::vector<double>> src_configs;
      for (int i = 0; i < 120; ++i) {
        src_configs.push_back(model->SampleConfig(&src_rng));
      }
      recorder.MeasureBatch(src_configs,
                            std::vector<std::string>(src_configs.size(), ts.source.name));
      if (!recorder.SaveCache(table_path)) {
        std::printf("WARNING: %s/%s skipped — could not persist the source recording\n",
                    ts.label, bench::SystemLabel(id).c_str());
        continue;
      }
    }
    MeasurementTable source_table;
    if (!LoadMeasurementTable(table_path, &source_table)) {
      std::printf("WARNING: %s/%s skipped — could not load the source recording\n",
                  ts.label, bench::SystemLabel(id).c_str());
      continue;
    }

    Rng tgt_rng(160 + static_cast<uint64_t>(id));
    const FaultCuration curation =
        CurateFaults(*model, ts.target, DefaultWorkload(), 2000, &tgt_rng, 0.97);
    const auto faults = bench::SelectFaults(*model, curation, ts.kind, 2);
    if (faults.empty()) {
      continue;
    }
    const auto weights =
        TrueAceWeights(*model, objective, ts.target, DefaultWorkload(), 161, 10);

    struct Scenario {
      const char* name;
      size_t initial;
      bool transfer;
    };
    const Scenario scenarios[] = {
        {"Reuse", 0, true}, {"+25", 25, true}, {"Rerun", 25, false}};
    for (const auto& scenario : scenarios) {
      double accuracy = 0.0;
      double recall = 0.0;
      double precision = 0.0;
      double gain = 0.0;
      double src_rows = 0.0;
      double tgt_rows = 0.0;
      for (size_t f = 0; f < faults.size(); ++f) {
        const auto& fault = faults[f];
        const uint64_t task_seed = 170 + f;
        const PerformanceTask task =
            MakeSimulatedTask(model, ts.target, DefaultWorkload(), task_seed);
        DebugOptions options = bench::BenchDebugOptions();
        options.initial_samples = scenario.initial;
        options.seed = 171 + f;
        options.environment = ts.target.name;

        // Heterogeneous fleet: source recording + two live target devices.
        std::vector<std::unique_ptr<MeasurementBackend>> backends;
        backends.push_back(std::make_unique<RecordedBackend>(
            source_table, std::string(ts.source.name) + "-recorded"));
        for (int b = 0; b < 2; ++b) {
          DeviceProfile profile;
          profile.name = std::string(ts.target.name) + "-" + std::to_string(b);
          profile.seed = 950 + static_cast<uint64_t>(b);
          backends.push_back(MakeDeviceBackend(model, ts.target, DefaultWorkload(), task_seed,
                                               std::move(profile)));
        }

        CampaignRunner runner(task, ToCampaignOptions(options),
                              std::make_unique<BackendFleet>(std::move(backends)));
        DebugPolicy inner(options, fault.config, GoalsForFault(curation, fault));
        if (scenario.transfer) {
          TransferOptions transfer_options;
          transfer_options.source_environment = ts.source.name;
          transfer_options.target_environment = ts.target.name;
          TransferPolicy transfer(transfer_options, source_table, &inner);
          runner.Run({&transfer});
        } else {
          runner.Run({&inner});
        }
        const DebugResult& result = inner.result();
        accuracy +=
            AceWeightedJaccard(result.predicted_root_causes, fault.root_causes, weights);
        precision += Precision(result.predicted_root_causes, fault.root_causes);
        recall += Recall(result.predicted_root_causes, fault.root_causes);
        const size_t obj = fault.objectives[0];
        gain += Gain(fault.measurement[obj], result.fixed_measurement[obj]);
        src_rows += static_cast<double>(result.source_rows);
        tgt_rows += static_cast<double>(result.target_rows);
      }
      const double n = static_cast<double>(faults.size());
      table->AddRow({ts.label, bench::SystemLabel(id), scenario.name,
                     FormatDouble(100 * accuracy / n, 0), FormatDouble(100 * recall / n, 0),
                     FormatDouble(100 * precision / n, 0), FormatDouble(gain / n, 0),
                     FormatDouble(src_rows / n, 0), FormatDouble(tgt_rows / n, 0)});
    }
  }
  std::remove(table_path.c_str());
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  using unicorn::bench::FaultKind;
  unicorn::TextTable table({"scenario", "system", "variant", "accuracy", "recall", "precision",
                            "gain%", "src rows", "tgt rows"});
  unicorn::RunScenario({"TX1->TX2 latency", unicorn::Tx1(), unicorn::Tx2(),
                        FaultKind::kLatency, unicorn::kLatencyName},
                       &table);
  unicorn::RunScenario({"TX2->Xavier energy", unicorn::Tx2(), unicorn::Xavier(),
                        FaultKind::kEnergy, unicorn::kEnergyName},
                       &table);
  unicorn::RunScenario({"Xavier->TX1 heat", unicorn::Xavier(), unicorn::Tx1(),
                        FaultKind::kHeat, unicorn::kHeatName},
                       &table);
  std::printf("\n=== Table 15: cross-hardware transfer matrix (fleet campaigns) ===\n%s",
              table.Render().c_str());
  std::printf("(every cell ran on a fleet of {source recording, 2 live target devices};\n"
              " src/tgt rows = engine provenance split. Expected shape: +25 close to\n"
              " Rerun; Reuse degrades but stays useful)\n");
  return 0;
}
