// Table 2 (a): single-objective performance-fault debugging.
// Latency faults on TX2 and energy faults on Xavier for five systems,
// Unicorn vs CBI / DD / EnCore / BugDoc: accuracy, precision, recall, gain,
// and wallclock time.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_UnicornDebugOneFault(benchmark::State& state) {
  bench::DebugExperimentSpec spec;
  spec.system = SystemId::kX264;
  spec.env = Tx2();
  spec.workload = DefaultWorkload();
  spec.kind = bench::FaultKind::kLatency;
  spec.max_faults = 1;
  spec.unicorn_options = bench::BenchDebugOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::RunDebugComparison(spec));
  }
}
BENCHMARK(BM_UnicornDebugOneFault)->Iterations(1);

void RunBlock(const char* title, const Environment& env, bench::FaultKind kind) {
  std::printf("\n=== Table 2a: %s ===\n", title);
  TextTable table({"system", "method", "accuracy", "precision", "recall", "gain%",
                   "time(s)", "samples"});
  const SystemId systems[] = {SystemId::kDeepstream, SystemId::kXception, SystemId::kBert,
                              SystemId::kDeepspeech, SystemId::kX264};
  for (SystemId id : systems) {
    bench::DebugExperimentSpec spec;
    spec.system = id;
    spec.env = env;
    spec.workload = DefaultWorkload();
    spec.kind = kind;
    spec.max_faults = 3;
    spec.unicorn_options = bench::BenchDebugOptions();
    spec.seed = 2200 + static_cast<uint64_t>(id);
    const auto scores = bench::RunDebugComparison(spec);
    for (const auto& score : scores) {
      table.AddRow({bench::SystemLabel(id), score.method, FormatDouble(score.accuracy, 0),
                    FormatDouble(score.precision, 0), FormatDouble(score.recall, 0),
                    FormatDouble(score.gain, 0), FormatDouble(score.seconds, 2),
                    FormatDouble(score.samples, 0)});
    }
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunBlock("latency faults on TX2", unicorn::Tx2(), unicorn::bench::FaultKind::kLatency);
  unicorn::RunBlock("energy faults on Xavier", unicorn::Xavier(),
                    unicorn::bench::FaultKind::kEnergy);
  std::printf("\n(expected shape: Unicorn leads accuracy/precision/recall and gain\n"
              " while using far fewer measurements than the 4-hour-budget baselines)\n");
  return 0;
}
