// Table 2 (b): multi-objective (energy + latency) non-functional faults on
// Xavier, Unicorn vs CBI / EnCore / BugDoc.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

void BM_MultiObjectiveDebug(benchmark::State& state) {
  bench::DebugExperimentSpec spec;
  spec.system = SystemId::kXception;
  spec.env = Xavier();
  spec.workload = DefaultWorkload();
  spec.kind = bench::FaultKind::kMulti;
  spec.max_faults = 1;
  spec.unicorn_options = bench::BenchDebugOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::RunDebugComparison(spec));
  }
}
BENCHMARK(BM_MultiObjectiveDebug)->Iterations(1);

void RunTable() {
  std::printf("\n=== Table 2b: multi-objective faults (energy + latency) on Xavier ===\n");
  TextTable table({"system", "method", "accuracy", "precision", "recall", "gain%",
                   "time(s)", "samples"});
  const SystemId systems[] = {SystemId::kXception, SystemId::kBert, SystemId::kDeepspeech,
                              SystemId::kX264};
  for (SystemId id : systems) {
    bench::DebugExperimentSpec spec;
    spec.system = id;
    spec.env = Xavier();
    spec.workload = DefaultWorkload();
    spec.kind = bench::FaultKind::kMulti;
    spec.max_faults = 3;
    spec.curation_samples = 3000;
    spec.unicorn_options = bench::BenchDebugOptions();
    spec.seed = 2300 + static_cast<uint64_t>(id);
    const auto scores = bench::RunDebugComparison(spec);
    for (const auto& score : scores) {
      if (score.method == "DD") {
        continue;  // the paper's Table 2b omits DD for multi-objective faults
      }
      table.AddRow({bench::SystemLabel(id), score.method, FormatDouble(score.accuracy, 0),
                    FormatDouble(score.precision, 0), FormatDouble(score.recall, 0),
                    FormatDouble(score.gain, 0), FormatDouble(score.seconds, 2),
                    FormatDouble(score.samples, 0)});
    }
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunTable();
  return 0;
}
