// Table 3: scalability. SQLite with 34 vs 242 options (and 288 events),
// Deepstream with 53 options and 19 vs 288 events. Reports causal paths,
// evaluated queries, average node degree, discovery and query-evaluation
// times, and the gain of the resulting fix.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/common.h"
#include "causal/effects.h"
#include "obs/cli.h"
#include "obs/stats_export.h"
#include "unicorn/measurement_broker.h"
#include "unicorn/model_learner.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

using Clock = std::chrono::steady_clock;

struct ScalabilityRow {
  std::string label;
  size_t options = 0;
  size_t events = 0;
  size_t paths = 0;
  size_t queries = 0;
  double degree = 0.0;
  double gain = 0.0;
  double discovery_s = 0.0;
  double query_eval_s = 0.0;
  double total_s = 0.0;
};

ScalabilityRow RunScenario(const std::string& label, SystemId id, const SystemSpec& spec,
                           uint64_t seed) {
  auto model = std::make_shared<SystemModel>(BuildSystem(id, spec));
  ScalabilityRow row;
  row.label = label;
  row.options = model->OptionIndices().size();
  row.events = model->EventIndices().size();

  const auto total_start = Clock::now();
  Rng rng(seed);
  const FaultCuration curation =
      CurateFaults(*model, Xavier(), DefaultWorkload(), 600, &rng, 0.97);
  const auto faults = bench::SelectFaults(*model, curation, bench::FaultKind::kLatency, 1);

  // Discovery: learn the causal performance model on the curated data
  // (capped at 200 rows — the loop never sees more than this in practice).
  std::vector<size_t> rows_idx;
  for (size_t r = 0; r < std::min<size_t>(200, curation.samples.NumRows()); ++r) {
    rows_idx.push_back(r);
  }
  const DataTable data = curation.samples.SelectRows(rows_idx);
  CausalModelOptions model_options;
  model_options.fci.skeleton.alpha = 0.1;
  model_options.fci.skeleton.max_cond_size = 1;
  model_options.fci.skeleton.max_subsets = 8;
  model_options.fci.max_pds_cond_size = 1;
  model_options.fci.use_possible_dsep = row.options < 100;  // cap the n^2 stage
  model_options.entropic.latent.restarts = 1;
  model_options.entropic.latent.iterations = 20;
  const auto discovery_start = Clock::now();
  const LearnedModel learned = LearnCausalPerformanceModel(data, model_options);
  row.discovery_s = std::chrono::duration<double>(Clock::now() - discovery_start).count();
  row.degree = learned.admg.AverageDegree();

  // Query evaluation: rank paths and score the interventional queries a
  // debugging round would issue (one ACE per edge on each extracted path).
  const CausalEffectEstimator estimator(learned.admg, data);
  const auto query_start = Clock::now();
  const auto paths = estimator.RankPaths(curation.objective_vars, 10000);
  row.paths = paths.size();
  for (const auto& ranked : paths) {
    row.queries += ranked.nodes.size() - 1;  // one do-query per edge
  }
  row.query_eval_s = std::chrono::duration<double>(Clock::now() - query_start).count();

  // One debugging run for the gain column.
  if (!faults.empty()) {
    const PerformanceTask task = MakeSimulatedTask(model, Xavier(), DefaultWorkload(), seed + 1);
    DebugOptions debug_options = bench::BenchDebugOptions();
    debug_options.max_iterations = 15;
    debug_options.model = model_options;
    UnicornDebugger debugger(task, debug_options);
    const DebugResult result = debugger.Debug(faults[0].config,
                                              GoalsForFault(curation, faults[0]));
    const size_t obj = faults[0].objectives[0];
    row.gain = Gain(faults[0].measurement[obj], result.fixed_measurement[obj]);
  }
  row.total_s = std::chrono::duration<double>(Clock::now() - total_start).count();
  return row;
}

void BM_Discovery242Options(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 19;
  spec.extended_options = true;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kSqlite, spec));
  Rng rng(31);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 100; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable data = model->MeasureMany(configs, Xavier(), DefaultWorkload(), &rng);
  CausalModelOptions options;
  options.fci.skeleton.max_cond_size = 1;
  options.fci.skeleton.max_subsets = 8;
  options.fci.use_possible_dsep = false;
  options.entropic.latent.restarts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LearnCausalPerformanceModel(data, options));
  }
}
BENCHMARK(BM_Discovery242Options)->Iterations(1);

// Incremental engine vs. from-scratch relearning: a 40-iteration
// UnicornDebugger::Debug run on the largest seeded system model (SQLite with
// 242 options and 288 events), once with the stateful engine (warm starts +
// CI cache + threaded sweep) and once with every iteration relearning from
// scratch (the seed's behavior: no cache, no warm start, serial sweep).
// Goals are set near the distribution's floor so neither run terminates
// early and both execute exactly max_iterations model refreshes.
// Smoke mode (CI) shrinks the system and the budget so the binary proves it
// still runs end-to-end in seconds. `json` (optional) additionally records
// the headline numbers machine-readably.
void RunIncrementalComparison(bool smoke, bench::JsonResults* json = nullptr) {
  SystemSpec spec;
  spec.num_events = smoke ? 19 : 288;
  spec.extended_options = true;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kSqlite, spec));
  std::printf("\n=== Incremental engine vs from-scratch (SQLite %zu opts / %zu events) ===\n",
              model->OptionIndices().size(), model->EventIndices().size());

  Rng rng(700);
  const FaultCuration curation =
      CurateFaults(*model, Xavier(), DefaultWorkload(), smoke ? 300 : 600, &rng, 0.97);
  const auto faults = bench::SelectFaults(*model, curation, bench::FaultKind::kLatency, 1);
  if (faults.empty()) {
    std::printf("(no curated latency fault; skipping)\n");
    return;
  }
  // Near-unreachable goals keep the loop running for the full budget.
  const auto goals = GoalsForFault(curation, faults[0], 0.02);

  DebugOptions base = bench::BenchDebugOptions();
  base.max_iterations = smoke ? 8 : 40;
  base.stall_termination = 1000;
  base.model.fci.skeleton.alpha = 0.1;
  base.model.fci.skeleton.max_cond_size = 1;
  base.model.fci.skeleton.max_subsets = 8;
  base.model.fci.max_pds_cond_size = 1;
  base.model.fci.use_possible_dsep = false;  // cap the n^2 stage at this size
  base.model.entropic.latent.restarts = 1;
  base.model.entropic.latent.iterations = 20;

  struct LoopCost {
    double seconds = 0.0;
    double per_refresh = 0.0;
  };
  auto run = [&](const char* label, const DebugOptions& options, uint64_t seed) {
    const PerformanceTask task = MakeSimulatedTask(model, Xavier(), DefaultWorkload(), seed);
    UnicornDebugger debugger(task, options);
    const auto start = Clock::now();
    DebugResult result = debugger.Debug(faults[0].config, goals);
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    const EngineStats& stats = result.engine_stats;
    std::printf("%-14s %6.2fs end-to-end | engine %s\n", label, seconds,
                obs::DumpStatsJson(stats).c_str());
    std::printf("  per-iteration CI tests:");
    for (size_t i = 0; i < result.tests_per_iteration.size(); ++i) {
      std::printf(" %lld", result.tests_per_iteration[i]);
    }
    std::printf("\n");
    LoopCost cost;
    cost.seconds = seconds;
    cost.per_refresh =
        stats.refreshes > 0 ? stats.total_seconds / static_cast<double>(stats.refreshes) : 0.0;
    return cost;
  };

  DebugOptions scratch = base;
  scratch.engine = EngineOptions{};  // exact relearn every iteration
  scratch.engine.use_ci_cache = false;
  scratch.engine.num_threads = 1;

  DebugOptions incremental = base;
  incremental.engine.stale_epsilon = 0.05;
  incremental.engine.full_refresh_every = 8;
  incremental.engine.num_threads = 4;
  incremental.engine.use_ci_cache = true;

  const LoopCost t_scratch = run("from-scratch", scratch, 900);
  // Serial incremental too: the speedup comes from warm starts + caching,
  // not from threads (which only help further on multicore hosts).
  DebugOptions incremental_serial = incremental;
  incremental_serial.engine.num_threads = 1;
  const LoopCost t_serial = run("incr-serial", incremental_serial, 900);
  const LoopCost t_incremental = run("incremental", incremental, 900);
  std::printf("end-to-end speedup: %.2fx (acceptance target: >= 2x); "
              "per-refresh discovery: %.3fs -> %.3fs (%.2fx)\n",
              t_incremental.seconds > 0.0 ? t_scratch.seconds / t_incremental.seconds : 0.0,
              t_scratch.per_refresh, t_incremental.per_refresh,
              t_incremental.per_refresh > 0.0 ? t_scratch.per_refresh / t_incremental.per_refresh
                                              : 0.0);
  if (json != nullptr) {
    json->Add("incremental_engine", "scratch_seconds", t_scratch.seconds);
    json->Add("incremental_engine", "scratch_per_refresh_seconds", t_scratch.per_refresh);
    json->Add("incremental_engine", "incr_serial_seconds", t_serial.seconds);
    json->Add("incremental_engine", "incremental_seconds", t_incremental.seconds);
    json->Add("incremental_engine", "incremental_per_refresh_seconds",
              t_incremental.per_refresh);
    json->Add("incremental_engine", "end_to_end_speedup",
              t_incremental.seconds > 0.0 ? t_scratch.seconds / t_incremental.seconds : 0.0);
  }
}

// The measurement plane: batched measurement (threads=4) vs serial
// (threads=1), on the same SQLite system the incremental study uses.
// Two views:
//   (a) raw batch throughput — the same configurations (with duplicates)
//       through a serial broker and a 4-thread broker, rows checked
//       bit-identical;
//   (b) a full debugging loop whose bootstrap/repair batches fan out over
//       the broker — final models checked bit-identical, measurement-phase
//       wall time and the broker's dedup cache-hit rate reported.
void RunMeasurementPlaneComparison(bool smoke, bench::JsonResults* json = nullptr) {
  SystemSpec spec;
  spec.num_events = smoke ? 19 : 288;
  spec.extended_options = true;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kSqlite, spec));
  std::printf("\n=== Measurement plane: batched vs serial (SQLite %zu opts / %zu events) ===\n",
              model->OptionIndices().size(), model->EventIndices().size());

  // (a) Raw batch throughput.
  const PerformanceTask task = MakeSimulatedTask(model, Xavier(), DefaultWorkload(), 910);
  const size_t batch_size = smoke ? 64 : 256;
  Rng rng(911);
  std::vector<std::vector<double>> configs;
  configs.reserve(batch_size + batch_size / 4);
  for (size_t i = 0; i < batch_size; ++i) {
    configs.push_back(task.sample_config(&rng));
  }
  for (size_t i = 0; i < batch_size / 4; ++i) {
    configs.push_back(configs[i]);  // repeat configs exercise the dedup cache
  }

  struct BatchRun {
    double seconds = 0.0;
    double cache_hit_rate = 0.0;
    std::vector<std::vector<double>> rows;
  };
  auto time_batch = [&](int threads, bool dedup) {
    BrokerOptions options;
    options.num_threads = threads;
    options.dedup_cache = dedup;
    MeasurementBroker broker(task, options);
    BatchRun run;
    const auto start = Clock::now();
    run.rows = broker.MeasureBatch(configs);
    run.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    run.cache_hit_rate = broker.stats().CacheHitRate();
    return run;
  };
  // Naive serial = the pre-broker behavior: every request measured, one at
  // a time. The broker wins twice: dedup (fewer measurements — visible on
  // any host) and thread fan-out (visible with more than one core).
  const BatchRun naive = time_batch(1, false);
  const BatchRun serial_batch = time_batch(1, true);
  const BatchRun parallel_batch = time_batch(4, true);
  std::printf("batch of %zu (%zu unique, broker cache-hit %.0f%%), on %u visible core(s):\n",
              configs.size(), batch_size, 100.0 * parallel_batch.cache_hit_rate,
              std::thread::hardware_concurrency());
  std::printf("  naive serial (no dedup) %.3fs | broker serial %.3fs (%.2fx) | "
              "broker threads=4 %.3fs (%.2fx vs naive, %.2fx vs broker serial)\n",
              naive.seconds, serial_batch.seconds,
              serial_batch.seconds > 0.0 ? naive.seconds / serial_batch.seconds : 0.0,
              parallel_batch.seconds,
              parallel_batch.seconds > 0.0 ? naive.seconds / parallel_batch.seconds : 0.0,
              parallel_batch.seconds > 0.0 ? serial_batch.seconds / parallel_batch.seconds : 0.0);
  const bool batch_identical =
      naive.rows == serial_batch.rows && serial_batch.rows == parallel_batch.rows;
  std::printf("  rows bit-identical across all three: %s\n",
              batch_identical ? "yes" : "NO (bug)");
  if (json != nullptr) {
    json->Add("measurement_batch", "naive_serial_seconds", naive.seconds);
    json->Add("measurement_batch", "broker_serial_seconds", serial_batch.seconds);
    json->Add("measurement_batch", "broker_threads4_seconds", parallel_batch.seconds);
    json->Add("measurement_batch", "cache_hit_rate", parallel_batch.cache_hit_rate);
    json->Add("measurement_batch", "rows_bit_identical", batch_identical ? 1.0 : 0.0);
  }
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf("  (single-core host: thread fan-out cannot improve wall clock here; the\n"
                "   dedup saving and the bit-identity guarantee are what's measurable)\n");
  }

  // (b) Debugging loop on the measurement plane.
  Rng curation_rng(912);
  const FaultCuration curation =
      CurateFaults(*model, Xavier(), DefaultWorkload(), smoke ? 300 : 600, &curation_rng, 0.97);
  const auto faults = bench::SelectFaults(*model, curation, bench::FaultKind::kLatency, 1);
  if (faults.empty()) {
    std::printf("(no curated latency fault; skipping the loop comparison)\n");
    return;
  }
  const auto goals = GoalsForFault(curation, faults[0], 0.02);
  DebugOptions base = bench::BenchDebugOptions();
  base.max_iterations = smoke ? 6 : 20;
  base.stall_termination = 1000;
  base.repairs_per_iteration = 4;  // four-repair batches per refresh
  base.model.fci.skeleton.max_cond_size = 1;
  base.model.fci.skeleton.max_subsets = 8;
  base.model.fci.max_pds_cond_size = 1;
  base.model.fci.use_possible_dsep = false;
  base.model.entropic.latent.restarts = 1;
  base.model.entropic.latent.iterations = 20;

  auto run_debug = [&](const char* label, int broker_threads) {
    const PerformanceTask debug_task =
        MakeSimulatedTask(model, Xavier(), DefaultWorkload(), 913);
    DebugOptions options = base;
    options.broker.num_threads = broker_threads;
    UnicornDebugger debugger(debug_task, options);
    const auto start = Clock::now();
    DebugResult result = debugger.Debug(faults[0].config, goals);
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    // One schema for the whole ledger (obs::Fields) instead of a hand-picked
    // printf subset — the same fields the bench JSON gets via AddStats.
    std::printf("%-18s %6.2fs end-to-end | broker %s\n", label, seconds,
                obs::DumpStatsJson(result.broker_stats).c_str());
    return result;
  };
  const DebugResult serial = run_debug("serial-measure", 1);
  const DebugResult batched = run_debug("batched-measure", 4);
  const bool identical = serial.final_graph == batched.final_graph &&
                         serial.fixed_config == batched.fixed_config &&
                         serial.objective_trajectory == batched.objective_trajectory &&
                         serial.measurements_used == batched.measurements_used;
  std::printf("measurement-phase speedup: %.2fx (threads=4 vs threads=1, scales with\n"
              "  available cores — single-core hosts bound this at ~1x); "
              "final models bit-identical: %s\n",
              batched.broker_stats.batch_wall_seconds > 0.0
                  ? serial.broker_stats.batch_wall_seconds /
                        batched.broker_stats.batch_wall_seconds
                  : 0.0,
              identical ? "yes" : "NO (bug)");
  if (json != nullptr) {
    json->Add("measurement_loop", "serial_measuring_wall_seconds",
              serial.broker_stats.batch_wall_seconds);
    json->Add("measurement_loop", "batched_measuring_wall_seconds",
              batched.broker_stats.batch_wall_seconds);
    json->Add("measurement_loop", "broker_cache_hit_rate",
              batched.broker_stats.CacheHitRate());
    json->Add("measurement_loop", "models_bit_identical", identical ? 1.0 : 0.0);
    json->AddStats("measurement_loop_serial_broker", serial.broker_stats);
    json->AddStats("measurement_loop_batched_broker", batched.broker_stats);
  }
}

void RunTable(bool smoke, bench::JsonResults* json = nullptr) {
  TextTable table({"scenario", "options", "events", "paths", "queries", "avg degree",
                   "gain%", "discovery(s)", "query eval(s)", "total(s)"});
  auto add = [&](const ScalabilityRow& row) {
    table.AddRow({row.label, std::to_string(row.options), std::to_string(row.events),
                  std::to_string(row.paths), std::to_string(row.queries),
                  FormatDouble(row.degree, 1), FormatDouble(row.gain, 0),
                  FormatDouble(row.discovery_s, 2), FormatDouble(row.query_eval_s, 2),
                  FormatDouble(row.total_s, 2)});
  };
  {
    SystemSpec spec;
    spec.num_events = 19;
    add(RunScenario("SQLite 34 opts / 19 events", SystemId::kSqlite, spec, 300));
  }
  {
    SystemSpec spec;
    spec.num_events = 19;
    spec.extended_options = true;
    add(RunScenario("SQLite 242 opts / 19 events", SystemId::kSqlite, spec, 301));
  }
  {
    SystemSpec spec;
    spec.num_events = 288;
    spec.extended_options = true;
    add(RunScenario("SQLite 242 opts / 288 events", SystemId::kSqlite, spec, 302));
  }
  {
    SystemSpec spec;
    spec.num_events = 19;
    add(RunScenario("Deepstream 53 opts / 19 events", SystemId::kDeepstream, spec, 303));
  }
  {
    SystemSpec spec;
    spec.num_events = 288;
    add(RunScenario("Deepstream 53 opts / 288 events", SystemId::kDeepstream, spec, 304));
  }
  std::printf("\n=== Table 3: scalability ===\n%s", table.Render().c_str());
  std::printf("(expected shape: runtime grows polynomially, not exponentially, with\n"
              " options/events, because the learned graphs stay sparse — low degree)\n");
  RunIncrementalComparison(smoke, json);
  RunMeasurementPlaneComparison(smoke, json);
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  bool incremental_only = false;
  bool smoke = false;
  std::string json_path;
  unicorn::obs::Cli obs_cli;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--incremental-only") {
      incremental_only = true;
    } else if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::string(argv[i]) == "--trace" && i + 1 < argc) {
      obs_cli.trace_path = argv[++i];
    } else if (std::string(argv[i]) == "--metrics" && i + 1 < argc) {
      obs_cli.metrics_path = argv[++i];
    } else {
      argv[kept++] = argv[i];  // leave only benchmark-library flags in argv
    }
  }
  argc = kept;
  unicorn::bench::JsonResults json;
  unicorn::bench::JsonResults* json_ptr = json_path.empty() ? nullptr : &json;
  obs_cli.Begin();
  if (incremental_only) {
    // The two engine studies without the full Table 3 sweep (CI smoke mode
    // shrinks them further so perf binaries can't silently rot).
    unicorn::RunIncrementalComparison(smoke, json_ptr);
    unicorn::RunMeasurementPlaneComparison(smoke, json_ptr);
    if (int rc = obs_cli.End(); rc != 0) {
      return rc;
    }
    if (json_ptr != nullptr && !json.WriteFile(json_path, "table3_scalability")) {
      return 1;
    }
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunTable(smoke, json_ptr);
  if (int rc = obs_cli.End(); rc != 0) {
    return rc;
  }
  if (json_ptr != nullptr && !json.WriteFile(json_path, "table3_scalability")) {
    return 1;
  }
  return 0;
}
