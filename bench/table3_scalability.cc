// Table 3: scalability. SQLite with 34 vs 242 options (and 288 events),
// Deepstream with 53 options and 19 vs 288 events. Reports causal paths,
// evaluated queries, average node degree, discovery and query-evaluation
// times, and the gain of the resulting fix.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "causal/effects.h"
#include "unicorn/model_learner.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

using Clock = std::chrono::steady_clock;

struct ScalabilityRow {
  std::string label;
  size_t options = 0;
  size_t events = 0;
  size_t paths = 0;
  size_t queries = 0;
  double degree = 0.0;
  double gain = 0.0;
  double discovery_s = 0.0;
  double query_eval_s = 0.0;
  double total_s = 0.0;
};

ScalabilityRow RunScenario(const std::string& label, SystemId id, const SystemSpec& spec,
                           uint64_t seed) {
  auto model = std::make_shared<SystemModel>(BuildSystem(id, spec));
  ScalabilityRow row;
  row.label = label;
  row.options = model->OptionIndices().size();
  row.events = model->EventIndices().size();

  const auto total_start = Clock::now();
  Rng rng(seed);
  const FaultCuration curation =
      CurateFaults(*model, Xavier(), DefaultWorkload(), 600, &rng, 0.97);
  const auto faults = bench::SelectFaults(*model, curation, bench::FaultKind::kLatency, 1);

  // Discovery: learn the causal performance model on the curated data
  // (capped at 200 rows — the loop never sees more than this in practice).
  std::vector<size_t> rows_idx;
  for (size_t r = 0; r < std::min<size_t>(200, curation.samples.NumRows()); ++r) {
    rows_idx.push_back(r);
  }
  const DataTable data = curation.samples.SelectRows(rows_idx);
  CausalModelOptions model_options;
  model_options.fci.skeleton.alpha = 0.1;
  model_options.fci.skeleton.max_cond_size = 1;
  model_options.fci.skeleton.max_subsets = 8;
  model_options.fci.max_pds_cond_size = 1;
  model_options.fci.use_possible_dsep = row.options < 100;  // cap the n^2 stage
  model_options.entropic.latent.restarts = 1;
  model_options.entropic.latent.iterations = 20;
  const auto discovery_start = Clock::now();
  const LearnedModel learned = LearnCausalPerformanceModel(data, model_options);
  row.discovery_s = std::chrono::duration<double>(Clock::now() - discovery_start).count();
  row.degree = learned.admg.AverageDegree();

  // Query evaluation: rank paths and score the interventional queries a
  // debugging round would issue (one ACE per edge on each extracted path).
  const CausalEffectEstimator estimator(learned.admg, data);
  const auto query_start = Clock::now();
  const auto paths = estimator.RankPaths(curation.objective_vars, 10000);
  row.paths = paths.size();
  for (const auto& ranked : paths) {
    row.queries += ranked.nodes.size() - 1;  // one do-query per edge
  }
  row.query_eval_s = std::chrono::duration<double>(Clock::now() - query_start).count();

  // One debugging run for the gain column.
  if (!faults.empty()) {
    const PerformanceTask task = MakeSimulatedTask(model, Xavier(), DefaultWorkload(), seed + 1);
    DebugOptions debug_options = bench::BenchDebugOptions();
    debug_options.max_iterations = 15;
    debug_options.model = model_options;
    UnicornDebugger debugger(task, debug_options);
    const DebugResult result = debugger.Debug(faults[0].config,
                                              GoalsForFault(curation, faults[0]));
    const size_t obj = faults[0].objectives[0];
    row.gain = Gain(faults[0].measurement[obj], result.fixed_measurement[obj]);
  }
  row.total_s = std::chrono::duration<double>(Clock::now() - total_start).count();
  return row;
}

void BM_Discovery242Options(benchmark::State& state) {
  SystemSpec spec;
  spec.num_events = 19;
  spec.extended_options = true;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kSqlite, spec));
  Rng rng(31);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 100; ++i) {
    configs.push_back(model->SampleConfig(&rng));
  }
  const DataTable data = model->MeasureMany(configs, Xavier(), DefaultWorkload(), &rng);
  CausalModelOptions options;
  options.fci.skeleton.max_cond_size = 1;
  options.fci.skeleton.max_subsets = 8;
  options.fci.use_possible_dsep = false;
  options.entropic.latent.restarts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LearnCausalPerformanceModel(data, options));
  }
}
BENCHMARK(BM_Discovery242Options)->Iterations(1);

// Incremental engine vs. from-scratch relearning: a 40-iteration
// UnicornDebugger::Debug run on the largest seeded system model (SQLite with
// 242 options and 288 events), once with the stateful engine (warm starts +
// CI cache + threaded sweep) and once with every iteration relearning from
// scratch (the seed's behavior: no cache, no warm start, serial sweep).
// Goals are set near the distribution's floor so neither run terminates
// early and both execute exactly max_iterations model refreshes.
void RunIncrementalComparison() {
  SystemSpec spec;
  spec.num_events = 288;
  spec.extended_options = true;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kSqlite, spec));
  std::printf("\n=== Incremental engine vs from-scratch (SQLite %zu opts / %zu events) ===\n",
              model->OptionIndices().size(), model->EventIndices().size());

  Rng rng(700);
  const FaultCuration curation =
      CurateFaults(*model, Xavier(), DefaultWorkload(), 600, &rng, 0.97);
  const auto faults = bench::SelectFaults(*model, curation, bench::FaultKind::kLatency, 1);
  if (faults.empty()) {
    std::printf("(no curated latency fault; skipping)\n");
    return;
  }
  // Near-unreachable goals keep the loop running for all 40 iterations.
  const auto goals = GoalsForFault(curation, faults[0], 0.02);

  DebugOptions base = bench::BenchDebugOptions();
  base.max_iterations = 40;
  base.stall_termination = 1000;
  base.model.fci.skeleton.alpha = 0.1;
  base.model.fci.skeleton.max_cond_size = 1;
  base.model.fci.skeleton.max_subsets = 8;
  base.model.fci.max_pds_cond_size = 1;
  base.model.fci.use_possible_dsep = false;  // cap the n^2 stage at this size
  base.model.entropic.latent.restarts = 1;
  base.model.entropic.latent.iterations = 20;

  struct LoopCost {
    double seconds = 0.0;
    double per_refresh = 0.0;
  };
  auto run = [&](const char* label, const DebugOptions& options, uint64_t seed) {
    const PerformanceTask task = MakeSimulatedTask(model, Xavier(), DefaultWorkload(), seed);
    UnicornDebugger debugger(task, options);
    const auto start = Clock::now();
    DebugResult result = debugger.Debug(faults[0].config, goals);
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    const EngineStats& stats = result.engine_stats;
    std::printf("%-14s %6.2fs end-to-end | %5.2fs discovery | %zu refreshes | "
                "%lld CI tests requested | %lld evaluated | cache-hit %4.1f%%\n",
                label, seconds, stats.total_seconds, stats.refreshes,
                stats.total_tests_requested, stats.total_tests_evaluated,
                100.0 * stats.CacheHitRate());
    std::printf("  per-iteration CI tests:");
    for (size_t i = 0; i < result.tests_per_iteration.size(); ++i) {
      std::printf(" %lld", result.tests_per_iteration[i]);
    }
    std::printf("\n");
    LoopCost cost;
    cost.seconds = seconds;
    cost.per_refresh =
        stats.refreshes > 0 ? stats.total_seconds / static_cast<double>(stats.refreshes) : 0.0;
    return cost;
  };

  DebugOptions scratch = base;
  scratch.engine = EngineOptions{};  // exact relearn every iteration
  scratch.engine.use_ci_cache = false;
  scratch.engine.num_threads = 1;

  DebugOptions incremental = base;
  incremental.engine.stale_epsilon = 0.05;
  incremental.engine.full_refresh_every = 8;
  incremental.engine.num_threads = 4;
  incremental.engine.use_ci_cache = true;

  const LoopCost t_scratch = run("from-scratch", scratch, 900);
  // Serial incremental too: the speedup comes from warm starts + caching,
  // not from threads (which only help further on multicore hosts).
  DebugOptions incremental_serial = incremental;
  incremental_serial.engine.num_threads = 1;
  run("incr-serial", incremental_serial, 900);
  const LoopCost t_incremental = run("incremental", incremental, 900);
  std::printf("end-to-end speedup: %.2fx (acceptance target: >= 2x); "
              "per-refresh discovery: %.3fs -> %.3fs (%.2fx)\n",
              t_incremental.seconds > 0.0 ? t_scratch.seconds / t_incremental.seconds : 0.0,
              t_scratch.per_refresh, t_incremental.per_refresh,
              t_incremental.per_refresh > 0.0 ? t_scratch.per_refresh / t_incremental.per_refresh
                                              : 0.0);
}

void RunTable() {
  TextTable table({"scenario", "options", "events", "paths", "queries", "avg degree",
                   "gain%", "discovery(s)", "query eval(s)", "total(s)"});
  auto add = [&](const ScalabilityRow& row) {
    table.AddRow({row.label, std::to_string(row.options), std::to_string(row.events),
                  std::to_string(row.paths), std::to_string(row.queries),
                  FormatDouble(row.degree, 1), FormatDouble(row.gain, 0),
                  FormatDouble(row.discovery_s, 2), FormatDouble(row.query_eval_s, 2),
                  FormatDouble(row.total_s, 2)});
  };
  {
    SystemSpec spec;
    spec.num_events = 19;
    add(RunScenario("SQLite 34 opts / 19 events", SystemId::kSqlite, spec, 300));
  }
  {
    SystemSpec spec;
    spec.num_events = 19;
    spec.extended_options = true;
    add(RunScenario("SQLite 242 opts / 19 events", SystemId::kSqlite, spec, 301));
  }
  {
    SystemSpec spec;
    spec.num_events = 288;
    spec.extended_options = true;
    add(RunScenario("SQLite 242 opts / 288 events", SystemId::kSqlite, spec, 302));
  }
  {
    SystemSpec spec;
    spec.num_events = 19;
    add(RunScenario("Deepstream 53 opts / 19 events", SystemId::kDeepstream, spec, 303));
  }
  {
    SystemSpec spec;
    spec.num_events = 288;
    add(RunScenario("Deepstream 53 opts / 288 events", SystemId::kDeepstream, spec, 304));
  }
  std::printf("\n=== Table 3: scalability ===\n%s", table.Render().c_str());
  std::printf("(expected shape: runtime grows polynomially, not exponentially, with\n"
              " options/events, because the learned graphs stay sparse — low degree)\n");
  RunIncrementalComparison();
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--incremental-only") {
      unicorn::RunIncrementalComparison();
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  unicorn::RunTable();
  return 0;
}
