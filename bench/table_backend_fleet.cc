// Backend fleet study: the measurement plane dispatching to N simulated
// Jetson devices instead of one in-process oracle.
//
// Four sections:
//   (a) 1 vs N devices — wall-clock scaling of one batch over a fleet whose
//       members really sleep their service time, with a bit-identity check
//       against the serial single-broker rows;
//   (b) transient-failure sweep — retry/reroute accounting as the injected
//       failure rate rises, rows still bit-identical;
//   (c) circuit breaking — a permanently failing device is retired and its
//       queue migrates, nothing is lost;
//   (d) recorded replay — a second session served entirely from the first
//       session's persisted measurement table.
//
// `--smoke` shrinks batch sizes for CI. Single-core hosts bound the
// wall-clock scaling in (a) near the queueing ideal because fleet workers
// spend their time in simulated (slept) service, not on the CPU.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "sysmodel/systems.h"
#include "unicorn/backend/backend_fleet.h"
#include "unicorn/backend/recorded_backend.h"
#include "unicorn/measurement_broker.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

using Clock = std::chrono::steady_clock;

struct Setup {
  std::shared_ptr<SystemModel> model;
  PerformanceTask task;
  std::vector<std::vector<double>> configs;
  std::vector<std::vector<double>> reference;  // serial single-broker rows
};

constexpr uint64_t kTaskSeed = 920;

Setup MakeSetup(size_t batch_size) {
  SystemSpec spec;
  spec.num_events = 12;
  Setup s;
  s.model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  s.task = MakeSimulatedTask(s.model, Tx2(), DefaultWorkload(), kTaskSeed);
  Rng rng(921);
  for (size_t i = 0; i < batch_size; ++i) {
    s.configs.push_back(s.task.sample_config(&rng));
  }
  MeasurementBroker serial(s.task);
  s.reference = serial.MeasureBatch(s.configs);
  return s;
}

std::unique_ptr<BackendFleet> MakeFleet(const Setup& s, int devices, double service_time,
                                        bool sleep, double transient_rate,
                                        double permanent_rate_first,
                                        FleetOptions options = {}) {
  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  for (int b = 0; b < devices; ++b) {
    DeviceProfile profile;
    profile.name = "jetson-" + std::to_string(b);
    profile.seed = 700 + static_cast<uint64_t>(b);
    profile.service_time_mean = service_time;
    profile.service_time_jitter = 0.3;
    profile.sleep = sleep;
    profile.transient_failure_rate = transient_rate;
    profile.permanent_failure_rate = b == 0 ? permanent_rate_first : 0.0;
    backends.push_back(
        MakeDeviceBackend(s.model, Tx2(), DefaultWorkload(), kTaskSeed, std::move(profile)));
  }
  return std::make_unique<BackendFleet>(std::move(backends), options);
}

void RunScalingSection(const Setup& s, bool smoke) {
  std::printf("\n=== (a) 1 vs N devices: batch of %zu, %.0fms simulated service time ===\n",
              s.configs.size(), smoke ? 2.0 : 5.0);
  const double service = smoke ? 0.002 : 0.005;
  TextTable table({"devices", "wall(s)", "speedup", "busy(s)", "util", "bit-identical"});
  double base = 0.0;
  for (int devices : {1, 2, 4}) {
    MeasurementBroker broker(s.task, MakeFleet(s, devices, service, /*sleep=*/true, 0.0, 0.0));
    const auto start = Clock::now();
    const auto rows = broker.MeasureBatch(s.configs);
    const double wall = std::chrono::duration<double>(Clock::now() - start).count();
    if (devices == 1) {
      base = wall;
    }
    double busy = 0.0;
    for (const auto& backend : broker.fleet_stats().backends) {
      busy += backend.busy_seconds;
    }
    table.AddRow({std::to_string(devices), FormatDouble(wall, 3),
                  FormatDouble(base > 0.0 && wall > 0.0 ? base / wall : 0.0, 2),
                  FormatDouble(busy, 3),
                  FormatDouble(wall > 0.0 ? busy / (wall * devices) : 0.0, 2),
                  rows == s.reference ? "yes" : "NO (bug)"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(speedup tracks device count while service time dominates: fleet workers\n"
              " sleep, they don't compete for the CPU)\n");
}

void RunFailureSweepSection(const Setup& s) {
  std::printf("\n=== (b) transient-failure sweep: 4 devices, batch of %zu ===\n",
              s.configs.size());
  TextTable table({"failure rate", "measured", "retries", "rerouted", "failed",
                   "attempts/req", "bit-identical"});
  for (double rate : {0.0, 0.1, 0.3, 0.5}) {
    FleetOptions options;
    options.max_attempts = 10;  // a 50% rate needs headroom to converge
    MeasurementBroker broker(
        s.task, MakeFleet(s, 4, 0.0, /*sleep=*/false, rate, 0.0, options));
    const auto rows = broker.MeasureBatch(s.configs);
    const FleetStats stats = broker.fleet_stats();
    table.AddRow({FormatDouble(rate, 1), std::to_string(stats.TotalMeasured()),
                  std::to_string(stats.retries), std::to_string(stats.rerouted),
                  std::to_string(stats.failed),
                  FormatDouble(static_cast<double>(stats.TotalMeasured()) /
                                   static_cast<double>(s.configs.size()),
                               2),
                  rows == s.reference ? "yes" : "NO (bug)"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(rows stay bit-identical at every failure rate: retries reroute through\n"
              " the excluded-backend set and measurement is pure per configuration)\n");
}

void RunCircuitBreakSection(const Setup& s) {
  std::printf("\n=== (c) circuit breaking: device 0 fails every attempt ===\n");
  FleetOptions options;
  options.circuit_break_after = 2;
  options.queue_capacity = 8;
  MeasurementBroker broker(
      s.task, MakeFleet(s, 3, 0.0, /*sleep=*/false, 0.0, /*permanent_rate_first=*/1.0,
                        options));
  const auto rows = broker.MeasureBatch(s.configs);
  const FleetStats stats = broker.fleet_stats();
  TextTable table({"backend", "dispatched", "completed", "perm fails", "broken"});
  for (const auto& backend : stats.backends) {
    table.AddRow({backend.name, std::to_string(backend.dispatched),
                  std::to_string(backend.completed),
                  std::to_string(backend.permanent_failures),
                  backend.circuit_broken ? "yes" : "no"});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("requests lost: %zu | rows bit-identical: %s | circuit breaks: %zu\n",
              s.configs.size() - stats.completed, rows == s.reference ? "yes" : "NO (bug)",
              stats.circuit_breaks);
}

void RunRecordedReplaySection(const Setup& s) {
  std::printf("\n=== (d) recorded replay: session 2 from session 1's table ===\n");
  const std::string path = "/tmp/unicorn_bench_fleet_table.csv";
  MeasurementBroker live(s.task);
  live.MeasureBatch(s.configs);
  if (!live.SaveCache(path)) {
    std::printf("(cannot write %s; skipping)\n", path.c_str());
    return;
  }
  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  backends.push_back(std::make_unique<RecordedBackend>(RecordedBackend::FromFile(path)));
  MeasurementBroker replay(s.task, std::make_unique<BackendFleet>(std::move(backends)));
  const auto start = Clock::now();
  const auto rows = replay.MeasureBatch(s.configs);
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  std::printf("replayed %zu rows in %.3fs | live measurements: 0 (all from %s)\n"
              "rows bit-identical to session 1: %s\n",
              rows.size(), wall, path.c_str(), rows == s.reference ? "yes" : "NO (bug)");
  std::remove(path.c_str());
}

void RunAll(bool smoke) {
  const Setup s = MakeSetup(smoke ? 32 : 128);
  std::printf("=== Backend fleet: multi-device measurement dispatch "
              "(Xception, %zu options) ===\n",
              s.model->OptionIndices().size());
  RunScalingSection(s, smoke);
  RunFailureSweepSection(s);
  RunCircuitBreakSection(s);
  RunRecordedReplaySection(s);
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  unicorn::RunAll(smoke);
  return 0;
}
