// Raw-speed study of the reasoning-core CI kernels, with determinism gates.
//
// Three parts:
//   1. Kernel self-check (always runs, deterministic): the fused/batched
//      kernels against the legacy reference arithmetic
//      (simd::SetReferenceKernels) — G-square p-values must be
//      BIT-IDENTICAL, Fisher-z correlations within 4 ulps, FirstIndependent
//      serially equivalent, and a full model discovery must produce the same
//      graph either way. Any divergence exits non-zero.
//   2. Per-refresh speed: the Table-3 incremental debugging workload (SQLite
//      242 options, stateful engine with warm starts + CI cache), reporting
//      seconds per model refresh against the recorded
//      BENCH_table3_scalability.json baseline. Wall-clock ratios are
//      reported, not gated (timing is hosted-CI noise; the determinism
//      checks are the gates).
//   3. Warm-cache campaign: a cold engine run persists its CI cache
//      (CICache::SaveTo) and its table (binary format); a fresh process-like
//      warm engine restores both and must serve >= 80% of its first
//      refresh's tests from the cache, with rows and model bit-identical to
//      the cold run. Violations exit non-zero (this is a determinism
//      property, not a timing one).
//
//   4. Intra-refresh thread scaling: a Possible-D-SEP-heavy discovery swept
//      over engine thread counts {1, 2, 4, 8}; every count must reproduce
//      the t=1 graph and test/cache accounting bit-for-bit (always gated),
//      and t=8 must be >= 2x faster per refresh than t=1 (full mode, hosts
//      with >= 8 hardware threads).
//
// Flags: --smoke (CI-sized workload), --json <path> (machine-readable
// results, bench name "table_ci_kernels"), --gate-per-refresh <mult> (smoke
// mode: fail if per-refresh exceeds mult x the recorded
// smoke_per_refresh_seconds baseline), --trace/--metrics <path>
// (observability artifacts; see docs/OBSERVABILITY.md).
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "obs/cli.h"
#include "obs/stats_export.h"
#include "stats/ci_cache.h"
#include "stats/independence.h"
#include "stats/simd.h"
#include "unicorn/backend/binary_table.h"
#include "unicorn/model_learner.h"

namespace unicorn {
namespace {

using Clock = std::chrono::steady_clock;

// The recorded per-refresh cost of the incremental engine before this
// kernel pass (BENCH_table3_scalability.json at the repo root). The
// constant fallback is that file's value at the time the kernels landed,
// for runs from outside the repo root.
constexpr double kFallbackBaselinePerRefresh = 0.39761345679999993;

// One double out of a recorded bench JSON by key name (string search — the
// bench JSON writer emits every key exactly once). `fallback` when the file
// or the key is absent.
double ReadBaselineKey(const std::string& path, const std::string& key_name, double fallback) {
  std::ifstream in(path);
  if (!in) {
    return fallback;
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const std::string key = "\"" + key_name + "\": ";
  const size_t pos = text.find(key);
  if (pos == std::string::npos) {
    return fallback;
  }
  const char* begin = text.data() + pos + key.size();
  const char* end = text.data() + text.size();
  double value = 0.0;
  const auto result = std::from_chars(begin, end, value);
  return result.ec == std::errc() && value > 0.0 ? value : fallback;
}

double ReadBaselinePerRefresh(const std::string& path, double fallback) {
  return ReadBaselineKey(path, "incremental_per_refresh_seconds", fallback);
}

int64_t UlpDistance(double a, double b) {
  int64_t ia;
  int64_t ib;
  std::memcpy(&ia, &a, sizeof(a));
  std::memcpy(&ib, &b, sizeof(b));
  if (ia < 0) ia = INT64_MIN - ia;
  if (ib < 0) ib = INT64_MIN - ib;
  const int64_t d = ia - ib;
  return d < 0 ? -d : d;
}

DataTable SelfCheckTable(size_t rows) {
  std::vector<Variable> vars = {
      {"c0", VarType::kContinuous, VarRole::kEvent, {}},
      {"c1", VarType::kContinuous, VarRole::kEvent, {}},
      {"c2", VarType::kContinuous, VarRole::kEvent, {}},
      {"d0", VarType::kDiscrete, VarRole::kOption, {0, 1}},
      {"d1", VarType::kDiscrete, VarRole::kOption, {0, 1, 2}},
      {"d2", VarType::kDiscrete, VarRole::kOption, {0, 1, 2}},
  };
  DataTable t(vars);
  Rng rng(4242);
  for (size_t r = 0; r < rows; ++r) {
    const double c0 = rng.Gaussian();
    const double d1 = static_cast<double>(rng.UniformInt(uint64_t{3}));
    t.AddRow({c0, 0.7 * c0 + rng.Gaussian(0, 0.6), rng.Gaussian(),
              static_cast<double>(rng.UniformInt(uint64_t{2})), d1,
              rng.Bernoulli(0.8) ? d1 : static_cast<double>(rng.UniformInt(uint64_t{3}))});
  }
  return t;
}

// Returns true when the fast kernels reproduce the reference arithmetic.
// `max_ulp_out` reports the worst Fisher correlation divergence seen.
bool RunKernelSelfCheck(bool smoke, int64_t* max_ulp_out, bool* graphs_identical_out) {
  bool ok = true;
  int64_t max_ulp = 0;
  const std::vector<size_t> row_counts =
      smoke ? std::vector<size_t>{3, 65, 200} : std::vector<size_t>{3, 64, 65, 1000};
  for (size_t rows : row_counts) {
    const DataTable t = SelfCheckTable(rows);
    const std::vector<std::vector<int>> sets = {{}, {0}, {4}, {0, 4}, {0, 2, 4}, {0, 2, 4, 5}};
    for (int x : {0, 3}) {
      for (int y : {1, 5}) {
        for (const auto& s : sets) {
          std::vector<int> clean;
          for (int v : s) {
            if (v != x && v != y) {
              clean.push_back(v);
            }
          }
          simd::SetReferenceKernels(false);
          CompositeTest fast(t);
          const double p_fast = fast.PValue(x, y, clean);
          simd::SetReferenceKernels(true);
          CompositeTest ref(t);
          const double p_ref = ref.PValue(x, y, clean);
          const bool discrete = x == 3 || y == 5 || x == 5 || y == 3;
          if (discrete) {
            if (p_fast != p_ref) {
              std::fprintf(stderr,
                           "SELF-CHECK FAIL: G-square diverged (rows=%zu x=%d y=%d |s|=%zu): "
                           "%.17g vs %.17g\n",
                           rows, x, y, clean.size(), p_fast, p_ref);
              ok = false;
            }
          } else {
            const int64_t ulp = UlpDistance(p_fast, p_ref);
            const double rel = std::fabs(p_fast - p_ref) / std::max(1.0, std::fabs(p_ref));
            simd::SetReferenceKernels(false);
            const int64_t corr_ulp =
                UlpDistance(FisherZTest(t).Correlation(x, y),
                            (simd::SetReferenceKernels(true), FisherZTest(t).Correlation(x, y)));
            if (corr_ulp > max_ulp) {
              max_ulp = corr_ulp;
            }
            if (corr_ulp > 4 || rel > 1e-9) {
              std::fprintf(stderr,
                           "SELF-CHECK FAIL: Fisher-z diverged (rows=%zu x=%d y=%d |s|=%zu): "
                           "corr ulp=%lld p %.17g vs %.17g (p ulp=%lld)\n",
                           rows, x, y, clean.size(), static_cast<long long>(corr_ulp), p_fast,
                           p_ref, static_cast<long long>(ulp));
              ok = false;
            }
          }
        }
        // Batched dispatch must be serially equivalent (index, p, calls).
        simd::SetReferenceKernels(false);
        CompositeTest batched(t);
        CompositeTest serial(t);
        BatchedCIRequest req;
        req.x = x;
        req.y = y;
        req.sets = &sets;
        req.alpha = 0.1;
        double p_b = 0.0;
        const int idx_b = batched.FirstIndependent(req, &p_b);
        int idx_s = -1;
        double p_s = 0.0;
        for (size_t i = 0; i < sets.size(); ++i) {
          const double p = serial.PValue(x, y, sets[i]);
          if (p >= req.alpha) {
            idx_s = static_cast<int>(i);
            p_s = p;
            break;
          }
        }
        if (idx_b != idx_s || (idx_b >= 0 && p_b != p_s) ||
            batched.calls.load() != serial.calls.load()) {
          std::fprintf(stderr,
                       "SELF-CHECK FAIL: FirstIndependent not serially equivalent "
                       "(rows=%zu x=%d y=%d): idx %d vs %d, calls %lld vs %lld\n",
                       rows, x, y, idx_b, idx_s, batched.calls.load(), serial.calls.load());
          ok = false;
        }
      }
    }
  }
  // End-to-end: one full discovery with each kernel set must agree on the
  // learned graph (the engine's acceptance bar: results bit-identical).
  const DataTable t = SelfCheckTable(400);
  CausalModelOptions options;
  options.fci.skeleton.alpha = 0.1;
  options.fci.skeleton.max_cond_size = 1;
  options.fci.skeleton.max_subsets = 8;
  options.entropic.latent.restarts = 1;
  options.entropic.latent.iterations = 20;
  simd::SetReferenceKernels(false);
  const LearnedModel fast_model = LearnCausalPerformanceModel(t, options);
  simd::SetReferenceKernels(true);
  const LearnedModel ref_model = LearnCausalPerformanceModel(t, options);
  simd::SetReferenceKernels(false);
  const bool graphs_identical = fast_model.admg == ref_model.admg &&
                                fast_model.independence_tests == ref_model.independence_tests;
  if (!graphs_identical) {
    std::fprintf(stderr, "SELF-CHECK FAIL: discovery graph differs between kernel sets\n");
    ok = false;
  }
  *max_ulp_out = max_ulp;
  *graphs_identical_out = graphs_identical;
  std::printf("kernel self-check: %s (max Fisher correlation divergence: %lld ulp; "
              "discovery graphs identical: %s)\n",
              ok ? "PASS" : "FAIL", static_cast<long long>(max_ulp),
              graphs_identical ? "yes" : "no");
  return ok;
}

// The Table-3 incremental debugging workload, timed per model refresh.
// `gate_multiplier` > 0 turns the smoke-sized run into a perf-regression
// gate: per-refresh must stay within that multiple of the recorded
// smoke_per_refresh_seconds baseline (BENCH_table_ci_kernels.json).
// `per_refresh_out` (optional) reports the measured per-refresh seconds.
bool RunPerRefreshStudy(bool smoke, bench::JsonResults* json, double gate_multiplier,
                        double* per_refresh_out) {
  SystemSpec spec;
  spec.num_events = smoke ? 19 : 288;
  spec.extended_options = true;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kSqlite, spec));
  std::printf("\n=== CI-kernel per-refresh speed (SQLite %zu opts / %zu events) ===\n",
              model->OptionIndices().size(), model->EventIndices().size());

  Rng rng(700);
  const FaultCuration curation =
      CurateFaults(*model, Xavier(), DefaultWorkload(), smoke ? 300 : 600, &rng, 0.97);
  const auto faults = bench::SelectFaults(*model, curation, bench::FaultKind::kLatency, 1);
  if (faults.empty()) {
    std::printf("(no curated latency fault; skipping the speed study)\n");
    return true;
  }
  const auto goals = GoalsForFault(curation, faults[0], 0.02);

  DebugOptions options = bench::BenchDebugOptions();
  options.max_iterations = smoke ? 8 : 40;
  options.stall_termination = 1000;
  options.model.fci.skeleton.alpha = 0.1;
  options.model.fci.skeleton.max_cond_size = 1;
  options.model.fci.skeleton.max_subsets = 8;
  options.model.fci.max_pds_cond_size = 1;
  options.model.fci.use_possible_dsep = false;
  options.model.entropic.latent.restarts = 1;
  options.model.entropic.latent.iterations = 20;
  options.engine.stale_epsilon = 0.05;
  options.engine.full_refresh_every = 8;
  options.engine.num_threads = 4;
  options.engine.use_ci_cache = true;

  const PerformanceTask task = MakeSimulatedTask(model, Xavier(), DefaultWorkload(), 900);
  UnicornDebugger debugger(task, options);
  const auto start = Clock::now();
  const DebugResult result = debugger.Debug(faults[0].config, goals);
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  const EngineStats& stats = result.engine_stats;
  const double per_refresh =
      stats.refreshes > 0 ? stats.total_seconds / static_cast<double>(stats.refreshes) : 0.0;

  const double baseline =
      ReadBaselinePerRefresh("BENCH_table3_scalability.json", kFallbackBaselinePerRefresh);
  const double speedup = per_refresh > 0.0 ? baseline / per_refresh : 0.0;
  std::printf("%6.2fs end-to-end | %.4fs per refresh | engine %s\n", seconds, per_refresh,
              obs::DumpStatsJson(stats).c_str());
  if (smoke) {
    std::printf("per-refresh: %.4fs (smoke workload — not comparable to the recorded "
                "full-size baseline)\n",
                per_refresh);
  } else {
    std::printf("per-refresh vs recorded baseline: %.4fs -> %.4fs = %.2fx "
                "(acceptance target: >= 5x)\n",
                baseline, per_refresh, speedup);
  }
  if (json != nullptr) {
    json->Add("per_refresh", "end_to_end_seconds", seconds);
    json->Add("per_refresh", "discovery_seconds", stats.total_seconds);
    json->Add("per_refresh", "refreshes", static_cast<double>(stats.refreshes));
    json->Add("per_refresh", "per_refresh_seconds", per_refresh);
    json->Add("per_refresh", "baseline_per_refresh_seconds", baseline);
    json->Add("per_refresh", "speedup_vs_baseline", speedup);
    json->Add("per_refresh", "smoke", smoke ? 1.0 : 0.0);
  }
  if (per_refresh_out != nullptr) {
    *per_refresh_out = per_refresh;
  }
  // Wall-clock numbers never fail the run — except under an explicit
  // --gate-per-refresh, where CI trades a generous multiplier for an early
  // tripwire on per-refresh regressions.
  if (smoke && gate_multiplier > 0.0) {
    const double smoke_baseline =
        ReadBaselineKey("BENCH_table_ci_kernels.json", "smoke_per_refresh_seconds", 0.0);
    if (smoke_baseline <= 0.0) {
      std::printf("per-refresh gate: no recorded smoke baseline; gate skipped\n");
    } else if (per_refresh > gate_multiplier * smoke_baseline) {
      std::fprintf(stderr,
                   "PER-REFRESH REGRESSION: %.4fs > %.2fx the recorded smoke baseline %.4fs\n",
                   per_refresh, gate_multiplier, smoke_baseline);
      return false;
    } else {
      std::printf("per-refresh gate: %.4fs within %.2fx of the recorded %.4fs baseline\n",
                  per_refresh, gate_multiplier, smoke_baseline);
    }
  }
  return true;
}

// --- Intra-refresh thread scaling -------------------------------------------
//
// A Possible-D-SEP-heavy discovery workload swept over engine thread counts
// {1, 2, 4, 8}. Two gates:
//   - bit identity (always): every thread count must reproduce the t=1
//     discovery graph AND the t=1 test/cache accounting exactly — the
//     parallel PDS/entropic phases and the buffered cache publishes are
//     contracted to be invisible in the results.
//   - scaling (full mode, hosts with >= 8 hardware threads only): t=8 must
//     be >= 2x faster per refresh than t=1. Timing is never gated on
//     hosted-CI-sized machines.

// Chain-structured mixed table: enough surviving edges after the shallow
// skeleton pass that the PDS sweep dominates the refresh.
DataTable ScalingTable(size_t num_vars, size_t rows) {
  std::vector<Variable> vars;
  for (size_t v = 0; v < num_vars; ++v) {
    if (v % 3 == 0) {
      vars.push_back(
          {"o" + std::to_string(v), VarType::kDiscrete, VarRole::kOption, {0, 1, 2}});
    } else {
      vars.push_back({"e" + std::to_string(v), VarType::kContinuous, VarRole::kEvent, {}});
    }
  }
  DataTable t(vars);
  Rng rng(9090);
  std::vector<double> row(num_vars, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    double carry = 0.0;
    for (size_t v = 0; v < num_vars; ++v) {
      if (v % 3 == 0) {
        row[v] = static_cast<double>(rng.UniformInt(uint64_t{3}));
        carry = 0.4 * row[v];
      } else {
        row[v] = carry + rng.Gaussian(0, 1.0);
        carry = 0.5 * row[v];
      }
    }
    t.AddRow(row);
  }
  return t;
}

struct ScalingRun {
  double per_refresh = 0.0;
  MixedGraph admg;
  long long requested = 0;
  long long evaluated = 0;
  long long hits = 0;
};

ScalingRun RunScalingAt(const DataTable& base, const DataTable& extra, int threads) {
  CausalModelOptions mo;
  mo.fci.skeleton.alpha = 0.1;
  mo.fci.skeleton.max_cond_size = 1;
  mo.fci.skeleton.max_subsets = 8;
  mo.fci.use_possible_dsep = true;
  mo.fci.max_pds_cond_size = 2;
  mo.entropic.latent.restarts = 1;
  mo.entropic.latent.iterations = 20;
  EngineOptions eo;
  eo.num_threads = threads;
  eo.use_ci_cache = true;
  CausalModelEngine engine(base.Variables(), mo, eo);
  engine.AppendRows(base);
  engine.Refresh(311);
  engine.AppendRows(extra);  // second refresh exercises the warm paths too
  engine.Refresh(312);
  const EngineStats& stats = engine.stats();
  ScalingRun run;
  run.per_refresh =
      stats.refreshes > 0 ? stats.total_seconds / static_cast<double>(stats.refreshes) : 0.0;
  run.admg = engine.model().admg;
  run.requested = stats.total_tests_requested;
  run.evaluated = stats.total_tests_evaluated;
  run.hits = stats.total_cache_hits;
  return run;
}

bool RunThreadScalingStudy(bool smoke, bench::JsonResults* json) {
  const size_t num_vars = smoke ? 15 : 21;
  const size_t rows = smoke ? 160 : 320;
  const DataTable all = ScalingTable(num_vars, rows + rows / 2);
  std::vector<size_t> base_idx;
  std::vector<size_t> extra_idx;
  for (size_t r = 0; r < all.NumRows(); ++r) {
    (r < rows ? base_idx : extra_idx).push_back(r);
  }
  const DataTable base = all.SelectRows(base_idx);
  const DataTable extra = all.SelectRows(extra_idx);
  std::printf("\n=== Intra-refresh thread scaling (PDS-heavy, %zu vars, %zu rows) ===\n",
              num_vars, all.NumRows());

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<ScalingRun> runs;
  for (int t : thread_counts) {
    runs.push_back(RunScalingAt(base, extra, t));
  }

  bool ok = true;
  for (size_t i = 0; i < runs.size(); ++i) {
    const ScalingRun& r = runs[i];
    const bool identical = r.admg == runs[0].admg && r.requested == runs[0].requested &&
                           r.evaluated == runs[0].evaluated && r.hits == runs[0].hits;
    const double speedup = r.per_refresh > 0.0 ? runs[0].per_refresh / r.per_refresh : 0.0;
    std::printf("threads=%d: %.4fs per refresh (%.2fx vs t=1) | tests %lld/%lld, "
                "hits %lld | bit-identical: %s\n",
                thread_counts[i], r.per_refresh, speedup, r.evaluated, r.requested, r.hits,
                identical ? "yes" : "NO (bug)");
    if (!identical) {
      std::fprintf(stderr,
                   "THREAD-SCALING FAIL: t=%d diverged from t=1 "
                   "(tests %lld/%lld vs %lld/%lld, hits %lld vs %lld)\n",
                   thread_counts[i], r.evaluated, r.requested, runs[0].evaluated,
                   runs[0].requested, r.hits, runs[0].hits);
      ok = false;
    }
    if (json != nullptr) {
      const std::string suffix = "_t" + std::to_string(thread_counts[i]);
      json->Add("thread_scaling", "per_refresh_seconds" + suffix, r.per_refresh);
      json->Add("thread_scaling", "speedup" + suffix, speedup);
      json->Add("thread_scaling", "bit_identical" + suffix, identical ? 1.0 : 0.0);
    }
  }
  const bool gate_timing = !smoke && std::thread::hardware_concurrency() >= 8;
  if (gate_timing) {
    const double speedup8 =
        runs.back().per_refresh > 0.0 ? runs[0].per_refresh / runs.back().per_refresh : 0.0;
    if (speedup8 < 2.0) {
      std::fprintf(stderr, "THREAD-SCALING FAIL: t=8 speedup %.2fx below the 2x gate\n",
                   speedup8);
      ok = false;
    } else {
      std::printf("t=8 scaling gate: %.2fx >= 2x PASS\n", speedup8);
    }
  } else {
    std::printf("(t=8 >= 2x timing gate %s; bit-identity gates always apply)\n",
                smoke ? "skipped in smoke mode" : "needs >= 8 hardware threads");
  }
  return ok;
}

// Cold run -> persist table (binary) + CI cache -> warm run restores both.
bool RunWarmCacheCampaign(bool smoke, bench::JsonResults* json) {
  SystemSpec spec;
  spec.num_events = 19;
  spec.extended_options = true;
  auto model = std::make_shared<SystemModel>(BuildSystem(SystemId::kSqlite, spec));
  std::printf("\n=== Warm-cache campaign (persisted CI cache + binary table) ===\n");

  Rng rng(730);
  const FaultCuration curation =
      CurateFaults(*model, Xavier(), DefaultWorkload(), smoke ? 200 : 300, &rng, 0.97);
  std::vector<size_t> rows_idx;
  for (size_t r = 0; r < std::min<size_t>(smoke ? 120 : 200, curation.samples.NumRows()); ++r) {
    rows_idx.push_back(r);
  }
  const DataTable data = curation.samples.SelectRows(rows_idx);

  // Persist the curated table in the binary bulk format.
  MeasurementTable table;
  table.num_vars = data.NumVars();
  std::vector<size_t> option_idx = data.IndicesWithRole(VarRole::kOption);
  table.num_options = option_idx.size();
  for (size_t r = 0; r < data.NumRows(); ++r) {
    MeasurementTable::Entry entry;
    for (size_t o : option_idx) {
      entry.config.push_back(data.At(r, o));
    }
    entry.row = data.Row(r);
    entry.provenance = "bench-cold";
    table.entries.push_back(std::move(entry));
  }
  const std::string table_path = "/tmp/unicorn_bench_warm_table.bin";
  const std::string cache_path = "/tmp/unicorn_bench_warm_cache.bin";
  if (!SaveMeasurementTableBinary(table_path, table)) {
    std::fprintf(stderr, "WARM-CACHE FAIL: could not write %s\n", table_path.c_str());
    return false;
  }

  CausalModelOptions model_options;
  model_options.fci.skeleton.alpha = 0.1;
  model_options.fci.skeleton.max_cond_size = 1;
  model_options.fci.skeleton.max_subsets = 8;
  model_options.fci.max_pds_cond_size = 1;
  model_options.fci.use_possible_dsep = false;
  model_options.entropic.latent.restarts = 1;
  model_options.entropic.latent.iterations = 20;
  EngineOptions engine_options;
  engine_options.use_ci_cache = true;

  // Cold campaign: learn from the binary-seeded table, persist the cache.
  CICache cold_cache;
  CausalModelEngine cold(data.Variables(), model_options, engine_options);
  cold.ShareCICache(&cold_cache, 0);
  const size_t cold_rows = cold.SeedFromFile(table_path);
  const auto cold_start = Clock::now();
  cold.Refresh(77);
  const double cold_seconds = std::chrono::duration<double>(Clock::now() - cold_start).count();
  if (cold_rows != table.entries.size() || !cold_cache.SaveTo(cache_path)) {
    std::fprintf(stderr, "WARM-CACHE FAIL: cold campaign could not seed or persist\n");
    return false;
  }

  // Warm campaign: a fresh engine + cache, restored from disk.
  CICache warm_cache;
  const long long restored = warm_cache.LoadFrom(cache_path, 1);
  CausalModelEngine warm(data.Variables(), model_options, engine_options);
  warm.ShareCICache(&warm_cache, 1);
  const size_t warm_rows = warm.SeedFromFile(table_path);
  const auto warm_start = Clock::now();
  warm.Refresh(77);
  const double warm_seconds = std::chrono::duration<double>(Clock::now() - warm_start).count();

  const EngineStats& stats = warm.stats();
  const double hit_rate =
      stats.tests_requested > 0
          ? static_cast<double>(stats.cache_hits) / static_cast<double>(stats.tests_requested)
          : 0.0;
  const bool rows_identical =
      warm_rows == cold_rows && warm.data_fingerprint() == cold.data_fingerprint();
  const bool models_identical = warm.model().admg == cold.model().admg;
  std::printf("cold refresh %.3fs | %lld cache entries persisted | warm refresh %.3fs "
              "(%.2fx)\n",
              cold_seconds, restored, warm_seconds,
              warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0);
  std::printf("warm first refresh: %lld tests requested, %lld served from the restored "
              "cache (%.1f%% hit rate, required >= 80%%)\n",
              stats.tests_requested, stats.cache_hits, 100.0 * hit_rate);
  std::printf("rows bit-identical: %s | models bit-identical: %s\n",
              rows_identical ? "yes" : "NO (bug)", models_identical ? "yes" : "NO (bug)");
  if (json != nullptr) {
    json->Add("warm_cache", "persisted_entries", static_cast<double>(restored));
    json->Add("warm_cache", "cold_refresh_seconds", cold_seconds);
    json->Add("warm_cache", "warm_refresh_seconds", warm_seconds);
    json->Add("warm_cache", "first_refresh_tests_requested",
              static_cast<double>(stats.tests_requested));
    json->Add("warm_cache", "first_refresh_cache_hits", static_cast<double>(stats.cache_hits));
    json->Add("warm_cache", "first_refresh_hit_rate", hit_rate);
    json->Add("warm_cache", "rows_bit_identical", rows_identical ? 1.0 : 0.0);
    json->Add("warm_cache", "models_bit_identical", models_identical ? 1.0 : 0.0);
  }
  bool ok = true;
  if (hit_rate < 0.80) {
    std::fprintf(stderr, "WARM-CACHE FAIL: hit rate %.3f below the 0.80 floor\n", hit_rate);
    ok = false;
  }
  if (!rows_identical || !models_identical) {
    std::fprintf(stderr, "WARM-CACHE FAIL: warm run diverged from the cold run\n");
    ok = false;
  }
  return ok;
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  unicorn::obs::Cli obs_cli;
  obs_cli.Scan(argc, argv);
  double gate_per_refresh = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::string(argv[i]) == "--gate-per-refresh" && i + 1 < argc) {
      gate_per_refresh = std::atof(argv[++i]);
    }
  }
  obs_cli.Begin();
  unicorn::bench::JsonResults json;
  unicorn::bench::JsonResults* json_ptr = json_path.empty() ? nullptr : &json;

  int64_t max_ulp = 0;
  bool graphs_identical = false;
  bool ok = unicorn::RunKernelSelfCheck(smoke, &max_ulp, &graphs_identical);
  if (json_ptr != nullptr) {
    json_ptr->Add("self_check", "bit_identical", ok ? 1.0 : 0.0);
    json_ptr->Add("self_check", "fisher_max_corr_ulp", static_cast<double>(max_ulp));
    json_ptr->Add("self_check", "discovery_graphs_identical", graphs_identical ? 1.0 : 0.0);
  }
  ok = unicorn::RunPerRefreshStudy(smoke, json_ptr, gate_per_refresh, nullptr) && ok;
  if (!smoke) {
    // Full runs also record the smoke-sized per-refresh cost, so the seeded
    // JSON carries the baseline the CI smoke gate compares against.
    double smoke_per_refresh = 0.0;
    ok = unicorn::RunPerRefreshStudy(true, nullptr, 0.0, &smoke_per_refresh) && ok;
    if (json_ptr != nullptr) {
      json_ptr->Add("per_refresh", "smoke_per_refresh_seconds", smoke_per_refresh);
    }
  }
  ok = unicorn::RunThreadScalingStudy(smoke, json_ptr) && ok;
  ok = unicorn::RunWarmCacheCampaign(smoke, json_ptr) && ok;
  if (int rc = obs_cli.End(); rc != 0) {
    return rc;
  }
  if (json_ptr != nullptr && !json.WriteFile(json_path, "table_ci_kernels")) {
    return 1;
  }
  return ok ? 0 : 1;
}
