// Sharded reasoning plane study: N concurrent single-fault DebugPolicys on
// one monolithic shared engine vs an EngineShardPool with one engine shard
// per objective group.
//
// The monolithic campaign (PR 2's shape) serializes every policy on one
// table and one refresh per round, and every policy's rounds get *slower*
// as policies are added — the engine refreshes over the union of all
// policies' rows. The sharded campaign gives each objective group its own
// engine (its own table and warm-start state) and refreshes dirty shards in
// parallel, while all shards consult one shared, concurrent CI cache.
//
// Reported per configuration (N in {1, 4, 16}): end-to-end wall time, wall
// time per refresh round, observed refresh concurrency (widest parallel
// batch + summed per-shard refresh seconds vs the batches' actual wall
// time), and the shared-cache dividend (cross-shard hit count and rate —
// all policies draw the same bootstrap, so every shard's first refresh
// after round 0 reuses the first payer's p-values).
//
// `--smoke` shrinks the system and budgets for CI; `--json <path>` writes
// the numbers machine-readably (BENCH_table_engine_shards.json) so the perf
// trajectory can be tracked across commits; `--trace <path>` / `--metrics
// <path>` write the observability artifacts (docs/OBSERVABILITY.md).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "eval/harness.h"
#include "obs/cli.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"
#include "unicorn/campaign.h"
#include "unicorn/debugger.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

using Clock = std::chrono::steady_clock;

struct Setup {
  std::shared_ptr<SystemModel> model;
  PerformanceTask task;
  FaultCuration curation;
  const Fault* fault = nullptr;
};

Setup MakeSetup(bool smoke) {
  Setup s;
  SystemSpec spec;
  spec.num_events = smoke ? 8 : 12;
  s.model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  Rng rng(620);
  s.curation =
      CurateFaults(*s.model, Tx2(), DefaultWorkload(), smoke ? 400 : 1200, &rng, 0.97);
  s.task = MakeSimulatedTask(s.model, Tx2(), DefaultWorkload(), 621);
  for (const auto& f : s.curation.faults) {
    if (!f.root_causes.empty()) {
      s.fault = &f;
      break;
    }
  }
  return s;
}

DebugOptions ShardBenchDebugOptions(bool smoke) {
  DebugOptions options;
  options.initial_samples = 20;
  options.max_iterations = smoke ? 3 : 8;
  options.stall_termination = 1000;  // fixed budget: every policy runs all rounds
  options.repairs_per_iteration = 2;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.skeleton.max_subsets = 16;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  options.model.entropic.latent.iterations = 20;
  return options;
}

struct RunResult {
  double wall_s = 0.0;
  double wall_per_round_s = 0.0;
  size_t refresh_batches = 0;
  size_t max_concurrent = 0;
  double refresh_sum_s = 0.0;    // per-shard refresh seconds, summed
  double refresh_wall_s = 0.0;   // what the (parallel) batches actually took
  long long tests_requested = 0;
  double cache_hit_rate = 0.0;
  long long cross_shard_hits = 0;
  double cross_shard_rate = 0.0;
  bool all_ran_full_budget = true;
};

// One campaign of `n` DebugPolicys over the same curated fault, each with a
// slightly different goal percentile (distinct objective thresholds = the
// per-objective-group scenario; goals are kept near-unreachable so every
// policy runs its full round budget and the comparison is fixed-work).
// `sharded` = one objective group per policy; otherwise all share group "".
RunResult RunCampaign(const Setup& s, bool smoke, size_t n, bool sharded) {
  const DebugOptions options = ShardBenchDebugOptions(smoke);
  CampaignOptions campaign = ToCampaignOptions(options);
  campaign.refresh_threads =
      sharded ? static_cast<int>(std::min<size_t>(n, 16)) : 1;
  CampaignRunner runner(s.task, campaign);

  std::vector<std::unique_ptr<DebugPolicy>> policies;
  std::vector<GroupedPolicy> grouped;
  for (size_t i = 0; i < n; ++i) {
    // Same fault, same bootstrap seed (identical round-0 rows in every
    // shard), per-policy goal tightness.
    const auto goals = GoalsForFault(s.curation, *s.fault, 0.03 + 0.005 * static_cast<double>(i));
    policies.push_back(std::make_unique<DebugPolicy>(options, s.fault->config, goals));
    grouped.push_back(GroupedPolicy{policies.back().get(),
                                    sharded ? "objective-" + std::to_string(i) : ""});
  }

  const auto start = Clock::now();
  runner.RunGrouped(grouped);
  RunResult result;
  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();

  const ShardPoolStats pool = runner.pool().stats();
  result.refresh_batches = pool.refresh_batches;
  result.max_concurrent = pool.max_concurrent_refreshes;
  result.refresh_sum_s = pool.refresh_seconds;
  result.refresh_wall_s = pool.batch_wall_seconds;
  result.tests_requested = pool.tests_requested;
  result.cache_hit_rate = pool.CacheHitRate();
  result.cross_shard_hits = pool.cross_shard_hits;
  result.cross_shard_rate = pool.CrossShardHitRate();
  result.wall_per_round_s =
      pool.refresh_batches > 0 ? result.wall_s / static_cast<double>(pool.refresh_batches) : 0.0;
  for (const auto& policy : policies) {
    result.all_ran_full_budget =
        result.all_ran_full_budget &&
        policy->result().tests_per_iteration.size() == options.max_iterations;
  }
  return result;
}

int RunStudy(bool smoke, const std::string& json_path) {
  const Setup s = MakeSetup(smoke);
  if (s.fault == nullptr) {
    std::printf("(no curated fault with root causes; cannot run)\n");
    return 1;
  }
  std::printf("=== Sharded reasoning plane: monolithic engine vs EngineShardPool "
              "(Xception, %zu options, %u visible core(s)) ===\n",
              s.model->OptionIndices().size(), std::thread::hardware_concurrency());

  bench::JsonResults json;
  TextTable table({"policies", "plane", "wall(s)", "wall/round(s)", "rounds",
                   "refresh conc.", "refresh sum(s)", "refresh wall(s)", "CI tests",
                   "cache-hit%", "x-shard hits", "x-shard%"});
  bool shard_accounting_ok = true;
  long long total_cross_shard = 0;
  size_t widest_batch = 0;
  for (const size_t n : {size_t{1}, size_t{4}, size_t{16}}) {
    for (const bool sharded : {false, true}) {
      const RunResult r = RunCampaign(s, smoke, n, sharded);
      const char* plane = sharded ? "sharded" : "monolithic";
      table.AddRow({std::to_string(n), plane, FormatDouble(r.wall_s, 2),
                    FormatDouble(r.wall_per_round_s, 3), std::to_string(r.refresh_batches),
                    std::to_string(r.max_concurrent), FormatDouble(r.refresh_sum_s, 2),
                    FormatDouble(r.refresh_wall_s, 2), std::to_string(r.tests_requested),
                    FormatDouble(100.0 * r.cache_hit_rate, 1),
                    std::to_string(r.cross_shard_hits),
                    FormatDouble(100.0 * r.cross_shard_rate, 1)});
      const std::string section = std::string(plane) + "_" + std::to_string(n);
      json.Add(section, "policies", static_cast<double>(n));
      json.Add(section, "sharded", sharded ? 1.0 : 0.0);
      json.Add(section, "wall_seconds", r.wall_s);
      json.Add(section, "wall_per_round_seconds", r.wall_per_round_s);
      json.Add(section, "refresh_batches", static_cast<double>(r.refresh_batches));
      json.Add(section, "max_concurrent_refreshes", static_cast<double>(r.max_concurrent));
      json.Add(section, "refresh_sum_seconds", r.refresh_sum_s);
      json.Add(section, "refresh_wall_seconds", r.refresh_wall_s);
      json.Add(section, "ci_tests_requested", static_cast<double>(r.tests_requested));
      json.Add(section, "cache_hit_rate", r.cache_hit_rate);
      json.Add(section, "cross_shard_hits", static_cast<double>(r.cross_shard_hits));
      json.Add(section, "cross_shard_hit_rate", r.cross_shard_rate);
      if (sharded) {
        total_cross_shard += r.cross_shard_hits;
        widest_batch = std::max(widest_batch, r.max_concurrent);
        // Monolithic runs must report exactly one engine refreshing at a
        // time; sharded runs must show the whole group set in one batch.
        shard_accounting_ok = shard_accounting_ok && r.max_concurrent == n;
      } else {
        shard_accounting_ok = shard_accounting_ok && r.max_concurrent <= 1;
      }
      if (!r.all_ran_full_budget) {
        // Informational: wall-time cells are only fixed-work comparable when
        // every policy ran its whole round budget.
        std::printf("(note: %s n=%zu — some policy finished before the round budget)\n",
                    plane, n);
      }
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "reading guide: 'refresh conc.' is the widest parallel shard-refresh batch —\n"
      "  16 means 16 policies' models refreshed without serializing on one engine\n"
      "  (refresh sum vs refresh wall is the concurrency actually banked; ~equal on\n"
      "  a single-core host, where only the structural win is visible).\n"
      "  'x-shard hits' are CI tests served from p-values another shard paid for\n"
      "  (shards share bootstrap rows here, so every round-1 refresh after the\n"
      "  first is nearly free) — the shared cache's measurable dividend.\n");

  // The bench's own acceptance: >= 16 concurrent refreshes observed, a
  // nonzero cross-shard dividend, and sane ledgers. CI runs --smoke, so a
  // regression fails the job instead of rotting silently.
  if (!shard_accounting_ok || widest_batch < 16 || total_cross_shard <= 0) {
    std::printf("ACCOUNTING BROKEN: widest batch %zu, cross-shard hits %lld\n",
                widest_batch, total_cross_shard);
    return 1;
  }
  std::printf("accounting verified: widest refresh batch %zu, cross-shard hits %lld\n",
              widest_batch, total_cross_shard);

  if (!json_path.empty() && !json.WriteFile(json_path, "table_engine_shards")) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  unicorn::obs::Cli obs_cli;
  obs_cli.Scan(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  obs_cli.Begin();
  const int status = unicorn::RunStudy(smoke, json_path);
  if (int rc = obs_cli.End(); rc != 0) {
    return rc;
  }
  return status;
}
