// Pipelined campaign scheduler study: overlap fleet measurement with
// cross-policy shard refreshes (CampaignOptions::pipeline) — plus the
// >10^6-row binary-table ingest stress.
//
// Sections:
//   (a) pipeline vs barrier — a mixed 16-tenant campaign (4 heavy-refresh
//       DebugPolicys + 12 light, high-cadence OptimizePolicys, one objective
//       group each) over 4 sleeping simulated devices. The barrier loop
//       (pipeline=false, the pre-pipeline RunAsyncGrouped) refreshes inline
//       on the campaign thread, so every light policy's absorb-and-resubmit
//       stalls behind whichever heavy refresh is running and the fleet
//       starves; the pipelined scheduler hands refreshes to the pool's
//       workers and keeps the fleet fed. On a single-core host the refresh
//       CPU is identical either way — the speedup is pure overlap, and the
//       pool's ledger (overlap_seconds, widest_cross_policy_batch) shows it.
//       The bench SELF-VERIFIES bit-identity: every run's per-shard table
//       fingerprints and per-policy results must equal the synchronous
//       RunGrouped oracle's, and the binary exits non-zero on divergence or
//       (full mode) on speedup < 1.8x.
//   (b) refresh-thread sweep — pipelined wall at refresh_threads {1,4} x
//       pin_refresh_threads {off,on} (ThreadPool::Options::pin_threads),
//       all bit-identical to the oracle.
//   (c) UNICTBL1 ingest stress — a >10^6-row binary table written with the
//       streaming BinaryTableWriter, mmap'd zero-copy (BinaryTableView) and
//       seeded into an engine via SeedFromFile, with load-time and peak-RSS
//       bounds (a regression to per-entry materialization costs ~5x the
//       payload and trips the RSS gate).
//
// `--smoke` shrinks everything for CI (bit-identity and ledger gates stay
// on; the 1.8x and <2% observability-overhead gates are full-mode only —
// smoke runs are too short to time). `--json <path>` writes
// BENCH_table_pipeline.json; `--trace <path>` writes the traced run's
// Chrome-trace JSON (view in Perfetto, validate with trace_report --check);
// `--metrics <path>` writes the final MetricsRegistry snapshot.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "obs/stats_export.h"
#include "obs/trace.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"
#include "unicorn/backend/backend_fleet.h"
#include "unicorn/backend/binary_table.h"
#include "unicorn/campaign.h"
#include "unicorn/debugger.h"
#include "unicorn/optimizer.h"
#include "util/text_table.h"

namespace unicorn {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint64_t kTaskSeed = 1120;
constexpr int kDevices = 4;

struct Setup {
  std::shared_ptr<SystemModel> model;
  PerformanceTask task;
  FaultCuration curation;
  const Fault* fault = nullptr;
  std::vector<ObjectiveGoal> goals;
  size_t heavy = 0;           // heavy-refresh DebugPolicys
  size_t light = 0;           // light OptimizePolicys
  double service_time = 0.0;  // per-row simulated device service time
  // One transferred table per tenant (distinct seeds): warm rows enter the
  // engine as kSource provenance with zero fleet cost, so they are the
  // refresh-cost lever — CI-test cost scales with the shard's rows. Heavy
  // tenants get big tables (multi-hundred-ms refreshes every repair round),
  // lights small ones (tens-of-ms refreshes on a staggered relearn cadence),
  // spreading refresh demand across the whole campaign instead of
  // concentrating it in the opening rounds. Shared (by pointer) across all
  // modes, so bit-identity is unaffected.
  std::vector<DataTable> warm;        // one per heavy tenant
  std::vector<DataTable> warm_light;  // one per light tenant
};

// The tenants' transferred tables, all derived from one simulator-measured
// base that provides the dependence structure: each table draws seeded
// jittered resamples of the base (event/objective columns perturbed ±0.5%,
// configs verbatim), so sixteen tables cost 2k simulator calls total while
// the CI tests still stream realistically correlated columns.
using WarmBase = std::vector<std::vector<double>>;

WarmBase MakeWarmBase(const PerformanceTask& task, uint64_t seed) {
  WarmBase base;
  Rng rng(seed);
  base.reserve(2000);
  for (size_t i = 0; i < 2000; ++i) {
    base.push_back(task.measure(task.sample_config(&rng)));
  }
  return base;
}

DataTable DeriveWarmTable(const PerformanceTask& task, const WarmBase& base, size_t rows,
                          uint64_t seed) {
  DataTable table(task.variables);
  Rng rng(seed);
  std::vector<bool> is_option(task.variables.size(), false);
  for (size_t v : task.option_vars) {
    is_option[v] = true;
  }
  for (size_t i = 0; i < rows; ++i) {
    std::vector<double> row = base[rng.UniformInt(base.size())];
    for (size_t v = 0; v < row.size(); ++v) {
      if (!is_option[v]) {
        row[v] *= 1.0 + rng.Uniform(-0.005, 0.005);
      }
    }
    table.AddRow(row);
  }
  return table;
}

Setup MakeSetup(bool smoke) {
  Setup s;
  SystemSpec spec;
  spec.num_events = smoke ? 8 : 12;
  s.model = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  Rng rng(1121);
  s.curation =
      CurateFaults(*s.model, Tx2(), DefaultWorkload(), smoke ? 400 : 1200, &rng, 0.97);
  s.task = MakeSimulatedTask(s.model, Tx2(), DefaultWorkload(), kTaskSeed);
  for (const auto& f : s.curation.faults) {
    if (!f.root_causes.empty()) {
      s.fault = &f;
      break;
    }
  }
  if (s.fault != nullptr) {
    s.goals = GoalsForFault(s.curation, *s.fault, 0.03);
    // Make the goals unattainable (1% of the already-strict 3rd-percentile
    // target): a lucky first-round repair would otherwise retire a heavy
    // tenant early and with it the steady refresh cadence this study times.
    // Badness stays monotone in the objective, so the repair loop's
    // improvement tracking is unaffected.
    for (auto& goal : s.goals) {
      goal.threshold *= 0.01;
    }
  }
  s.heavy = smoke ? 2 : 4;
  s.light = smoke ? 4 : 12;
  s.service_time = smoke ? 0.002 : 0.100;
  const size_t warm_rows = smoke ? 600 : 24000;
  const size_t warm_light_rows = smoke ? 120 : 150;
  const WarmBase base = MakeWarmBase(s.task, 499);
  for (size_t i = 0; i < s.heavy; ++i) {
    s.warm.push_back(DeriveWarmTable(s.task, base, warm_rows, 500 + i));
  }
  for (size_t i = 0; i < s.light; ++i) {
    s.warm_light.push_back(DeriveWarmTable(s.task, base, warm_light_rows, 600 + i));
  }
  return s;
}

// Heavy tenants: refresh every round, and every refresh is expensive —
// generous bootstrap and search knobs so one refresh takes long enough to
// starve the barrier loop's fleet.
DebugOptions HeavyOptions(bool smoke, size_t index) {
  DebugOptions options;
  // The refresh-cost lever is per-test row work (big bootstrap table, deep
  // conditioning), NOT entropic iterations: test cost scales with the
  // shard's rows, so the heavy shards' refreshes are expensive while the
  // light shards' one 8-row bootstrap refresh stays cheap under the same
  // shared model options.
  // A tiny measured bootstrap (the warm table carries the observational
  // diversity) so the refresh chain starts almost immediately; refreshes are
  // spread one per repair round so the scheduler always has light measurement
  // to hide them behind.
  options.initial_samples = smoke ? 40 : 4;
  options.max_iterations = 2;
  options.stall_termination = 1000;
  options.repairs_per_iteration = 2;
  options.model.fci.skeleton.max_cond_size = 3;
  options.model.fci.skeleton.max_subsets = smoke ? 32 : 96;
  options.model.fci.max_pds_cond_size = smoke ? 1 : 2;
  options.model.entropic.latent.restarts = 1;
  options.model.entropic.latent.iterations = 20;
  options.seed = 7 + index;
  return options;
}

// Light tenants: a tiny bootstrap over a small transferred table, then many
// short candidate rounds with periodic cheap relearns — steady fleet demand
// whose scheduler needs are a prompt absorb-and-resubmit and refreshes that
// never queue behind a heavy tenant's.
OptimizeOptions LightOptions(bool smoke, size_t index) {
  OptimizeOptions options;
  options.initial_samples = smoke ? 8 : 4;
  // Single-candidate rounds at a short service time: the scheduler-relevant
  // regime — little in-flight work for the barrier loop's inline refreshes
  // to hide behind, so the baseline pays nearly the full stall, while the
  // pipelined scheduler keeps the fleet fed from the other tenants.
  options.candidates_per_round = smoke ? 4 : 1;
  options.max_iterations = smoke ? 40 : 220;
  options.relearn_every = options.max_iterations + 1;  // bootstrap refresh only
  // Exploration-heavy candidates keep configurations diverse, so the broker
  // cache rarely short-circuits a round and the fleet demand stays real.
  options.explore_probability = smoke ? 0.15 : 0.65;
  options.seed = 113 + index;
  return options;
}

std::unique_ptr<BackendFleet> MakeFleet(const Setup& s) {
  std::vector<std::unique_ptr<MeasurementBackend>> backends;
  for (int b = 0; b < kDevices; ++b) {
    DeviceProfile profile;
    profile.name = "jetson-" + std::to_string(b);
    profile.seed = 800 + static_cast<uint64_t>(b);
    profile.service_time_mean = s.service_time;
    profile.service_time_jitter = 0.3;
    profile.sleep = true;
    backends.push_back(
        MakeDeviceBackend(s.model, Tx2(), DefaultWorkload(), kTaskSeed, std::move(profile)));
  }
  return std::make_unique<BackendFleet>(std::move(backends));
}

// Everything a run must reproduce bit-identically: per-shard table
// fingerprints (same rows in the same order) and the per-policy semantic
// results, plus the deterministic CI-test demand.
struct RunSignature {
  std::vector<uint64_t> fingerprints;  // one per policy, in policy order
  std::vector<DebugResult> heavy;      // trajectories, fixes, sample counts
  std::vector<std::vector<double>> light_best;
  std::vector<double> light_value;
  std::vector<size_t> light_rows;
  long long tests_requested = 0;  // summed over shards; search-path invariant

  bool Matches(const RunSignature& other) const {
    if (fingerprints != other.fingerprints || tests_requested != other.tests_requested ||
        light_best != other.light_best || light_value != other.light_value ||
        light_rows != other.light_rows || heavy.size() != other.heavy.size()) {
      return false;
    }
    for (size_t i = 0; i < heavy.size(); ++i) {
      if (heavy[i].objective_trajectory != other.heavy[i].objective_trajectory ||
          heavy[i].selected_options != other.heavy[i].selected_options ||
          heavy[i].fixed_config != other.heavy[i].fixed_config ||
          heavy[i].measurements_used != other.heavy[i].measurements_used) {
        return false;
      }
    }
    return true;
  }
};

struct RunOutcome {
  double wall_s = 0.0;
  RunSignature signature;
  ShardPoolStats pool;
  BrokerStats broker;
};

enum class Mode { kSync, kBarrier, kPipelined };

// One full mixed campaign with fresh policy instances. kSync drives the
// synchronous RunGrouped loop on a plain pool broker (the fast oracle — same
// rows: harness measurement is pure per configuration); the other modes run
// RunAsyncGrouped over the sleeping fleet with pipeline off/on.
RunOutcome RunCampaign(const Setup& s, bool smoke, Mode mode, int refresh_threads,
                       bool pin) {
  CampaignOptions campaign = ToCampaignOptions(HeavyOptions(smoke, 0));
  campaign.refresh_threads = refresh_threads;
  campaign.pipeline = mode == Mode::kPipelined;
  campaign.pin_refresh_threads = pin;

  std::unique_ptr<CampaignRunner> runner;
  if (mode == Mode::kSync) {
    runner = std::make_unique<CampaignRunner>(s.task, campaign);
  } else {
    runner = std::make_unique<CampaignRunner>(s.task, campaign, MakeFleet(s));
  }

  // Lights first: their small bootstraps measure and model-build while the
  // refresh worker is still idle, so by the time the heavy tenants' big
  // refresh chain starts every light is already in steady measure-absorb
  // cadence. (The shard pool's shortest-job-first dispatch keeps any
  // stragglers safe: a light's millisecond refresh jumps queued heavy
  // refreshes rather than convoying behind them.)
  std::vector<std::unique_ptr<DebugPolicy>> heavies;
  std::vector<std::unique_ptr<OptimizePolicy>> lights;
  std::vector<GroupedPolicy> grouped;
  const std::vector<size_t> objective_vars = {s.goals.front().var};
  for (size_t i = 0; i < s.light; ++i) {
    lights.push_back(std::make_unique<OptimizePolicy>(LightOptions(smoke, i), objective_vars,
                                                      &s.warm_light[i]));
    grouped.push_back(GroupedPolicy{lights.back().get(), "opt-" + std::to_string(i)});
  }
  for (size_t i = 0; i < s.heavy; ++i) {
    heavies.push_back(std::make_unique<DebugPolicy>(HeavyOptions(smoke, i), s.fault->config,
                                                    s.goals, &s.warm[i]));
    grouped.push_back(GroupedPolicy{heavies.back().get(), "debug-" + std::to_string(i)});
  }

  const auto start = Clock::now();
  if (mode == Mode::kSync) {
    runner->RunGrouped(grouped);
  } else {
    runner->RunAsyncGrouped(grouped);
  }

  RunOutcome out;
  out.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  out.pool = runner->pool().stats();
  out.broker = runner->broker().stats();
  const BrokerStats& bs = out.broker;
  size_t heavy_refreshes = 0, light_refreshes = 0;
  for (const auto& policy : heavies) {
    heavy_refreshes += runner->pool().shard(policy->result().shard).stats().refreshes;
  }
  for (const auto& policy : lights) {
    light_refreshes += runner->pool().shard(policy->result().shard).stats().refreshes;
  }
  std::printf("  [diag] wall %.2fs | rows measured %zu (cache hits %zu) | fleet busy "
              "%.2fs (util %.0f%%) | refresh sum %.2fs | overlap %.2fs | refreshes "
              "heavy %zu light %zu\n",
              out.wall_s, bs.measured, bs.cache_hits, bs.busy_seconds,
              out.wall_s > 0.0 ? 100.0 * bs.busy_seconds / (kDevices * out.wall_s) : 0.0,
              out.pool.refresh_seconds, out.pool.overlap_seconds, heavy_refreshes,
              light_refreshes);
  out.signature.tests_requested = out.pool.tests_requested;
  for (const auto& policy : heavies) {
    out.signature.heavy.push_back(policy->result());
    out.signature.fingerprints.push_back(
        runner->pool().shard(policy->result().shard).data_fingerprint());
  }
  for (const auto& policy : lights) {
    const OptimizeResult& r = policy->result();
    out.signature.light_best.push_back(r.best_config);
    out.signature.light_value.push_back(r.best_value);
    out.signature.light_rows.push_back(r.measurements_used);
    out.signature.fingerprints.push_back(
        runner->pool().shard(r.shard).data_fingerprint());
  }
  return out;
}

// --- (c) UNICTBL1 ingest stress ---------------------------------------------

double PeakRssMb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0.0;
  }
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // linux: KiB
}

struct StressResult {
  size_t rows = 0;
  double payload_mb = 0.0;
  double write_s = 0.0;
  double open_s = 0.0;
  double seed_s = 0.0;
  double rows_per_s = 0.0;
  double rss_delta_mb = 0.0;
  bool mapped = false;
  bool ok = false;
  size_t seeded = 0;
};

// Writes a `rows`-row binary table with the streaming writer, then mmap-opens
// and seeds it into a fresh engine. Variables are synthetic (2 options + 4
// observables) so the payload size is controlled by the row count alone.
StressResult RunStress(size_t rows) {
  StressResult r;
  r.rows = rows;
  std::vector<Variable> variables;
  for (int i = 0; i < 2; ++i) {
    Variable v;
    v.name = "opt" + std::to_string(i);
    v.role = VarRole::kOption;
    v.domain = {0.0, 1.0};
    variables.push_back(v);
  }
  for (int i = 0; i < 4; ++i) {
    Variable v;
    v.name = "ev" + std::to_string(i);
    variables.push_back(v);
  }
  const size_t num_vars = variables.size();
  r.payload_mb =
      static_cast<double>(rows * (2 + num_vars) * sizeof(double)) / (1024.0 * 1024.0);
  const std::string path = "/tmp/unicorn_bench_pipeline_stress.utbl";

  {
    BinaryTableWriter writer(2, num_vars);
    Rng rng(9000);
    std::vector<double> config(2), row(num_vars);
    const auto start = Clock::now();
    for (size_t i = 0; i < rows; ++i) {
      config[0] = rng.Uniform();
      config[1] = rng.Uniform();
      row[0] = config[0];
      row[1] = config[1];
      for (size_t v = 2; v < num_vars; ++v) {
        row[v] = config[0] + 0.5 * config[1] + 0.1 * rng.Uniform();
      }
      writer.AddRow(config, row);
    }
    if (!writer.WriteFile(path)) {
      std::remove(path.c_str());
      return r;
    }
    r.write_s = std::chrono::duration<double>(Clock::now() - start).count();
  }  // writer's payload buffer is freed before the load being measured

  const double rss_before = PeakRssMb();
  {
    BinaryTableView view;
    const auto open_start = Clock::now();
    if (!view.Open(path)) {
      std::remove(path.c_str());
      return r;
    }
    r.open_s = std::chrono::duration<double>(Clock::now() - open_start).count();
    r.mapped = view.mapped();
  }
  CausalModelEngine engine(variables);
  const auto seed_start = Clock::now();
  r.seeded = engine.SeedFromFile(path);
  r.seed_s = std::chrono::duration<double>(Clock::now() - seed_start).count();
  r.rows_per_s = r.seed_s > 0.0 ? static_cast<double>(r.seeded) / r.seed_s : 0.0;
  r.rss_delta_mb = std::max(0.0, PeakRssMb() - rss_before);
  std::remove(path.c_str());
  r.ok = r.seeded == rows;
  return r;
}

int RunStudy(bool smoke, const std::string& json_path, const std::string& trace_path,
             const std::string& metrics_path) {
  const Setup s = MakeSetup(smoke);
  if (s.fault == nullptr) {
    std::printf("(no curated fault with root causes; cannot run)\n");
    return 1;
  }
  const size_t tenants = s.heavy + s.light;
  std::printf("=== Pipelined campaign scheduler: %zu tenants (%zu heavy + %zu light) over "
              "%d sleeping devices (%.0fms service), %u visible core(s) ===\n",
              tenants, s.heavy, s.light, kDevices, s.service_time * 1000.0,
              std::thread::hardware_concurrency());

  bench::JsonResults json;
  bool all_identical = true;

  // The oracle: synchronous RunGrouped, plain broker, no sleep.
  const RunOutcome oracle = RunCampaign(s, smoke, Mode::kSync, 1, false);
  std::printf("sync oracle: %.2fs (%lld CI tests)\n", oracle.wall_s,
              oracle.signature.tests_requested);

  // (a) barrier vs pipelined, both over the same sleeping fleet. One refresh
  // worker for the headline: on a single visible core a wider refresh pool
  // only time-slices the same CPU (the sweep's rt=4 cells show the
  // cross-policy coalescing); what rt=1 already buys is the overlap.
  const RunOutcome barrier = RunCampaign(s, smoke, Mode::kBarrier, 1, false);
  const RunOutcome pipelined = RunCampaign(s, smoke, Mode::kPipelined, 1, false);
  const bool barrier_ok = barrier.signature.Matches(oracle.signature);
  const bool pipelined_ok = pipelined.signature.Matches(oracle.signature);
  all_identical = all_identical && barrier_ok && pipelined_ok;
  const double speedup =
      pipelined.wall_s > 0.0 ? barrier.wall_s / pipelined.wall_s : 0.0;
  const double overlap_fraction =
      pipelined.pool.refresh_seconds > 0.0
          ? pipelined.pool.overlap_seconds / pipelined.pool.refresh_seconds
          : 0.0;

  TextTable table({"scheduler", "wall(s)", "speedup", "refresh sum(s)", "overlap(s)",
                   "widest x-policy batch", "bit-identical"});
  table.AddRow({"barrier", FormatDouble(barrier.wall_s, 2), "1.00",
                FormatDouble(barrier.pool.refresh_seconds, 2), "-", "-",
                barrier_ok ? "yes" : "NO (bug)"});
  table.AddRow({"pipelined", FormatDouble(pipelined.wall_s, 2), FormatDouble(speedup, 2),
                FormatDouble(pipelined.pool.refresh_seconds, 2),
                FormatDouble(pipelined.pool.overlap_seconds, 2),
                std::to_string(pipelined.pool.widest_cross_policy_batch),
                pipelined_ok ? "yes" : "NO (bug)"});
  std::printf("%s", table.Render().c_str());
  std::printf("(single-core reading: refresh CPU is identical in both runs; the pipelined\n"
              " win is fleet time the barrier loop wasted — light tenants stall behind\n"
              " heavy inline refreshes there, while the scheduler keeps them measuring.\n"
              " overlap fraction: %.0f%% of refresh wall ran with measurements in flight)\n",
              100.0 * overlap_fraction);
  json.Add("pipeline", "tenants", static_cast<double>(tenants));
  json.Add("pipeline", "devices", kDevices);
  json.Add("pipeline", "barrier_wall_seconds", barrier.wall_s);
  json.Add("pipeline", "pipelined_wall_seconds", pipelined.wall_s);
  json.Add("pipeline", "speedup", speedup);
  json.Add("pipeline", "refresh_sum_seconds", pipelined.pool.refresh_seconds);
  json.Add("pipeline", "overlap_seconds", pipelined.pool.overlap_seconds);
  json.Add("pipeline", "overlap_fraction", overlap_fraction);
  json.Add("pipeline", "widest_cross_policy_batch",
           static_cast<double>(pipelined.pool.widest_cross_policy_batch));
  json.Add("pipeline", "bit_identical", barrier_ok && pipelined_ok ? 1.0 : 0.0);

  // (a2) observability: the identical pipelined run once more with span
  // tracing live end-to-end, a sampler thread reading the fleet's
  // queue-depth/in-flight gauges while it runs, and three gates on the way
  // out — bit-identity (instrumentation must not perturb the schedule),
  // <2% wall overhead versus the untraced run (full mode; both runs sleep
  // through identical seeded device service times, so the comparison is
  // stable), and the trace-derived refresh overlap (sum of dur x
  // overlap_credit over "pool.refresh" spans) agreeing with the pool's own
  // ledger within 5%.
  std::printf("\n=== (a2) observability: traced + metered pipelined run ===\n");
  obs::trace::Clear();
  obs::trace::SetEnabled(true);
  const bool obs_active = obs::trace::Enabled();  // false under UNICORN_NO_OBS
  obs::Gauge* queue_gauge = obs::MetricsRegistry::Global().Gauge("fleet.queue_depth");
  obs::Gauge* inflight_gauge = obs::MetricsRegistry::Global().Gauge("fleet.in_flight");
  obs::Gauge* busy_gauge = obs::MetricsRegistry::Global().Gauge("fleet.busy_seconds");
  std::atomic<bool> sampling{true};
  double max_queue_depth = 0.0, max_in_flight = 0.0;
  size_t gauge_samples = 0;
  std::thread sampler([&] {
    obs::trace::SetThreadName("gauge-sampler");
    while (sampling.load(std::memory_order_relaxed)) {
      const double depth = queue_gauge->Value();
      const double in_flight = inflight_gauge->Value();
      max_queue_depth = std::max(max_queue_depth, depth);
      max_in_flight = std::max(max_in_flight, in_flight);
      ++gauge_samples;
      obs::trace::CounterValue("fleet.queue_depth", depth);
      obs::trace::CounterValue("fleet.in_flight", in_flight);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  const RunOutcome traced = RunCampaign(s, smoke, Mode::kPipelined, 1, false);
  sampling.store(false, std::memory_order_relaxed);
  sampler.join();
  obs::trace::SetEnabled(false);
  const bool traced_ok = traced.signature.Matches(oracle.signature);
  all_identical = all_identical && traced_ok;
  const double obs_overhead =
      pipelined.wall_s > 0.0 ? traced.wall_s / pipelined.wall_s - 1.0 : 0.0;

  // Recompute the scheduler's overlap ledger from the trace alone.
  double derived_overlap = 0.0;
  size_t span_events = 0;
  for (const obs::trace::Event& ev : obs::trace::Collect()) {
    if (ev.phase != 'X') {
      continue;
    }
    ++span_events;
    if (std::strcmp(ev.name, "pool.refresh") != 0) {
      continue;
    }
    for (int k = 0; k < 2; ++k) {
      if (ev.arg_key[k] != nullptr && std::strcmp(ev.arg_key[k], "overlap_credit") == 0) {
        derived_overlap += ev.dur_us * ev.arg_value[k] / 1e6;
      }
    }
  }
  std::printf("traced wall %.2fs (untraced %.2fs, overhead %+.2f%%) | %zu span events | "
              "trace overlap %.2fs vs ledger %.2fs | gauge samples %zu "
              "(max queue depth %.0f, max in-flight %.0f, busy %.2fs)\n",
              traced.wall_s, pipelined.wall_s, 100.0 * obs_overhead, span_events,
              derived_overlap, traced.pool.overlap_seconds, gauge_samples, max_queue_depth,
              max_in_flight, busy_gauge->Value());
  // The deduped stats schemas: the same obs::Fields list feeds the console,
  // the bench JSON, and the registry mirror.
  std::printf("broker %s\n", obs::DumpStatsJson(traced.broker).c_str());
  std::printf("pool %s\n", obs::DumpStatsJson(traced.pool).c_str());
  obs::PublishStats(&obs::MetricsRegistry::Global(), "snapshot.broker", traced.broker);
  obs::PublishStats(&obs::MetricsRegistry::Global(), "snapshot.pool", traced.pool);
  json.Add("obs", "traced_wall_seconds", traced.wall_s);
  json.Add("obs", "overhead_fraction", obs_overhead);
  json.Add("obs", "span_events", static_cast<double>(span_events));
  json.Add("obs", "derived_overlap_seconds", derived_overlap);
  json.Add("obs", "ledger_overlap_seconds", traced.pool.overlap_seconds);
  json.Add("obs", "max_queue_depth", max_queue_depth);
  json.Add("obs", "max_in_flight", max_in_flight);
  json.Add("obs", "gauge_samples", static_cast<double>(gauge_samples));
  json.Add("obs", "bit_identical", traced_ok ? 1.0 : 0.0);
  json.AddStats("traced_broker", traced.broker);
  json.AddStats("traced_pool", traced.pool);
  if (!trace_path.empty()) {
    if (!obs::trace::WriteFile(trace_path)) {
      std::printf("TRACE WRITE FAILED: %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace written to %s (%llu events dropped)\n", trace_path.c_str(),
                static_cast<unsigned long long>(obs::trace::DroppedEvents()));
  }

  // (b) refresh-thread sweep, pipelined. Runs at smoke scale — its gates are
  // bit-identity and the coalescing/overlap ledger across thread counts and
  // pinning, not end-to-end timing, and four full-scale runs would dominate
  // the bench wall. In smoke mode the campaign IS smoke scale, so the
  // headline oracle and the rt=4/pin=off run are reused directly.
  std::printf("\n=== (b) refresh-thread sweep (pipelined, %s scale) ===\n",
              smoke ? "same" : "reduced");
  const Setup sweep_setup = smoke ? Setup{} : MakeSetup(true);
  const Setup& ss = smoke ? s : sweep_setup;
  const RunOutcome sweep_oracle =
      smoke ? oracle : RunCampaign(ss, true, Mode::kSync, 1, false);
  TextTable sweep({"refresh_threads", "pinned", "wall(s)", "overlap(s)",
                   "widest x-policy batch", "bit-identical"});
  size_t widest_any = pipelined.pool.widest_cross_policy_batch;
  for (const int rt : {1, 4}) {
    for (const bool pin : {false, true}) {
      RunOutcome run;
      if (smoke && rt == 1 && !pin) {
        run = pipelined;
      } else {
        run = RunCampaign(ss, true, Mode::kPipelined, rt, pin);
      }
      const bool ok = run.signature.Matches(sweep_oracle.signature);
      all_identical = all_identical && ok;
      widest_any = std::max(widest_any, run.pool.widest_cross_policy_batch);
      sweep.AddRow({std::to_string(rt), pin ? "yes" : "no", FormatDouble(run.wall_s, 2),
                    FormatDouble(run.pool.overlap_seconds, 2),
                    std::to_string(run.pool.widest_cross_policy_batch),
                    ok ? "yes" : "NO (bug)"});
      const std::string section =
          "sweep_rt" + std::to_string(rt) + (pin ? "_pinned" : "_unpinned");
      json.Add(section, "wall_seconds", run.wall_s);
      json.Add(section, "overlap_seconds", run.pool.overlap_seconds);
      json.Add(section, "widest_cross_policy_batch",
               static_cast<double>(run.pool.widest_cross_policy_batch));
      json.Add(section, "bit_identical", ok ? 1.0 : 0.0);
    }
  }
  std::printf("%s", sweep.Render().c_str());

  // (c) ingest stress.
  const size_t stress_rows = smoke ? 120000 : 1200000;
  std::printf("\n=== (c) UNICTBL1 ingest stress: %zu rows ===\n", stress_rows);
  const StressResult stress = RunStress(stress_rows);
  std::printf("payload %.1f MB | write %.2fs | mmap open %.4fs (%s) | seed %.2fs "
              "(%.0f rows/s) | peak-RSS delta %.1f MB\n",
              stress.payload_mb, stress.write_s, stress.open_s,
              stress.mapped ? "mapped" : "copied", stress.seed_s, stress.rows_per_s,
              stress.rss_delta_mb);
  json.Add("stress", "rows", static_cast<double>(stress.rows));
  json.Add("stress", "payload_mb", stress.payload_mb);
  json.Add("stress", "write_seconds", stress.write_s);
  json.Add("stress", "open_seconds", stress.open_s);
  json.Add("stress", "seed_seconds", stress.seed_s);
  json.Add("stress", "rows_per_second", stress.rows_per_s);
  json.Add("stress", "rss_delta_mb", stress.rss_delta_mb);
  json.Add("stress", "mapped", stress.mapped ? 1.0 : 0.0);

  // Self-verification: divergence or a broken ledger fails the binary (CI
  // runs --smoke, so a regression fails the job instead of rotting).
  int failures = 0;
  if (!all_identical) {
    std::printf("BIT-IDENTITY BROKEN: some run diverged from the synchronous oracle\n");
    ++failures;
  }
  if (widest_any < 2) {
    std::printf("COALESCING BROKEN: widest cross-policy refresh batch %zu < 2\n",
                widest_any);
    ++failures;
  }
  if (pipelined.pool.overlap_seconds <= 0.0) {
    std::printf("OVERLAP LEDGER BROKEN: no refresh time overlapped in-flight rows\n");
    ++failures;
  }
  // The ledger credits engine-internal seconds and the pool clamps the
  // report, so overlap can never exceed the refresh sum it is a fraction of.
  if (overlap_fraction > 1.0) {
    std::printf("OVERLAP LEDGER BROKEN: overlap fraction %.7f > 1\n", overlap_fraction);
    ++failures;
  }
  if (!stress.ok || stress.seeded != stress_rows) {
    std::printf("STRESS BROKEN: seeded %zu of %zu rows\n", stress.seeded, stress_rows);
    ++failures;
  }
  // Generous absolute bounds; the RSS gate trips on a ~5x per-entry
  // materialization regression, not on noise.
  if (stress.open_s > 1.0 || stress.rss_delta_mb > 2.0 * stress.payload_mb + 64.0 ||
      stress.seed_s > (smoke ? 30.0 : 120.0)) {
    std::printf("STRESS BOUNDS EXCEEDED: open %.2fs, seed %.2fs, rss delta %.1f MB\n",
                stress.open_s, stress.seed_s, stress.rss_delta_mb);
    ++failures;
  }
  if (!smoke && speedup < 1.8) {
    std::printf("SPEEDUP BELOW GATE: %.2fx < 1.8x\n", speedup);
    ++failures;
  }
  if (obs_active) {
    // Instrumentation gates: tracing everything end-to-end must stay in the
    // noise, and the trace must reproduce the scheduler's overlap ledger.
    if (!smoke && obs_overhead > 0.02) {
      std::printf("OBS OVERHEAD ABOVE GATE: %+.2f%% > 2%%\n", 100.0 * obs_overhead);
      ++failures;
    }
    if (traced.pool.overlap_seconds > 0.0 &&
        std::abs(derived_overlap - traced.pool.overlap_seconds) >
            0.05 * traced.pool.overlap_seconds) {
      std::printf("TRACE OVERLAP MISMATCH: derived %.3fs vs ledger %.3fs (>5%%)\n",
                  derived_overlap, traced.pool.overlap_seconds);
      ++failures;
    }
    if (span_events == 0) {
      std::printf("TRACE EMPTY: no span events recorded in the traced run\n");
      ++failures;
    }
  }
  if (failures > 0) {
    return 1;
  }
  const std::string speedup_note =
      smoke ? std::string() : ", speedup " + FormatDouble(speedup, 2) + "x";
  std::printf("\nverified: bit-identical to the synchronous oracle in every mode, widest "
              "cross-policy refresh batch %zu, overlap %.2fs%s\n",
              widest_any, pipelined.pool.overlap_seconds, speedup_note.c_str());

  if (!metrics_path.empty()) {
    if (!obs::MetricsRegistry::Global().WriteJsonFile(metrics_path)) {
      std::printf("METRICS WRITE FAILED: %s\n", metrics_path.c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
  }
  if (!json_path.empty() && !json.WriteFile(json_path, "table_pipeline")) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace unicorn

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path, trace_path, metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    }
  }
  return unicorn::RunStudy(smoke, json_path, trace_path, metrics_path);
}
