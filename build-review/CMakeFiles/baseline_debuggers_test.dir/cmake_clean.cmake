file(REMOVE_RECURSE
  "CMakeFiles/baseline_debuggers_test.dir/tests/baseline_debuggers_test.cc.o"
  "CMakeFiles/baseline_debuggers_test.dir/tests/baseline_debuggers_test.cc.o.d"
  "baseline_debuggers_test"
  "baseline_debuggers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_debuggers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
