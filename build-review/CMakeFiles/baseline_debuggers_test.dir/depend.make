# Empty dependencies file for baseline_debuggers_test.
# This may be replaced when dependencies are built.
