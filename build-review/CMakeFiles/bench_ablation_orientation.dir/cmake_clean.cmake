file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_orientation.dir/bench/ablation_orientation.cc.o"
  "CMakeFiles/bench_ablation_orientation.dir/bench/ablation_orientation.cc.o.d"
  "bench_ablation_orientation"
  "bench_ablation_orientation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_orientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
