file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_confounder.dir/bench/fig01_confounder.cc.o"
  "CMakeFiles/bench_fig01_confounder.dir/bench/fig01_confounder.cc.o.d"
  "bench_fig01_confounder"
  "bench_fig01_confounder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_confounder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
