# Empty compiler generated dependencies file for bench_fig01_confounder.
# This may be replaced when dependencies are built.
