file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_distribution.dir/bench/fig03_distribution.cc.o"
  "CMakeFiles/bench_fig03_distribution.dir/bench/fig03_distribution.cc.o.d"
  "bench_fig03_distribution"
  "bench_fig03_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
