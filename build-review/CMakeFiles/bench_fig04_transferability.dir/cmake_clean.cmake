file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_transferability.dir/bench/fig04_transferability.cc.o"
  "CMakeFiles/bench_fig04_transferability.dir/bench/fig04_transferability.cc.o.d"
  "bench_fig04_transferability"
  "bench_fig04_transferability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_transferability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
