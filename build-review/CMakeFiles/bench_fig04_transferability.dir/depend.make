# Empty dependencies file for bench_fig04_transferability.
# This may be replaced when dependencies are built.
