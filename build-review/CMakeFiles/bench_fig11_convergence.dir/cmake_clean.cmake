file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_convergence.dir/bench/fig11_convergence.cc.o"
  "CMakeFiles/bench_fig11_convergence.dir/bench/fig11_convergence.cc.o.d"
  "bench_fig11_convergence"
  "bench_fig11_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
