# Empty dependencies file for bench_fig11_convergence.
# This may be replaced when dependencies are built.
