file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_fault_distribution.dir/bench/fig13_fault_distribution.cc.o"
  "CMakeFiles/bench_fig13_fault_distribution.dir/bench/fig13_fault_distribution.cc.o.d"
  "bench_fig13_fault_distribution"
  "bench_fig13_fault_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_fault_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
