# Empty compiler generated dependencies file for bench_fig13_fault_distribution.
# This may be replaced when dependencies are built.
