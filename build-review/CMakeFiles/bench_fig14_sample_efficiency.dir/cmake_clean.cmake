file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_sample_efficiency.dir/bench/fig14_sample_efficiency.cc.o"
  "CMakeFiles/bench_fig14_sample_efficiency.dir/bench/fig14_sample_efficiency.cc.o.d"
  "bench_fig14_sample_efficiency"
  "bench_fig14_sample_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_sample_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
