# Empty compiler generated dependencies file for bench_fig14_sample_efficiency.
# This may be replaced when dependencies are built.
