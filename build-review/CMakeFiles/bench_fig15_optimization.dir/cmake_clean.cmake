file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_optimization.dir/bench/fig15_optimization.cc.o"
  "CMakeFiles/bench_fig15_optimization.dir/bench/fig15_optimization.cc.o.d"
  "bench_fig15_optimization"
  "bench_fig15_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
