# Empty dependencies file for bench_fig15_optimization.
# This may be replaced when dependencies are built.
