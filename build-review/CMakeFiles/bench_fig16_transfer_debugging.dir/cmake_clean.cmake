file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_transfer_debugging.dir/bench/fig16_transfer_debugging.cc.o"
  "CMakeFiles/bench_fig16_transfer_debugging.dir/bench/fig16_transfer_debugging.cc.o.d"
  "bench_fig16_transfer_debugging"
  "bench_fig16_transfer_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_transfer_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
