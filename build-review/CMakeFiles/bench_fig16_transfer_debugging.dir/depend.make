# Empty dependencies file for bench_fig16_transfer_debugging.
# This may be replaced when dependencies are built.
