file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_workload_transfer.dir/bench/fig17_workload_transfer.cc.o"
  "CMakeFiles/bench_fig17_workload_transfer.dir/bench/fig17_workload_transfer.cc.o.d"
  "bench_fig17_workload_transfer"
  "bench_fig17_workload_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_workload_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
