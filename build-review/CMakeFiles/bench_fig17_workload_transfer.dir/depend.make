# Empty dependencies file for bench_fig17_workload_transfer.
# This may be replaced when dependencies are built.
