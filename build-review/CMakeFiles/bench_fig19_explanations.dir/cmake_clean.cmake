file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_explanations.dir/bench/fig19_explanations.cc.o"
  "CMakeFiles/bench_fig19_explanations.dir/bench/fig19_explanations.cc.o.d"
  "bench_fig19_explanations"
  "bench_fig19_explanations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_explanations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
