# Empty compiler generated dependencies file for bench_fig19_explanations.
# This may be replaced when dependencies are built.
