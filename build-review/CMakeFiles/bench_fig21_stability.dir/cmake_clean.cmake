file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_stability.dir/bench/fig21_stability.cc.o"
  "CMakeFiles/bench_fig21_stability.dir/bench/fig21_stability.cc.o.d"
  "bench_fig21_stability"
  "bench_fig21_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
