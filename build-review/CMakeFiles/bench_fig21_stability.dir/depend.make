# Empty dependencies file for bench_fig21_stability.
# This may be replaced when dependencies are built.
