file(REMOVE_RECURSE
  "CMakeFiles/bench_table14_heat_faults.dir/bench/table14_heat_faults.cc.o"
  "CMakeFiles/bench_table14_heat_faults.dir/bench/table14_heat_faults.cc.o.d"
  "bench_table14_heat_faults"
  "bench_table14_heat_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table14_heat_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
