# Empty dependencies file for bench_table14_heat_faults.
# This may be replaced when dependencies are built.
