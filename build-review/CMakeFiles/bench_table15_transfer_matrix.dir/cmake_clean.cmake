file(REMOVE_RECURSE
  "CMakeFiles/bench_table15_transfer_matrix.dir/bench/table15_transfer_matrix.cc.o"
  "CMakeFiles/bench_table15_transfer_matrix.dir/bench/table15_transfer_matrix.cc.o.d"
  "bench_table15_transfer_matrix"
  "bench_table15_transfer_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table15_transfer_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
