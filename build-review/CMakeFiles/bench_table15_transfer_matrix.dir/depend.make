# Empty dependencies file for bench_table15_transfer_matrix.
# This may be replaced when dependencies are built.
