file(REMOVE_RECURSE
  "CMakeFiles/bench_table2a_debugging.dir/bench/table2a_debugging.cc.o"
  "CMakeFiles/bench_table2a_debugging.dir/bench/table2a_debugging.cc.o.d"
  "bench_table2a_debugging"
  "bench_table2a_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2a_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
