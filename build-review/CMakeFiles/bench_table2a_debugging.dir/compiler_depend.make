# Empty compiler generated dependencies file for bench_table2a_debugging.
# This may be replaced when dependencies are built.
