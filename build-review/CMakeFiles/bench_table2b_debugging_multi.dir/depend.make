# Empty dependencies file for bench_table2b_debugging_multi.
# This may be replaced when dependencies are built.
