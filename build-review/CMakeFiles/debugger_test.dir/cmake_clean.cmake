file(REMOVE_RECURSE
  "CMakeFiles/debugger_test.dir/tests/debugger_test.cc.o"
  "CMakeFiles/debugger_test.dir/tests/debugger_test.cc.o.d"
  "debugger_test"
  "debugger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
