file(REMOVE_RECURSE
  "CMakeFiles/effects_test.dir/tests/effects_test.cc.o"
  "CMakeFiles/effects_test.dir/tests/effects_test.cc.o.d"
  "effects_test"
  "effects_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effects_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
