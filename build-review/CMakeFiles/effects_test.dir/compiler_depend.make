# Empty compiler generated dependencies file for effects_test.
# This may be replaced when dependencies are built.
