file(REMOVE_RECURSE
  "CMakeFiles/entropic_test.dir/tests/entropic_test.cc.o"
  "CMakeFiles/entropic_test.dir/tests/entropic_test.cc.o.d"
  "entropic_test"
  "entropic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entropic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
