# Empty compiler generated dependencies file for entropic_test.
# This may be replaced when dependencies are built.
