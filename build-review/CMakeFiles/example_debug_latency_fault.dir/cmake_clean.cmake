file(REMOVE_RECURSE
  "CMakeFiles/example_debug_latency_fault.dir/examples/debug_latency_fault.cpp.o"
  "CMakeFiles/example_debug_latency_fault.dir/examples/debug_latency_fault.cpp.o.d"
  "example_debug_latency_fault"
  "example_debug_latency_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_debug_latency_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
