# Empty dependencies file for example_debug_latency_fault.
# This may be replaced when dependencies are built.
