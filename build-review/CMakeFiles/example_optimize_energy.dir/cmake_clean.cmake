file(REMOVE_RECURSE
  "CMakeFiles/example_optimize_energy.dir/examples/optimize_energy.cpp.o"
  "CMakeFiles/example_optimize_energy.dir/examples/optimize_energy.cpp.o.d"
  "example_optimize_energy"
  "example_optimize_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_optimize_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
