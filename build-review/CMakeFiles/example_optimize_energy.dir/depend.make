# Empty dependencies file for example_optimize_energy.
# This may be replaced when dependencies are built.
