file(REMOVE_RECURSE
  "CMakeFiles/example_transfer_model.dir/examples/transfer_model.cpp.o"
  "CMakeFiles/example_transfer_model.dir/examples/transfer_model.cpp.o.d"
  "example_transfer_model"
  "example_transfer_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_transfer_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
