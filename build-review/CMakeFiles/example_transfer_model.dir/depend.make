# Empty dependencies file for example_transfer_model.
# This may be replaced when dependencies are built.
