file(REMOVE_RECURSE
  "CMakeFiles/fci_oracle_test.dir/tests/fci_oracle_test.cc.o"
  "CMakeFiles/fci_oracle_test.dir/tests/fci_oracle_test.cc.o.d"
  "fci_oracle_test"
  "fci_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fci_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
