file(REMOVE_RECURSE
  "CMakeFiles/fci_test.dir/tests/fci_test.cc.o"
  "CMakeFiles/fci_test.dir/tests/fci_test.cc.o.d"
  "fci_test"
  "fci_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
