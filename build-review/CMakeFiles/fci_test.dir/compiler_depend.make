# Empty compiler generated dependencies file for fci_test.
# This may be replaced when dependencies are built.
