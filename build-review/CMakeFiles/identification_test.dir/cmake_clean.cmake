file(REMOVE_RECURSE
  "CMakeFiles/identification_test.dir/tests/identification_test.cc.o"
  "CMakeFiles/identification_test.dir/tests/identification_test.cc.o.d"
  "identification_test"
  "identification_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
