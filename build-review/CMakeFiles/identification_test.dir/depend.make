# Empty dependencies file for identification_test.
# This may be replaced when dependencies are built.
