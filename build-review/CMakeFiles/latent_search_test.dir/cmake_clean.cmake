file(REMOVE_RECURSE
  "CMakeFiles/latent_search_test.dir/tests/latent_search_test.cc.o"
  "CMakeFiles/latent_search_test.dir/tests/latent_search_test.cc.o.d"
  "latent_search_test"
  "latent_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latent_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
