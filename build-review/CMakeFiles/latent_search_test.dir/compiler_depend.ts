# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for latent_search_test.
