# Empty dependencies file for latent_search_test.
# This may be replaced when dependencies are built.
