file(REMOVE_RECURSE
  "CMakeFiles/measurement_broker_test.dir/tests/measurement_broker_test.cc.o"
  "CMakeFiles/measurement_broker_test.dir/tests/measurement_broker_test.cc.o.d"
  "measurement_broker_test"
  "measurement_broker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measurement_broker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
