# Empty compiler generated dependencies file for measurement_broker_test.
# This may be replaced when dependencies are built.
