file(REMOVE_RECURSE
  "CMakeFiles/model_learner_test.dir/tests/model_learner_test.cc.o"
  "CMakeFiles/model_learner_test.dir/tests/model_learner_test.cc.o.d"
  "model_learner_test"
  "model_learner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
