# Empty dependencies file for model_learner_test.
# This may be replaced when dependencies are built.
