file(REMOVE_RECURSE
  "CMakeFiles/skeleton_test.dir/tests/skeleton_test.cc.o"
  "CMakeFiles/skeleton_test.dir/tests/skeleton_test.cc.o.d"
  "skeleton_test"
  "skeleton_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skeleton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
