# Empty dependencies file for skeleton_test.
# This may be replaced when dependencies are built.
