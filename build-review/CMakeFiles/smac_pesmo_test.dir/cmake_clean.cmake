file(REMOVE_RECURSE
  "CMakeFiles/smac_pesmo_test.dir/tests/smac_pesmo_test.cc.o"
  "CMakeFiles/smac_pesmo_test.dir/tests/smac_pesmo_test.cc.o.d"
  "smac_pesmo_test"
  "smac_pesmo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smac_pesmo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
