# Empty dependencies file for smac_pesmo_test.
# This may be replaced when dependencies are built.
