file(REMOVE_RECURSE
  "CMakeFiles/special_test.dir/tests/special_test.cc.o"
  "CMakeFiles/special_test.dir/tests/special_test.cc.o.d"
  "special_test"
  "special_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/special_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
