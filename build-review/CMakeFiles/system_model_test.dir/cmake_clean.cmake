file(REMOVE_RECURSE
  "CMakeFiles/system_model_test.dir/tests/system_model_test.cc.o"
  "CMakeFiles/system_model_test.dir/tests/system_model_test.cc.o.d"
  "system_model_test"
  "system_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
