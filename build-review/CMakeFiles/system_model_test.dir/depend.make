# Empty dependencies file for system_model_test.
# This may be replaced when dependencies are built.
