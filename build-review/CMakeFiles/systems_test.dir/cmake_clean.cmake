file(REMOVE_RECURSE
  "CMakeFiles/systems_test.dir/tests/systems_test.cc.o"
  "CMakeFiles/systems_test.dir/tests/systems_test.cc.o.d"
  "systems_test"
  "systems_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
