file(REMOVE_RECURSE
  "CMakeFiles/unicorn_bench_common.dir/bench/common.cc.o"
  "CMakeFiles/unicorn_bench_common.dir/bench/common.cc.o.d"
  "libunicorn_bench_common.a"
  "libunicorn_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicorn_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
