file(REMOVE_RECURSE
  "libunicorn_bench_common.a"
)
