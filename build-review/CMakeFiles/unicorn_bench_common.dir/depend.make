# Empty dependencies file for unicorn_bench_common.
# This may be replaced when dependencies are built.
