
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bugdoc.cc" "CMakeFiles/unicorn_core.dir/src/baselines/bugdoc.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/baselines/bugdoc.cc.o.d"
  "/root/repo/src/baselines/cbi.cc" "CMakeFiles/unicorn_core.dir/src/baselines/cbi.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/baselines/cbi.cc.o.d"
  "/root/repo/src/baselines/dd.cc" "CMakeFiles/unicorn_core.dir/src/baselines/dd.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/baselines/dd.cc.o.d"
  "/root/repo/src/baselines/decision_tree.cc" "CMakeFiles/unicorn_core.dir/src/baselines/decision_tree.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/baselines/decision_tree.cc.o.d"
  "/root/repo/src/baselines/encore.cc" "CMakeFiles/unicorn_core.dir/src/baselines/encore.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/baselines/encore.cc.o.d"
  "/root/repo/src/baselines/pesmo.cc" "CMakeFiles/unicorn_core.dir/src/baselines/pesmo.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/baselines/pesmo.cc.o.d"
  "/root/repo/src/baselines/random_forest.cc" "CMakeFiles/unicorn_core.dir/src/baselines/random_forest.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/baselines/random_forest.cc.o.d"
  "/root/repo/src/baselines/smac.cc" "CMakeFiles/unicorn_core.dir/src/baselines/smac.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/baselines/smac.cc.o.d"
  "/root/repo/src/causal/constraints.cc" "CMakeFiles/unicorn_core.dir/src/causal/constraints.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/causal/constraints.cc.o.d"
  "/root/repo/src/causal/counterfactual.cc" "CMakeFiles/unicorn_core.dir/src/causal/counterfactual.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/causal/counterfactual.cc.o.d"
  "/root/repo/src/causal/effects.cc" "CMakeFiles/unicorn_core.dir/src/causal/effects.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/causal/effects.cc.o.d"
  "/root/repo/src/causal/entropic.cc" "CMakeFiles/unicorn_core.dir/src/causal/entropic.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/causal/entropic.cc.o.d"
  "/root/repo/src/causal/fci.cc" "CMakeFiles/unicorn_core.dir/src/causal/fci.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/causal/fci.cc.o.d"
  "/root/repo/src/causal/identification.cc" "CMakeFiles/unicorn_core.dir/src/causal/identification.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/causal/identification.cc.o.d"
  "/root/repo/src/causal/latent_search.cc" "CMakeFiles/unicorn_core.dir/src/causal/latent_search.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/causal/latent_search.cc.o.d"
  "/root/repo/src/causal/skeleton.cc" "CMakeFiles/unicorn_core.dir/src/causal/skeleton.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/causal/skeleton.cc.o.d"
  "/root/repo/src/eval/harness.cc" "CMakeFiles/unicorn_core.dir/src/eval/harness.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/eval/harness.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "CMakeFiles/unicorn_core.dir/src/eval/metrics.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/eval/metrics.cc.o.d"
  "/root/repo/src/graph/algorithms.cc" "CMakeFiles/unicorn_core.dir/src/graph/algorithms.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/mixed_graph.cc" "CMakeFiles/unicorn_core.dir/src/graph/mixed_graph.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/graph/mixed_graph.cc.o.d"
  "/root/repo/src/stats/ci_cache.cc" "CMakeFiles/unicorn_core.dir/src/stats/ci_cache.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/stats/ci_cache.cc.o.d"
  "/root/repo/src/stats/correlation.cc" "CMakeFiles/unicorn_core.dir/src/stats/correlation.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/stats/correlation.cc.o.d"
  "/root/repo/src/stats/discretize.cc" "CMakeFiles/unicorn_core.dir/src/stats/discretize.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/stats/discretize.cc.o.d"
  "/root/repo/src/stats/entropy.cc" "CMakeFiles/unicorn_core.dir/src/stats/entropy.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/stats/entropy.cc.o.d"
  "/root/repo/src/stats/independence.cc" "CMakeFiles/unicorn_core.dir/src/stats/independence.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/stats/independence.cc.o.d"
  "/root/repo/src/stats/linalg.cc" "CMakeFiles/unicorn_core.dir/src/stats/linalg.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/stats/linalg.cc.o.d"
  "/root/repo/src/stats/regression.cc" "CMakeFiles/unicorn_core.dir/src/stats/regression.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/stats/regression.cc.o.d"
  "/root/repo/src/stats/special.cc" "CMakeFiles/unicorn_core.dir/src/stats/special.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/stats/special.cc.o.d"
  "/root/repo/src/stats/table.cc" "CMakeFiles/unicorn_core.dir/src/stats/table.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/stats/table.cc.o.d"
  "/root/repo/src/sysmodel/faults.cc" "CMakeFiles/unicorn_core.dir/src/sysmodel/faults.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/sysmodel/faults.cc.o.d"
  "/root/repo/src/sysmodel/system_model.cc" "CMakeFiles/unicorn_core.dir/src/sysmodel/system_model.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/sysmodel/system_model.cc.o.d"
  "/root/repo/src/sysmodel/systems.cc" "CMakeFiles/unicorn_core.dir/src/sysmodel/systems.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/sysmodel/systems.cc.o.d"
  "/root/repo/src/unicorn/campaign.cc" "CMakeFiles/unicorn_core.dir/src/unicorn/campaign.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/unicorn/campaign.cc.o.d"
  "/root/repo/src/unicorn/debugger.cc" "CMakeFiles/unicorn_core.dir/src/unicorn/debugger.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/unicorn/debugger.cc.o.d"
  "/root/repo/src/unicorn/measurement_broker.cc" "CMakeFiles/unicorn_core.dir/src/unicorn/measurement_broker.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/unicorn/measurement_broker.cc.o.d"
  "/root/repo/src/unicorn/model_learner.cc" "CMakeFiles/unicorn_core.dir/src/unicorn/model_learner.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/unicorn/model_learner.cc.o.d"
  "/root/repo/src/unicorn/optimizer.cc" "CMakeFiles/unicorn_core.dir/src/unicorn/optimizer.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/unicorn/optimizer.cc.o.d"
  "/root/repo/src/unicorn/query.cc" "CMakeFiles/unicorn_core.dir/src/unicorn/query.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/unicorn/query.cc.o.d"
  "/root/repo/src/util/csv.cc" "CMakeFiles/unicorn_core.dir/src/util/csv.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/util/csv.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/unicorn_core.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/util/rng.cc.o.d"
  "/root/repo/src/util/text_table.cc" "CMakeFiles/unicorn_core.dir/src/util/text_table.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/util/text_table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/unicorn_core.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/unicorn_core.dir/src/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
