file(REMOVE_RECURSE
  "libunicorn_core.a"
)
