# Empty compiler generated dependencies file for unicorn_core.
# This may be replaced when dependencies are built.
