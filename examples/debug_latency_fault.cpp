// Example: debugging a non-functional fault end to end.
//
// Mirrors the paper's §5 workflow: a Deepstream-style video analytics
// pipeline on TX2 shows a tail-latency fault; Unicorn learns a causal
// performance model, ranks causal paths, scores counterfactual repairs by
// ICE, and measures only the most promising fixes.
// Run with `--trace out.json` / `--metrics out.json` to capture a Perfetto
// trace of the refresh phases and the process metrics snapshot
// (docs/OBSERVABILITY.md).
#include <cstdio>

#include "eval/harness.h"
#include "eval/metrics.h"
#include "obs/cli.h"
#include "obs/stats_export.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"
#include "unicorn/debugger.h"

using namespace unicorn;

int main(int argc, char** argv) {
  obs::Cli obs_cli;
  obs_cli.Scan(argc, argv);
  obs_cli.Begin();
  SystemSpec spec;
  spec.num_events = 12;
  auto system = std::make_shared<SystemModel>(BuildSystem(SystemId::kDeepstream, spec));
  const Environment env = Tx2();

  // Curate the fault ground truth: sample the space, label the 97th pct tail.
  Rng rng(7);
  const FaultCuration curation =
      CurateFaults(*system, env, DefaultWorkload(), 2000, &rng, 0.97);
  DataTable meta(system->variables());
  const size_t latency = *meta.IndexOf(kLatencyName);
  const auto latency_faults = FaultsOn(curation, latency);
  if (latency_faults.empty()) {
    std::printf("no latency faults in this sample\n");
    return 1;
  }
  const Fault& fault = latency_faults.front();
  std::printf("observed fault: latency = %.1f (99th pct threshold %.1f)\n",
              fault.measurement[latency], curation.thresholds[0]);
  std::printf("true root causes (ground truth):");
  for (size_t cause : fault.root_causes) {
    std::printf(" %s", system->variables()[cause].name.c_str());
  }
  std::printf("\n\n");

  // Run the Unicorn debugging loop.
  const PerformanceTask task = MakeSimulatedTask(system, env, DefaultWorkload(), 8);
  DebugOptions options;
  options.initial_samples = 25;
  options.max_iterations = 25;
  options.model.fci.skeleton.alpha = 0.1;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  // Measurement plane: fan each bootstrap/repair batch out over 4 threads
  // (rows are bit-identical to a serial run) and dedup repeat configs.
  options.broker.num_threads = 4;
  UnicornDebugger debugger(task, options);
  const auto goals = GoalsForFault(curation, fault);
  std::printf("QoS goal: latency <= %.1f\n", goals[0].threshold);
  const DebugResult result = debugger.Debug(fault.config, goals);

  std::printf("fixed: %s after %zu measurements\n", result.fixed ? "yes" : "no",
              result.measurements_used);
  std::printf("latency after fix: %.1f (gain %.0f%% over the fault)\n",
              result.fixed_measurement[latency],
              Gain(fault.measurement[latency], result.fixed_measurement[latency]));
  std::printf("diagnosed root causes:");
  for (size_t cause : result.predicted_root_causes) {
    std::printf(" %s", system->variables()[cause].name.c_str());
  }
  std::printf("\nrecall vs ground truth: %.0f%%\n",
              100.0 * Recall(result.predicted_root_causes, fault.root_causes));
  // The broker ledger in its one canonical schema (obs::Fields — the same
  // field list the benches serialize).
  std::printf("measurement plane: %s\n", obs::DumpStatsJson(result.broker_stats).c_str());
  return obs_cli.End();
}
