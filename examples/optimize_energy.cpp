// Example: multi-objective performance optimization.
//
// Finds latency/energy trade-offs for an image-recognition system on TX2
// using Unicorn's causal-effect-guided search, and prints the resulting
// Pareto front (paper Fig. 15 d).
#include <algorithm>
#include <cstdio>

#include "eval/harness.h"
#include "eval/metrics.h"
#include "sysmodel/systems.h"
#include "unicorn/optimizer.h"

using namespace unicorn;

int main() {
  SystemSpec spec;
  spec.num_events = 12;
  auto system = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));
  const PerformanceTask task = MakeSimulatedTask(system, Tx2(), DefaultWorkload(), 99);

  DataTable meta(system->variables());
  const size_t latency = *meta.IndexOf(kLatencyName);
  const size_t energy = *meta.IndexOf(kEnergyName);

  OptimizeOptions options;
  options.initial_samples = 25;
  options.max_iterations = 100;
  options.relearn_every = 15;
  options.model.fci.skeleton.alpha = 0.1;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  UnicornOptimizer optimizer(task, options);
  const OptimizeResult result = optimizer.MinimizeMulti({latency, energy});

  std::printf("evaluated %zu configurations\n", result.measurements_used);
  std::vector<std::pair<double, double>> points;
  for (const auto& objectives : result.evaluated) {
    points.push_back({objectives[0], objectives[1]});
  }
  const auto front = ParetoFront2D(points);
  std::printf("Pareto front (%zu points):\n", front.size());
  std::printf("%10s %10s\n", "latency", "energy");
  for (const auto& p : front) {
    std::printf("%10.2f %10.2f\n", p.first, p.second);
  }
  std::printf("\nbest equal-weight configuration: scalarized value %.2f\n", result.best_value);
  return 0;
}
