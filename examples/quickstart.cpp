// Quickstart: learn a causal performance model from measurements and ask it
// interventional questions.
//
//   1. deploy a configurable system (here: the simulated x264 on TX2),
//   2. measure a few hundred random configurations,
//   3. learn the causal performance model (FCI + entropic resolution),
//   4. estimate performance queries with do-calculus:
//        P(latency <= 25 | do(buffer_size = 6000))
//        E(energy | do(bitrate = 2000))
//
// Run with `--trace out.json` to capture a Perfetto-compatible trace of the
// discovery phases (skeleton levels, FCI orientation, entropic resolution)
// and `--metrics out.json` for the process metrics snapshot.
#include <cstdio>

#include "causal/effects.h"
#include "obs/cli.h"
#include "sysmodel/systems.h"
#include "unicorn/model_learner.h"
#include "unicorn/query.h"

using namespace unicorn;

int main(int argc, char** argv) {
  obs::Cli obs_cli;
  obs_cli.Scan(argc, argv);
  obs_cli.Begin();
  // A configurable system deployed on a hardware platform.
  SystemSpec spec;
  spec.num_events = 12;
  const SystemModel system = BuildSystem(SystemId::kX264, spec);
  const Environment env = Tx2();

  // Measure 300 random configurations (5 replicates each, median kept).
  Rng rng(2024);
  std::vector<std::vector<double>> configs;
  for (int i = 0; i < 300; ++i) {
    configs.push_back(system.SampleConfig(&rng));
  }
  const DataTable data = system.MeasureMany(configs, env, DefaultWorkload(), &rng);
  std::printf("measured %zu configurations of %s (%zu options, %zu events)\n",
              data.NumRows(), system.name().c_str(), system.OptionIndices().size(),
              system.EventIndices().size());

  // Learn the causal performance model.
  const LearnedModel model = LearnCausalPerformanceModel(data);
  std::printf("learned ADMG: %zu edges, avg degree %.2f, %lld independence tests\n",
              model.admg.NumEdges(), model.admg.AverageDegree(), model.independence_tests);

  // What drives latency? Rank the causal paths.
  const CausalEffectEstimator estimator(model.admg, data);
  const size_t latency = *data.IndexOf(kLatencyName);
  std::printf("\ntop causal paths into latency:\n");
  for (const auto& ranked : estimator.RankPaths({latency}, 5)) {
    std::printf("  [ACE %.3f] ", ranked.path_ace);
    for (size_t i = 0; i < ranked.nodes.size(); ++i) {
      std::printf("%s%s", i ? " -> " : "", data.Var(ranked.nodes[i]).name.c_str());
    }
    std::printf("\n");
  }

  // Ask interventional queries in the textual query language.
  for (const char* text : {"P(latency <= 25 | do(buffer_size=6000))",
                           "E(energy | do(bitrate=2000))",
                           "E(energy | do(bitrate=5000))"}) {
    const auto query = ParseQuery(text, data);
    if (!query.has_value()) {
      std::printf("could not parse: %s\n", text);
      continue;
    }
    const QueryAnswer answer = EstimateQuery(estimator, *query);
    std::printf("%-45s = %.3f%s\n", text, answer.value,
                answer.is_probability ? "" : " (expectation)");
  }
  return obs_cli.End();
}
