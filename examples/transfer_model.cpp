// Example: transferring a causal performance model across hardware.
//
// Learns from measurements on Xavier (source), then debugs an energy fault
// on TX2 (target) reusing the source data plus a handful of fresh samples —
// the paper's §8 "Unicorn + 25" scenario.
#include <cstdio>

#include "eval/harness.h"
#include "eval/metrics.h"
#include "sysmodel/faults.h"
#include "sysmodel/systems.h"
#include "unicorn/debugger.h"

using namespace unicorn;

int main() {
  SystemSpec spec;
  spec.num_events = 12;
  auto system = std::make_shared<SystemModel>(BuildSystem(SystemId::kXception, spec));

  // Source environment: measure 150 configurations on Xavier.
  Rng src_rng(11);
  std::vector<std::vector<double>> src_configs;
  for (int i = 0; i < 150; ++i) {
    src_configs.push_back(system->SampleConfig(&src_rng));
  }
  const DataTable source =
      system->MeasureMany(src_configs, Xavier(), DefaultWorkload(), &src_rng);
  std::printf("source (Xavier) dataset: %zu rows\n", source.NumRows());

  // Target environment: an energy fault appears on TX2.
  Rng tgt_rng(12);
  const FaultCuration curation =
      CurateFaults(*system, Tx2(), DefaultWorkload(), 1500, &tgt_rng, 0.97);
  DataTable meta(system->variables());
  const size_t energy = *meta.IndexOf(kEnergyName);
  const auto faults = FaultsOn(curation, energy);
  if (faults.empty()) {
    std::printf("no energy fault found\n");
    return 1;
  }
  const Fault& fault = faults.front();
  std::printf("target (TX2) fault: energy = %.1f\n", fault.measurement[energy]);

  // Debug on the target, warm-started with the source data: only 25 fresh
  // target measurements are budgeted for the bootstrap.
  const PerformanceTask task = MakeSimulatedTask(system, Tx2(), DefaultWorkload(), 13);
  DebugOptions options;
  options.initial_samples = 25;
  options.max_iterations = 20;
  options.model.fci.skeleton.alpha = 0.1;
  options.model.fci.skeleton.max_cond_size = 2;
  options.model.fci.max_pds_cond_size = 1;
  options.model.entropic.latent.restarts = 1;
  UnicornDebugger debugger(task, options);
  const DebugResult result =
      debugger.Debug(fault.config, GoalsForFault(curation, fault), &source);

  std::printf("fixed: %s with %zu fresh target measurements\n", result.fixed ? "yes" : "no",
              result.measurements_used);
  std::printf("model provenance: %zu reused source rows, %zu fresh target rows\n",
              result.source_rows, result.target_rows);
  std::printf("energy after fix: %.1f (gain %.0f%%)\n", result.fixed_measurement[energy],
              Gain(fault.measurement[energy], result.fixed_measurement[energy]));
  std::printf("diagnosis recall vs ground truth: %.0f%%\n",
              100.0 * Recall(result.predicted_root_causes, fault.root_causes));
  return 0;
}
