#include "baselines/bugdoc.h"

#include <algorithm>
#include <cmath>

#include "baselines/decision_tree.h"

namespace unicorn {
namespace {

// Picks a domain value for option `pos` satisfying the split constraint.
double SatisfySplit(const Variable& var, double threshold, bool go_left, double fallback) {
  // go_left means value <= threshold.
  const auto& domain = var.domain;
  if (domain.empty()) {
    return fallback;
  }
  if (var.type == VarType::kContinuous) {
    const double lo = domain.front();
    const double hi = domain.back();
    return go_left ? std::min(threshold, hi) : std::min(hi, std::max(threshold + 1e-6, lo));
  }
  double best = fallback;
  bool found = false;
  for (double v : domain) {
    const bool ok = go_left ? v <= threshold : v > threshold;
    if (ok) {
      best = v;
      found = true;
      if (go_left) {
        // keep the largest satisfying value; continue scanning
      } else {
        break;  // smallest satisfying value
      }
    }
  }
  return found ? best : fallback;
}

}  // namespace

BaselineDebugResult BugDocDebug(const PerformanceTask& task,
                                const std::vector<double>& fault_config,
                                const std::vector<ObjectiveGoal>& goals,
                                const BaselineDebugOptions& options) {
  Rng rng(options.seed);
  BaselineDebugResult result;

  std::vector<std::vector<double>> configs;
  std::vector<double> labels;  // 1 = fail
  std::vector<std::vector<double>> rows;

  auto add = [&](std::vector<double> config) {
    auto row = task.measure(config);
    ++result.measurements_used;
    labels.push_back(DebugGoalsMet(row, goals) ? 0.0 : 1.0);
    rows.push_back(row);
    configs.push_back(std::move(config));
    return rows.size() - 1;
  };

  add(fault_config);
  const size_t bootstrap = options.sample_budget / 2;
  for (size_t i = 1; i < bootstrap; ++i) {
    add(task.sample_config(&rng));
  }

  std::vector<double> best_config = fault_config;
  std::vector<double> best_row = rows[0];
  double best_badness = DebugBadness(rows[0], goals);
  DecisionTree tree;

  while (result.measurements_used + 1 < options.sample_budget) {
    // Fit the debugging decision tree on pass/fail.
    std::vector<size_t> all_rows(configs.size());
    for (size_t i = 0; i < all_rows.size(); ++i) {
      all_rows[i] = i;
    }
    TreeOptions tree_options;
    tree_options.max_depth = 6;
    tree.Fit(configs, labels, all_rows, tree_options, &rng);

    // Propose the configuration of the purest, most supported passing leaf,
    // filled in from the faulty configuration.
    auto leaves = tree.Leaves();
    std::sort(leaves.begin(), leaves.end(),
              [](const DecisionTree::LeafInfo& a, const DecisionTree::LeafInfo& b) {
                if (a.value != b.value) {
                  return a.value < b.value;  // lower fail probability first
                }
                return a.count > b.count;
              });
    bool proposed = false;
    for (const auto& leaf : leaves) {
      std::vector<double> candidate = fault_config;
      for (const auto& split : leaf.path) {
        candidate[split.feature] =
            SatisfySplit(task.variables[task.option_vars[split.feature]], split.threshold,
                         split.left, candidate[split.feature]);
      }
      if (std::find(configs.begin(), configs.end(), candidate) != configs.end()) {
        continue;  // already measured; try the next leaf
      }
      const size_t idx = add(candidate);
      const double badness = DebugBadness(rows[idx], goals);
      if (badness < best_badness) {
        best_badness = badness;
        best_config = candidate;
        best_row = rows[idx];
      }
      proposed = true;
      break;
    }
    if (!proposed || best_badness <= 0.0) {
      break;
    }
  }

  // Explanation: the splits along the faulty configuration's decision path.
  for (const auto& split : tree.DecisionPath(fault_config)) {
    const size_t var = task.option_vars[split.feature];
    if (std::find(result.predicted_root_causes.begin(), result.predicted_root_causes.end(),
                  var) == result.predicted_root_causes.end()) {
      result.predicted_root_causes.push_back(var);
    }
  }
  std::sort(result.predicted_root_causes.begin(), result.predicted_root_causes.end());

  result.fixed = best_badness <= 0.0;
  result.fixed_config = best_config;
  result.fixed_measurement = best_row;
  return result;
}

}  // namespace unicorn
