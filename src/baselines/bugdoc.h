// BugDoc: decision-tree root-cause inference for computational pipelines
// (Lourenço, Freire, Shasha — SIGMOD'20).
//
// Iteratively fits a pass/fail decision tree over the sampled configurations,
// explains the fault by the splits on the faulty configuration's decision
// path, and proposes the configuration of the purest passing leaf. New
// measurements from each proposal refine the tree.
#ifndef UNICORN_BASELINES_BUGDOC_H_
#define UNICORN_BASELINES_BUGDOC_H_

#include "baselines/debug_common.h"

namespace unicorn {

BaselineDebugResult BugDocDebug(const PerformanceTask& task,
                                const std::vector<double>& fault_config,
                                const std::vector<ObjectiveGoal>& goals,
                                const BaselineDebugOptions& options = {});

}  // namespace unicorn

#endif  // UNICORN_BASELINES_BUGDOC_H_
