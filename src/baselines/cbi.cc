#include "baselines/cbi.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/discretize.h"
#include "unicorn/campaign.h"

namespace unicorn {

// Thin aliases onto the campaign layer's shared goal predicates (the
// baselines predate them and every caller uses these names).
bool DebugGoalsMet(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals) {
  return GoalsMet(row, goals);
}

double DebugBadness(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals) {
  return GoalViolation(row, goals);
}

BaselineDebugResult CbiDebug(const PerformanceTask& task,
                             const std::vector<double>& fault_config,
                             const std::vector<ObjectiveGoal>& goals,
                             const BaselineDebugOptions& options) {
  Rng rng(options.seed);
  BaselineDebugResult result;

  // Phase 1: gather labelled runs (80% of the budget).
  const size_t explore = options.sample_budget * 4 / 5;
  std::vector<std::vector<double>> configs;
  std::vector<std::vector<double>> rows;
  std::vector<bool> fail;
  configs.push_back(fault_config);
  rows.push_back(task.measure(fault_config));
  ++result.measurements_used;
  fail.push_back(true);
  for (size_t i = 1; i < explore; ++i) {
    auto config = task.sample_config(&rng);
    auto row = task.measure(config);
    ++result.measurements_used;
    fail.push_back(!DebugGoalsMet(row, goals));
    configs.push_back(std::move(config));
    rows.push_back(std::move(row));
  }

  size_t total_fail = 0;
  for (bool f : fail) {
    total_fail += f ? 1 : 0;
  }
  const double context =
      static_cast<double>(total_fail) / static_cast<double>(fail.size());

  // Phase 2: score predicates (option == level).
  struct Predicate {
    size_t option_pos;
    double level;
    double importance;
  };
  std::vector<Predicate> predicates;
  for (size_t i = 0; i < task.option_vars.size(); ++i) {
    // Distinct observed values of this option.
    std::map<double, std::pair<size_t, size_t>> counts;  // level -> (fail, pass)
    for (size_t r = 0; r < configs.size(); ++r) {
      auto& c = counts[configs[r][i]];
      if (fail[r]) {
        ++c.first;
      } else {
        ++c.second;
      }
    }
    for (const auto& [level, fs] : counts) {
      const auto [f, s] = fs;
      if (f + s == 0 || f == 0) {
        continue;
      }
      const double failure = static_cast<double>(f) / static_cast<double>(f + s);
      const double increase = failure - context;
      if (increase <= 0.0) {
        continue;
      }
      // Importance: harmonic mean of Increase and normalized log-failures.
      const double log_f =
          total_fail > 1 ? std::log(static_cast<double>(f)) /
                               std::log(static_cast<double>(total_fail))
                         : 1.0;
      const double importance = 2.0 / (1.0 / increase + 1.0 / std::max(log_f, 1e-6));
      predicates.push_back({i, level, importance});
    }
  }
  std::sort(predicates.begin(), predicates.end(),
            [](const Predicate& a, const Predicate& b) { return a.importance > b.importance; });

  // Root causes: options of the top predicates that also match the faulty
  // configuration's values.
  std::vector<size_t> cause_positions;
  for (const auto& p : predicates) {
    if (fault_config[p.option_pos] != p.level) {
      continue;
    }
    if (std::find(cause_positions.begin(), cause_positions.end(), p.option_pos) ==
        cause_positions.end()) {
      cause_positions.push_back(p.option_pos);
    }
    if (cause_positions.size() >= 8) {
      break;
    }
  }
  for (size_t pos : cause_positions) {
    result.predicted_root_causes.push_back(task.option_vars[pos]);
  }
  std::sort(result.predicted_root_causes.begin(), result.predicted_root_causes.end());

  // Phase 3: fix = implicated options set to their most common value among
  // passing runs; verify with the remaining budget.
  std::vector<double> candidate = fault_config;
  for (size_t pos : cause_positions) {
    std::map<double, size_t> votes;
    for (size_t r = 0; r < configs.size(); ++r) {
      if (!fail[r]) {
        ++votes[configs[r][pos]];
      }
    }
    double best_value = fault_config[pos];
    size_t best_votes = 0;
    for (const auto& [value, n] : votes) {
      if (n > best_votes) {
        best_votes = n;
        best_value = value;
      }
    }
    candidate[pos] = best_value;
  }
  auto fixed_row = task.measure(candidate);
  ++result.measurements_used;
  result.fixed = DebugGoalsMet(fixed_row, goals);
  result.fixed_config = candidate;
  result.fixed_measurement = fixed_row;

  // Fall back to the best passing sample if the constructed fix fails.
  if (!result.fixed) {
    double best_badness = DebugBadness(fixed_row, goals);
    for (size_t r = 0; r < configs.size(); ++r) {
      const double badness = DebugBadness(rows[r], goals);
      if (badness < best_badness) {
        best_badness = badness;
        result.fixed_config = configs[r];
        result.fixed_measurement = rows[r];
        result.fixed = badness <= 0.0;
      }
    }
  }
  return result;
}

}  // namespace unicorn
