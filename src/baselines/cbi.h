// CBI: statistical debugging via predicate ranking (Song & Lu, "Statistical
// Debugging for Real-World Performance Problems", OOPSLA'14).
//
// Predicates are (option == level) atoms over the sampled runs; each is
// scored with the classic CBI estimates
//   Failure(P)  = F(P) / (F(P) + S(P))
//   Context(P)  = F(P observed) / (F + S observed)   (= global failure rate
//                 here, since configuration predicates are always observed)
//   Increase(P) = Failure(P) - Context(P)
// and ranked by the harmonic-mean Importance score. The top-ranked options
// are reported as root causes, and the fix assigns them the values most
// common among passing runs.
#ifndef UNICORN_BASELINES_CBI_H_
#define UNICORN_BASELINES_CBI_H_

#include "baselines/debug_common.h"

namespace unicorn {

BaselineDebugResult CbiDebug(const PerformanceTask& task,
                             const std::vector<double>& fault_config,
                             const std::vector<ObjectiveGoal>& goals,
                             const BaselineDebugOptions& options = {});

}  // namespace unicorn

#endif  // UNICORN_BASELINES_CBI_H_
