#include "baselines/dd.h"

#include <algorithm>

namespace unicorn {
namespace {

// Applies the subset of diffs (indices into `diff_positions`) onto fault.
std::vector<double> ApplyDiffs(const std::vector<double>& fault_config,
                               const std::vector<double>& pass_config,
                               const std::vector<size_t>& diff_positions,
                               const std::vector<size_t>& subset) {
  std::vector<double> out = fault_config;
  for (size_t idx : subset) {
    const size_t pos = diff_positions[idx];
    out[pos] = pass_config[pos];
  }
  return out;
}

}  // namespace

BaselineDebugResult DdDebug(const PerformanceTask& task,
                            const std::vector<double>& fault_config,
                            const std::vector<ObjectiveGoal>& goals,
                            const BaselineDebugOptions& options) {
  Rng rng(options.seed);
  BaselineDebugResult result;

  // Find a passing configuration.
  std::vector<double> pass_config;
  std::vector<double> pass_row;
  while (result.measurements_used < options.sample_budget / 2) {
    auto config = task.sample_config(&rng);
    auto row = task.measure(config);
    ++result.measurements_used;
    if (DebugGoalsMet(row, goals)) {
      pass_config = std::move(config);
      pass_row = std::move(row);
      break;
    }
    // Track the least-bad sample as fallback.
    if (result.fixed_measurement.empty() ||
        DebugBadness(row, goals) < DebugBadness(result.fixed_measurement, goals)) {
      result.fixed_config = config;
      result.fixed_measurement = row;
    }
  }
  if (pass_config.empty()) {
    // Budget exhausted without a passing run.
    if (result.fixed_config.empty()) {
      result.fixed_config = fault_config;
      result.fixed_measurement = task.measure(fault_config);
      ++result.measurements_used;
    }
    return result;
  }

  // Differing option positions.
  std::vector<size_t> diffs;
  for (size_t i = 0; i < fault_config.size(); ++i) {
    if (fault_config[i] != pass_config[i]) {
      diffs.push_back(i);
    }
  }

  // ddmin over subsets of diffs: find a minimal subset whose application
  // fixes the fault. Start with all diffs (known to pass).
  std::vector<size_t> current(diffs.size());
  for (size_t i = 0; i < diffs.size(); ++i) {
    current[i] = i;
  }
  std::vector<double> current_row = pass_row;
  size_t granularity = 2;
  while (current.size() > 1 && result.measurements_used < options.sample_budget) {
    const size_t chunk = std::max<size_t>(1, current.size() / granularity);
    bool reduced = false;
    // Try complements: remove one chunk at a time.
    for (size_t start = 0; start < current.size() && !reduced; start += chunk) {
      std::vector<size_t> complement;
      for (size_t i = 0; i < current.size(); ++i) {
        if (i < start || i >= start + chunk) {
          complement.push_back(current[i]);
        }
      }
      if (complement.empty()) {
        continue;
      }
      const auto candidate = ApplyDiffs(fault_config, pass_config, diffs, complement);
      const auto row = task.measure(candidate);
      ++result.measurements_used;
      if (DebugGoalsMet(row, goals)) {
        current = complement;
        current_row = row;
        granularity = std::max<size_t>(2, granularity - 1);
        reduced = true;
      }
      if (result.measurements_used >= options.sample_budget) {
        break;
      }
    }
    if (!reduced) {
      if (granularity >= current.size()) {
        break;
      }
      granularity = std::min(current.size(), granularity * 2);
    }
  }

  result.fixed = true;
  result.fixed_config = ApplyDiffs(fault_config, pass_config, diffs, current);
  result.fixed_measurement = current_row;
  for (size_t idx : current) {
    result.predicted_root_causes.push_back(task.option_vars[diffs[idx]]);
  }
  std::sort(result.predicted_root_causes.begin(), result.predicted_root_causes.end());
  return result;
}

}  // namespace unicorn
