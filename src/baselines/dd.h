// DD: iterative delta debugging (Artho 2011; Zeller's ddmin).
//
// Finds a passing configuration, then minimizes the set of option changes
// between the faulty and the passing configuration that is needed to make
// the fault disappear. Each candidate subset costs one measurement.
#ifndef UNICORN_BASELINES_DD_H_
#define UNICORN_BASELINES_DD_H_

#include "baselines/debug_common.h"

namespace unicorn {

BaselineDebugResult DdDebug(const PerformanceTask& task,
                            const std::vector<double>& fault_config,
                            const std::vector<ObjectiveGoal>& goals,
                            const BaselineDebugOptions& options = {});

}  // namespace unicorn

#endif  // UNICORN_BASELINES_DD_H_
