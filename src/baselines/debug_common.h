// Shared types for the debugging baselines (CBI, DD, EnCore, BugDoc).
//
// Every baseline gets the same interface as Unicorn's debugger — a
// PerformanceTask, a faulty configuration, QoS goals, and a measurement
// budget — and returns the same result shape so the evaluation harness can
// compare them head-to-head (paper Table 2).
#ifndef UNICORN_BASELINES_DEBUG_COMMON_H_
#define UNICORN_BASELINES_DEBUG_COMMON_H_

#include <vector>

#include "causal/counterfactual.h"
#include "unicorn/task.h"

namespace unicorn {

struct BaselineDebugOptions {
  // Total measurement budget (the stand-in for the paper's 4-hour cap).
  size_t sample_budget = 150;
  uint64_t seed = 99;
};

struct BaselineDebugResult {
  bool fixed = false;
  std::vector<double> fixed_config;
  std::vector<double> fixed_measurement;
  std::vector<size_t> predicted_root_causes;  // global variable indices
  size_t measurements_used = 0;
};

// True when `row` satisfies every goal. Alias of the campaign layer's
// GoalsMet (unicorn/campaign.h), kept under the baseline naming.
bool DebugGoalsMet(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals);

// Max relative goal violation of `row` (<= 0 when all goals met). Alias of
// the campaign layer's GoalViolation.
double DebugBadness(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals);

}  // namespace unicorn

#endif  // UNICORN_BASELINES_DEBUG_COMMON_H_
