#include "baselines/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

namespace unicorn {
namespace {

double Mean(const std::vector<double>& y, const std::vector<size_t>& rows) {
  if (rows.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (size_t r : rows) {
    acc += y[r];
  }
  return acc / static_cast<double>(rows.size());
}

double Sse(const std::vector<double>& y, const std::vector<size_t>& rows, double mean) {
  double acc = 0.0;
  for (size_t r : rows) {
    const double d = y[r] - mean;
    acc += d * d;
  }
  return acc;
}

}  // namespace

void DecisionTree::Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
                       const std::vector<size_t>& rows, const TreeOptions& options, Rng* rng) {
  nodes_.clear();
  if (rows.empty()) {
    return;
  }
  Build(x, y, rows, 0, options, rng);
}

int DecisionTree::Build(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
                        std::vector<size_t> rows, int depth, const TreeOptions& options,
                        Rng* rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_id)].value = Mean(y, rows);
  nodes_[static_cast<size_t>(node_id)].count = rows.size();

  if (depth >= options.max_depth || rows.size() < options.min_samples_split) {
    return node_id;
  }
  const double parent_sse = Sse(y, rows, nodes_[static_cast<size_t>(node_id)].value);
  if (parent_sse <= 1e-12) {
    return node_id;
  }

  const size_t num_features = x.empty() ? 0 : x[0].size();
  std::vector<size_t> features(num_features);
  std::iota(features.begin(), features.end(), size_t{0});
  if (options.feature_subsample > 0 && options.feature_subsample < num_features &&
      rng != nullptr) {
    rng->Shuffle(&features);
    features.resize(options.feature_subsample);
  }

  size_t best_feature = 0;
  double best_threshold = 0.0;
  double best_gain = 1e-9;
  for (size_t f : features) {
    // Candidate thresholds: midpoints between sorted distinct values.
    std::vector<double> values;
    values.reserve(rows.size());
    for (size_t r : rows) {
      values.push_back(x[r][f]);
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() < 2) {
      continue;
    }
    for (size_t i = 0; i + 1 < values.size(); ++i) {
      const double threshold = 0.5 * (values[i] + values[i + 1]);
      double sum_l = 0.0;
      double sum_r = 0.0;
      size_t n_l = 0;
      size_t n_r = 0;
      for (size_t r : rows) {
        if (x[r][f] <= threshold) {
          sum_l += y[r];
          ++n_l;
        } else {
          sum_r += y[r];
          ++n_r;
        }
      }
      if (n_l == 0 || n_r == 0) {
        continue;
      }
      const double mean_l = sum_l / static_cast<double>(n_l);
      const double mean_r = sum_r / static_cast<double>(n_r);
      double sse = 0.0;
      for (size_t r : rows) {
        const double m = x[r][f] <= threshold ? mean_l : mean_r;
        const double d = y[r] - m;
        sse += d * d;
      }
      const double gain = parent_sse - sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = threshold;
      }
    }
  }
  if (best_gain <= 1e-9) {
    return node_id;
  }

  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  for (size_t r : rows) {
    if (x[r][best_feature] <= best_threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  rows.clear();
  rows.shrink_to_fit();

  nodes_[static_cast<size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<size_t>(node_id)].threshold = best_threshold;
  const int left = Build(x, y, std::move(left_rows), depth + 1, options, rng);
  nodes_[static_cast<size_t>(node_id)].left = left;
  const int right = Build(x, y, std::move(right_rows), depth + 1, options, rng);
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::Predict(const std::vector<double>& features) const {
  if (nodes_.empty()) {
    return 0.0;
  }
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].left != -1) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    node = features[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

std::vector<DecisionTree::Split> DecisionTree::DecisionPath(
    const std::vector<double>& features) const {
  std::vector<Split> path;
  if (nodes_.empty()) {
    return path;
  }
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].left != -1) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    const bool left = features[n.feature] <= n.threshold;
    path.push_back({n.feature, n.threshold, left});
    node = left ? n.left : n.right;
  }
  return path;
}

std::vector<DecisionTree::LeafInfo> DecisionTree::Leaves() const {
  std::vector<LeafInfo> leaves;
  if (nodes_.empty()) {
    return leaves;
  }
  std::vector<Split> path;
  std::function<void(int)> walk = [&](int node) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    if (n.left == -1) {
      leaves.push_back({path, n.value, n.count});
      return;
    }
    path.push_back({n.feature, n.threshold, true});
    walk(n.left);
    path.back().left = false;
    walk(n.right);
    path.pop_back();
  };
  walk(0);
  return leaves;
}

}  // namespace unicorn
