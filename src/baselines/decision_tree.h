// CART decision trees (substrate for BugDoc and the random forest).
#ifndef UNICORN_BASELINES_DECISION_TREE_H_
#define UNICORN_BASELINES_DECISION_TREE_H_

#include <memory>
#include <vector>

#include "util/rng.h"

namespace unicorn {

struct TreeOptions {
  int max_depth = 8;
  size_t min_samples_split = 4;
  // Number of features tried per split; 0 = all.
  size_t feature_subsample = 0;
};

// Binary-split regression/classification tree on dense double features.
class DecisionTree {
 public:
  // Fits targets (regression; use 0/1 targets for classification by
  // probability). `rows` indexes into x/y; rng used for feature subsampling
  // (may be null when feature_subsample == 0).
  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
           const std::vector<size_t>& rows, const TreeOptions& options, Rng* rng);

  double Predict(const std::vector<double>& features) const;

  // The decision path for a prediction: list of (feature, threshold,
  // went_left). Used by BugDoc to turn fail leaves into explanations.
  struct Split {
    size_t feature = 0;
    double threshold = 0.0;
    bool left = false;
  };
  std::vector<Split> DecisionPath(const std::vector<double>& features) const;

  // Enumerates all leaves as (path, leaf value, leaf sample count).
  struct LeafInfo {
    std::vector<Split> path;
    double value = 0.0;
    size_t count = 0;
  };
  std::vector<LeafInfo> Leaves() const;

  bool Empty() const { return nodes_.empty(); }

 private:
  struct Node {
    int left = -1;   // -1 = leaf
    int right = -1;
    size_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;
    size_t count = 0;
  };

  int Build(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
            std::vector<size_t> rows, int depth, const TreeOptions& options, Rng* rng);

  std::vector<Node> nodes_;
};

}  // namespace unicorn

#endif  // UNICORN_BASELINES_DECISION_TREE_H_
