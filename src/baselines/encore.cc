#include "baselines/encore.h"

#include <algorithm>
#include <map>

namespace unicorn {

BaselineDebugResult EncoreDebug(const PerformanceTask& task,
                                const std::vector<double>& fault_config,
                                const std::vector<ObjectiveGoal>& goals,
                                const BaselineDebugOptions& options) {
  Rng rng(options.seed);
  BaselineDebugResult result;

  const size_t explore = options.sample_budget * 4 / 5;
  std::vector<std::vector<double>> configs;
  std::vector<std::vector<double>> rows;
  std::vector<bool> fail;
  configs.push_back(fault_config);
  rows.push_back(task.measure(fault_config));
  ++result.measurements_used;
  fail.push_back(true);
  for (size_t i = 1; i < explore; ++i) {
    auto config = task.sample_config(&rng);
    auto row = task.measure(config);
    ++result.measurements_used;
    fail.push_back(!DebugGoalsMet(row, goals));
    configs.push_back(std::move(config));
    rows.push_back(std::move(row));
  }
  const size_t n = configs.size();
  size_t total_fail = 0;
  for (bool f : fail) {
    total_fail += f ? 1 : 0;
  }
  const double base_rate = static_cast<double>(total_fail) / static_cast<double>(n);

  // Association rules: atom (option == value) -> fail, scored by lift
  // confidence / base_rate, with a minimum support.
  struct Rule {
    std::vector<size_t> positions;  // 1 or 2 options
    double lift;
  };
  std::vector<Rule> rules;
  const size_t min_support = std::max<size_t>(2, n / 50);

  auto score_atom = [&](const std::vector<size_t>& positions) {
    size_t support = 0;
    size_t fail_support = 0;
    for (size_t r = 0; r < n; ++r) {
      bool match = true;
      for (size_t pos : positions) {
        if (configs[r][pos] != fault_config[pos]) {
          match = false;
          break;
        }
      }
      if (match) {
        ++support;
        fail_support += fail[r] ? 1 : 0;
      }
    }
    if (support < min_support || base_rate <= 0.0) {
      return 0.0;
    }
    const double confidence =
        static_cast<double>(fail_support) / static_cast<double>(support);
    return confidence / base_rate;
  };

  for (size_t i = 0; i < task.option_vars.size(); ++i) {
    const double lift = score_atom({i});
    if (lift > 1.2) {
      rules.push_back({{i}, lift});
    }
  }
  // Pairwise rules over the strongest singles.
  std::vector<Rule> singles = rules;
  std::sort(singles.begin(), singles.end(),
            [](const Rule& a, const Rule& b) { return a.lift > b.lift; });
  const size_t pair_pool = std::min<size_t>(10, singles.size());
  for (size_t a = 0; a < pair_pool; ++a) {
    for (size_t b = a + 1; b < pair_pool; ++b) {
      const std::vector<size_t> pair = {singles[a].positions[0], singles[b].positions[0]};
      const double lift = score_atom(pair);
      if (lift > 1.5) {
        rules.push_back({pair, lift});
      }
    }
  }
  std::sort(rules.begin(), rules.end(),
            [](const Rule& a, const Rule& b) { return a.lift > b.lift; });

  std::vector<size_t> cause_positions;
  for (const auto& rule : rules) {
    for (size_t pos : rule.positions) {
      if (std::find(cause_positions.begin(), cause_positions.end(), pos) ==
          cause_positions.end()) {
        cause_positions.push_back(pos);
      }
    }
    if (cause_positions.size() >= 8) {
      break;
    }
  }
  for (size_t pos : cause_positions) {
    result.predicted_root_causes.push_back(task.option_vars[pos]);
  }
  std::sort(result.predicted_root_causes.begin(), result.predicted_root_causes.end());

  // Fix: rewrite flagged options to the value with the highest pass rate.
  std::vector<double> candidate = fault_config;
  for (size_t pos : cause_positions) {
    std::map<double, std::pair<size_t, size_t>> counts;  // value -> (pass, total)
    for (size_t r = 0; r < n; ++r) {
      auto& c = counts[configs[r][pos]];
      c.second += 1;
      c.first += fail[r] ? 0 : 1;
    }
    double best_value = fault_config[pos];
    double best_rate = -1.0;
    for (const auto& [value, pt] : counts) {
      if (pt.second < min_support) {
        continue;
      }
      const double rate = static_cast<double>(pt.first) / static_cast<double>(pt.second);
      if (rate > best_rate) {
        best_rate = rate;
        best_value = value;
      }
    }
    candidate[pos] = best_value;
  }
  auto fixed_row = task.measure(candidate);
  ++result.measurements_used;
  result.fixed = DebugGoalsMet(fixed_row, goals);
  result.fixed_config = candidate;
  result.fixed_measurement = fixed_row;
  if (!result.fixed) {
    double best_badness = DebugBadness(fixed_row, goals);
    for (size_t r = 0; r < n; ++r) {
      const double badness = DebugBadness(rows[r], goals);
      if (badness < best_badness) {
        best_badness = badness;
        result.fixed_config = configs[r];
        result.fixed_measurement = rows[r];
        result.fixed = badness <= 0.0;
      }
    }
  }
  return result;
}

}  // namespace unicorn
