// EnCore: misconfiguration detection from correlational rules (Zhang et al.,
// ASPLOS'14).
//
// Learns association rules between option-value atoms (and pairs) and the
// fail label from sampled runs; atoms whose rules have high confidence and
// lift are flagged as misconfigurations. The fix rewrites flagged options to
// the value with the highest pass-confidence.
#ifndef UNICORN_BASELINES_ENCORE_H_
#define UNICORN_BASELINES_ENCORE_H_

#include "baselines/debug_common.h"

namespace unicorn {

BaselineDebugResult EncoreDebug(const PerformanceTask& task,
                                const std::vector<double>& fault_config,
                                const std::vector<ObjectiveGoal>& goals,
                                const BaselineDebugOptions& options = {});

}  // namespace unicorn

#endif  // UNICORN_BASELINES_ENCORE_H_
