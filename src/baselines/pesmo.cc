#include "baselines/pesmo.h"

#include <algorithm>
#include <limits>

namespace unicorn {

PesmoResult PesmoMinimize(const PerformanceTask& task,
                          const std::vector<size_t>& objective_vars,
                          const PesmoOptions& options) {
  Rng rng(options.seed);
  PesmoResult result;

  std::vector<std::vector<double>> x;
  std::vector<std::vector<double>> y;  // y[o] = values of objective o

  y.resize(objective_vars.size());
  auto evaluate = [&](const std::vector<double>& config) {
    const auto row = task.measure(config);
    ++result.measurements_used;
    std::vector<double> objs;
    for (size_t o = 0; o < objective_vars.size(); ++o) {
      const double v = row[objective_vars[o]];
      y[o].push_back(v);
      objs.push_back(v);
    }
    x.push_back(config);
    result.evaluated.push_back(std::move(objs));
    result.configs.push_back(config);
  };

  for (size_t i = 0; i < options.initial_samples; ++i) {
    evaluate(task.sample_config(&rng));
  }

  std::vector<RandomForest> forests(objective_vars.size());
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    for (size_t o = 0; o < objective_vars.size(); ++o) {
      forests[o].Fit(x, y[o], options.forest, &rng);
    }
    // Random (Tchebycheff-flavoured) scalarization weights for this step.
    std::vector<double> weights(objective_vars.size());
    double total = 0.0;
    for (auto& w : weights) {
      w = rng.Uniform(0.05, 1.0);
      total += w;
    }
    for (auto& w : weights) {
      w /= total;
    }
    // Normalization scales so objectives are comparable.
    std::vector<double> scale(objective_vars.size(), 1.0);
    for (size_t o = 0; o < objective_vars.size(); ++o) {
      const auto [mn, mx] = std::minmax_element(y[o].begin(), y[o].end());
      scale[o] = std::max(1e-9, *mx - *mn);
    }
    // Incumbent under this scalarization.
    double best_scalar = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < x.size(); ++r) {
      double s = 0.0;
      for (size_t o = 0; o < objective_vars.size(); ++o) {
        s += weights[o] * y[o][r] / scale[o];
      }
      best_scalar = std::min(best_scalar, s);
    }
    // EI over the candidate pool.
    std::vector<double> best_candidate;
    double best_ei = -1.0;
    for (size_t c = 0; c < options.candidates_per_step; ++c) {
      auto candidate = task.sample_config(&rng);
      double mean = 0.0;
      double variance = 0.0;
      for (size_t o = 0; o < objective_vars.size(); ++o) {
        double m = 0.0;
        double v = 0.0;
        forests[o].PredictWithVariance(candidate, &m, &v);
        const double w = weights[o] / scale[o];
        mean += w * m;
        variance += w * w * v;
      }
      const double ei = ExpectedImprovement(mean, variance, best_scalar);
      if (ei > best_ei) {
        best_ei = ei;
        best_candidate = std::move(candidate);
      }
    }
    evaluate(best_candidate);
  }
  return result;
}

}  // namespace unicorn
