// PESMO-like multi-objective Bayesian optimization.
//
// The paper compares against PESMO (Hernández-Lobato et al., ICML'16), which
// uses GP surrogates and predictive entropy search. GP machinery is
// orthogonal to the comparison; this implementation keeps the architecture
// (per-objective surrogate + information-driven acquisition over a candidate
// pool + Pareto archive) with random-forest surrogates and random-scalarized
// expected improvement (ParEGO-style) as the acquisition. See DESIGN.md
// (substitution table).
#ifndef UNICORN_BASELINES_PESMO_H_
#define UNICORN_BASELINES_PESMO_H_

#include "baselines/random_forest.h"
#include "unicorn/task.h"

namespace unicorn {

struct PesmoOptions {
  size_t initial_samples = 25;
  size_t max_iterations = 200;
  size_t candidates_per_step = 50;
  ForestOptions forest;
  uint64_t seed = 31;
};

struct PesmoResult {
  std::vector<std::vector<double>> evaluated;  // objective vectors, in order
  std::vector<std::vector<double>> configs;
  size_t measurements_used = 0;
};

PesmoResult PesmoMinimize(const PerformanceTask& task,
                          const std::vector<size_t>& objective_vars,
                          const PesmoOptions& options = {});

}  // namespace unicorn

#endif  // UNICORN_BASELINES_PESMO_H_
