#include "baselines/random_forest.h"

#include <cmath>

#include "stats/special.h"

namespace unicorn {

void RandomForest::Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
                       const ForestOptions& options, Rng* rng) {
  trees_.assign(options.num_trees, DecisionTree());
  const size_t n = x.size();
  TreeOptions tree_options = options.tree;
  if (tree_options.feature_subsample == 0 && !x.empty()) {
    tree_options.feature_subsample =
        static_cast<size_t>(std::max(1.0, std::sqrt(static_cast<double>(x[0].size()))));
  }
  for (auto& tree : trees_) {
    // Bootstrap sample.
    std::vector<size_t> rows(n);
    for (size_t i = 0; i < n; ++i) {
      rows[i] = static_cast<size_t>(rng->UniformInt(static_cast<uint64_t>(n)));
    }
    tree.Fit(x, y, rows, tree_options, rng);
  }
}

double RandomForest::Predict(const std::vector<double>& features) const {
  if (trees_.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (const auto& tree : trees_) {
    acc += tree.Predict(features);
  }
  return acc / static_cast<double>(trees_.size());
}

void RandomForest::PredictWithVariance(const std::vector<double>& features, double* mean,
                                       double* variance) const {
  *mean = 0.0;
  *variance = 0.0;
  if (trees_.empty()) {
    return;
  }
  std::vector<double> preds;
  preds.reserve(trees_.size());
  for (const auto& tree : trees_) {
    preds.push_back(tree.Predict(features));
  }
  double m = 0.0;
  for (double p : preds) {
    m += p;
  }
  m /= static_cast<double>(preds.size());
  double v = 0.0;
  for (double p : preds) {
    v += (p - m) * (p - m);
  }
  v /= static_cast<double>(preds.size());
  *mean = m;
  *variance = v;
}

double ExpectedImprovement(double mean, double variance, double best) {
  const double sigma = std::sqrt(std::max(variance, 1e-12));
  const double z = (best - mean) / sigma;
  const double phi = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
  return (best - mean) * NormalCdf(z) + sigma * phi;
}

}  // namespace unicorn
