// Random-forest regression: the SMAC surrogate model (Hutter et al. 2011)
// and the per-objective surrogate of the PESMO-like optimizer.
#ifndef UNICORN_BASELINES_RANDOM_FOREST_H_
#define UNICORN_BASELINES_RANDOM_FOREST_H_

#include <vector>

#include "baselines/decision_tree.h"
#include "util/rng.h"

namespace unicorn {

struct ForestOptions {
  size_t num_trees = 20;
  TreeOptions tree;
};

class RandomForest {
 public:
  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y,
           const ForestOptions& options, Rng* rng);

  // Mean prediction across trees.
  double Predict(const std::vector<double>& features) const;

  // Mean and (tree-ensemble) variance — SMAC's uncertainty estimate.
  void PredictWithVariance(const std::vector<double>& features, double* mean,
                           double* variance) const;

  bool Empty() const { return trees_.empty(); }

 private:
  std::vector<DecisionTree> trees_;
};

// Expected improvement of a Gaussian posterior (mean, variance) over the
// incumbent `best` for minimization.
double ExpectedImprovement(double mean, double variance, double best);

}  // namespace unicorn

#endif  // UNICORN_BASELINES_RANDOM_FOREST_H_
