#include "baselines/smac.h"

#include <algorithm>
#include <limits>

namespace unicorn {

SmacResult SmacMinimize(const PerformanceTask& task, size_t objective_var,
                        const SmacOptions& options,
                        const std::vector<double>* warm_start_config) {
  Rng rng(options.seed);
  SmacResult result;

  std::vector<std::vector<double>> x;  // configs
  std::vector<double> y;               // objective values
  double best_value = std::numeric_limits<double>::infinity();
  std::vector<double> best_config;

  auto evaluate = [&](const std::vector<double>& config) {
    const auto row = task.measure(config);
    ++result.measurements_used;
    const double value = row[objective_var];
    x.push_back(config);
    y.push_back(value);
    result.evaluated.push_back({value});
    if (value < best_value) {
      best_value = value;
      best_config = config;
    }
    result.best_trajectory.push_back(best_value);
  };

  if (warm_start_config != nullptr) {
    evaluate(*warm_start_config);
  }
  for (size_t i = 0; i < options.initial_samples; ++i) {
    evaluate(task.sample_config(&rng));
  }

  // Mutates 1-3 options of a configuration to random domain values.
  auto mutate = [&](const std::vector<double>& base) {
    std::vector<double> out = base;
    const size_t k = 1 + rng.UniformInt(static_cast<uint64_t>(3));
    for (size_t m = 0; m < k; ++m) {
      const size_t pos = rng.UniformInt(static_cast<uint64_t>(out.size()));
      const Variable& var = task.variables[task.option_vars[pos]];
      if (var.type == VarType::kContinuous) {
        out[pos] = rng.Uniform(var.domain.front(), var.domain.back());
      } else {
        out[pos] = var.domain[rng.UniformInt(static_cast<uint64_t>(var.domain.size()))];
      }
    }
    return out;
  };

  RandomForest forest;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (rng.Bernoulli(options.random_interleave)) {
      evaluate(task.sample_config(&rng));
      continue;
    }
    forest.Fit(x, y, options.forest, &rng);
    // Candidate pool: local mutations of the incumbent + random configs.
    std::vector<double> best_candidate;
    double best_ei = -1.0;
    for (size_t c = 0; c < options.candidates_per_step; ++c) {
      std::vector<double> candidate =
          c < options.candidates_per_step / 2 ? mutate(best_config) : task.sample_config(&rng);
      double mean = 0.0;
      double variance = 0.0;
      forest.PredictWithVariance(candidate, &mean, &variance);
      const double ei = ExpectedImprovement(mean, variance, best_value);
      if (ei > best_ei) {
        best_ei = ei;
        best_candidate = std::move(candidate);
      }
    }
    evaluate(best_candidate);
  }

  result.best_config = best_config;
  result.best_value = best_value;
  return result;
}

}  // namespace unicorn
