// SMAC: sequential model-based algorithm configuration (Hutter, Hoos,
// Leyton-Brown — LION'11). Random-forest surrogate, expected-improvement
// acquisition over locally mutated + random candidates, with random
// interleaving for theoretical convergence.
#ifndef UNICORN_BASELINES_SMAC_H_
#define UNICORN_BASELINES_SMAC_H_

#include "baselines/random_forest.h"
#include "unicorn/task.h"

namespace unicorn {

struct SmacOptions {
  size_t initial_samples = 25;
  size_t max_iterations = 200;
  size_t candidates_per_step = 50;
  double random_interleave = 0.25;  // fraction of steps that sample uniformly
  ForestOptions forest;
  uint64_t seed = 29;
};

struct SmacResult {
  std::vector<double> best_config;
  double best_value = 0.0;
  std::vector<double> best_trajectory;       // best-so-far per measurement
  std::vector<std::vector<double>> evaluated;  // objective vector per step
  size_t measurements_used = 0;
};

SmacResult SmacMinimize(const PerformanceTask& task, size_t objective_var,
                        const SmacOptions& options = {},
                        const std::vector<double>* warm_start_config = nullptr);

}  // namespace unicorn

#endif  // UNICORN_BASELINES_SMAC_H_
