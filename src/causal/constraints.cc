#include "causal/constraints.h"

namespace unicorn {

StructuralConstraints::StructuralConstraints(const std::vector<Variable>& variables) {
  roles_.reserve(variables.size());
  for (const auto& v : variables) {
    roles_.push_back(v.role);
  }
}

bool StructuralConstraints::EdgeAllowed(size_t a, size_t b) const {
  const VarRole ra = roles_[a];
  const VarRole rb = roles_[b];
  // Options do not cause (or get caused by) other options.
  if (ra == VarRole::kOption && rb == VarRole::kOption) {
    return false;
  }
  for (const auto& [fa, fb] : forbidden_) {
    if ((fa == a && fb == b) || (fa == b && fb == a)) {
      return false;
    }
  }
  return true;
}

void StructuralConstraints::ForbidEdge(size_t a, size_t b) { forbidden_.push_back({a, b}); }

void StructuralConstraints::RequireEdge(size_t from, size_t to) {
  required_.push_back({from, to});
}

bool StructuralConstraints::EdgeRequired(size_t a, size_t b) const {
  for (const auto& [from, to] : required_) {
    if ((from == a && to == b) || (from == b && to == a)) {
      return true;
    }
  }
  return false;
}

void StructuralConstraints::ApplyOrientations(MixedGraph* g) const {
  const size_t n = g->NumNodes();
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (a == b || !g->HasEdge(a, b)) {
        continue;
      }
      // Tail at option ends: options are exogenous.
      if (roles_[a] == VarRole::kOption) {
        g->SetEndMark(b, a, Mark::kTail);
        // The far end of an option edge must be an effect.
        g->SetEndMark(a, b, Mark::kArrow);
      }
      // Arrowhead into objectives: objectives are sinks.
      if (roles_[b] == VarRole::kObjective && roles_[a] != VarRole::kObjective) {
        g->SetEndMark(a, b, Mark::kArrow);
      }
      // Objectives never cause each other; residual dependence between two
      // objectives is confounding by shared causes -> bidirected.
      if (roles_[a] == VarRole::kObjective && roles_[b] == VarRole::kObjective) {
        g->SetEndMark(a, b, Mark::kArrow);
        g->SetEndMark(b, a, Mark::kArrow);
      }
    }
  }
  // Domain-knowledge edges: present and oriented as required.
  for (const auto& [from, to] : required_) {
    g->AddDirected(from, to);
  }
}

}  // namespace unicorn
