// Structural constraints for causal performance models (paper §3).
//
// Performance modeling gives us hard background knowledge that both sparsifies
// the search and orients edges for free:
//   * configuration options do not cause other options (no option-option edge)
//   * nothing causes an option (options are exogenous interventions), so any
//     edge at an option gets a tail at the option end
//   * performance objectives are sinks: any edge at an objective gets an
//     arrowhead at the objective end, and objective->{option,event} is
//     impossible.
#ifndef UNICORN_CAUSAL_CONSTRAINTS_H_
#define UNICORN_CAUSAL_CONSTRAINTS_H_

#include <vector>

#include "graph/mixed_graph.h"
#include "stats/table.h"

namespace unicorn {

class StructuralConstraints {
 public:
  explicit StructuralConstraints(const std::vector<Variable>& variables);

  // May variables a and b ever be adjacent?
  bool EdgeAllowed(size_t a, size_t b) const;

  // Applies the forced end-marks described above to every present edge.
  void ApplyOrientations(MixedGraph* g) const;

  // --- domain knowledge (paper §11) ---------------------------------------
  // Forbids any edge between a and b (e.g. "swap memory cannot affect GPU
  // frequency"). Symmetric.
  void ForbidEdge(size_t a, size_t b);

  // Requires a directed edge from `from` to `to`: the skeleton search never
  // removes it and ApplyOrientations orients it from -> to.
  void RequireEdge(size_t from, size_t to);

  // True when the (a, b) pair is protected from removal by RequireEdge.
  bool EdgeRequired(size_t a, size_t b) const;

  const std::vector<VarRole>& roles() const { return roles_; }

 private:
  std::vector<VarRole> roles_;
  std::vector<std::pair<size_t, size_t>> forbidden_;  // unordered pairs
  std::vector<std::pair<size_t, size_t>> required_;   // (from, to)
};

}  // namespace unicorn

#endif  // UNICORN_CAUSAL_CONSTRAINTS_H_
