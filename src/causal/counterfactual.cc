#include "causal/counterfactual.h"

#include <algorithm>
#include <set>

namespace unicorn {

std::vector<size_t> OptionsOnPaths(const std::vector<RankedPath>& paths,
                                   const std::vector<VarRole>& roles) {
  std::vector<size_t> out;
  std::set<size_t> seen;
  for (const auto& rp : paths) {
    for (size_t v : rp.nodes) {
      if (roles[v] == VarRole::kOption && seen.insert(v).second) {
        out.push_back(v);
      }
    }
  }
  return out;
}

double RepairIce(const CausalEffectEstimator& estimator, const Repair& repair,
                 const std::vector<ObjectiveGoal>& goals) {
  double min_ice = 1.0;
  for (const auto& goal : goals) {
    const double p_good =
        estimator.ProbabilityLeqDo(goal.var, goal.threshold, repair.assignments);
    const double ice = 2.0 * p_good - 1.0;  // P(good) - P(bad)
    min_ice = std::min(min_ice, ice);
  }
  return goals.empty() ? 0.0 : min_ice;
}

std::vector<Repair> GenerateRepairs(const CausalEffectEstimator& estimator,
                                    const std::vector<RankedPath>& paths,
                                    const std::vector<VarRole>& roles,
                                    const std::vector<double>& fault_row,
                                    const std::vector<ObjectiveGoal>& goals,
                                    const RepairOptions& options) {
  std::vector<Repair> repairs;
  const std::vector<size_t> candidates = OptionsOnPaths(paths, roles);

  // Single-option repairs: every alternative level of every candidate option.
  for (size_t opt : candidates) {
    const int fault_level = estimator.LevelOf(opt, fault_row[opt]);
    const int levels = estimator.NumLevels(opt);
    for (int l = 0; l < levels; ++l) {
      if (l == fault_level) {
        continue;
      }
      Repair r;
      r.assignments = {{opt, l}};
      r.ice = RepairIce(estimator, r, goals);
      repairs.push_back(std::move(r));
      if (repairs.size() >= options.max_single_repairs) {
        break;
      }
    }
    if (repairs.size() >= options.max_single_repairs) {
      break;
    }
  }

  // Stable sort: ICE ties keep the path-rank order (options on stronger
  // causal paths first).
  std::stable_sort(repairs.begin(), repairs.end(),
                   [](const Repair& a, const Repair& b) { return a.ice > b.ice; });

  // Pairwise combinations of the strongest single repairs (distinct options).
  const size_t seeds = std::min(options.pair_seed_count, repairs.size());
  std::vector<Repair> pairs;
  for (size_t i = 0; i < seeds; ++i) {
    for (size_t j = i + 1; j < seeds; ++j) {
      if (repairs[i].assignments[0].first == repairs[j].assignments[0].first) {
        continue;
      }
      Repair r;
      r.assignments = {repairs[i].assignments[0], repairs[j].assignments[0]};
      r.ice = RepairIce(estimator, r, goals);
      pairs.push_back(std::move(r));
    }
  }
  repairs.insert(repairs.end(), pairs.begin(), pairs.end());
  std::stable_sort(repairs.begin(), repairs.end(),
                   [](const Repair& a, const Repair& b) { return a.ice > b.ice; });
  if (repairs.size() > options.max_total_repairs) {
    repairs.resize(options.max_total_repairs);
  }
  return repairs;
}

}  // namespace unicorn
