// Counterfactual repair reasoning (paper appendix B.2, Eq. 2-5).
//
// Given a faulty configuration and the top-K causal paths, generates a repair
// set — for every option on a top path, every permissible alternative level —
// and scores each repair by its Individual Causal Effect:
//   ICE(r) = P(Y good | do(r)) - P(Y bad | do(r))
// estimated on the observational data alone (no new measurements), which is
// the property that makes Unicorn fast (paper §5 "Remarks").
#ifndef UNICORN_CAUSAL_COUNTERFACTUAL_H_
#define UNICORN_CAUSAL_COUNTERFACTUAL_H_

#include <string>
#include <vector>

#include "causal/effects.h"

namespace unicorn {

// One candidate repair: set the listed options to the listed coded levels,
// keeping every other option at its fault value.
struct Repair {
  std::vector<std::pair<size_t, int>> assignments;  // (var index, coded level)
  double ice = 0.0;  // in [-1, 1]; positive = likely fixes the fault
};

// A performance objective to improve, with the "good" threshold: the repair
// aims for objective value <= threshold (all objectives in this repo are
// lower-is-better; negate columns otherwise).
struct ObjectiveGoal {
  size_t var = 0;
  double threshold = 0.0;
};

struct RepairOptions {
  size_t max_single_repairs = 200;
  // Also try pairs of the single repairs with the highest individual ICE.
  size_t pair_seed_count = 6;
  size_t max_total_repairs = 400;
};

// Options appearing on the given paths (deduplicated, path order preserved).
std::vector<size_t> OptionsOnPaths(const std::vector<RankedPath>& paths,
                                   const std::vector<VarRole>& roles);

// Generates and scores the repair set. `fault_row` holds raw values of the
// faulty configuration (full variable vector). Returned repairs are sorted by
// descending ICE.
std::vector<Repair> GenerateRepairs(const CausalEffectEstimator& estimator,
                                    const std::vector<RankedPath>& paths,
                                    const std::vector<VarRole>& roles,
                                    const std::vector<double>& fault_row,
                                    const std::vector<ObjectiveGoal>& goals,
                                    const RepairOptions& options = {});

// ICE of one repair against all goals (minimum across goals: a repair must
// improve every objective of a multi-objective fault).
double RepairIce(const CausalEffectEstimator& estimator, const Repair& repair,
                 const std::vector<ObjectiveGoal>& goals);

}  // namespace unicorn

#endif  // UNICORN_CAUSAL_COUNTERFACTUAL_H_
