#include "causal/effects.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace unicorn {

CausalEffectEstimator::CausalEffectEstimator(const MixedGraph& graph, const DataTable& data,
                                             int max_bins)
    : graph_(graph), data_(data), coded_(data, max_bins) {}

std::vector<size_t> CausalEffectEstimator::MatchingRows(
    const std::vector<std::pair<size_t, int>>& assignment) const {
  std::vector<size_t> rows;
  // coded_.NumRows(), not data_.NumRows(): the estimator reasons on its
  // construction-time snapshot, and the active-learning loops append rows to
  // the live table while still holding the estimator. Rows beyond the
  // snapshot have no codes.
  for (size_t r = 0; r < coded_.NumRows(); ++r) {
    bool match = true;
    for (const auto& [v, level] : assignment) {
      if (coded_.Col(v).codes[r] != level) {
        match = false;
        break;
      }
    }
    if (match) {
      rows.push_back(r);
    }
  }
  return rows;
}

namespace {

double MeanOf(const std::vector<double>& col, const std::vector<size_t>& rows) {
  if (rows.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (size_t r : rows) {
    acc += col[r];
  }
  return acc / static_cast<double>(rows.size());
}

double FractionLeq(const std::vector<double>& col, const std::vector<size_t>& rows,
                   double threshold) {
  if (rows.empty()) {
    return 0.0;
  }
  size_t count = 0;
  for (size_t r : rows) {
    if (col[r] <= threshold) {
      ++count;
    }
  }
  return static_cast<double>(count) / static_cast<double>(rows.size());
}

}  // namespace

double CausalEffectEstimator::ExpectationDo(
    size_t z, const std::vector<std::pair<size_t, int>>& treatments) const {
  const size_t n = coded_.NumRows();  // snapshot, see MatchingRows
  if (n == 0 || treatments.empty()) {
    return 0.0;
  }
  // Adjustment set: union of graph parents of all treated variables,
  // excluding treated variables themselves.
  std::set<size_t> treated;
  for (const auto& [v, level] : treatments) {
    treated.insert(v);
  }
  std::set<size_t> adjust;
  for (const auto& [v, level] : treatments) {
    for (size_t p : graph_.Parents(v)) {
      if (!treated.count(p)) {
        adjust.insert(p);
      }
    }
  }
  const auto& zcol = data_.Col(z);

  // Fallback chain: treated-match rows, then whole sample.
  const std::vector<size_t> treated_rows = MatchingRows(treatments);
  if (treated_rows.empty()) {
    std::vector<size_t> all(n);
    for (size_t r = 0; r < n; ++r) {
      all[r] = r;
    }
    return MeanOf(zcol, all);
  }
  if (adjust.empty()) {
    return MeanOf(zcol, treated_rows);
  }

  // Stratify on the adjustment set.
  const std::vector<int> adj_vars(adjust.begin(), adjust.end());
  const CodedColumn strata = coded_.Strata(adj_vars);
  // Stratum weights from the full sample.
  std::vector<double> weight(static_cast<size_t>(std::max(1, strata.cardinality)), 0.0);
  for (size_t r = 0; r < n; ++r) {
    weight[static_cast<size_t>(strata.codes[r])] += 1.0;
  }
  // Per-stratum sums over treated rows.
  std::vector<double> sum(weight.size(), 0.0);
  std::vector<double> count(weight.size(), 0.0);
  for (size_t r : treated_rows) {
    const auto s = static_cast<size_t>(strata.codes[r]);
    sum[s] += zcol[r];
    count[s] += 1.0;
  }
  // Marginalize over the strata that actually contain treated rows
  // (renormalized weights). Falling back to the unadjusted conditional for
  // unsupported strata would re-introduce the confounding the adjustment is
  // meant to remove.
  const double unadjusted = MeanOf(zcol, treated_rows);
  double total_w = 0.0;
  double acc = 0.0;
  for (size_t s = 0; s < weight.size(); ++s) {
    if (weight[s] <= 0.0 || count[s] <= 0.0) {
      continue;
    }
    acc += weight[s] * sum[s] / count[s];
    total_w += weight[s];
  }
  return total_w > 0.0 ? acc / total_w : unadjusted;
}

double CausalEffectEstimator::ExpectationDo(size_t z, size_t x, int x_level) const {
  return ExpectationDo(z, {{x, x_level}});
}

double CausalEffectEstimator::ProbabilityLeqDo(
    size_t z, double threshold, const std::vector<std::pair<size_t, int>>& treatments) const {
  const size_t n = coded_.NumRows();  // snapshot, see MatchingRows
  if (n == 0 || treatments.empty()) {
    return 0.0;
  }
  std::set<size_t> treated;
  for (const auto& [v, level] : treatments) {
    treated.insert(v);
  }
  std::set<size_t> adjust;
  for (const auto& [v, level] : treatments) {
    for (size_t p : graph_.Parents(v)) {
      if (!treated.count(p)) {
        adjust.insert(p);
      }
    }
  }
  const auto& zcol = data_.Col(z);
  const std::vector<size_t> treated_rows = MatchingRows(treatments);
  if (treated_rows.empty()) {
    std::vector<size_t> all(n);
    for (size_t r = 0; r < n; ++r) {
      all[r] = r;
    }
    return FractionLeq(zcol, all, threshold);
  }
  if (adjust.empty()) {
    return FractionLeq(zcol, treated_rows, threshold);
  }
  const std::vector<int> adj_vars(adjust.begin(), adjust.end());
  const CodedColumn strata = coded_.Strata(adj_vars);
  std::vector<double> weight(static_cast<size_t>(std::max(1, strata.cardinality)), 0.0);
  for (size_t r = 0; r < n; ++r) {
    weight[static_cast<size_t>(strata.codes[r])] += 1.0;
  }
  std::vector<double> hits(weight.size(), 0.0);
  std::vector<double> count(weight.size(), 0.0);
  for (size_t r : treated_rows) {
    const auto s = static_cast<size_t>(strata.codes[r]);
    hits[s] += zcol[r] <= threshold ? 1.0 : 0.0;
    count[s] += 1.0;
  }
  const double unadjusted = FractionLeq(zcol, treated_rows, threshold);
  double total_w = 0.0;
  double acc = 0.0;
  for (size_t s = 0; s < weight.size(); ++s) {
    if (weight[s] <= 0.0 || count[s] <= 0.0) {
      continue;  // drop unsupported strata and renormalize (see above)
    }
    acc += weight[s] * hits[s] / count[s];
    total_w += weight[s];
  }
  return total_w > 0.0 ? acc / total_w : unadjusted;
}

double CausalEffectEstimator::ProbabilityLeqDo(size_t z, double threshold, size_t x,
                                               int x_level) const {
  return ProbabilityLeqDo(z, threshold, {{x, x_level}});
}

double CausalEffectEstimator::Ace(size_t z, size_t x) const {
  const int levels = NumLevels(x);
  if (levels < 2) {
    return 0.0;
  }
  std::vector<double> e(static_cast<size_t>(levels));
  for (int l = 0; l < levels; ++l) {
    e[static_cast<size_t>(l)] = ExpectationDo(z, x, l);
  }
  double acc = 0.0;
  size_t pairs = 0;
  for (int a = 0; a < levels; ++a) {
    for (int b = a + 1; b < levels; ++b) {
      acc += std::fabs(e[static_cast<size_t>(b)] - e[static_cast<size_t>(a)]);
      ++pairs;
    }
  }
  return pairs > 0 ? acc / static_cast<double>(pairs) : 0.0;
}

double CausalEffectEstimator::PathAce(const CausalPath& path) const {
  if (path.size() < 2) {
    return 0.0;
  }
  double acc = 0.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    acc += Ace(path[i + 1], path[i]);
  }
  return acc / static_cast<double>(path.size() - 1);
}

std::vector<RankedPath> CausalEffectEstimator::RankPaths(const std::vector<size_t>& targets,
                                                         size_t top_k) const {
  std::vector<RankedPath> ranked;
  for (size_t target : targets) {
    for (auto& path : ExtractCausalPaths(graph_, target)) {
      RankedPath rp;
      rp.path_ace = PathAce(path);
      rp.nodes = std::move(path);
      ranked.push_back(std::move(rp));
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedPath& a, const RankedPath& b) { return a.path_ace > b.path_ace; });
  if (ranked.size() > top_k) {
    ranked.resize(top_k);
  }
  return ranked;
}

int CausalEffectEstimator::LevelOf(size_t v, double value) const {
  const auto& col = data_.Col(v);
  const size_t n = std::min(col.size(), coded_.NumRows());  // snapshot
  if (n == 0) {
    return 0;
  }
  size_t best = 0;
  double best_dist = std::fabs(col[0] - value);
  for (size_t r = 1; r < n; ++r) {
    const double d = std::fabs(col[r] - value);
    if (d < best_dist) {
      best_dist = d;
      best = r;
    }
  }
  return coded_.Col(v).codes[best];
}

double CausalEffectEstimator::ValueOfLevel(size_t v, int level) const {
  std::vector<double> values;
  const auto& col = data_.Col(v);
  const auto& codes = coded_.Col(v).codes;
  for (size_t r = 0; r < std::min(col.size(), coded_.NumRows()); ++r) {
    if (codes[r] == level) {
      values.push_back(col[r]);
    }
  }
  if (values.empty()) {
    return 0.0;
  }
  std::nth_element(values.begin(), values.begin() + values.size() / 2, values.end());
  return values[values.size() / 2];
}

}  // namespace unicorn
