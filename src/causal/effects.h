// Interventional queries on a learned ADMG (paper §4 Stage III & V).
//
// Implements the do-calculus quantities Unicorn needs:
//   * E[Z | do(X = x)] by backdoor adjustment over the parents of X,
//   * ACE(Z, X): average causal effect over all permissible value changes,
//   * Path-ACE (appendix Eq. 1): mean ACE along a causal path,
//   * path extraction + ranking to focus on the top-K causal paths.
//
// Estimation is non-parametric on the discretized sample: strata are the
// joint parent configurations; empty strata fall back to the unadjusted
// conditional, and unseen treatment levels fall back to the marginal mean.
//
// The estimator reasons on a *snapshot* of the data taken at construction:
// the active-learning loops keep appending measurements to the live table
// while still holding an estimator, and rows past the snapshot are ignored
// until the next model refresh rebuilds it.
#ifndef UNICORN_CAUSAL_EFFECTS_H_
#define UNICORN_CAUSAL_EFFECTS_H_

#include <string>
#include <vector>

#include "graph/algorithms.h"
#include "graph/mixed_graph.h"
#include "stats/discretize.h"
#include "stats/table.h"

namespace unicorn {

struct RankedPath {
  CausalPath nodes;  // root ... objective
  double path_ace = 0.0;
};

class CausalEffectEstimator {
 public:
  CausalEffectEstimator(const MixedGraph& graph, const DataTable& data, int max_bins = 5);

  // Expected value of variable z (raw scale) under do(X = level x_level),
  // where x_level indexes the discretized levels of X.
  double ExpectationDo(size_t z, size_t x, int x_level) const;

  // P[ Z <= threshold | do(X = x_level) ] on the raw scale of Z.
  double ProbabilityLeqDo(size_t z, double threshold, size_t x, int x_level) const;

  // Multi-variable intervention versions (joint adjustment on the union of
  // parents, exact matching on all treated levels).
  double ExpectationDo(size_t z, const std::vector<std::pair<size_t, int>>& treatments) const;
  double ProbabilityLeqDo(size_t z, double threshold,
                          const std::vector<std::pair<size_t, int>>& treatments) const;

  // ACE(Z, X) = mean |E[Z|do(X=b)] - E[Z|do(X=a)]| over level pairs a < b.
  double Ace(size_t z, size_t x) const;

  // Path-ACE: mean ACE over consecutive pairs of the path (appendix Eq. 1).
  double PathAce(const CausalPath& path) const;

  // Extracts all causal paths into each target, scores by mean Path-ACE
  // across the targets containing them, returns the top_k highest.
  std::vector<RankedPath> RankPaths(const std::vector<size_t>& targets, size_t top_k) const;

  // Total causal effect proxy of x on z: ACE through the learned graph if an
  // edge-path exists, else 0.
  int NumLevels(size_t v) const { return coded_.Col(v).cardinality; }

  // Discretized level of `value` for variable v (nearest observed level).
  int LevelOf(size_t v, double value) const;

  // Representative raw value of level `level` of variable v (median of the
  // raw values mapped to that level).
  double ValueOfLevel(size_t v, int level) const;

  const MixedGraph& graph() const { return graph_; }
  const DataTable& data() const { return data_; }

 private:
  // Rows matching all (var, level) pairs.
  std::vector<size_t> MatchingRows(const std::vector<std::pair<size_t, int>>& assignment) const;

  MixedGraph graph_;
  const DataTable& data_;
  CodedTable coded_;
};

}  // namespace unicorn

#endif  // UNICORN_CAUSAL_EFFECTS_H_
