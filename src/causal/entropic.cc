#include "causal/entropic.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "obs/trace.h"
#include "stats/entropy.h"
#include "util/thread_pool.h"

namespace unicorn {

double ExogenousNoiseEntropy(const CodedColumn& x, const CodedColumn& y) {
  const auto joint = JointDistribution(x, y);
  // Rows of the coupling input: P(Y | X = x) for every x with support.
  std::vector<std::vector<double>> conditionals;
  for (const auto& row : joint) {
    double px = 0.0;
    for (double v : row) {
      px += v;
    }
    if (px <= 1e-12) {
      continue;
    }
    std::vector<double> cond(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      cond[i] = row[i] / px;
    }
    conditionals.push_back(std::move(cond));
  }
  return GreedyMinimumEntropyCoupling(conditionals);
}

EdgeDecision DecideEdgeDirection(const CodedColumn& x, const CodedColumn& y,
                                 const EntropicOptions& options, Rng* rng) {
  EdgeDecision decision;
  const double hx = Entropy(x);
  const double hy = Entropy(y);

  // Step 1: try to explain the dependence with a low-entropy latent cause.
  const auto joint = JointDistribution(x, y);
  const LatentSearchResult latent = LatentSearch(joint, options.latent, rng);
  decision.latent_entropy = latent.latent_entropy;
  const double theta_r = options.confounder_threshold * std::min(hx, hy);
  if (latent.independence_achieved && latent.latent_entropy < theta_r) {
    decision.latent_found = true;
    decision.kind = EdgeDecision::Kind::kBidirected;
    return decision;
  }

  // Step 2: direction with lower total entropic complexity.
  decision.entropy_forward = hx + ExogenousNoiseEntropy(x, y);
  decision.entropy_backward = hy + ExogenousNoiseEntropy(y, x);
  decision.kind = decision.entropy_forward <= decision.entropy_backward
                      ? EdgeDecision::Kind::kForward
                      : EdgeDecision::Kind::kBackward;
  return decision;
}

namespace {

// Would adding the directed edge from -> to create a directed cycle?
bool CreatesCycle(const MixedGraph& g, size_t from, size_t to) {
  // Cycle iff `from` is reachable from `to` via directed edges.
  std::vector<bool> seen(g.NumNodes(), false);
  std::vector<size_t> stack = {to};
  seen[to] = true;
  while (!stack.empty()) {
    const size_t v = stack.back();
    stack.pop_back();
    if (v == from) {
      return true;
    }
    for (size_t c : g.Children(v)) {
      if (!seen[c]) {
        seen[c] = true;
        stack.push_back(c);
      }
    }
  }
  return false;
}

}  // namespace

void ResolveWithEntropy(const DataTable& data, const StructuralConstraints& constraints,
                        const EntropicOptions& options, Rng* rng, MixedGraph* pag,
                        const EdgeDecisionMap* reuse, EdgeDecisionMap* decisions_out,
                        ThreadPool* pool) {
  const size_t n = pag->NumNodes();
  const auto& roles = constraints.roles();

  // Phase 1 (serial): enumerate the pairs that will need a decision. The
  // mutation loop below only ever rewrites the pair's own edge, so whether a
  // pair calls decide() is fully determined by the entry marks — the set can
  // be fixed up front. Each fresh pair forks its own Rng stream from `rng`
  // here, in deterministic pair order, so the scoring phase can run the
  // pairs in any order (or concurrently) without perturbing the draws.
  struct FreshPair {
    size_t a;
    size_t b;
    Rng rng;
    EdgeDecision decision;
  };
  std::vector<FreshPair> fresh;
  EdgeDecisionMap computed;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (!pag->HasEdge(a, b)) {
        continue;
      }
      const Mark at_a = pag->EndMark(b, a);
      const Mark at_b = pag->EndMark(a, b);
      const bool needs_decision = at_a == Mark::kCircle || at_b == Mark::kCircle ||
                                  (at_a == Mark::kTail && at_b == Mark::kTail);
      if (!needs_decision) {
        continue;
      }
      if (reuse != nullptr) {
        auto it = reuse->find({a, b});
        if (it != reuse->end()) {
          computed[{a, b}] = it->second;
          continue;
        }
      }
      fresh.push_back(FreshPair{a, b, rng->Fork(), EdgeDecision{}});
    }
  }

  // Phase 2 (parallel): discretize the endpoint columns the fresh pairs
  // need, then score each pair on its own forked stream. A warm refresh that
  // reuses every pair decision never pays for coding the table at all.
  std::vector<std::unique_ptr<CodedColumn>> coded(data.NumVars());
  if (!fresh.empty()) {
    std::vector<size_t> vars;
    {
      std::vector<char> need(data.NumVars(), 0);
      for (const FreshPair& fp : fresh) {
        need[fp.a] = 1;
        need[fp.b] = 1;
      }
      for (size_t v = 0; v < data.NumVars(); ++v) {
        if (need[v] != 0) {
          vars.push_back(v);
        }
      }
    }
    auto code_var = [&](size_t i) {
      const size_t v = vars[i];
      coded[v] = std::make_unique<CodedColumn>(
          DiscretizeColumn(data.Col(v), data.Var(v).type, options.max_bins));
    };
    auto score_pair = [&](size_t i) {
      TRACE_SPAN("engine.entropic.score", "engine");
      FreshPair& fp = fresh[i];
      fp.decision = DecideEdgeDirection(*coded[fp.a], *coded[fp.b], options, &fp.rng);
    };
    if (pool != nullptr && pool->num_threads() > 1) {
      pool->ParallelFor(vars.size(), code_var);
      pool->ParallelFor(fresh.size(), score_pair);
    } else {
      for (size_t i = 0; i < vars.size(); ++i) {
        code_var(i);
      }
      for (size_t i = 0; i < fresh.size(); ++i) {
        score_pair(i);
      }
    }
    for (FreshPair& fp : fresh) {
      computed[{fp.a, fp.b}] = fp.decision;
    }
  }

  // Phase 3 (serial): the original mutation loop, with decide() now a pure
  // lookup into the precomputed decisions.
  auto decide = [&](size_t a, size_t b) -> const EdgeDecision& {
    const EdgeDecision& d = computed.at({a, b});
    if (decisions_out != nullptr) {
      (*decisions_out)[{a, b}] = d;
    }
    return d;
  };

  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (!pag->HasEdge(a, b)) {
        continue;
      }
      const Mark at_a = pag->EndMark(b, a);
      const Mark at_b = pag->EndMark(a, b);
      if (at_a != Mark::kCircle && at_b != Mark::kCircle) {
        // Already fully resolved; normalize tail-tail leftovers to a
        // directed edge chosen entropically (tail-tail is not a valid ADMG
        // edge and can only arise from degenerate rule interactions).
        if (at_a == Mark::kTail && at_b == Mark::kTail) {
          const EdgeDecision d = decide(a, b);
          const bool fwd_allowed =
              roles[b] != VarRole::kOption && roles[a] != VarRole::kObjective;
          const bool bwd_allowed =
              roles[a] != VarRole::kOption && roles[b] != VarRole::kObjective;
          if (d.kind == EdgeDecision::Kind::kForward && fwd_allowed &&
              !CreatesCycle(*pag, a, b)) {
            pag->AddDirected(a, b);
          } else if (bwd_allowed && !CreatesCycle(*pag, b, a)) {
            pag->AddDirected(b, a);
          } else if (fwd_allowed && !CreatesCycle(*pag, a, b)) {
            pag->AddDirected(a, b);
          } else {
            pag->AddBidirected(a, b);
          }
        }
        continue;
      }

      // Allowed resolutions given the non-circle mark and the roles:
      // nothing points into an option, nothing points out of an objective.
      const bool a_can_be_head = at_a == Mark::kCircle && roles[a] != VarRole::kOption;
      const bool b_can_be_head = at_b == Mark::kCircle && roles[b] != VarRole::kOption;
      const bool forward_ok = (at_b == Mark::kCircle || at_b == Mark::kArrow) &&
                              roles[b] != VarRole::kOption && roles[a] != VarRole::kObjective;
      const bool backward_ok = (at_a == Mark::kCircle || at_a == Mark::kArrow) &&
                               roles[a] != VarRole::kOption && roles[b] != VarRole::kObjective;

      const EdgeDecision d = decide(a, b);

      if (d.latent_found && a_can_be_head && b_can_be_head) {
        pag->AddBidirected(a, b);
        continue;
      }
      const bool prefer_forward = d.kind != EdgeDecision::Kind::kBackward;
      if (prefer_forward && forward_ok && !CreatesCycle(*pag, a, b)) {
        pag->AddDirected(a, b);
      } else if (backward_ok && !CreatesCycle(*pag, b, a)) {
        pag->AddDirected(b, a);
      } else if (forward_ok && !CreatesCycle(*pag, a, b)) {
        pag->AddDirected(a, b);
      } else if (a_can_be_head && b_can_be_head) {
        pag->AddBidirected(a, b);
      } else if (roles[a] == VarRole::kOption || roles[b] == VarRole::kObjective) {
        pag->AddDirected(a, b);
      } else {
        pag->AddDirected(b, a);
      }
    }
  }
}

}  // namespace unicorn
