// Entropic resolution of partially directed edges (paper §4, Stage II).
//
// FCI leaves circle end-marks wherever the conditional-independence structure
// cannot decide orientation. For each such edge X *-o Y this module:
//   1. runs LatentSearch; if a latent Z with H(Z) < 0.8 * min{H(X), H(Y)}
//      renders X ⊥ Y | Z, the edge becomes bidirected (X <-> Y);
//   2. otherwise picks the direction with the lower total entropic
//      complexity: H(X) + H(E) for X -> Y vs H(Y) + H(E~) for Y -> X, where
//      H(E) is approximated by the greedy minimum-entropy coupling of the
//      conditionals {P(Y | X = x)}_x (Kocaoglu et al., AAAI'17).
// The output is a fully resolved ADMG (directed + bidirected edges only);
// orientations that would create a directed cycle are rejected in favour of
// the opposite direction or a bidirected edge.
#ifndef UNICORN_CAUSAL_ENTROPIC_H_
#define UNICORN_CAUSAL_ENTROPIC_H_

#include <map>
#include <utility>

#include "causal/constraints.h"
#include "causal/latent_search.h"
#include "graph/mixed_graph.h"
#include "stats/discretize.h"
#include "stats/table.h"

namespace unicorn {

class ThreadPool;

struct EntropicOptions {
  double confounder_threshold = 0.8;  // theta_r multiplier on min entropy
  int max_bins = 6;
  LatentSearchOptions latent;
};

struct EdgeDecision {
  enum class Kind { kForward, kBackward, kBidirected } kind = Kind::kForward;
  double entropy_forward = 0.0;   // H(X) + H(E) for X -> Y
  double entropy_backward = 0.0;  // H(Y) + H(E~) for Y -> X
  double latent_entropy = 0.0;
  bool latent_found = false;
};

// Scores one pair (x, y) in isolation (no graph context).
EdgeDecision DecideEdgeDirection(const CodedColumn& x, const CodedColumn& y,
                                 const EntropicOptions& options, Rng* rng);

// Per-pair entropic decisions keyed by unordered pair (first < second).
using EdgeDecisionMap = std::map<std::pair<size_t, size_t>, EdgeDecision>;

// Resolves all circle marks of `pag` in place, producing an ADMG. Respects
// already-oriented marks and the structural constraints; never introduces a
// directed cycle.
//
// `reuse` (optional) supplies previously computed per-pair decisions; pairs
// found there skip the LatentSearch + coupling computation — the engine
// passes the decisions of its last refresh for pairs whose statistics did
// not change materially. `decisions_out` (optional) collects this run's
// decision for every resolved pair so the next refresh can reuse them.
//
// `pool` (optional) parallelizes the scoring phase: the pairs needing a
// fresh decision are enumerated serially, each gets its own Rng stream
// forked from `rng` in that deterministic order, and the decisions are then
// scored concurrently — so the result is bit-identical for any pool size,
// including none.
void ResolveWithEntropy(const DataTable& data, const StructuralConstraints& constraints,
                        const EntropicOptions& options, Rng* rng, MixedGraph* pag,
                        const EdgeDecisionMap* reuse = nullptr,
                        EdgeDecisionMap* decisions_out = nullptr, ThreadPool* pool = nullptr);

// Entropy of the exogenous noise for the model x -> y, via greedy
// minimum-entropy coupling of the conditional rows P(y | x). Exposed for
// tests.
double ExogenousNoiseEntropy(const CodedColumn& x, const CodedColumn& y);

}  // namespace unicorn

#endif  // UNICORN_CAUSAL_ENTROPIC_H_
