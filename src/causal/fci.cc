#include "causal/fci.h"

#include <algorithm>
#include <cstdint>
#include <functional>

#include "obs/trace.h"

namespace unicorn {
namespace {

// Sets an arrowhead at z on edge (u, z) if not already an arrowhead.
// Returns true when the mark changed. `circles`, when given, tracks how many
// incident circle marks each node still has at its own end (see
// ApplyOrientationRules); destroying a circle decrements the count.
bool PutArrow(MixedGraph* g, size_t u, size_t z, std::vector<int>* circles = nullptr) {
  const Mark at_z = g->EndMark(u, z);
  if (at_z == Mark::kArrow) {
    return false;
  }
  if (circles != nullptr && at_z == Mark::kCircle) {
    --(*circles)[z];
  }
  g->SetEndMark(u, z, Mark::kArrow);
  return true;
}

// Sets a tail at z's end of edge (u, z). Returns true when changed.
bool PutTail(MixedGraph* g, size_t u, size_t z, std::vector<int>* circles = nullptr) {
  const Mark at_z = g->EndMark(u, z);
  if (at_z == Mark::kTail) {
    return false;
  }
  if (circles != nullptr && at_z == Mark::kCircle) {
    --(*circles)[z];
  }
  g->SetEndMark(u, z, Mark::kTail);
  return true;
}

}  // namespace

void OrientVStructures(const SepsetMap& sepsets, MixedGraph* g) {
  const size_t n = g->NumNodes();
  // Iterate unshielded pairs and intersect their (frozen) adjacency rows as
  // bitsets instead of enumerating triples z-outer: the triple order
  // re-queried the sepset map once per common neighbor, while here one fetch
  // per pair suffices and the intersection is a handful of word ANDs. The
  // set of visited (x, y, z) triples is unchanged — bit extraction walks the
  // common neighbors in ascending order — and the upgrades are idempotent
  // circle->arrow promotions whose guards never re-enable, so the final
  // marks are identical in either order.
  const size_t words = (n + 63) / 64;
  std::vector<uint64_t> bits(n * words, 0);
  for (size_t v = 0; v < n; ++v) {
    for (size_t u : g->Adjacent(v)) {
      bits[v * words + u / 64] |= uint64_t{1} << (u % 64);
    }
  }
  for (size_t x = 0; x < n; ++x) {
    const uint64_t* bx = &bits[x * words];
    for (size_t y = x + 1; y < n; ++y) {
      if (g->HasEdge(x, y)) {
        continue;  // shielded
      }
      const uint64_t* by = &bits[y * words];
      const std::vector<size_t>* s = nullptr;
      bool sepset_fetched = false;
      for (size_t w = 0; w < words; ++w) {
        uint64_t common = bx[w] & by[w];
        while (common != 0) {
          const size_t z = w * 64 + static_cast<size_t>(__builtin_ctzll(common));
          common &= common - 1;
          if (!sepset_fetched) {
            s = sepsets.Get(x, y);
            sepset_fetched = true;
          }
          if (s == nullptr || !std::binary_search(s->begin(), s->end(), z)) {
            // x *-> z <-* y. Only upgrade circle marks; background-knowledge
            // tails (options) stay tails to keep constraints satisfied.
            if (g->HasCircleAt(x, z)) {
              PutArrow(g, x, z);
            }
            if (g->HasCircleAt(y, z)) {
              PutArrow(g, y, z);
            }
          }
        }
      }
    }
  }
}

std::vector<size_t> PossibleDSep(const MixedGraph& g, size_t x) {
  const size_t n = g.NumNodes();
  // BFS over edges (u, v): extendable to (v, w) when w is a collider on
  // <u, v, w> or u and w are adjacent.
  std::vector<std::vector<bool>> visited(n, std::vector<bool>(n, false));
  std::vector<std::pair<size_t, size_t>> frontier;
  std::vector<bool> in_result(n, false);
  for (size_t v : g.Adjacent(x)) {
    frontier.push_back({x, v});
    visited[x][v] = true;
    in_result[v] = true;
  }
  while (!frontier.empty()) {
    auto [u, v] = frontier.back();
    frontier.pop_back();
    for (size_t w : g.Adjacent(v)) {
      if (w == u || visited[v][w]) {
        continue;
      }
      const bool collider = g.IsCollider(u, v, w);
      const bool triangle = g.HasEdge(u, w);
      if (collider || triangle) {
        visited[v][w] = true;
        in_result[w] = true;
        frontier.push_back({v, w});
      }
    }
  }
  std::vector<size_t> out;
  for (size_t v = 0; v < n; ++v) {
    if (v != x && in_result[v]) {
      out.push_back(v);
    }
  }
  return out;
}

namespace {

// Orientation rules R1-R4 only upgrade edge marks; they never add or remove
// an edge. Adjacency is therefore frozen for the whole fixpoint loop, and the
// rules share one precomputed set of adjacency lists instead of rescanning
// the dense mark matrix (and allocating a fresh vector) on every visit.
using AdjacencyLists = std::vector<std::vector<size_t>>;

AdjacencyLists BuildAdjacencyLists(const MixedGraph& g) {
  AdjacencyLists adj(g.NumNodes());
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    adj[v] = g.Adjacent(v);
  }
  return adj;
}

// R1: a *-> b o-* c, a and c non-adjacent  =>  b -> c (tail at b, arrow at c).
bool RuleR1(const AdjacencyLists& adj, std::vector<int>* circles, MixedGraph* g) {
  const size_t n = g->NumNodes();
  bool changed = false;
  for (size_t b = 0; b < n; ++b) {
    if ((*circles)[b] == 0) {
      // R1 fires only through HasCircleAt(c, b) — a circle at b's own end.
      // Rules never create circles, so once b runs out they stay out and the
      // arrow-parent scan below can be skipped exactly.
      continue;
    }
    for (size_t a : adj[b]) {
      if (!g->HasArrowAt(a, b)) {
        continue;
      }
      for (size_t c : adj[b]) {
        if (c == a || g->HasEdge(a, c)) {
          continue;
        }
        if (g->HasCircleAt(c, b)) {
          // mark at b on edge b-c is circle -> make it tail; arrow at c.
          changed |= PutTail(g, c, b, circles);
          if (g->HasCircleAt(b, c)) {
            changed |= PutArrow(g, b, c, circles);
          }
        }
      }
    }
  }
  return changed;
}

// R2: (a -> b *-> c) or (a *-> b -> c), and a *-o c  =>  arrow at c on a-c.
bool RuleR2(const AdjacencyLists& adj, std::vector<int>* circles, MixedGraph* g) {
  const size_t n = g->NumNodes();
  bool changed = false;
  for (size_t a = 0; a < n; ++a) {
    for (size_t c : adj[a]) {
      if (!g->HasCircleAt(a, c)) {
        continue;
      }
      for (size_t b : adj[a]) {
        if (b == c || !g->HasEdge(b, c)) {
          continue;
        }
        const bool chain1 = g->IsDirected(a, b) && g->HasArrowAt(b, c);
        const bool chain2 = g->HasArrowAt(a, b) && g->IsDirected(b, c);
        if (chain1 || chain2) {
          changed |= PutArrow(g, a, c, circles);
          break;
        }
      }
    }
  }
  return changed;
}

// R3: a *-> b <-* c, a *-o d o-* c, a and c non-adjacent, d *-o b
//     =>  arrow at b on d-b.
bool RuleR3(const AdjacencyLists& adj, std::vector<int>* circles, MixedGraph* g) {
  const size_t n = g->NumNodes();
  bool changed = false;
  for (size_t d = 0; d < n; ++d) {
    if ((*circles)[d] == 0) {
      // R3 needs a *-o d and c *-o d — circle marks at d's own end. None
      // left (and rules never create them) means d can be skipped exactly.
      continue;
    }
    for (size_t b : adj[d]) {
      if (!g->HasCircleAt(d, b)) {
        continue;
      }
      const auto& adj_d = adj[d];
      for (size_t a : adj_d) {
        if (a == b || !g->HasCircleAt(a, d) || !g->HasEdge(a, b) || !g->HasArrowAt(a, b)) {
          continue;
        }
        for (size_t c : adj_d) {
          if (c == a || c == b || g->HasEdge(a, c)) {
            continue;
          }
          if (g->HasCircleAt(c, d) && g->HasEdge(c, b) && g->HasArrowAt(c, b)) {
            changed |= PutArrow(g, d, b, circles);
            break;
          }
        }
      }
    }
  }
  return changed;
}

// R4 (discriminating path): if p = <d, ..., a, b, c> is a discriminating path
// for b (every interior vertex is a collider on p and a parent of c; d and c
// non-adjacent) and b o-* c, then: if b in sepset(d, c) orient b -> c, else
// orient a <-> b <-> c.
//
// We search discriminating paths with a bounded DFS extending backwards from
// <a, b, c>.
bool RuleR4(const SepsetMap& sepsets, const AdjacencyLists& adj, std::vector<int>* circles,
            MixedGraph* g) {
  const size_t n = g->NumNodes();
  bool changed = false;
  constexpr size_t kMaxPathLen = 8;
  for (size_t b = 0; b < n; ++b) {
    for (size_t c : adj[b]) {
      if (!g->HasCircleAt(b, c) && !g->HasCircleAt(c, b)) {
        continue;
      }
      for (size_t a : adj[b]) {
        if (a == c || !g->HasEdge(a, c)) {
          continue;
        }
        // Interior vertices must be colliders on the path and parents of c.
        if (!g->HasArrowAt(b, a) && !g->IsDirected(a, c)) {
          continue;
        }
        if (!g->IsDirected(a, c) || !g->HasArrowAt(b, a)) {
          continue;
        }
        // DFS backwards from a; the path so far is <v, ..., a, b, c>.
        std::vector<bool> on_path(n, false);
        on_path[a] = true;
        on_path[b] = true;
        on_path[c] = true;
        std::function<bool(size_t, size_t)> extend = [&](size_t v, size_t depth) -> bool {
          if (depth > kMaxPathLen) {
            return false;
          }
          for (size_t d : adj[v]) {
            if (on_path[d]) {
              continue;
            }
            if (!g->HasArrowAt(d, v)) {
              continue;  // path edges must point into the collider chain
            }
            if (!g->HasEdge(d, c)) {
              // Found a discriminating path <d, ..., b, c>.
              if (sepsets.Contains(d, c, b)) {
                bool local = false;
                local |= PutTail(g, c, b, circles);
                local |= PutArrow(g, b, c, circles);
                return local;
              }
              bool local = false;
              local |= PutArrow(g, b, a, circles);
              local |= PutArrow(g, a, b, circles);
              local |= PutArrow(g, c, b, circles);
              local |= PutArrow(g, b, c, circles);
              return local;
            }
            // d is adjacent to c: to stay discriminating it must be a
            // collider on the path and a parent of c.
            if (g->IsDirected(d, c) && g->HasArrowAt(v, d)) {
              on_path[d] = true;
              const bool found = extend(d, depth + 1);
              on_path[d] = false;
              if (found) {
                return true;
              }
            }
          }
          return false;
        };
        if (extend(a, 3)) {
          changed = true;
        }
      }
    }
  }
  return changed;
}

}  // namespace

size_t ApplyOrientationRules(const SepsetMap& sepsets, MixedGraph* g) {
  const AdjacencyLists adj = BuildAdjacencyLists(*g);
  // Incident circle marks at each node's own end. The rules only ever destroy
  // circles (every mark write is an upgrade via PutArrow/PutTail), so the
  // counts shrink monotonically and a zero lets R1/R3 skip the node for the
  // rest of the fixpoint loop.
  const size_t n = g->NumNodes();
  std::vector<int> circles(n, 0);
  for (size_t v = 0; v < n; ++v) {
    for (size_t u : adj[v]) {
      if (g->HasCircleAt(u, v)) {
        ++circles[v];
      }
    }
  }
  size_t total = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    if (RuleR1(adj, &circles, g)) {
      changed = true;
      ++total;
    }
    if (RuleR2(adj, &circles, g)) {
      changed = true;
      ++total;
    }
    if (RuleR3(adj, &circles, g)) {
      changed = true;
      ++total;
    }
    if (RuleR4(sepsets, adj, &circles, g)) {
      changed = true;
      ++total;
    }
  }
  return total;
}

FciResult RunFci(const CITest& test, const StructuralConstraints& constraints, size_t num_vars,
                 const FciOptions& options, const SkeletonWarmStart& warm, ThreadPool* pool) {
  const long long calls_at_entry = test.calls;
  FciResult result;
  obs::trace::Begin("fci.skeleton", "engine");
  SkeletonResult skel = LearnSkeleton(test, constraints, num_vars, options.skeleton, warm, pool);
  obs::trace::End("tests", static_cast<double>(skel.tests_performed));
  result.sepsets = std::move(skel.sepsets);
  MixedGraph& g = skel.graph;

  constraints.ApplyOrientations(&g);
  OrientVStructures(result.sepsets, &g);

  if (options.use_possible_dsep) {
    TRACE_SPAN("fci.possible_dsep", "engine");
    // Possible-D-SEP pruning: retest every remaining edge against subsets of
    // pds(x) \ {x, y}; remove on independence.
    const size_t n = num_vars;
    const bool warm_active = warm.Active();
    for (size_t x = 0; x < n; ++x) {
      const auto adj = g.Adjacent(x);
      // PossibleDSep depends only on the graph, which changes only on edge
      // removal: compute it once per x and refresh after removals instead of
      // re-running the O(n^2) BFS for every neighbor.
      std::vector<size_t> pds_base = PossibleDSep(g, x);
      for (size_t y : adj) {
        if (!g.HasEdge(x, y) || constraints.EdgeRequired(x, y)) {
          continue;
        }
        if (warm_active && !warm.Dirty(x, y, num_vars)) {
          // Clean pair: its adoption already reflects the previous refresh's
          // Possible-D-SEP pruning; re-testing it would be redundant.
          continue;
        }
        std::vector<size_t> pds = pds_base;
        pds.erase(std::remove_if(pds.begin(), pds.end(),
                                 [&](size_t v) {
                                   return v == y ||
                                          constraints.roles()[v] == VarRole::kObjective;
                                 }),
                  pds.end());
        bool removed = false;
        for (int d = 1; d <= options.max_pds_cond_size && !removed; ++d) {
          for (const auto& subset :
               Subsets(pds, static_cast<size_t>(d), options.max_pds_subsets)) {
            std::vector<int> s(subset.begin(), subset.end());
            if (test.Independent(static_cast<int>(x), static_cast<int>(y), s,
                                 options.skeleton.alpha)) {
              g.RemoveEdge(x, y);
              result.sepsets.Set(x, y, subset);
              removed = true;
              break;
            }
          }
        }
        if (removed) {
          pds_base = PossibleDSep(g, x);  // graph changed; refresh for later y
        }
      }
    }
    // Reset remaining edges to circle-circle and re-orient with the final
    // adjacency structure.
    for (size_t a = 0; a < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        if (g.HasEdge(a, b)) {
          g.AddCircleCircle(a, b);
        }
      }
    }
    constraints.ApplyOrientations(&g);
    OrientVStructures(result.sepsets, &g);
  }

  {
    TRACE_SPAN("fci.orient", "engine");
    ApplyOrientationRules(result.sepsets, &g);
    constraints.ApplyOrientations(&g);
  }

  result.tests_performed = test.calls - calls_at_entry;
  result.pag = std::move(g);
  return result;
}

}  // namespace unicorn
