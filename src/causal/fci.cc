#include "causal/fci.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace unicorn {
namespace {

// Sets an arrowhead at z on edge (u, z) if not already an arrowhead.
// Returns true when the mark changed. `circles`, when given, tracks how many
// incident circle marks each node still has at its own end (see
// ApplyOrientationRules); destroying a circle decrements the count.
bool PutArrow(MixedGraph* g, size_t u, size_t z, std::vector<int>* circles = nullptr) {
  const Mark at_z = g->EndMark(u, z);
  if (at_z == Mark::kArrow) {
    return false;
  }
  if (circles != nullptr && at_z == Mark::kCircle) {
    --(*circles)[z];
  }
  g->SetEndMark(u, z, Mark::kArrow);
  return true;
}

// Sets a tail at z's end of edge (u, z). Returns true when changed.
bool PutTail(MixedGraph* g, size_t u, size_t z, std::vector<int>* circles = nullptr) {
  const Mark at_z = g->EndMark(u, z);
  if (at_z == Mark::kTail) {
    return false;
  }
  if (circles != nullptr && at_z == Mark::kCircle) {
    --(*circles)[z];
  }
  g->SetEndMark(u, z, Mark::kTail);
  return true;
}

}  // namespace

void OrientVStructures(const SepsetMap& sepsets, MixedGraph* g) {
  const size_t n = g->NumNodes();
  // Iterate unshielded pairs and intersect their (frozen) adjacency rows as
  // bitsets instead of enumerating triples z-outer: the triple order
  // re-queried the sepset map once per common neighbor, while here one fetch
  // per pair suffices and the intersection is a handful of word ANDs. The
  // set of visited (x, y, z) triples is unchanged — bit extraction walks the
  // common neighbors in ascending order — and the upgrades are idempotent
  // circle->arrow promotions whose guards never re-enable, so the final
  // marks are identical in either order.
  const size_t words = (n + 63) / 64;
  std::vector<uint64_t> bits(n * words, 0);
  for (size_t v = 0; v < n; ++v) {
    for (size_t u : g->Adjacent(v)) {
      bits[v * words + u / 64] |= uint64_t{1} << (u % 64);
    }
  }
  for (size_t x = 0; x < n; ++x) {
    const uint64_t* bx = &bits[x * words];
    for (size_t y = x + 1; y < n; ++y) {
      if (g->HasEdge(x, y)) {
        continue;  // shielded
      }
      const uint64_t* by = &bits[y * words];
      const std::vector<size_t>* s = nullptr;
      bool sepset_fetched = false;
      for (size_t w = 0; w < words; ++w) {
        uint64_t common = bx[w] & by[w];
        while (common != 0) {
          const size_t z = w * 64 + static_cast<size_t>(__builtin_ctzll(common));
          common &= common - 1;
          if (!sepset_fetched) {
            s = sepsets.Get(x, y);
            sepset_fetched = true;
          }
          if (s == nullptr || !std::binary_search(s->begin(), s->end(), z)) {
            // x *-> z <-* y. Only upgrade circle marks; background-knowledge
            // tails (options) stay tails to keep constraints satisfied.
            if (g->HasCircleAt(x, z)) {
              PutArrow(g, x, z);
            }
            if (g->HasCircleAt(y, z)) {
              PutArrow(g, y, z);
            }
          }
        }
      }
    }
  }
}

std::vector<size_t> PossibleDSep(const MixedGraph& g, size_t x) {
  const size_t n = g.NumNodes();
  // BFS over edges (u, v): extendable to (v, w) when w is a collider on
  // <u, v, w> or u and w are adjacent.
  std::vector<std::vector<bool>> visited(n, std::vector<bool>(n, false));
  std::vector<std::pair<size_t, size_t>> frontier;
  std::vector<bool> in_result(n, false);
  for (size_t v : g.Adjacent(x)) {
    frontier.push_back({x, v});
    visited[x][v] = true;
    in_result[v] = true;
  }
  while (!frontier.empty()) {
    auto [u, v] = frontier.back();
    frontier.pop_back();
    for (size_t w : g.Adjacent(v)) {
      if (w == u || visited[v][w]) {
        continue;
      }
      const bool collider = g.IsCollider(u, v, w);
      const bool triangle = g.HasEdge(u, w);
      if (collider || triangle) {
        visited[v][w] = true;
        in_result[w] = true;
        frontier.push_back({v, w});
      }
    }
  }
  std::vector<size_t> out;
  for (size_t v = 0; v < n; ++v) {
    if (v != x && in_result[v]) {
      out.push_back(v);
    }
  }
  return out;
}

namespace {

// Orientation rules R1-R4 only upgrade edge marks; they never add or remove
// an edge. Adjacency is therefore frozen for the whole fixpoint loop, and the
// rules share one precomputed set of adjacency lists instead of rescanning
// the dense mark matrix (and allocating a fresh vector) on every visit.
using AdjacencyLists = std::vector<std::vector<size_t>>;

AdjacencyLists BuildAdjacencyLists(const MixedGraph& g) {
  AdjacencyLists adj(g.NumNodes());
  for (size_t v = 0; v < g.NumNodes(); ++v) {
    adj[v] = g.Adjacent(v);
  }
  return adj;
}

// R1: a *-> b o-* c, a and c non-adjacent  =>  b -> c (tail at b, arrow at c).
bool RuleR1(const AdjacencyLists& adj, std::vector<int>* circles, MixedGraph* g) {
  const size_t n = g->NumNodes();
  bool changed = false;
  for (size_t b = 0; b < n; ++b) {
    if ((*circles)[b] == 0) {
      // R1 fires only through HasCircleAt(c, b) — a circle at b's own end.
      // Rules never create circles, so once b runs out they stay out and the
      // arrow-parent scan below can be skipped exactly.
      continue;
    }
    for (size_t a : adj[b]) {
      if (!g->HasArrowAt(a, b)) {
        continue;
      }
      for (size_t c : adj[b]) {
        if (c == a || g->HasEdge(a, c)) {
          continue;
        }
        if (g->HasCircleAt(c, b)) {
          // mark at b on edge b-c is circle -> make it tail; arrow at c.
          changed |= PutTail(g, c, b, circles);
          if (g->HasCircleAt(b, c)) {
            changed |= PutArrow(g, b, c, circles);
          }
        }
      }
    }
  }
  return changed;
}

// R2: (a -> b *-> c) or (a *-> b -> c), and a *-o c  =>  arrow at c on a-c.
bool RuleR2(const AdjacencyLists& adj, std::vector<int>* circles, MixedGraph* g) {
  const size_t n = g->NumNodes();
  bool changed = false;
  for (size_t a = 0; a < n; ++a) {
    for (size_t c : adj[a]) {
      if (!g->HasCircleAt(a, c)) {
        continue;
      }
      for (size_t b : adj[a]) {
        if (b == c || !g->HasEdge(b, c)) {
          continue;
        }
        const bool chain1 = g->IsDirected(a, b) && g->HasArrowAt(b, c);
        const bool chain2 = g->HasArrowAt(a, b) && g->IsDirected(b, c);
        if (chain1 || chain2) {
          changed |= PutArrow(g, a, c, circles);
          break;
        }
      }
    }
  }
  return changed;
}

// R3: a *-> b <-* c, a *-o d o-* c, a and c non-adjacent, d *-o b
//     =>  arrow at b on d-b.
bool RuleR3(const AdjacencyLists& adj, std::vector<int>* circles, MixedGraph* g) {
  const size_t n = g->NumNodes();
  bool changed = false;
  for (size_t d = 0; d < n; ++d) {
    if ((*circles)[d] == 0) {
      // R3 needs a *-o d and c *-o d — circle marks at d's own end. None
      // left (and rules never create them) means d can be skipped exactly.
      continue;
    }
    for (size_t b : adj[d]) {
      if (!g->HasCircleAt(d, b)) {
        continue;
      }
      const auto& adj_d = adj[d];
      for (size_t a : adj_d) {
        if (a == b || !g->HasCircleAt(a, d) || !g->HasEdge(a, b) || !g->HasArrowAt(a, b)) {
          continue;
        }
        for (size_t c : adj_d) {
          if (c == a || c == b || g->HasEdge(a, c)) {
            continue;
          }
          if (g->HasCircleAt(c, d) && g->HasEdge(c, b) && g->HasArrowAt(c, b)) {
            changed |= PutArrow(g, d, b, circles);
            break;
          }
        }
      }
    }
  }
  return changed;
}

// R4 (discriminating path): if p = <d, ..., a, b, c> is a discriminating path
// for b (every interior vertex is a collider on p and a parent of c; d and c
// non-adjacent) and b o-* c, then: if b in sepset(d, c) orient b -> c, else
// orient a <-> b <-> c.
//
// We search discriminating paths with a bounded DFS extending backwards from
// <a, b, c>.
bool RuleR4(const SepsetMap& sepsets, const AdjacencyLists& adj, std::vector<int>* circles,
            MixedGraph* g) {
  const size_t n = g->NumNodes();
  bool changed = false;
  constexpr size_t kMaxPathLen = 8;
  for (size_t b = 0; b < n; ++b) {
    for (size_t c : adj[b]) {
      if (!g->HasCircleAt(b, c) && !g->HasCircleAt(c, b)) {
        continue;
      }
      for (size_t a : adj[b]) {
        if (a == c || !g->HasEdge(a, c)) {
          continue;
        }
        // Interior vertices must be colliders on the path and parents of c.
        if (!g->HasArrowAt(b, a) && !g->IsDirected(a, c)) {
          continue;
        }
        if (!g->IsDirected(a, c) || !g->HasArrowAt(b, a)) {
          continue;
        }
        // DFS backwards from a; the path so far is <v, ..., a, b, c>.
        std::vector<bool> on_path(n, false);
        on_path[a] = true;
        on_path[b] = true;
        on_path[c] = true;
        std::function<bool(size_t, size_t)> extend = [&](size_t v, size_t depth) -> bool {
          if (depth > kMaxPathLen) {
            return false;
          }
          for (size_t d : adj[v]) {
            if (on_path[d]) {
              continue;
            }
            if (!g->HasArrowAt(d, v)) {
              continue;  // path edges must point into the collider chain
            }
            if (!g->HasEdge(d, c)) {
              // Found a discriminating path <d, ..., b, c>.
              if (sepsets.Contains(d, c, b)) {
                bool local = false;
                local |= PutTail(g, c, b, circles);
                local |= PutArrow(g, b, c, circles);
                return local;
              }
              bool local = false;
              local |= PutArrow(g, b, a, circles);
              local |= PutArrow(g, a, b, circles);
              local |= PutArrow(g, c, b, circles);
              local |= PutArrow(g, b, c, circles);
              return local;
            }
            // d is adjacent to c: to stay discriminating it must be a
            // collider on the path and a parent of c.
            if (g->IsDirected(d, c) && g->HasArrowAt(v, d)) {
              on_path[d] = true;
              const bool found = extend(d, depth + 1);
              on_path[d] = false;
              if (found) {
                return true;
              }
            }
          }
          return false;
        };
        if (extend(a, 3)) {
          changed = true;
        }
      }
    }
  }
  return changed;
}

}  // namespace

size_t ApplyOrientationRules(const SepsetMap& sepsets, MixedGraph* g) {
  const AdjacencyLists adj = BuildAdjacencyLists(*g);
  // Incident circle marks at each node's own end. The rules only ever destroy
  // circles (every mark write is an upgrade via PutArrow/PutTail), so the
  // counts shrink monotonically and a zero lets R1/R3 skip the node for the
  // rest of the fixpoint loop.
  const size_t n = g->NumNodes();
  std::vector<int> circles(n, 0);
  for (size_t v = 0; v < n; ++v) {
    for (size_t u : adj[v]) {
      if (g->HasCircleAt(u, v)) {
        ++circles[v];
      }
    }
  }
  size_t total = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    if (RuleR1(adj, &circles, g)) {
      changed = true;
      ++total;
    }
    if (RuleR2(adj, &circles, g)) {
      changed = true;
      ++total;
    }
    if (RuleR3(adj, &circles, g)) {
      changed = true;
      ++total;
    }
    if (RuleR4(sepsets, adj, &circles, g)) {
      changed = true;
      ++total;
    }
  }
  return total;
}

namespace {

// --- Possible-D-SEP phase ---------------------------------------------------
//
// The serial reference walks sources x in order, neighbors y in adjacency
// order, and for each remaining edge sweeps subsets of pds(x)\{y} by size
// until one renders the pair independent; a removal immediately refreshes
// pds(x) for later neighbors. Unlike the PC-stable skeleton levels, later
// pairs therefore *do* depend on earlier removals — so the parallel form
// below speculates every sweep against the phase-entry graph and re-validates
// each pair's conditioning pool during a deterministic in-order merge,
// falling back to an inline re-sweep when an earlier removal changed it.

// Pool of conditioning candidates the serial loop uses for side (x, y):
// pds(x) minus {y} and the objective sinks.
std::vector<size_t> FilterPdsPool(const std::vector<size_t>& pds_base, size_t y,
                                  const StructuralConstraints& constraints) {
  std::vector<size_t> pds = pds_base;
  pds.erase(std::remove_if(pds.begin(), pds.end(),
                           [&](size_t v) {
                             return v == y || constraints.roles()[v] == VarRole::kObjective;
                           }),
            pds.end());
  return pds;
}

// One side's whole sweep, precomputed: the subsets in exactly the order the
// serial d-loop examines them (sizes 1..max_pds_cond_size, lexicographic
// within a size, capped per size), plus their int form for the CI request.
struct PdsSweep {
  std::vector<std::vector<size_t>> subsets;  // for SepsetMap::Set
  std::vector<std::vector<int>> sets;        // for BatchedCIRequest
};

PdsSweep BuildPdsSweep(const std::vector<size_t>& pool, const FciOptions& options) {
  PdsSweep sweep;
  for (int d = 1; d <= options.max_pds_cond_size; ++d) {
    for (auto& subset :
         Subsets(pool, static_cast<size_t>(d), options.max_pds_subsets)) {
      sweep.sets.emplace_back(subset.begin(), subset.end());
      sweep.subsets.push_back(std::move(subset));
    }
  }
  return sweep;
}

// One ordered side (x, y) of a remaining edge in the parallel phase.
struct PdsSide {
  size_t x = 0;
  size_t y = 0;
  bool candidate = false;   // passed the static (graph-independent) filters
  bool speculated = false;  // a worker ran the speculative sweep
  bool resolved = false;    // merge adopted or discarded the speculation
  std::vector<size_t> pool0;  // filtered pool against the phase-entry graph
  PdsSweep sweep;
  CISpeculation spec;

  BatchedCIRequest Request(double alpha) const {
    BatchedCIRequest req;
    req.x = static_cast<int>(x);
    req.y = static_cast<int>(y);
    req.sets = &sweep.sets;
    req.alpha = alpha;
    return req;
  }
};

// Both sides of one remaining edge {a, b}: side[0] = (a, b) is the side the
// serial loop visits first (turn a comes before turn b).
struct PdsEdgeGroup {
  PdsSide side[2];
  bool side0_clean_adopt = false;  // side[0] adopted as speculated, no removal
};

void PossibleDSepPhase(const CITest& test, const StructuralConstraints& constraints,
                       size_t num_vars, const FciOptions& options,
                       const SkeletonWarmStart& warm, ThreadPool* pool, MixedGraph* graph,
                       SepsetMap* sepsets) {
  MixedGraph& g = *graph;
  const size_t n = num_vars;
  const bool warm_active = warm.Active();
  const double alpha = options.skeleton.alpha;
  // Graph-independent per-side filters, shared by the serial loop, the task
  // construction, and the merge.
  const auto static_candidate = [&](size_t x, size_t y) {
    return !constraints.EdgeRequired(x, y) && !(warm_active && !warm.Dirty(x, y, n));
  };

  if (pool == nullptr || pool->num_threads() <= 1) {
    // Serial reference: identical control flow to the parallel merge below,
    // with each side's subsets submitted as one batched FirstIndependent.
    for (size_t x = 0; x < n; ++x) {
      const auto adj = g.Adjacent(x);
      // PossibleDSep depends only on the graph, which changes only on edge
      // removal: compute it once per x and refresh after removals instead of
      // re-running the O(n^2) BFS for every neighbor.
      std::vector<size_t> pds_base = PossibleDSep(g, x);
      for (size_t y : adj) {
        if (!g.HasEdge(x, y) || !static_candidate(x, y)) {
          continue;
        }
        const PdsSweep sweep = BuildPdsSweep(FilterPdsPool(pds_base, y, constraints), options);
        BatchedCIRequest req;
        req.x = static_cast<int>(x);
        req.y = static_cast<int>(y);
        req.sets = &sweep.sets;
        req.alpha = alpha;
        const int idx = test.FirstIndependent(req);
        if (idx >= 0) {
          g.RemoveEdge(x, y);
          sepsets->Set(x, y, sweep.subsets[static_cast<size_t>(idx)]);
          pds_base = PossibleDSep(g, x);  // graph changed; refresh for later y
        }
      }
    }
    return;
  }

  // Parallel phase. Stage A/B run against a snapshot of the phase-entry
  // graph; the merge then replays the serial order exactly.
  const MixedGraph g0 = g;
  std::vector<PdsEdgeGroup> groups;
  std::vector<int32_t> group_of(n * n, -1);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b : g0.Adjacent(a)) {
      if (b <= a) {
        continue;
      }
      PdsEdgeGroup grp;
      grp.side[0].x = a;
      grp.side[0].y = b;
      grp.side[0].candidate = static_candidate(a, b);
      grp.side[1].x = b;
      grp.side[1].y = a;
      grp.side[1].candidate = static_candidate(b, a);
      if (!grp.side[0].candidate && !grp.side[1].candidate) {
        continue;
      }
      group_of[a * n + b] = static_cast<int32_t>(groups.size());
      groups.push_back(std::move(grp));
    }
  }

  // Stage A: Possible-D-SEP pools per source node, in parallel against g0.
  std::vector<char> need_pds(n, 0);
  for (const PdsEdgeGroup& grp : groups) {
    for (const PdsSide& side : grp.side) {
      if (side.candidate) {
        need_pds[side.x] = 1;
      }
    }
  }
  std::vector<size_t> sources;
  for (size_t v = 0; v < n; ++v) {
    if (need_pds[v] != 0) {
      sources.push_back(v);
    }
  }
  std::vector<std::vector<size_t>> pds0(n);
  pool->ParallelFor(sources.size(),
                    [&](size_t i) { pds0[sources[i]] = PossibleDSep(g0, sources[i]); });

  // Stage B: speculative batched sweeps, one task per remaining edge. The
  // second side runs only when the first found no independence (the serial
  // loop would otherwise have removed the edge before its turn) and sees the
  // first side's would-be cache stores through the overlay.
  pool->ParallelFor(groups.size(), [&](size_t gi) {
    TRACE_SPAN("fci.possible_dsep.sweep", "engine");
    PdsEdgeGroup& grp = groups[gi];
    PendingPValues overlay;
    for (int si = 0; si < 2; ++si) {
      PdsSide& side = grp.side[si];
      if (!side.candidate) {
        continue;
      }
      side.pool0 = FilterPdsPool(pds0[side.x], side.y, constraints);
      side.sweep = BuildPdsSweep(side.pool0, options);
      const BatchedCIRequest req = side.Request(alpha);
      test.SpeculateFirstIndependent(req, si == 1 ? &overlay : nullptr, &side.spec);
      side.speculated = true;
      if (side.spec.first_independent >= 0) {
        break;
      }
      if (si == 0) {
        test.AppendPendingOverlay(side.spec, req, &overlay);
      }
    }
  });

  // Deterministic merge: walk sides in the exact serial order, adopting a
  // speculation whenever the pool the serial loop would use still equals the
  // speculated one, re-sweeping inline otherwise.
  bool any_removed = false;
  for (size_t x = 0; x < n; ++x) {
    const auto adj0 = g0.Adjacent(x);
    bool have_live = false;
    std::vector<size_t> pds_live;
    for (size_t y : adj0) {
      if (!g.HasEdge(x, y)) {
        continue;  // removed by an earlier turn, exactly as in serial
      }
      const size_t a = std::min(x, y);
      const size_t b = std::max(x, y);
      const int32_t gi = group_of[a * n + b];
      if (gi < 0) {
        continue;
      }
      PdsEdgeGroup& grp = groups[static_cast<size_t>(gi)];
      PdsSide& side = grp.side[x < y ? 0 : 1];
      if (!side.candidate) {
        continue;
      }
      bool adopt = side.speculated;
      if (adopt && x > y && grp.side[0].candidate && !grp.side0_clean_adopt) {
        // The overlay this side consumed came from a side[0] sweep the
        // serial order did not reproduce; its hit pattern may be off by a
        // store, so re-sweep.
        adopt = false;
      }
      if (adopt && any_removed) {
        if (!have_live) {
          pds_live = PossibleDSep(g, x);
          have_live = true;
        }
        adopt = FilterPdsPool(pds_live, y, constraints) == side.pool0;
      }
      if (adopt) {
        test.AdoptSpeculation(side.spec, side.Request(alpha));
        side.resolved = true;
        if (side.spec.first_independent >= 0) {
          g.RemoveEdge(x, y);
          sepsets->Set(x, y,
                       side.sweep.subsets[static_cast<size_t>(side.spec.first_independent)]);
          any_removed = true;
          have_live = false;  // serial refreshes pds(x) after a removal
        } else if (x < y) {
          grp.side0_clean_adopt = true;
        }
        continue;
      }
      // Inputs changed under this side: discard the speculation and re-run
      // the sweep inline against the live graph, exactly as serial would.
      if (side.speculated) {
        test.DiscardSpeculation(side.spec);
        side.resolved = true;
      }
      if (!have_live) {
        pds_live = PossibleDSep(g, x);
        have_live = true;
      }
      const PdsSweep sweep = BuildPdsSweep(FilterPdsPool(pds_live, y, constraints), options);
      BatchedCIRequest req;
      req.x = static_cast<int>(x);
      req.y = static_cast<int>(y);
      req.sets = &sweep.sets;
      req.alpha = alpha;
      const int idx = test.FirstIndependent(req);
      if (idx >= 0) {
        g.RemoveEdge(x, y);
        sepsets->Set(x, y, sweep.subsets[static_cast<size_t>(idx)]);
        any_removed = true;
        have_live = false;
      }
    }
  }
  // Speculations the merge never reached (edge removed before its turn, or a
  // second side skipped because the first removed the edge) advanced the
  // inner test's counters while sweeping; roll those back.
  for (PdsEdgeGroup& grp : groups) {
    for (PdsSide& side : grp.side) {
      if (side.speculated && !side.resolved) {
        test.DiscardSpeculation(side.spec);
      }
    }
  }
}

}  // namespace

FciResult RunFci(const CITest& test, const StructuralConstraints& constraints, size_t num_vars,
                 const FciOptions& options, const SkeletonWarmStart& warm, ThreadPool* pool) {
  const long long calls_at_entry = test.calls;
  FciResult result;
  // One pool serves the skeleton levels and the Possible-D-SEP phase; a
  // caller-provided pool always wins.
  std::unique_ptr<ThreadPool> local_pool;
  if (pool == nullptr && options.skeleton.num_threads > 1) {
    local_pool = std::make_unique<ThreadPool>(options.skeleton.num_threads);
    pool = local_pool.get();
  }
  obs::trace::Begin("fci.skeleton", "engine");
  SkeletonResult skel = LearnSkeleton(test, constraints, num_vars, options.skeleton, warm, pool);
  obs::trace::End("tests", static_cast<double>(skel.tests_performed));
  result.sepsets = std::move(skel.sepsets);
  MixedGraph& g = skel.graph;

  constraints.ApplyOrientations(&g);
  OrientVStructures(result.sepsets, &g);

  if (options.use_possible_dsep) {
    TRACE_SPAN("fci.possible_dsep", "engine");
    // Possible-D-SEP pruning: retest every remaining edge against subsets of
    // pds(x) \ {x, y}; remove on independence.
    const size_t n = num_vars;
    PossibleDSepPhase(test, constraints, num_vars, options, warm, pool, &g, &result.sepsets);
    // Phase barrier: buffered cache stores from the sweep become visible to
    // other shards here, at a deterministic point. No-op for uncached tests.
    test.PublishPending();
    // Reset remaining edges to circle-circle and re-orient with the final
    // adjacency structure.
    for (size_t a = 0; a < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        if (g.HasEdge(a, b)) {
          g.AddCircleCircle(a, b);
        }
      }
    }
    constraints.ApplyOrientations(&g);
    OrientVStructures(result.sepsets, &g);
  }

  {
    TRACE_SPAN("fci.orient", "engine");
    ApplyOrientationRules(result.sepsets, &g);
    constraints.ApplyOrientations(&g);
  }

  result.tests_performed = test.calls - calls_at_entry;
  result.pag = std::move(g);
  return result;
}

}  // namespace unicorn
