// Fast Causal Inference (FCI) producing a partial ancestral graph.
//
// Implements the constraint-based pipeline of Spirtes et al. adapted with the
// performance-modeling background knowledge (paper §4 Stage II):
//   1. skeleton + sepsets (PC-stable search, structural constraints),
//   2. collider (v-structure) orientation from sepsets,
//   3. Possible-D-SEP pruning and re-orientation (the step that makes FCI
//      sound under latent confounders),
//   4. Zhang's orientation rules R1-R4 to a fixpoint.
// Selection bias is assumed absent (rules R5-R7 omitted), matching the
// measurement setup of the paper: configurations are sampled, not selected
// on outcomes.
#ifndef UNICORN_CAUSAL_FCI_H_
#define UNICORN_CAUSAL_FCI_H_

#include "causal/skeleton.h"

namespace unicorn {

struct FciOptions {
  SkeletonOptions skeleton;
  // Cap on Possible-D-SEP conditioning-set size (the dominant cost).
  int max_pds_cond_size = 3;
  size_t max_pds_subsets = 64;
  bool use_possible_dsep = true;
};

struct FciResult {
  MixedGraph pag;
  SepsetMap sepsets;
  // CI tests requested across the skeleton and Possible-D-SEP phases,
  // derived from CITest::calls (single source of truth for test accounting).
  long long tests_performed = 0;
};

// `warm` (see skeleton.h) restricts both the skeleton sweep and the
// Possible-D-SEP re-tests to pairs whose statistics changed since the
// engine's previous refresh; clean pairs keep their previous adjacency.
// `pool` optionally supplies worker threads for the skeleton sweep.
FciResult RunFci(const CITest& test, const StructuralConstraints& constraints, size_t num_vars,
                 const FciOptions& options = {}, const SkeletonWarmStart& warm = {},
                 ThreadPool* pool = nullptr);

// Exposed for tests --------------------------------------------------------

// Orients unshielded colliders x *-> z <-* y whenever z is not in
// sepset(x, y).
void OrientVStructures(const SepsetMap& sepsets, MixedGraph* g);

// Possible-D-SEP set of x: nodes v reachable from x along a path on which
// every interior vertex w is either a collider or has its neighbours
// adjacent to each other.
std::vector<size_t> PossibleDSep(const MixedGraph& g, size_t x);

// Applies Zhang rules R1-R4 until no rule fires. Returns number of end-mark
// changes applied.
size_t ApplyOrientationRules(const SepsetMap& sepsets, MixedGraph* g);

}  // namespace unicorn

#endif  // UNICORN_CAUSAL_FCI_H_
