#include "causal/identification.h"

#include <algorithm>

#include "graph/algorithms.h"

namespace unicorn {

std::vector<size_t> DistrictOf(const MixedGraph& admg, size_t v,
                               const std::vector<bool>& allowed) {
  std::vector<size_t> district;
  if (!allowed[v]) {
    return district;
  }
  std::vector<bool> seen(admg.NumNodes(), false);
  std::vector<size_t> stack = {v};
  seen[v] = true;
  while (!stack.empty()) {
    const size_t u = stack.back();
    stack.pop_back();
    district.push_back(u);
    for (size_t w : admg.Spouses(u)) {
      if (allowed[w] && !seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  std::sort(district.begin(), district.end());
  return district;
}

IdentificationResult CheckIdentifiability(const MixedGraph& admg, size_t x, size_t y) {
  IdentificationResult result;

  // If Y is not a descendant of X, do(X) cannot affect Y: trivially
  // identifiable (the effect is the observational marginal of Y).
  const auto descendants = Descendants(admg, x);
  if (std::find(descendants.begin(), descendants.end(), y) == descendants.end()) {
    result.reason = "Y is not a descendant of X; do(X) has no effect on Y";
    return result;
  }

  // Tian-Pearl: restrict to De(X) ∪ {X} and test whether X shares a district
  // with one of its children.
  std::vector<bool> allowed(admg.NumNodes(), false);
  allowed[x] = true;
  for (size_t d : descendants) {
    allowed[d] = true;
  }
  const auto district = DistrictOf(admg, x, allowed);
  for (size_t child : admg.Children(x)) {
    if (!allowed[child]) {
      continue;
    }
    if (std::binary_search(district.begin(), district.end(), child)) {
      result.identifiable = false;
      result.confounded_child = child;
      result.reason =
          "X and its child share a bidirected (latent-confounder) path within "
          "the descendants of X; the interventional distribution is not "
          "identifiable from observational data alone";
      return result;
    }
  }
  result.reason = "no bidirected path from X to a child of X within De(X)";
  return result;
}

}  // namespace unicorn
