// Identifiability checking for interventional queries on an ADMG.
//
// Stage V of Unicorn "provides a quantitative estimate for the identifiable
// queries ... and may return some queries as unidentifiable". For a single
// intervention do(X), the Tian-Pearl criterion applies: P(v | do(x)) is
// identifiable iff no bidirected path connects X to any of its children
// inside the subgraph induced by the descendants of X. When a query is not
// identifiable the result names the offending confounded child, so the user
// can decide to measure more variables or add assumptions (paper Fig. 7).
#ifndef UNICORN_CAUSAL_IDENTIFICATION_H_
#define UNICORN_CAUSAL_IDENTIFICATION_H_

#include <string>
#include <vector>

#include "graph/mixed_graph.h"

namespace unicorn {

struct IdentificationResult {
  bool identifiable = true;
  // When not identifiable: a child of X bidirectedly connected to X within
  // the descendant subgraph (the witness of the Tian-Pearl violation).
  size_t confounded_child = 0;
  std::string reason;
};

// Checks identifiability of E[Y | do(X = x)] on the given ADMG.
IdentificationResult CheckIdentifiability(const MixedGraph& admg, size_t x, size_t y);

// The district (c-component) of `v` within the node subset `allowed`:
// all nodes reachable from v via bidirected edges staying inside `allowed`.
std::vector<size_t> DistrictOf(const MixedGraph& admg, size_t v,
                               const std::vector<bool>& allowed);

}  // namespace unicorn

#endif  // UNICORN_CAUSAL_IDENTIFICATION_H_
