#include "causal/latent_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/entropy.h"

namespace unicorn {
namespace {

constexpr double kEps = 1e-12;

struct Coupling {
  // q[z][x][y] = q(z | x, y)
  std::vector<std::vector<std::vector<double>>> q;
  int nz = 0;
  int nx = 0;
  int ny = 0;
};

// One LatentSearch fixed-point iteration:
//   q_{t+1}(z|x,y) ∝ q_t(z|x) * q_t(z|y) / q_t(z)^{1-beta}
// where the conditionals/marginal are induced by q_t and p(x,y). The beta
// term trades conditional-independence fit against H(Z).
void Iterate(const std::vector<std::vector<double>>& p_xy, double beta, Coupling* c) {
  const int nz = c->nz;
  const int nx = c->nx;
  const int ny = c->ny;
  std::vector<double> qz(nz, 0.0);
  std::vector<std::vector<double>> qzx(nz, std::vector<double>(nx, 0.0));  // q(z, x)
  std::vector<std::vector<double>> qzy(nz, std::vector<double>(ny, 0.0));  // q(z, y)
  std::vector<double> px(nx, 0.0);
  std::vector<double> py(ny, 0.0);
  for (int x = 0; x < nx; ++x) {
    for (int y = 0; y < ny; ++y) {
      px[x] += p_xy[x][y];
      py[y] += p_xy[x][y];
      for (int z = 0; z < nz; ++z) {
        const double mass = c->q[z][x][y] * p_xy[x][y];
        qz[z] += mass;
        qzx[z][x] += mass;
        qzy[z][y] += mass;
      }
    }
  }
  for (int x = 0; x < nx; ++x) {
    for (int y = 0; y < ny; ++y) {
      if (p_xy[x][y] <= kEps) {
        continue;
      }
      double norm = 0.0;
      std::vector<double> next(nz, 0.0);
      for (int z = 0; z < nz; ++z) {
        const double qz_x = px[x] > kEps ? qzx[z][x] / px[x] : 0.0;
        const double qz_y = py[y] > kEps ? qzy[z][y] / py[y] : 0.0;
        const double denom = std::pow(std::max(qz[z], kEps), 1.0 - beta);
        next[z] = qz_x * qz_y / denom;
        norm += next[z];
      }
      if (norm <= kEps) {
        continue;
      }
      for (int z = 0; z < nz; ++z) {
        c->q[z][x][y] = next[z] / norm;
      }
    }
  }
}

// H(Z) and I(X;Y|Z) of the joint induced by the coupling and p(x,y).
void Evaluate(const std::vector<std::vector<double>>& p_xy, const Coupling& c, double* h_z,
              double* cmi) {
  const int nz = c.nz;
  const int nx = c.nx;
  const int ny = c.ny;
  std::vector<double> qz(nz, 0.0);
  std::vector<std::vector<double>> qzx(nz, std::vector<double>(nx, 0.0));
  std::vector<std::vector<double>> qzy(nz, std::vector<double>(ny, 0.0));
  double h_xyz = 0.0;
  for (int z = 0; z < nz; ++z) {
    for (int x = 0; x < nx; ++x) {
      for (int y = 0; y < ny; ++y) {
        const double mass = c.q[z][x][y] * p_xy[x][y];
        if (mass > kEps) {
          qz[z] += mass;
          qzx[z][x] += mass;
          qzy[z][y] += mass;
          h_xyz -= mass * std::log(mass);
        }
      }
    }
  }
  double h_zx = 0.0;
  double h_zy = 0.0;
  double hz = 0.0;
  for (int z = 0; z < nz; ++z) {
    if (qz[z] > kEps) {
      hz -= qz[z] * std::log(qz[z]);
    }
    for (int x = 0; x < nx; ++x) {
      if (qzx[z][x] > kEps) {
        h_zx -= qzx[z][x] * std::log(qzx[z][x]);
      }
    }
    for (int y = 0; y < ny; ++y) {
      if (qzy[z][y] > kEps) {
        h_zy -= qzy[z][y] * std::log(qzy[z][y]);
      }
    }
  }
  *h_z = hz;
  // I(X;Y|Z) = H(X,Z) + H(Y,Z) - H(X,Y,Z) - H(Z)
  *cmi = std::max(0.0, h_zx + h_zy - h_xyz - hz);
}

}  // namespace

LatentSearchResult LatentSearch(const std::vector<std::vector<double>>& p_xy,
                                const LatentSearchOptions& options, Rng* rng) {
  LatentSearchResult best;
  best.latent_entropy = std::numeric_limits<double>::infinity();
  const int nx = static_cast<int>(p_xy.size());
  const int ny = nx > 0 ? static_cast<int>(p_xy[0].size()) : 0;
  if (nx == 0 || ny == 0) {
    best.latent_entropy = 0.0;
    return best;
  }
  const int nz =
      options.latent_cardinality > 0 ? options.latent_cardinality : std::max(nx, ny);

  for (int restart = 0; restart < options.restarts; ++restart) {
    Coupling c;
    c.nz = nz;
    c.nx = nx;
    c.ny = ny;
    c.q.assign(nz, std::vector<std::vector<double>>(nx, std::vector<double>(ny, 0.0)));
    // Random (Dirichlet-like) initialization of q(z|x,y).
    for (int x = 0; x < nx; ++x) {
      for (int y = 0; y < ny; ++y) {
        double norm = 0.0;
        for (int z = 0; z < nz; ++z) {
          const double w = -std::log(std::max(rng->Uniform(), kEps));
          c.q[z][x][y] = w;
          norm += w;
        }
        for (int z = 0; z < nz; ++z) {
          c.q[z][x][y] /= norm;
        }
      }
    }
    for (int it = 0; it < options.iterations; ++it) {
      Iterate(p_xy, options.beta, &c);
    }
    double hz = 0.0;
    double cmi = 0.0;
    Evaluate(p_xy, c, &hz, &cmi);
    const bool independent = cmi < options.cmi_tolerance;
    // Prefer couplings that achieve conditional independence; among those,
    // minimize H(Z).
    const bool better = (independent && !best.independence_achieved) ||
                        (independent == best.independence_achieved && hz < best.latent_entropy);
    if (better) {
      best.latent_entropy = hz;
      best.achieved_cmi = cmi;
      best.independence_achieved = independent;
    }
  }
  return best;
}

}  // namespace unicorn
