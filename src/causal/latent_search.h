// LatentSearch: low-entropy common-cause discovery (Kocaoglu et al.).
//
// Given the empirical joint p(x, y), searches for a latent variable Z that
// renders X and Y conditionally independent while keeping H(Z) small. The
// entropic edge-resolution step (paper §4, "Resolving partially directed
// edges") declares an unmeasured confounder when H(Z) falls below
// 0.8 * min{H(X), H(Y)}.
#ifndef UNICORN_CAUSAL_LATENT_SEARCH_H_
#define UNICORN_CAUSAL_LATENT_SEARCH_H_

#include <vector>

#include "util/rng.h"

namespace unicorn {

struct LatentSearchOptions {
  int latent_cardinality = 0;  // 0 = max(|X|, |Y|)
  int iterations = 60;
  int restarts = 3;
  double beta = 0.05;         // weight of the H(Z) penalty in the loss
  double cmi_tolerance = 0.01;  // achieved I(X;Y|Z) must fall below this
};

struct LatentSearchResult {
  double latent_entropy = 0.0;      // H(Z) of the best coupling found
  double achieved_cmi = 0.0;        // I(X;Y|Z) at that coupling
  bool independence_achieved = false;
};

// p_xy is the joint distribution matrix [|X|][|Y|] (sums to ~1).
LatentSearchResult LatentSearch(const std::vector<std::vector<double>>& p_xy,
                                const LatentSearchOptions& options, Rng* rng);

}  // namespace unicorn

#endif  // UNICORN_CAUSAL_LATENT_SEARCH_H_
