#include "causal/skeleton.h"

#include <algorithm>
#include <memory>

#include "obs/trace.h"

namespace unicorn {

void SepsetMap::Set(size_t a, size_t b, std::vector<size_t> s) {
  std::sort(s.begin(), s.end());
  sets_[Key(a, b)] = std::move(s);
}

const std::vector<size_t>* SepsetMap::Get(size_t a, size_t b) const {
  auto it = sets_.find(Key(a, b));
  return it == sets_.end() ? nullptr : &it->second;
}

bool SepsetMap::Contains(size_t a, size_t b, size_t v) const {
  const auto* s = Get(a, b);
  return s != nullptr && std::binary_search(s->begin(), s->end(), v);
}

std::vector<std::vector<size_t>> Subsets(const std::vector<size_t>& pool, size_t k,
                                         size_t max_subsets) {
  std::vector<std::vector<size_t>> out;
  if (k > pool.size()) {
    return out;
  }
  if (k == 0) {
    out.push_back({});
    return out;
  }
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) {
    idx[i] = i;
  }
  while (out.size() < max_subsets) {
    std::vector<size_t> subset(k);
    for (size_t i = 0; i < k; ++i) {
      subset[i] = pool[idx[i]];
    }
    out.push_back(std::move(subset));
    // Advance lexicographically.
    size_t i = k;
    while (i-- > 0) {
      if (idx[i] != i + pool.size() - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) {
          idx[j] = idx[j - 1] + 1;
        }
        break;
      }
      if (i == 0) {
        return out;
      }
    }
  }
  return out;
}

namespace {

// Outcome of examining one (x, y) pair at one conditioning-set size.
struct PairOutcome {
  bool tested = false;   // some conditioning pool was large enough
  bool removed = false;
  std::vector<size_t> sepset;
};

// The per-pair body of the PC-stable level sweep. Reads only the frozen
// adjacency and the (thread-safe) CI test, so pairs can run concurrently and
// the outcome is independent of sweep order.
PairOutcome ExaminePair(const CITest& test, const StructuralConstraints& constraints,
                        const std::vector<std::vector<size_t>>& adj, size_t x, size_t y,
                        int d, const SkeletonOptions& options) {
  PairOutcome out;
  // Scratch reused across pairs: the level-0 sweep visits every allowed pair
  // and a fresh pool/sets allocation per pair dominates the sweep's own cost.
  thread_local std::vector<size_t> pool;
  thread_local std::vector<std::vector<int>> sets;
  // Candidate conditioning variables: adj(x)\{y} and adj(y)\{x}.
  for (int side = 0; side < 2; ++side) {
    const size_t from = side == 0 ? x : y;
    const size_t other = side == 0 ? y : x;
    std::vector<std::vector<size_t>> subsets;
    if (d == 0) {
      // The only size-0 conditioning set is {} regardless of the pool, so the
      // pool is not built; the request below is identical to the general path.
      out.tested = true;
      sets.resize(1);
      sets[0].clear();
    } else {
      // Objectives are sinks (structural constraint): conditioning on a
      // pure sink can only open collider paths, never block one, and
      // near-deterministic objectives otherwise destroy true edges.
      //
      // For singleton conditioning sets the lexicographic enumeration in
      // Subsets emits the first max_subsets pool entries and nothing else, so
      // the adjacency scan can stop there. Larger sets need the full pool:
      // past the emitted prefix the lexicographic sequence depends on the
      // pool's total size.
      const bool cap_pool = d == 1;
      const size_t pool_cap = std::max(options.max_subsets, static_cast<size_t>(d));
      pool.clear();
      for (size_t v : adj[from]) {
        if (v != other && constraints.roles()[v] != VarRole::kObjective) {
          pool.push_back(v);
          if (cap_pool && pool.size() >= pool_cap) {
            break;
          }
        }
      }
      if (pool.size() < static_cast<size_t>(d)) {
        continue;
      }
      out.tested = true;
      subsets = Subsets(pool, static_cast<size_t>(d), options.max_subsets);
      sets.resize(subsets.size());
      for (size_t i = 0; i < subsets.size(); ++i) {
        sets[i].assign(subsets[i].begin(), subsets[i].end());
      }
    }
    // Submit the whole level for this side as one batched request: the test
    // examines the sets in subset order with the serial early exit, but can
    // amortize per-pair setup (coded columns, cache keys) across them.
    BatchedCIRequest request;
    request.x = static_cast<int>(x);
    request.y = static_cast<int>(y);
    request.sets = &sets;
    request.alpha = options.alpha;
    const int idx = test.FirstIndependent(request);
    if (idx >= 0) {
      out.removed = true;
      if (d > 0) {
        out.sepset = std::move(subsets[static_cast<size_t>(idx)]);
      }
      return out;
    }
  }
  return out;
}

}  // namespace

SkeletonResult LearnSkeleton(const CITest& test, const StructuralConstraints& constraints,
                             size_t num_vars, const SkeletonOptions& options,
                             const SkeletonWarmStart& warm, ThreadPool* pool) {
  const long long calls_at_entry = test.calls;
  SkeletonResult result;
  result.graph = MixedGraph(num_vars);
  MixedGraph& g = result.graph;
  const bool warm_active = warm.Active();
  size_t allowed_pairs = 0;
  for (size_t a = 0; a < num_vars; ++a) {
    for (size_t b = a + 1; b < num_vars; ++b) {
      allowed_pairs += constraints.EdgeAllowed(a, b) ? 1 : 0;
    }
  }
  result.sepsets.Reserve(allowed_pairs);
  for (size_t a = 0; a < num_vars; ++a) {
    for (size_t b = a + 1; b < num_vars; ++b) {
      if (!constraints.EdgeAllowed(a, b)) {
        continue;
      }
      if (warm_active && !warm.Dirty(a, b, num_vars)) {
        // Clean pair: adopt the previous refresh's decision verbatim.
        if (warm.graph->HasEdge(a, b)) {
          g.AddCircleCircle(a, b);
        } else if (const auto* s = warm.sepsets->Get(a, b)) {
          result.sepsets.Set(a, b, *s);
        }
        continue;
      }
      g.AddCircleCircle(a, b);
    }
  }

  std::unique_ptr<ThreadPool> local_pool;
  if (pool == nullptr && options.num_threads > 1) {
    local_pool = std::make_unique<ThreadPool>(options.num_threads);
    pool = local_pool.get();
  }

  for (int d = 0; d <= options.max_cond_size; ++d) {
    obs::trace::Span level_span("skeleton.level", "engine");
    level_span.SetArg("level", static_cast<double>(d));
    // PC-stable: freeze adjacency for this level so removal order does not
    // change which tests are run.
    std::vector<std::vector<size_t>> adj(num_vars);
    for (size_t v = 0; v < num_vars; ++v) {
      adj[v] = g.Adjacent(v);
    }
    // Work list in deterministic pair order; warm starts only sweep pairs
    // whose statistics changed.
    std::vector<std::pair<size_t, size_t>> pairs;
    for (size_t x = 0; x < num_vars; ++x) {
      for (size_t y : adj[x]) {
        if (y <= x || !g.HasEdge(x, y)) {
          continue;
        }
        if (constraints.EdgeRequired(x, y)) {
          continue;  // domain knowledge: never test this edge away
        }
        if (warm_active && !warm.Dirty(x, y, num_vars)) {
          continue;
        }
        pairs.push_back({x, y});
      }
    }

    level_span.SetArg("pairs", static_cast<double>(pairs.size()));
    std::vector<PairOutcome> outcomes(pairs.size());
    auto body = [&](size_t i) {
      outcomes[i] =
          ExaminePair(test, constraints, adj, pairs[i].first, pairs[i].second, d, options);
    };
    if (pool != nullptr && pairs.size() > 1) {
      pool->ParallelFor(pairs.size(), body);
    } else {
      for (size_t i = 0; i < pairs.size(); ++i) {
        body(i);
      }
    }

    // Deterministic merge: same-level pairs are independent under PC-stable,
    // so applying the removals in pair order reproduces the serial result.
    bool any_tested = false;
    for (size_t i = 0; i < pairs.size(); ++i) {
      any_tested |= outcomes[i].tested;
      if (outcomes[i].removed) {
        g.RemoveEdge(pairs[i].first, pairs[i].second);
        result.sepsets.Set(pairs[i].first, pairs[i].second, outcomes[i].sepset);
      }
    }
    // Phase barrier: publish this level's buffered cache stores so other
    // shards (and later phases) see them at a deterministic point instead of
    // mid-sweep. No-op for uncached tests.
    test.PublishPending();
    if (!any_tested && d > 0) {
      break;
    }
  }
  result.tests_performed = test.calls - calls_at_entry;
  return result;
}

}  // namespace unicorn
