// Skeleton recovery with separating sets (paper Fig. 9, steps 1-2).
//
// PC-stable adjacency search: start from the complete graph restricted by the
// structural constraints, then for growing conditioning-set sizes remove the
// edge (x, y) whenever x ⊥ y | S for some S drawn from the current adjacency
// of x or y. The separating sets feed the v-structure orientation in FCI.
//
// Two engine-oriented extensions over the textbook algorithm:
//   * The per-level edge sweep can run on a thread pool. PC-stable freezes
//     adjacency within a level, so same-level pairs are independent; per-pair
//     outcomes are merged in deterministic pair order and the result is
//     bit-identical to the serial sweep for any thread count.
//   * A warm start adopts the previous refresh's decision (edge present or
//     absent + separating set) for every pair whose endpoint statistics did
//     not change materially, and re-tests only the dirty pairs.
#ifndef UNICORN_CAUSAL_SKELETON_H_
#define UNICORN_CAUSAL_SKELETON_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "causal/constraints.h"
#include "graph/mixed_graph.h"
#include "stats/independence.h"
#include "util/thread_pool.h"

namespace unicorn {

// Separating sets keyed by unordered node pair (stored with first < second).
// Get/Contains sit on the orientation hot path (every unshielded triple asks
// for one), so the pair key is packed into 64 bits and stored in a hash map
// instead of a tree. Node indices are variable indices, far below 2^32.
class SepsetMap {
 public:
  void Set(size_t a, size_t b, std::vector<size_t> s);
  // Null when no separating set was recorded for (a, b).
  const std::vector<size_t>* Get(size_t a, size_t b) const;
  bool Contains(size_t a, size_t b, size_t v) const;
  // Pre-sizes the table (a skeleton sweep knows its pair count up front;
  // growing a ~100k-entry map by rehashing costs more than the inserts).
  void Reserve(size_t pairs) { sets_.reserve(pairs); }

 private:
  static uint64_t Key(size_t a, size_t b) {
    if (a > b) {
      std::swap(a, b);
    }
    return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
  }
  std::unordered_map<uint64_t, std::vector<size_t>> sets_;
};

struct SkeletonOptions {
  double alpha = 0.05;      // independence-test significance level
  int max_cond_size = 3;    // largest conditioning set tried
  size_t max_subsets = 64;  // cap on subsets tested per (pair, size)
  int num_threads = 1;      // workers for the per-level edge sweep
};

// Warm-start state from the engine's previous model refresh. All three
// pointers must be set for the warm start to be active; `pair_dirty` is
// indexed a * num_vars + b (a < b) and marks pairs that must be re-tested.
// Clean pairs adopt the previous adjacency decision and separating set
// without issuing any CI test.
struct SkeletonWarmStart {
  const MixedGraph* graph = nullptr;      // previous final adjacency
  const SepsetMap* sepsets = nullptr;     // previous separating sets
  const std::vector<char>* pair_dirty = nullptr;

  bool Active() const {
    return graph != nullptr && sepsets != nullptr && pair_dirty != nullptr;
  }
  bool Dirty(size_t a, size_t b, size_t num_vars) const {
    if (a > b) {
      std::swap(a, b);
    }
    return (*pair_dirty)[a * num_vars + b] != 0;
  }
};

struct SkeletonResult {
  MixedGraph graph;  // all present edges carry circle-circle marks
  SepsetMap sepsets;
  // CI tests requested during the search (derived from CITest::calls, so it
  // can never disagree with the test's own accounting).
  long long tests_performed = 0;
};

// `pool` may be null; with options.num_threads > 1 a local pool is created.
SkeletonResult LearnSkeleton(const CITest& test, const StructuralConstraints& constraints,
                             size_t num_vars, const SkeletonOptions& options = {},
                             const SkeletonWarmStart& warm = {}, ThreadPool* pool = nullptr);

// Enumerates up to `max_subsets` size-k subsets of `pool` (lexicographic).
std::vector<std::vector<size_t>> Subsets(const std::vector<size_t>& pool, size_t k,
                                         size_t max_subsets);

}  // namespace unicorn

#endif  // UNICORN_CAUSAL_SKELETON_H_
