// Skeleton recovery with separating sets (paper Fig. 9, steps 1-2).
//
// PC-stable adjacency search: start from the complete graph restricted by the
// structural constraints, then for growing conditioning-set sizes remove the
// edge (x, y) whenever x ⊥ y | S for some S drawn from the current adjacency
// of x or y. The separating sets feed the v-structure orientation in FCI.
#ifndef UNICORN_CAUSAL_SKELETON_H_
#define UNICORN_CAUSAL_SKELETON_H_

#include <map>
#include <utility>
#include <vector>

#include "causal/constraints.h"
#include "graph/mixed_graph.h"
#include "stats/independence.h"

namespace unicorn {

// Separating sets keyed by unordered node pair (stored with first < second).
class SepsetMap {
 public:
  void Set(size_t a, size_t b, std::vector<size_t> s);
  // Null when no separating set was recorded for (a, b).
  const std::vector<size_t>* Get(size_t a, size_t b) const;
  bool Contains(size_t a, size_t b, size_t v) const;

 private:
  std::map<std::pair<size_t, size_t>, std::vector<size_t>> sets_;
};

struct SkeletonOptions {
  double alpha = 0.05;      // independence-test significance level
  int max_cond_size = 3;    // largest conditioning set tried
  size_t max_subsets = 64;  // cap on subsets tested per (pair, size)
};

struct SkeletonResult {
  MixedGraph graph;  // all present edges carry circle-circle marks
  SepsetMap sepsets;
  long long tests_performed = 0;
};

SkeletonResult LearnSkeleton(const CITest& test, const StructuralConstraints& constraints,
                             size_t num_vars, const SkeletonOptions& options = {});

// Enumerates up to `max_subsets` size-k subsets of `pool` (lexicographic).
std::vector<std::vector<size_t>> Subsets(const std::vector<size_t>& pool, size_t k,
                                         size_t max_subsets);

}  // namespace unicorn

#endif  // UNICORN_CAUSAL_SKELETON_H_
