#include "eval/harness.h"

#include <algorithm>

namespace unicorn {

PerformanceTask MakeSimulatedTask(std::shared_ptr<const SystemModel> model, Environment env,
                                  Workload workload, uint64_t seed) {
  PerformanceTask task;
  task.variables = model->variables();
  task.option_vars = model->OptionIndices();
  auto rng = std::make_shared<Rng>(seed);
  task.measure = [model, env, workload, rng](const std::vector<double>& config) {
    return model->Measure(config, env, workload, rng.get());
  };
  auto sampler_model = model;
  task.sample_config = [sampler_model](Rng* r) { return sampler_model->SampleConfig(r); };
  return task;
}

std::vector<double> TrueAceWeights(const SystemModel& model, size_t objective,
                                   const Environment& env, const Workload& workload,
                                   uint64_t seed, int contexts) {
  std::vector<double> weights(model.NumVars(), 0.0);
  Rng rng(seed);
  for (size_t opt : model.OptionIndices()) {
    weights[opt] = model.TrueAce(objective, opt, env, workload, &rng, contexts);
  }
  return weights;
}

std::vector<ObjectiveGoal> GoalsForFault(const FaultCuration& curation, const Fault& fault,
                                         double goal_percentile) {
  std::vector<ObjectiveGoal> goals;
  for (size_t obj : fault.objectives) {
    std::vector<double> values = curation.samples.Col(obj);
    std::sort(values.begin(), values.end());
    const size_t idx = std::min(
        values.size() - 1, static_cast<size_t>(goal_percentile * (values.size() - 1)));
    goals.push_back({obj, values[idx]});
  }
  return goals;
}

}  // namespace unicorn
