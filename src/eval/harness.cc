#include "eval/harness.h"

#include <algorithm>

#include "util/hash.h"

namespace unicorn {

PerformanceTask MakeSimulatedTask(std::shared_ptr<const SystemModel> model, Environment env,
                                  Workload workload, uint64_t seed) {
  PerformanceTask task;
  task.variables = model->variables();
  task.option_vars = model->OptionIndices();
  // Each call derives its noise stream from (seed, config hash), so
  // measuring is a pure function of the configuration: safe to fan out on
  // broker pool threads, and the measured row is independent of call order.
  // The previous shared-RNG capture was a data race the moment measurements
  // ran on pool threads, and made results depend on call interleaving even
  // serially.
  task.measure = [model, env, workload, seed](const std::vector<double>& config) {
    Rng call_rng(HashDoubles(config, seed));
    return model->Measure(config, env, workload, &call_rng);
  };
  task.sample_config = [model](Rng* r) { return model->SampleConfig(r); };
  return task;
}

std::unique_ptr<SimulatedDeviceBackend> MakeDeviceBackend(
    std::shared_ptr<const SystemModel> model, const Environment& env, Workload workload,
    uint64_t task_seed, DeviceProfile profile) {
  if (profile.environment.empty()) {
    // Default routing tag: the hardware environment's name, so the members
    // of a heterogeneous fleet are distinguishable without extra setup.
    profile.environment = env.name;
  }
  return std::make_unique<SimulatedDeviceBackend>(
      MakeSimulatedTask(std::move(model), env, std::move(workload), task_seed),
      std::move(profile));
}

std::vector<double> TrueAceWeights(const SystemModel& model, size_t objective,
                                   const Environment& env, const Workload& workload,
                                   uint64_t seed, int contexts) {
  std::vector<double> weights(model.NumVars(), 0.0);
  Rng rng(seed);
  for (size_t opt : model.OptionIndices()) {
    weights[opt] = model.TrueAce(objective, opt, env, workload, &rng, contexts);
  }
  return weights;
}

std::vector<ObjectiveGoal> GoalsForFault(const FaultCuration& curation, const Fault& fault,
                                         double goal_percentile) {
  std::vector<ObjectiveGoal> goals;
  for (size_t obj : fault.objectives) {
    std::vector<double> values = curation.samples.Col(obj);
    std::sort(values.begin(), values.end());
    const size_t idx = std::min(
        values.size() - 1, static_cast<size_t>(goal_percentile * (values.size() - 1)));
    goals.push_back({obj, values[idx]});
  }
  return goals;
}

}  // namespace unicorn
