// Glue between the simulated systems and the Unicorn/baseline interfaces:
// wraps a SystemModel deployed in an (environment, workload) as a
// PerformanceTask, and computes the ground-truth ACE weights used by the
// accuracy metric (paper §6: weights derive from the ground-truth causal
// performance model).
#ifndef UNICORN_EVAL_HARNESS_H_
#define UNICORN_EVAL_HARNESS_H_

#include <memory>

#include "sysmodel/faults.h"
#include "sysmodel/system_model.h"
#include "unicorn/backend/simulated_device_backend.h"
#include "unicorn/task.h"

namespace unicorn {

// Builds a PerformanceTask backed by the simulator. Measurement noise is a
// pure function of (seed, configuration): repeat measurements of one config
// return the identical row (the simulator already medians over replicates),
// and measure() is safe to call concurrently from measurement-broker pool
// threads.
PerformanceTask MakeSimulatedTask(std::shared_ptr<const SystemModel> model, Environment env,
                                  Workload workload, uint64_t seed);

// Deploys `model` on one simulated device: the task carries the device's
// Environment (per-backend hardware override — TX1 vs TX2 vs Xavier), the
// profile adds seeded service-time and failure injection. When
// profile.environment is empty it defaults to env.name, so the backend is
// routable by environment tag out of the box. A fleet of these is the
// paper's heterogeneous Jetson rack; give every backend the same
// environment and task seed when bit-identity with a serial broker is the
// point (homogeneous backends), distinct environments when modeling
// source/target hardware for the transfer benches.
std::unique_ptr<SimulatedDeviceBackend> MakeDeviceBackend(
    std::shared_ptr<const SystemModel> model, const Environment& env, Workload workload,
    uint64_t task_seed, DeviceProfile profile);

// True interventional ACE of every option on `objective` (indexed by global
// variable id; non-options get 0). These are the weights of the ACE-weighted
// Jaccard accuracy.
std::vector<double> TrueAceWeights(const SystemModel& model, size_t objective,
                                   const Environment& env, const Workload& workload,
                                   uint64_t seed, int contexts = 20);

// QoS goals for debugging a fault: bring every violated objective back into
// the healthy bulk of the performance distribution. `goal_percentile` picks
// the target (0.6 = land at or below the 60th percentile of the curated
// samples — the paper's repairs reach near-optimal performance, not merely
// "just under the fault threshold").
std::vector<ObjectiveGoal> GoalsForFault(const FaultCuration& curation, const Fault& fault,
                                         double goal_percentile = 0.6);

}  // namespace unicorn

#endif  // UNICORN_EVAL_HARNESS_H_
