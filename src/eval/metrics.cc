#include "eval/metrics.h"

#include <algorithm>
#include <limits>
#include <set>

namespace unicorn {

double AceWeightedJaccard(const std::vector<size_t>& predicted,
                          const std::vector<size_t>& truth,
                          const std::vector<double>& weights) {
  std::set<size_t> a(predicted.begin(), predicted.end());
  std::set<size_t> b(truth.begin(), truth.end());
  double inter = 0.0;
  double uni = 0.0;
  std::set<size_t> all = a;
  all.insert(b.begin(), b.end());
  for (size_t v : all) {
    const double w = v < weights.size() ? weights[v] : 1.0;
    uni += w;
    if (a.count(v) && b.count(v)) {
      inter += w;
    }
  }
  if (uni <= 0.0) {
    return 1.0;
  }
  return inter / uni;
}

double Precision(const std::vector<size_t>& predicted, const std::vector<size_t>& truth) {
  if (predicted.empty()) {
    return truth.empty() ? 1.0 : 0.0;
  }
  std::set<size_t> t(truth.begin(), truth.end());
  size_t hit = 0;
  for (size_t v : predicted) {
    if (t.count(v)) {
      ++hit;
    }
  }
  return static_cast<double>(hit) / static_cast<double>(predicted.size());
}

double Recall(const std::vector<size_t>& predicted, const std::vector<size_t>& truth) {
  if (truth.empty()) {
    return 1.0;
  }
  std::set<size_t> p(predicted.begin(), predicted.end());
  size_t hit = 0;
  for (size_t v : truth) {
    if (p.count(v)) {
      ++hit;
    }
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

double Gain(double fault_value, double fixed_value) {
  if (fault_value == 0.0) {
    return 0.0;
  }
  return (fault_value - fixed_value) / fault_value * 100.0;
}

std::vector<std::pair<double, double>> ParetoFront2D(
    std::vector<std::pair<double, double>> points) {
  std::sort(points.begin(), points.end());
  std::vector<std::pair<double, double>> front;
  double best_y = std::numeric_limits<double>::infinity();
  for (const auto& p : points) {
    if (p.second < best_y) {
      front.push_back(p);
      best_y = p.second;
    }
  }
  return front;
}

double Hypervolume2D(const std::vector<std::pair<double, double>>& points, double ref_x,
                     double ref_y) {
  auto front = ParetoFront2D(points);
  double hv = 0.0;
  double prev_x = ref_x;
  // Sweep right-to-left: each front point contributes a rectangle up to the
  // previous x bound.
  for (auto it = front.rbegin(); it != front.rend(); ++it) {
    const double x = std::min(it->first, ref_x);
    const double y = std::min(it->second, ref_y);
    if (x >= prev_x) {
      continue;
    }
    hv += (prev_x - x) * (ref_y - y);
    prev_x = x;
  }
  return hv;
}

double HypervolumeError(const std::vector<std::pair<double, double>>& front,
                        const std::vector<std::pair<double, double>>& reference_front,
                        double ref_x, double ref_y) {
  const double hv_ref = Hypervolume2D(reference_front, ref_x, ref_y);
  if (hv_ref <= 0.0) {
    return 0.0;
  }
  const double hv = Hypervolume2D(front, ref_x, ref_y);
  return std::clamp(1.0 - hv / hv_ref, 0.0, 1.0);
}

}  // namespace unicorn
