// Evaluation metrics (paper §6 "Evaluation metrics").
//
//  * accuracy: ACE-weighted Jaccard similarity between predicted and true
//    root causes — sum(ACE over A∩B) / sum(ACE over A∪B),
//  * precision / recall on root-cause sets,
//  * gain: percentage improvement of the fix over the fault,
//  * hypervolume and hypervolume error for multi-objective fronts.
#ifndef UNICORN_EVAL_METRICS_H_
#define UNICORN_EVAL_METRICS_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace unicorn {

// Weighted Jaccard: weights[v] is the (true) ACE of option v on the faulty
// objective. Unweighted Jaccard falls out of weights = all ones.
double AceWeightedJaccard(const std::vector<size_t>& predicted,
                          const std::vector<size_t>& truth,
                          const std::vector<double>& weights);

// |predicted ∩ truth| / |predicted| (1.0 when predicted empty and truth empty).
double Precision(const std::vector<size_t>& predicted, const std::vector<size_t>& truth);

// |predicted ∩ truth| / |truth| (1.0 when truth empty).
double Recall(const std::vector<size_t>& predicted, const std::vector<size_t>& truth);

// Percentage improvement: (fault - fixed) / fault * 100 (lower-is-better
// objectives).
double Gain(double fault_value, double fixed_value);

// Hypervolume of a 2-D minimization front w.r.t. a reference point that
// dominates nothing (both coordinates above every point).
double Hypervolume2D(const std::vector<std::pair<double, double>>& points, double ref_x,
                     double ref_y);

// Hypervolume error: 1 - HV(front) / HV(reference_front), clamped to [0, 1].
double HypervolumeError(const std::vector<std::pair<double, double>>& front,
                        const std::vector<std::pair<double, double>>& reference_front,
                        double ref_x, double ref_y);

// Non-dominated subset of a 2-D minimization point set.
std::vector<std::pair<double, double>> ParetoFront2D(
    std::vector<std::pair<double, double>> points);

}  // namespace unicorn

#endif  // UNICORN_EVAL_METRICS_H_
