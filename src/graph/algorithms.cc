#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <functional>

namespace unicorn {

std::optional<std::vector<size_t>> TopologicalOrder(const MixedGraph& g) {
  const size_t n = g.NumNodes();
  std::vector<size_t> indeg(n, 0);
  for (size_t v = 0; v < n; ++v) {
    indeg[v] = g.Parents(v).size();
  }
  std::vector<size_t> order;
  order.reserve(n);
  std::vector<size_t> stack;
  for (size_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) {
      stack.push_back(v);
    }
  }
  while (!stack.empty()) {
    const size_t v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (size_t c : g.Children(v)) {
      if (--indeg[c] == 0) {
        stack.push_back(c);
      }
    }
  }
  if (order.size() != n) {
    return std::nullopt;
  }
  return order;
}

namespace {

std::vector<size_t> Closure(const MixedGraph& g, size_t v, bool up) {
  std::vector<bool> seen(g.NumNodes(), false);
  std::vector<size_t> stack = {v};
  std::vector<size_t> out;
  while (!stack.empty()) {
    const size_t u = stack.back();
    stack.pop_back();
    const auto next = up ? g.Parents(u) : g.Children(u);
    for (size_t w : next) {
      if (!seen[w]) {
        seen[w] = true;
        out.push_back(w);
        stack.push_back(w);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<size_t> Ancestors(const MixedGraph& g, size_t v) { return Closure(g, v, true); }

std::vector<size_t> Descendants(const MixedGraph& g, size_t v) { return Closure(g, v, false); }

bool DSeparated(const MixedGraph& dag, size_t x, size_t y, const std::vector<size_t>& z) {
  const size_t n = dag.NumNodes();
  std::vector<bool> in_z(n, false);
  for (size_t v : z) {
    in_z[v] = true;
  }
  // Nodes that are in Z or have a descendant in Z (colliders on active paths
  // must satisfy this).
  std::vector<bool> anc_of_z(n, false);
  for (size_t v : z) {
    anc_of_z[v] = true;
    for (size_t a : Ancestors(dag, v)) {
      anc_of_z[a] = true;
    }
  }
  // Reachability with direction-of-approach state:
  // state 0 = reached v from a child (moving "up"),
  // state 1 = reached v from a parent (moving "down").
  std::vector<std::vector<bool>> visited(n, std::vector<bool>(2, false));
  std::deque<std::pair<size_t, int>> frontier;
  frontier.push_back({x, 0});  // as if arriving from below
  while (!frontier.empty()) {
    auto [v, dir] = frontier.front();
    frontier.pop_front();
    if (visited[v][static_cast<size_t>(dir)]) {
      continue;
    }
    visited[v][static_cast<size_t>(dir)] = true;
    if (v == y) {
      return false;  // active path found
    }
    if (dir == 0) {
      // Arrived from a child: we may go up to parents and down to children,
      // unless v is in Z (then the chain/fork is blocked).
      if (!in_z[v]) {
        for (size_t p : dag.Parents(v)) {
          frontier.push_back({p, 0});
        }
        for (size_t c : dag.Children(v)) {
          frontier.push_back({c, 1});
        }
      }
    } else {
      // Arrived from a parent: v is a potential collider for up-moves.
      if (!in_z[v]) {
        for (size_t c : dag.Children(v)) {
          frontier.push_back({c, 1});
        }
      }
      if (anc_of_z[v]) {
        for (size_t p : dag.Parents(v)) {
          frontier.push_back({p, 0});
        }
      }
    }
  }
  return true;
}

std::vector<CausalPath> ExtractCausalPaths(const MixedGraph& g, size_t target, size_t max_paths) {
  std::vector<CausalPath> out;
  CausalPath current = {target};
  std::vector<bool> on_path(g.NumNodes(), false);
  on_path[target] = true;

  // Depth-first backtracking from the target through parents.
  // `current` is stored target-first and reversed when emitted.
  std::function<void(size_t)> visit = [&](size_t v) {
    if (out.size() >= max_paths) {
      return;
    }
    const auto parents = g.Parents(v);
    bool extended = false;
    for (size_t p : parents) {
      if (on_path[p]) {
        continue;  // guard against cycles in partially-oriented graphs
      }
      extended = true;
      current.push_back(p);
      on_path[p] = true;
      visit(p);
      on_path[p] = false;
      current.pop_back();
      if (out.size() >= max_paths) {
        return;
      }
    }
    if (!extended && current.size() > 1) {
      CausalPath path(current.rbegin(), current.rend());
      out.push_back(std::move(path));
    }
  };
  visit(target);
  return out;
}

size_t StructuralHammingDistance(const MixedGraph& a, const MixedGraph& b) {
  const size_t n = std::min(a.NumNodes(), b.NumNodes());
  size_t dist = 0;
  // Node-set size mismatch counts as one unit per extra node's potential
  // edges; in practice callers compare graphs on identical node sets.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const bool ea = a.HasEdge(i, j);
      const bool eb = b.HasEdge(i, j);
      if (ea != eb) {
        ++dist;
      } else if (ea && eb) {
        if (a.EndMark(i, j) != b.EndMark(i, j) || a.EndMark(j, i) != b.EndMark(j, i)) {
          ++dist;
        }
      }
    }
  }
  return dist;
}

}  // namespace unicorn
