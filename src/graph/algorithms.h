// Graph algorithms over MixedGraph: topological order, ancestry,
// d-separation (for DAG ground truth), causal-path extraction with
// backtracking (paper §4 Stage III), and structural Hamming distance
// (paper Fig. 11a convergence metric).
#ifndef UNICORN_GRAPH_ALGORITHMS_H_
#define UNICORN_GRAPH_ALGORITHMS_H_

#include <optional>
#include <vector>

#include "graph/mixed_graph.h"

namespace unicorn {

// Topological order of the directed part. Empty optional when cyclic.
std::optional<std::vector<size_t>> TopologicalOrder(const MixedGraph& g);

// All ancestors of v (via directed edges), not including v.
std::vector<size_t> Ancestors(const MixedGraph& g, size_t v);

// All descendants of v (via directed edges), not including v.
std::vector<size_t> Descendants(const MixedGraph& g, size_t v);

// d-separation on a DAG: is x independent of y given z?
// (Reachability / Bayes-ball formulation.)
bool DSeparated(const MixedGraph& dag, size_t x, size_t y, const std::vector<size_t>& z);

// A directed causal path: node sequence from a root cause to an objective.
using CausalPath = std::vector<size_t>;

// Extracts directed paths terminating at `target` by backtracking through
// parents until nodes with no parents are reached (paper §4: "backtrack from
// the nodes corresponding to each non-functional property until we reach a
// node with no parents"). Paths are returned root-first. The search caps at
// `max_paths` to avoid combinatorial explosion on dense graphs.
std::vector<CausalPath> ExtractCausalPaths(const MixedGraph& g, size_t target,
                                           size_t max_paths = 10000);

// Structural Hamming distance between two graphs on the same node set:
// +1 for each node pair whose edge existence differs, +1 for each shared edge
// whose end-marks differ.
size_t StructuralHammingDistance(const MixedGraph& a, const MixedGraph& b);

}  // namespace unicorn

#endif  // UNICORN_GRAPH_ALGORITHMS_H_
