#include "graph/mixed_graph.h"

#include <cassert>
#include <sstream>

namespace unicorn {

char MarkChar(Mark mark) {
  switch (mark) {
    case Mark::kNone:
      return ' ';
    case Mark::kCircle:
      return 'o';
    case Mark::kArrow:
      return '>';
    case Mark::kTail:
      return '-';
  }
  return '?';
}

MixedGraph::MixedGraph(size_t num_nodes)
    : n_(num_nodes), marks_(num_nodes, std::vector<Mark>(num_nodes, Mark::kNone)) {}

size_t MixedGraph::NumEdges() const {
  size_t count = 0;
  for (size_t a = 0; a < n_; ++a) {
    for (size_t b = a + 1; b < n_; ++b) {
      if (HasEdge(a, b)) {
        ++count;
      }
    }
  }
  return count;
}

void MixedGraph::SetEdge(size_t a, size_t b, Mark at_a, Mark at_b) {
  assert(a != b);
  marks_[b][a] = at_a;
  marks_[a][b] = at_b;
}

void MixedGraph::RemoveEdge(size_t a, size_t b) {
  marks_[a][b] = Mark::kNone;
  marks_[b][a] = Mark::kNone;
}

void MixedGraph::SetEndMark(size_t a, size_t b, Mark at_b) {
  assert(HasEdge(a, b));
  marks_[a][b] = at_b;
}

std::vector<size_t> MixedGraph::Adjacent(size_t v) const {
  std::vector<size_t> out;
  for (size_t u = 0; u < n_; ++u) {
    if (u != v && HasEdge(v, u)) {
      out.push_back(u);
    }
  }
  return out;
}

std::vector<size_t> MixedGraph::Parents(size_t v) const {
  std::vector<size_t> out;
  for (size_t u = 0; u < n_; ++u) {
    if (u != v && IsDirected(u, v)) {
      out.push_back(u);
    }
  }
  return out;
}

std::vector<size_t> MixedGraph::Children(size_t v) const {
  std::vector<size_t> out;
  for (size_t u = 0; u < n_; ++u) {
    if (u != v && IsDirected(v, u)) {
      out.push_back(u);
    }
  }
  return out;
}

std::vector<size_t> MixedGraph::Spouses(size_t v) const {
  std::vector<size_t> out;
  for (size_t u = 0; u < n_; ++u) {
    if (u != v && IsBidirected(v, u)) {
      out.push_back(u);
    }
  }
  return out;
}

bool MixedGraph::IsAdmg() const {
  for (size_t a = 0; a < n_; ++a) {
    for (size_t b = a + 1; b < n_; ++b) {
      if (!HasEdge(a, b)) {
        continue;
      }
      if (!IsDirected(a, b) && !IsDirected(b, a) && !IsBidirected(a, b)) {
        return false;
      }
    }
  }
  return !HasDirectedCycle();
}

bool MixedGraph::HasDirectedCycle() const {
  // Kahn's algorithm over the directed sub-graph.
  std::vector<size_t> indeg(n_, 0);
  for (size_t v = 0; v < n_; ++v) {
    indeg[v] = Parents(v).size();
  }
  std::vector<size_t> stack;
  for (size_t v = 0; v < n_; ++v) {
    if (indeg[v] == 0) {
      stack.push_back(v);
    }
  }
  size_t removed = 0;
  while (!stack.empty()) {
    const size_t v = stack.back();
    stack.pop_back();
    ++removed;
    for (size_t c : Children(v)) {
      if (--indeg[c] == 0) {
        stack.push_back(c);
      }
    }
  }
  return removed != n_;
}

bool MixedGraph::IsDag() const {
  for (size_t a = 0; a < n_; ++a) {
    for (size_t b = a + 1; b < n_; ++b) {
      if (!HasEdge(a, b)) {
        continue;
      }
      if (!IsDirected(a, b) && !IsDirected(b, a)) {
        return false;
      }
    }
  }
  return !HasDirectedCycle();
}

size_t MixedGraph::NumCircleMarks() const {
  size_t count = 0;
  for (size_t a = 0; a < n_; ++a) {
    for (size_t b = 0; b < n_; ++b) {
      if (marks_[a][b] == Mark::kCircle) {
        ++count;
      }
    }
  }
  return count;
}

double MixedGraph::AverageDegree() const {
  if (n_ == 0) {
    return 0.0;
  }
  return 2.0 * static_cast<double>(NumEdges()) / static_cast<double>(n_);
}

std::string MixedGraph::ToString(const std::vector<std::string>& names) const {
  std::ostringstream oss;
  for (size_t a = 0; a < n_; ++a) {
    for (size_t b = a + 1; b < n_; ++b) {
      if (!HasEdge(a, b)) {
        continue;
      }
      const char left = MarkChar(EndMark(b, a)) == '>' ? '<' : MarkChar(EndMark(b, a));
      oss << names[a] << ' ' << left << '-' << MarkChar(EndMark(a, b)) << ' ' << names[b] << '\n';
    }
  }
  return oss.str();
}

}  // namespace unicorn
