// Mixed graphs with FCI end-marks.
//
// A causal performance model passes through three graph classes while being
// learned (paper §4, Fig. 9): a skeleton (all ends circle), a PAG (partial
// ancestral graph: circle/arrow/tail ends), and finally an ADMG (directed +
// bidirected edges only) once entropic orientation resolves the circles.
// One type represents all three; predicates below distinguish edge kinds.
#ifndef UNICORN_GRAPH_MIXED_GRAPH_H_
#define UNICORN_GRAPH_MIXED_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace unicorn {

// Mark at one end of an edge.
enum class Mark : uint8_t {
  kNone = 0,  // no edge
  kCircle,    // o : undetermined (PAG only)
  kArrow,     // > : arrowhead
  kTail,      // - : tail
};

char MarkChar(Mark mark);

class MixedGraph {
 public:
  explicit MixedGraph(size_t num_nodes = 0);

  size_t NumNodes() const { return n_; }
  size_t NumEdges() const;

  // Edge existence & marks. EndMark(a, b) is the mark at b's end of edge a-b
  // (kNone when the edge is absent).
  bool HasEdge(size_t a, size_t b) const { return marks_[a][b] != Mark::kNone; }
  Mark EndMark(size_t a, size_t b) const { return marks_[a][b]; }

  // Adds/updates an edge with the given marks at each end.
  void SetEdge(size_t a, size_t b, Mark at_a, Mark at_b);
  void RemoveEdge(size_t a, size_t b);

  // Sets only b's end of existing edge a-b.
  void SetEndMark(size_t a, size_t b, Mark at_b);

  // Convenience constructors for the common edge kinds.
  void AddUndirected(size_t a, size_t b) { SetEdge(a, b, Mark::kTail, Mark::kTail); }
  void AddCircleCircle(size_t a, size_t b) { SetEdge(a, b, Mark::kCircle, Mark::kCircle); }
  void AddDirected(size_t from, size_t to) { SetEdge(from, to, Mark::kTail, Mark::kArrow); }
  void AddBidirected(size_t a, size_t b) { SetEdge(a, b, Mark::kArrow, Mark::kArrow); }

  // Edge-kind predicates.
  bool IsDirected(size_t from, size_t to) const {
    return marks_[from][to] == Mark::kArrow && marks_[to][from] == Mark::kTail;
  }
  bool IsBidirected(size_t a, size_t b) const {
    return marks_[a][b] == Mark::kArrow && marks_[b][a] == Mark::kArrow;
  }
  bool HasArrowAt(size_t a, size_t b) const { return marks_[a][b] == Mark::kArrow; }
  bool HasCircleAt(size_t a, size_t b) const { return marks_[a][b] == Mark::kCircle; }

  // a *-> b <-* c with a, c adjacent to b (a != c). Does not require a-c
  // non-adjacency.
  bool IsCollider(size_t a, size_t b, size_t c) const {
    return HasArrowAt(a, b) && HasArrowAt(c, b);
  }

  // Nodes adjacent to v (any edge kind).
  std::vector<size_t> Adjacent(size_t v) const;

  // Nodes p with p -> v.
  std::vector<size_t> Parents(size_t v) const;

  // Nodes c with v -> c.
  std::vector<size_t> Children(size_t v) const;

  // Nodes connected to v by a bidirected edge.
  std::vector<size_t> Spouses(size_t v) const;

  // True if every edge is directed or bidirected (valid ADMG marks).
  bool IsAdmg() const;

  // True if all edges are directed and the directed part is acyclic.
  bool IsDag() const;

  // True if the directed part contains a cycle.
  bool HasDirectedCycle() const;

  // Count of circle end-marks remaining (0 once fully resolved).
  size_t NumCircleMarks() const;

  // Average node degree (adjacency count / n); used by the scalability table.
  double AverageDegree() const;

  // Multi-line human-readable dump using the node names provided.
  std::string ToString(const std::vector<std::string>& names) const;

  // Exact structural equality (same nodes, edges, and end-marks); the
  // bit-identity checks of the parallel sweep and the measurement plane
  // compare learned models with this.
  bool operator==(const MixedGraph& other) const {
    return n_ == other.n_ && marks_ == other.marks_;
  }
  bool operator!=(const MixedGraph& other) const { return !(*this == other); }

 private:
  size_t n_;
  // marks_[a][b]: mark at b's end of edge a-b; kNone when absent.
  std::vector<std::vector<Mark>> marks_;
};

}  // namespace unicorn

#endif  // UNICORN_GRAPH_MIXED_GRAPH_H_
