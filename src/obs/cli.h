// Command-line plumbing for the observability layer, shared by the bench and
// example binaries: scan argv for `--trace <path>` / `--metrics <path>`,
// enable span tracing for the run when a trace is requested, and write the
// artifacts on the way out. Header-only so examples (which link only
// unicorn_core) get it for free; under UNICORN_NO_OBS the underlying calls
// are stubs and the flags become accepted-but-inert.
//
//   obs::Cli obs_cli;
//   obs_cli.Scan(argc, argv);
//   obs_cli.Begin();
//   ... workload ...
//   if (int rc = obs_cli.End(); rc != 0) return rc;
#ifndef UNICORN_OBS_CLI_H_
#define UNICORN_OBS_CLI_H_

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace unicorn {
namespace obs {

struct Cli {
  std::string trace_path;
  std::string metrics_path;

  /// Scans argv for the observability flags (does not consume them — the
  /// binaries' own loops skip unknown flags).
  void Scan(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
        trace_path = argv[i + 1];
      } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
        metrics_path = argv[i + 1];
      }
    }
  }

  /// Enables tracing when `--trace` was given.
  void Begin() const {
    if (!trace_path.empty()) {
      trace::SetEnabled(true);
    }
  }

  /// Writes the requested artifacts. Returns non-zero on write failure.
  int End() const {
    int rc = 0;
    if (!trace_path.empty()) {
      trace::SetEnabled(false);
      if (trace::WriteFile(trace_path)) {
        std::printf("trace written to %s\n", trace_path.c_str());
      } else {
        std::fprintf(stderr, "trace write failed: %s\n", trace_path.c_str());
        rc = 1;
      }
    }
    if (!metrics_path.empty()) {
      if (MetricsRegistry::Global().WriteJsonFile(metrics_path)) {
        std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
      } else {
        std::fprintf(stderr, "metrics write failed: %s\n", metrics_path.c_str());
        rc = 1;
      }
    }
    return rc;
  }
};

}  // namespace obs
}  // namespace unicorn

#endif  // UNICORN_OBS_CLI_H_
