#include "obs/metrics.h"

#ifndef UNICORN_NO_OBS

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>

namespace unicorn {
namespace obs {

namespace internal {

size_t ShardIndex() {
  // One hash per thread, cached: the hot path is a thread_local read.
  static thread_local const size_t shard =
      std::hash<std::thread::id>()(std::this_thread::get_id()) % kShards;
  return shard;
}

}  // namespace internal

namespace {

// Precomputed bucket upper boundaries: bounds[i] = kMinValue * 2^(i/8).
// Computed once with pow so UpperBound(i) and BucketFor agree bit-for-bit
// (BucketFor compares against this exact table, never recomputes logs).
const double* BucketBounds() {
  static const double* bounds = [] {
    static double table[Histogram::kNumBuckets];
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      table[i] = Histogram::kMinValue *
                 std::pow(2.0, static_cast<double>(i) /
                                   static_cast<double>(Histogram::kBucketsPerOctave));
    }
    return table;
  }();
  return bounds;
}

void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t old_bits = bits->load(std::memory_order_relaxed);
  double old_value;
  uint64_t new_bits;
  do {
    std::memcpy(&old_value, &old_bits, sizeof(double));
    const double new_value = old_value + delta;
    std::memcpy(&new_bits, &new_value, sizeof(double));
  } while (!bits->compare_exchange_weak(old_bits, new_bits, std::memory_order_relaxed));
}

double BitsToDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(double));
  return value;
}

void AppendJsonNumber(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // JSON has no inf/nan literals; clamp to null (never expected in practice).
  if (std::isfinite(value)) {
    out->append(buf);
  } else {
    out->append("null");
  }
}

}  // namespace

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::UpperBound(size_t i) {
  if (i >= kNumBuckets) {
    i = kNumBuckets - 1;
  }
  return BucketBounds()[i];
}

size_t Histogram::BucketFor(double value) {
  const double* bounds = BucketBounds();
  if (!(value > bounds[0])) {
    return 0;  // includes NaN, negatives, zero, and the first boundary itself
  }
  if (value > bounds[kNumBuckets - 1]) {
    return kNumBuckets - 1;
  }
  // Jump near the right bucket from the exponent, then fix up against the
  // exact table: log2-based estimates can be off by one at boundaries and
  // "exact at boundaries" is a tested contract.
  const double octaves = std::log2(value / kMinValue);
  size_t i = static_cast<size_t>(
      std::max(0.0, octaves * static_cast<double>(kBucketsPerOctave) - 1.0));
  i = std::min(i, kNumBuckets - 1);
  while (i > 0 && value <= bounds[i - 1]) {
    --i;
  }
  while (i + 1 < kNumBuckets && value > bounds[i]) {
    ++i;
  }
  return i;
}

void Histogram::Record(double value) {
  Shard& shard = shards_[internal::ShardIndex()];
  shard.counts[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&shard.sum_bits, value);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.counts.assign(kNumBuckets, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += BitsToDouble(shard.sum_bits.load(std::memory_order_relaxed));
  }
  for (const uint64_t c : snap.counts) {
    snap.count += c;
  }
  return snap;
}

double Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count) (at least 1). All-samples-in-one-bucket therefore
  // reports that bucket's upper bound for every q — the boundary-exactness
  // contract.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      return UpperBound(i);
    }
  }
  return UpperBound(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

obs::Counter* MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot.reset(new obs::Counter());
  }
  return slot.get();
}

obs::Gauge* MetricsRegistry::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot.reset(new obs::Gauge());
  }
  return slot.get();
}

obs::Histogram* MetricsRegistry::Histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new obs::Histogram());
  }
  return slot.get();
}

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\"").append(name).append("\":");
    AppendJsonNumber(&out, static_cast<double>(counter->Value()));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\"").append(name).append("\":");
    AppendJsonNumber(&out, gauge->Value());
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    const Histogram::Snapshot snap = histogram->TakeSnapshot();
    out.append("\"").append(name).append("\":{\"count\":");
    AppendJsonNumber(&out, static_cast<double>(snap.count));
    out.append(",\"sum\":");
    AppendJsonNumber(&out, snap.sum);
    out.append(",\"mean\":");
    AppendJsonNumber(&out, snap.Mean());
    out.append(",\"p50\":");
    AppendJsonNumber(&out, snap.Percentile(0.50));
    out.append(",\"p95\":");
    AppendJsonNumber(&out, snap.Percentile(0.95));
    out.append(",\"p99\":");
    AppendJsonNumber(&out, snap.Percentile(0.99));
    out.append(",\"max\":");
    AppendJsonNumber(&out, snap.Percentile(1.0));
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  const std::string json = SnapshotJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    for (auto& shard : counter->shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, histogram] : histograms_) {
    (void)name;
    for (auto& shard : histogram->shards_) {
      for (auto& c : shard.counts) {
        c.store(0, std::memory_order_relaxed);
      }
      shard.sum_bits.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace obs
}  // namespace unicorn

#endif  // UNICORN_NO_OBS
