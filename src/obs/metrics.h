// Lock-cheap process-wide metrics registry: named counters, gauges, and
// log-bucketed histograms, updatable from any thread on hot paths.
//
// Design
//   * Counters and histograms are sharded: each instrument keeps kShards
//     cache-line-padded cells and a thread hashes its id to pick one, so
//     concurrent updates from different threads almost never contend on a
//     cache line. Updates are relaxed atomics — no locks, no fences on the
//     hot path. Shards are merged only on snapshot.
//   * Gauges are a single atomic double (last-writer-wins Set, CAS Add):
//     gauges track "current level" (queue depth, in-flight rows), where a
//     total ordering per update is the semantics, not a cost to shard away.
//   * Histograms use geometric (log-spaced) buckets, 8 per octave, covering
//     [1e-9, ~1.8e10). Percentile(q) returns the upper boundary of the
//     bucket holding the rank-q sample, so values recorded exactly on a
//     bucket boundary report exact percentiles (pinned in obs_metrics_test).
//   * Instruments are created once via MetricsRegistry::Global().Counter(...)
//     etc. and cached by the caller as a raw pointer; the registry owns them
//     for process lifetime (pointers never dangle). Lookup takes a mutex —
//     do it at setup, not per event.
//
// Compile-out: with UNICORN_NO_OBS defined every instrument method is an
// inline empty body on a shared static dummy, so instrumented call sites
// compile to nothing and the registry costs zero bytes of hot-path work.
#ifndef UNICORN_OBS_METRICS_H_
#define UNICORN_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace unicorn {
namespace obs {

#ifndef UNICORN_NO_OBS

namespace internal {

constexpr size_t kShards = 8;
constexpr size_t kCacheLine = 64;

// One padded atomic per shard so two threads bumping the same counter from
// different shards never share a cache line.
struct alignas(kCacheLine) PaddedU64 {
  std::atomic<uint64_t> value{0};
  char pad[kCacheLine - sizeof(std::atomic<uint64_t>)];
};

size_t ShardIndex();  // hash of the calling thread's id, cached thread-local

}  // namespace internal

/// Monotonic event count. Add/Increment are wait-free relaxed atomics on a
/// per-thread shard; Value() merges the shards (approximate only in the
/// sense that it is not a consistent cut across concurrent writers).
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) {
    shards_[internal::ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  internal::PaddedU64 shards_[internal::kShards];
};

/// Current-level instrument (queue depth, busy seconds so far). Set is a
/// plain store; Add is a CAS loop (rare enough on our paths that contention
/// is a non-issue, and gauges want a single authoritative cell).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram. Record() is two relaxed fetch_adds (bucket count
/// + sum cell) on the caller's shard. Buckets are geometric with 8 per
/// octave starting at kMinValue; values below the range clamp into bucket 0
/// and values above into the last bucket.
class Histogram {
 public:
  static constexpr double kMinValue = 1e-9;
  static constexpr int kBucketsPerOctave = 8;
  // 64 octaves * 8 ≈ [1e-9, 1.8e10): nanoseconds through centuries when the
  // unit is seconds, which covers every duration this system records.
  static constexpr size_t kNumBuckets = 64 * kBucketsPerOctave;

  void Record(double value);

  /// Snapshot of the merged shards. `counts[i]` pairs with `UpperBound(i)`.
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    std::vector<uint64_t> counts;
    /// Upper boundary of the bucket containing the nearest-rank q-quantile
    /// (q in [0,1]). 0 when empty.
    double Percentile(double q) const;
    double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  };
  Snapshot TakeSnapshot() const;

  /// Upper boundary of bucket `i`; exposed so tests can place samples
  /// exactly on boundaries.
  static double UpperBound(size_t i);
  /// Bucket index whose (lower, upper] range contains `value`.
  static size_t BucketFor(double value);

 private:
  friend class MetricsRegistry;
  Histogram() = default;

  struct alignas(internal::kCacheLine) Shard {
    std::atomic<uint64_t> counts[kNumBuckets];
    std::atomic<uint64_t> sum_bits{0};  // double accumulated via CAS on bits
    Shard() {
      for (auto& c : counts) {
        c.store(0, std::memory_order_relaxed);
      }
    }
  };
  Shard shards_[internal::kShards];
};

/// Process-wide instrument namespace. Instruments are interned by name and
/// live forever; Counter/Gauge/Histogram lookups lock a mutex (setup cost),
/// returned pointers are safe to cache and use lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  obs::Counter* Counter(const std::string& name);
  obs::Gauge* Gauge(const std::string& name);
  obs::Histogram* Histogram(const std::string& name);

  /// JSON object: {"counters":{name:value,...},"gauges":{...},
  /// "histograms":{name:{"count","sum","mean","p50","p95","p99","max"}}}.
  /// Names are emitted sorted, so output is deterministic given the values.
  std::string SnapshotJson() const;
  bool WriteJsonFile(const std::string& path) const;

  /// Test hook: zero every registered instrument (names stay interned).
  /// Not linearizable against concurrent writers — call it quiescent.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<obs::Counter>> counters_;
  std::map<std::string, std::unique_ptr<obs::Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<obs::Histogram>> histograms_;
};

#else  // UNICORN_NO_OBS: every instrument is an inline no-op.

class Counter {
 public:
  void Increment() {}
  void Add(uint64_t) {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(double) {}
  void Add(double) {}
  double Value() const { return 0.0; }
};

class Histogram {
 public:
  static constexpr double kMinValue = 1e-9;
  static constexpr int kBucketsPerOctave = 8;
  static constexpr size_t kNumBuckets = 64 * kBucketsPerOctave;
  void Record(double) {}
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    std::vector<uint64_t> counts;
    double Percentile(double) const { return 0.0; }
    double Mean() const { return 0.0; }
  };
  Snapshot TakeSnapshot() const { return Snapshot(); }
  static double UpperBound(size_t) { return 0.0; }
  static size_t BucketFor(double) { return 0; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }
  obs::Counter* Counter(const std::string&) { return &counter_; }
  obs::Gauge* Gauge(const std::string&) { return &gauge_; }
  obs::Histogram* Histogram(const std::string&) { return &histogram_; }
  std::string SnapshotJson() const {
    return "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
  }
  bool WriteJsonFile(const std::string&) const { return true; }
  void ResetForTest() {}

 private:
  obs::Counter counter_;
  obs::Gauge gauge_;
  obs::Histogram histogram_;
};

#endif  // UNICORN_NO_OBS

}  // namespace obs
}  // namespace unicorn

#endif  // UNICORN_OBS_METRICS_H_
