#include "obs/stats_export.h"

#include <cmath>
#include <cstdio>

namespace unicorn {
namespace obs {

namespace {

double D(size_t v) { return static_cast<double>(v); }
double D(long long v) { return static_cast<double>(v); }

}  // namespace

StatsFields Fields(const BrokerStats& stats) {
  return {
      {"requests", D(stats.requests)},
      {"measured", D(stats.measured)},
      {"cache_hits", D(stats.cache_hits)},
      {"cache_hit_rate", stats.CacheHitRate()},
      {"batches", D(stats.batches)},
      {"largest_batch", D(stats.largest_batch)},
      {"batch_wall_seconds", stats.batch_wall_seconds},
      {"active_wall_seconds", stats.active_wall_seconds},
      {"busy_seconds", stats.busy_seconds},
      {"utilization", stats.Utilization()},
      {"failures", D(stats.failures)},
  };
}

StatsFields Fields(const EngineStats& stats) {
  return {
      {"warm", stats.warm ? 1.0 : 0.0},
      {"tests_requested", D(stats.tests_requested)},
      {"tests_evaluated", D(stats.tests_evaluated)},
      {"cache_hits", D(stats.cache_hits)},
      {"cross_shard_hits", D(stats.cross_shard_hits)},
      {"pairs_total", D(stats.pairs_total)},
      {"pairs_reused", D(stats.pairs_reused)},
      {"refresh_seconds", stats.refresh_seconds},
      {"refreshes", D(stats.refreshes)},
      {"total_tests_requested", D(stats.total_tests_requested)},
      {"total_tests_evaluated", D(stats.total_tests_evaluated)},
      {"total_cache_hits", D(stats.total_cache_hits)},
      {"total_cross_shard_hits", D(stats.total_cross_shard_hits)},
      {"cache_hit_rate", stats.CacheHitRate()},
      {"total_seconds", stats.total_seconds},
  };
}

StatsFields Fields(const ShardPoolStats& stats) {
  return {
      {"shards", D(stats.shards)},
      {"refreshes", D(stats.refreshes)},
      {"tests_requested", D(stats.tests_requested)},
      {"tests_evaluated", D(stats.tests_evaluated)},
      {"cache_hits", D(stats.cache_hits)},
      {"cross_shard_hits", D(stats.cross_shard_hits)},
      {"cache_hit_rate", stats.CacheHitRate()},
      {"cross_shard_hit_rate", stats.CrossShardHitRate()},
      {"refresh_seconds", stats.refresh_seconds},
      {"refresh_batches", D(stats.refresh_batches)},
      {"max_concurrent_refreshes", D(stats.max_concurrent_refreshes)},
      {"batch_wall_seconds", stats.batch_wall_seconds},
      {"widest_cross_policy_batch", D(stats.widest_cross_policy_batch)},
      {"overlap_seconds", stats.overlap_seconds},
  };
}

StatsFields Fields(const FleetStats& stats) {
  StatsFields fields = {
      {"submitted", D(stats.submitted)},
      {"completed", D(stats.completed)},
      {"retries", D(stats.retries)},
      {"rerouted", D(stats.rerouted)},
      {"failed", D(stats.failed)},
      {"circuit_breaks", D(stats.circuit_breaks)},
      {"total_measured", D(stats.TotalMeasured())},
  };
  for (const BackendCounters& backend : stats.backends) {
    const std::string prefix = "backend." + backend.name + ".";
    fields.emplace_back(prefix + "dispatched", D(backend.dispatched));
    fields.emplace_back(prefix + "completed", D(backend.completed));
    fields.emplace_back(prefix + "transient_failures", D(backend.transient_failures));
    fields.emplace_back(prefix + "permanent_failures", D(backend.permanent_failures));
    fields.emplace_back(prefix + "queue_depth", D(backend.queue_depth));
    fields.emplace_back(prefix + "max_queue_depth", D(backend.max_queue_depth));
    fields.emplace_back(prefix + "in_flight", D(backend.in_flight));
    fields.emplace_back(prefix + "busy_seconds", backend.busy_seconds);
    fields.emplace_back(prefix + "circuit_broken", backend.circuit_broken ? 1.0 : 0.0);
  }
  return fields;
}

std::string DumpStatsJson(const StatsFields& fields) {
  std::string out = "{";
  bool first = true;
  char buf[64];
  for (const auto& [name, value] : fields) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(name);
    out.append("\":");
    std::snprintf(buf, sizeof(buf), "%.17g", std::isfinite(value) ? value : 0.0);
    out.append(buf);
  }
  out.push_back('}');
  return out;
}

void PublishStats(MetricsRegistry* registry, const std::string& prefix,
                  const StatsFields& fields) {
  if (registry == nullptr) {
    return;
  }
  for (const auto& [name, value] : fields) {
    registry->Gauge(prefix + "." + name)->Set(value);
  }
}

}  // namespace obs
}  // namespace unicorn
