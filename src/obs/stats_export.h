// One canonical field enumeration per legacy stats struct — the single
// source of truth for every serialization of FleetStats, BrokerStats,
// EngineStats, and ShardPoolStats.
//
// Before this layer, each bench and example hand-rolled its own printf block
// per struct, so the same ledger had as many ad-hoc JSON schemas as callers.
// Now: Fields(stats) returns the ordered (name, value) list; DumpStatsJson
// renders it as one JSON object; bench::JsonResults::AddStats feeds it into
// the bench result files; PublishStats mirrors it into the process-wide
// MetricsRegistry as gauges (namespaced `<prefix>.<field>`), which is how
// the legacy structs are "rebased" onto the registry: the structs stay the
// per-instance snapshot views the tests pin, the registry carries the same
// numbers process-wide.
//
// Unlike the instruments in metrics.h/trace.h this header is NOT compiled
// out under UNICORN_NO_OBS — stats reporting is program output, not hot-path
// instrumentation. (PublishStats degrades to a no-op there because the
// registry's instruments do.)
#ifndef UNICORN_OBS_STATS_EXPORT_H_
#define UNICORN_OBS_STATS_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "unicorn/backend/backend_fleet.h"
#include "unicorn/engine_pool.h"
#include "unicorn/measurement_broker.h"
#include "unicorn/model_learner.h"

namespace unicorn {
namespace obs {

/// Ordered (field, value) view of a stats struct. Every number the struct
/// carries, flattened to double; order is the schema.
using StatsFields = std::vector<std::pair<std::string, double>>;

StatsFields Fields(const BrokerStats& stats);
StatsFields Fields(const EngineStats& stats);
StatsFields Fields(const ShardPoolStats& stats);
/// Fleet totals first, then each backend's counters prefixed
/// `backend.<name>.` (names are the construction-time backend names).
StatsFields Fields(const FleetStats& stats);

/// The one JSON schema of a stats struct: {"field":value,...} in Fields()
/// order, numbers as %.17g (round-trip exact).
std::string DumpStatsJson(const StatsFields& fields);
template <typename Stats>
std::string DumpStatsJson(const Stats& stats) {
  return DumpStatsJson(Fields(stats));
}

/// Mirrors a snapshot into `registry` as gauges named `<prefix>.<field>`.
void PublishStats(MetricsRegistry* registry, const std::string& prefix,
                  const StatsFields& fields);
template <typename Stats>
void PublishStats(MetricsRegistry* registry, const std::string& prefix,
                  const Stats& stats) {
  PublishStats(registry, prefix, Fields(stats));
}

}  // namespace obs
}  // namespace unicorn

#endif  // UNICORN_OBS_STATS_EXPORT_H_
