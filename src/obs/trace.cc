#include "obs/trace.h"

#ifndef UNICORN_NO_OBS

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace unicorn {
namespace obs {
namespace trace {

namespace {

using Clock = std::chrono::steady_clock;

// Hard cap on retained events across all threads: a runaway trace degrades
// to counted drops instead of unbounded memory (4M events ≈ 400 MB worst
// case is never reached by our coarse spans; typical runs are thousands).
constexpr uint64_t kMaxEvents = 4u << 20;

struct ThreadBuffer {
  std::mutex mu;
  std::vector<Event> events;
  uint32_t tid = 0;
};

struct GlobalState {
  std::atomic<bool> enabled{false};
  std::atomic<uint32_t> next_tid{1};
  std::atomic<uint64_t> total_events{0};
  std::atomic<uint64_t> dropped{0};
  Clock::time_point epoch = Clock::now();

  std::mutex mu;  // guards buffers + thread_names
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::map<uint32_t, std::string> thread_names;
};

GlobalState& State() {
  static GlobalState* state = new GlobalState();  // leaked: outlives all threads
  return *state;
}

struct OpenSpan {
  const char* name;
  const char* category;
  double start_us;
};

// Per-thread recording context. The buffer is shared with the global list
// (collectors lock buffer->mu); the span stack and skip depth are touched
// only by the owning thread.
struct ThreadContext {
  std::shared_ptr<ThreadBuffer> buffer;
  std::vector<OpenSpan> stack;
  // Spans begun while tracing was disabled: End() consumes these first so a
  // mid-run enable cannot pair an End with an older Begin's stack entry.
  int skip_depth = 0;

  ThreadContext() {
    GlobalState& state = State();
    buffer = std::make_shared<ThreadBuffer>();
    buffer->tid = state.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state.mu);
    state.buffers.push_back(buffer);
  }
};

ThreadContext& Context() {
  static thread_local ThreadContext context;
  return context;
}

double NowUs() {
  return std::chrono::duration<double, std::micro>(Clock::now() - State().epoch)
      .count();
}

void Append(ThreadContext& context, const Event& event) {
  GlobalState& state = State();
  if (state.total_events.fetch_add(1, std::memory_order_relaxed) >= kMaxEvents) {
    state.total_events.fetch_sub(1, std::memory_order_relaxed);
    state.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(context.buffer->mu);
  context.buffer->events.push_back(event);
}

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendNumber(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", std::isfinite(value) ? value : 0.0);
  out->append(buf);
}

}  // namespace

void SetEnabled(bool enabled) {
  State().enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return State().enabled.load(std::memory_order_relaxed); }

void Begin(const char* name, const char* category) {
  ThreadContext& context = Context();
  if (!Enabled()) {
    ++context.skip_depth;
    return;
  }
  context.stack.push_back(OpenSpan{name, category, NowUs()});
}

void End(const char* k1, double v1, const char* k2, double v2) {
  ThreadContext& context = Context();
  if (context.skip_depth > 0) {
    --context.skip_depth;
    return;
  }
  if (context.stack.empty()) {
    return;  // unmatched End: drop rather than corrupt nesting
  }
  const OpenSpan open = context.stack.back();
  context.stack.pop_back();
  if (!Enabled()) {
    return;
  }
  Event event;
  event.name = open.name;
  event.category = open.category;
  event.phase = 'X';
  event.tid = context.buffer->tid;
  event.ts_us = open.start_us;
  event.dur_us = NowUs() - open.start_us;
  event.arg_key[0] = k1;
  event.arg_value[0] = v1;
  event.arg_key[1] = k2;
  event.arg_value[1] = v2;
  Append(context, event);
}

void Instant(const char* name, const char* category, const char* k1, double v1) {
  if (!Enabled()) {
    return;
  }
  ThreadContext& context = Context();
  Event event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.tid = context.buffer->tid;
  event.ts_us = NowUs();
  event.arg_key[0] = k1;
  event.arg_value[0] = v1;
  Append(context, event);
}

void CounterValue(const char* name, double value) {
  if (!Enabled()) {
    return;
  }
  ThreadContext& context = Context();
  Event event;
  event.name = name;
  event.phase = 'C';
  event.tid = context.buffer->tid;
  event.ts_us = NowUs();
  event.arg_key[0] = "value";
  event.arg_value[0] = value;
  Append(context, event);
}

void SetThreadName(const std::string& name) {
  GlobalState& state = State();
  const uint32_t tid = Context().buffer->tid;
  std::lock_guard<std::mutex> lock(state.mu);
  state.thread_names[tid] = name;
}

Span::Span(const char* name, const char* category) {
  Begin(name, category);
  open_ = true;
}

Span::~Span() {
  if (open_) {
    End(arg_key_[0], arg_value_[0], arg_key_[1], arg_value_[1]);
  }
}

void Span::SetArg(const char* key, double value) {
  if (arg_key_[0] == nullptr || arg_key_[0] == key) {
    arg_key_[0] = key;
    arg_value_[0] = value;
  } else if (arg_key_[1] == nullptr || arg_key_[1] == key) {
    arg_key_[1] = key;
    arg_value_[1] = value;
  } else {  // slots full: overwrite the newest (two args is the format's cap)
    arg_key_[1] = key;
    arg_value_[1] = value;
  }
}

std::vector<Event> Collect() {
  GlobalState& state = State();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    buffers = state.buffers;
  }
  std::vector<Event> out;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

std::vector<std::pair<uint32_t, std::string>> ThreadNames() {
  GlobalState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return {state.thread_names.begin(), state.thread_names.end()};
}

bool WriteFile(const std::string& path) {
  std::vector<Event> events = Collect();
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : ThreadNames()) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
    AppendNumber(&out, tid);
    out.append(",\"args\":{\"name\":\"");
    AppendEscaped(&out, name.c_str());
    out.append("\"}}");
  }
  for (const Event& event : events) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    AppendEscaped(&out, event.name != nullptr ? event.name : "");
    out.append("\",\"ph\":\"");
    out.push_back(event.phase);
    out.append("\",\"pid\":1,\"tid\":");
    AppendNumber(&out, event.tid);
    out.append(",\"ts\":");
    AppendNumber(&out, event.ts_us);
    if (event.phase == 'X') {
      out.append(",\"dur\":");
      AppendNumber(&out, event.dur_us);
    }
    if (event.phase == 'i') {
      out.append(",\"s\":\"t\"");  // thread-scoped instant
    }
    if (event.category != nullptr) {
      out.append(",\"cat\":\"");
      AppendEscaped(&out, event.category);
      out.append("\"");
    }
    if (event.arg_key[0] != nullptr || event.arg_key[1] != nullptr) {
      out.append(",\"args\":{");
      bool first_arg = true;
      for (int i = 0; i < 2; ++i) {
        if (event.arg_key[i] == nullptr) {
          continue;
        }
        if (!first_arg) out.push_back(',');
        first_arg = false;
        out.push_back('"');
        AppendEscaped(&out, event.arg_key[i]);
        out.append("\":");
        AppendNumber(&out, event.arg_value[i]);
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out.append("],\"displayTimeUnit\":\"ms\"}\n");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return std::fclose(f) == 0 && ok;
}

void Clear() {
  GlobalState& state = State();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    buffers = state.buffers;
  }
  uint64_t cleared = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    cleared += buffer->events.size();
    buffer->events.clear();
  }
  state.total_events.fetch_sub(cleared, std::memory_order_relaxed);
  state.dropped.store(0, std::memory_order_relaxed);
}

uint64_t DroppedEvents() {
  return State().dropped.load(std::memory_order_relaxed);
}

}  // namespace trace
}  // namespace obs
}  // namespace unicorn

#endif  // UNICORN_NO_OBS
