// Span tracer emitting Chrome-trace-event / Perfetto-compatible JSON.
//
// Model
//   * Spans are strictly nested per thread: Begin pushes onto a thread-local
//     stack, End pops and emits one complete-event ("ph":"X") with the begin
//     timestamp and duration. TRACE_SPAN / obs::trace::Span give RAII scoping
//     so early returns and exceptions cannot unbalance the stack.
//   * Instant ("ph":"i") marks point events (a retry, a circuit break);
//     CounterValue ("ph":"C") samples a numeric level (in-flight rows) that
//     Perfetto renders as a stacked area chart.
//   * Each thread appends into its own buffer guarded by its own mutex —
//     uncontended on the hot path (only the owning thread takes it per event;
//     a collector takes it only at flush), which keeps the tracer TSan-clean
//     without an atomics-ordering protocol. Buffers retire to a central
//     store when a thread exits.
//   * Tracing is off by default: every recording call is one relaxed atomic
//     load and a branch when disabled. Benches enable it via --trace.
//
// Names and categories must be string literals (or otherwise outlive the
// trace): events store the pointer, not a copy. Thread names (SetThreadName)
// are copied.
//
// Compile-out: with UNICORN_NO_OBS defined everything here is an inline
// no-op and TRACE_SPAN expands to nothing.
#ifndef UNICORN_OBS_TRACE_H_
#define UNICORN_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace unicorn {
namespace obs {
namespace trace {

/// One trace event, already timestamped (microseconds since process trace
/// epoch). Complete events carry dur_us; instants and counters ignore it.
struct Event {
  const char* name = nullptr;
  const char* category = nullptr;
  char phase = 'X';       // 'X' complete, 'i' instant, 'C' counter
  uint32_t tid = 0;       // stable small id assigned at first event
  double ts_us = 0.0;
  double dur_us = 0.0;
  // Up to two numeric args ("args":{key:value,...}); unused slots have null
  // keys. Counter events reuse slot 0 for their sampled value.
  const char* arg_key[2] = {nullptr, nullptr};
  double arg_value[2] = {0.0, 0.0};
};

#ifndef UNICORN_NO_OBS

/// Turns recording on/off process-wide. Spans already open keep their stack
/// entries; events are only emitted while enabled at End time.
void SetEnabled(bool enabled);
bool Enabled();

/// Opens a span on the calling thread. Must be balanced by End on the same
/// thread. `name`/`category` must outlive the trace (use literals).
void Begin(const char* name, const char* category = nullptr);
/// Closes the innermost open span, attaching up to two numeric args.
void End(const char* k1 = nullptr, double v1 = 0.0, const char* k2 = nullptr,
         double v2 = 0.0);

void Instant(const char* name, const char* category = nullptr,
             const char* k1 = nullptr, double v1 = 0.0);
void CounterValue(const char* name, double value);

/// Names the calling thread in the trace ("M"/thread_name metadata row).
void SetThreadName(const std::string& name);

/// RAII span: closes on scope exit; SetArg attaches numeric args to the
/// closing event (last two wins).
class Span {
 public:
  explicit Span(const char* name, const char* category = nullptr);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void SetArg(const char* key, double value);

 private:
  bool open_ = false;
  const char* arg_key_[2] = {nullptr, nullptr};
  double arg_value_[2] = {0.0, 0.0};
};

/// Collects every event recorded so far (retired + live buffers), in no
/// particular global order. Safe to call while other threads keep tracing.
std::vector<Event> Collect();

/// Thread names by tid, for writers that post-process Collect().
std::vector<std::pair<uint32_t, std::string>> ThreadNames();

/// Writes the Chrome trace-event JSON ({"traceEvents":[...]}), including
/// thread_name metadata. Returns false on I/O failure.
bool WriteFile(const std::string& path);

/// Drops all recorded events and dropped-event counts (thread names and tid
/// assignments survive). Test/bench hook; call it quiescent.
void Clear();

/// Events discarded because the central store hit its cap.
uint64_t DroppedEvents();

#else  // UNICORN_NO_OBS

inline void SetEnabled(bool) {}
inline bool Enabled() { return false; }
inline void Begin(const char*, const char* = nullptr) {}
inline void End(const char* = nullptr, double = 0.0, const char* = nullptr,
                double = 0.0) {}
inline void Instant(const char*, const char* = nullptr, const char* = nullptr,
                    double = 0.0) {}
inline void CounterValue(const char*, double) {}
inline void SetThreadName(const std::string&) {}

class Span {
 public:
  explicit Span(const char*, const char* = nullptr) {}
  void SetArg(const char*, double) {}
};

inline std::vector<Event> Collect() { return {}; }
inline std::vector<std::pair<uint32_t, std::string>> ThreadNames() { return {}; }
inline bool WriteFile(const std::string&) { return true; }
inline void Clear() {}
inline uint64_t DroppedEvents() { return 0; }

#endif  // UNICORN_NO_OBS

}  // namespace trace
}  // namespace obs
}  // namespace unicorn

// Scoped span macro: TRACE_SPAN("fleet.service") traces the enclosing scope.
// The variant with a variable name lets call sites attach args:
//   TRACE_SPAN_NAMED(span, "pool.refresh");
//   span.SetArg("rows", rows);
#ifndef UNICORN_NO_OBS
#define UNICORN_OBS_CONCAT_INNER(a, b) a##b
#define UNICORN_OBS_CONCAT(a, b) UNICORN_OBS_CONCAT_INNER(a, b)
#define TRACE_SPAN(...) \
  ::unicorn::obs::trace::Span UNICORN_OBS_CONCAT(trace_span_, __LINE__)(__VA_ARGS__)
#define TRACE_SPAN_NAMED(var, ...) ::unicorn::obs::trace::Span var(__VA_ARGS__)
#else
#define TRACE_SPAN(...) \
  do {                  \
  } while (false)
#define TRACE_SPAN_NAMED(var, ...) ::unicorn::obs::trace::Span var(__VA_ARGS__)
#endif

#endif  // UNICORN_OBS_TRACE_H_
