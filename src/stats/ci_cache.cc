#include "stats/ci_cache.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/binio.h"

namespace unicorn {
namespace {

// ci-cache snapshot format, version 1:
//   magic "UNCICHE1" | u32 endian marker | u32 reserved | u64 entry count
//   then per entry: u64 table_tag | u32 x | u32 y | u64 n_rows |
//                   u32 s_size | 8 × u32 s[i] | f64 p_value
constexpr char kCacheMagic[8] = {'U', 'N', 'C', 'I', 'C', 'H', 'E', '1'};

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

CICache::Key CICache::MakeKey(int x, int y, const std::vector<int>& s, uint64_t n_rows,
                              uint64_t table_tag) {
  Key key;
  key.table_tag = table_tag;
  key.x = std::min(x, y);
  key.y = std::max(x, y);
  key.n_rows = n_rows;
  key.s_size = static_cast<uint32_t>(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    key.s[i] = s[i];
  }
  // Insertion sort: conditioning sets are tiny (<= kMaxConditioning) and
  // usually already sorted, so this is a handful of compares.
  for (uint32_t i = 1; i < key.s_size; ++i) {
    const int32_t v = key.s[i];
    uint32_t j = i;
    while (j > 0 && key.s[j - 1] > v) {
      key.s[j] = key.s[j - 1];
      --j;
    }
    key.s[j] = v;
  }
  return key;
}

size_t CICache::KeyHash::operator()(const Key& k) const {
  // FNV-style mix over the key fields.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(k.table_tag);
  mix(static_cast<uint64_t>(static_cast<uint32_t>(k.x)) |
      (static_cast<uint64_t>(static_cast<uint32_t>(k.y)) << 32));
  mix(k.n_rows);
  mix(k.s_size);
  for (uint32_t i = 0; i < k.s_size; ++i) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(k.s[i])) + 0x9e3779b97f4a7c15ULL);
  }
  return static_cast<size_t>(h);
}

void CICache::PackKey(const Key& key, std::array<uint64_t, 8>* words) {
  // Trailing s[] entries beyond s_size are zero by construction (MakeKey and
  // LoadFrom both leave them value-initialized), so the 8-word compare is
  // exactly key equality.
  (*words)[0] = key.table_tag;
  (*words)[1] = (static_cast<uint64_t>(static_cast<uint32_t>(key.x)) << 32) |
                static_cast<uint32_t>(key.y);
  (*words)[2] = key.n_rows;
  (*words)[3] = key.s_size;
  for (size_t i = 0; i < 4; ++i) {
    (*words)[4 + i] = (static_cast<uint64_t>(static_cast<uint32_t>(key.s[2 * i])) << 32) |
                      static_cast<uint32_t>(key.s[2 * i + 1]);
  }
}

long long CICache::SumCells(const CounterCells& cells) {
  long long total = 0;
  for (const CounterCell& cell : cells) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

void CICache::BumpCell(CounterCells& cells, long long delta) {
  // Sticky per-thread cell assignment: threads spread round-robin over the
  // cells once, then always bump "their" line.
  static std::atomic<uint32_t> next_lane{0};
  thread_local const uint32_t lane =
      next_lane.fetch_add(1, std::memory_order_relaxed) % kCounterCells;
  cells[lane].v.fetch_add(delta, std::memory_order_relaxed);
}

CICache::ReadSlot* CICache::EnsureReadTable() {
  ReadSlot* table = read_table_.load(std::memory_order_acquire);
  if (table != nullptr) {
    return table;
  }
  std::lock_guard<std::mutex> lock(read_init_mu_);
  table = read_table_.load(std::memory_order_relaxed);
  if (table == nullptr) {
    read_table_storage_.reset(new ReadSlot[kReadSlots]);
    table = read_table_storage_.get();
    read_table_.store(table, std::memory_order_release);
  }
  return table;
}

std::optional<CICache::Hit> CICache::ProbeReadTable(const Key& key, uint32_t shard) const {
  const ReadSlot* table = read_table_.load(std::memory_order_acquire);
  if (table == nullptr) {
    return std::nullopt;  // nothing stored yet anywhere
  }
  std::array<uint64_t, 8> w;
  PackKey(key, &w);
  const size_t h = KeyHash{}(key);
  constexpr size_t mask = kReadSlots - 1;
  for (size_t probe = 0; probe < kReadProbes; ++probe) {
    const ReadSlot& slot = table[(h + probe) & mask];
    const uint32_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0) {
      return std::nullopt;  // inserts claim the first empty slot in-window
    }
    if ((s1 & 1u) != 0) {
      continue;  // mid-write; the authoritative tier will answer
    }
    bool match = true;
    for (size_t i = 0; i < w.size(); ++i) {
      if (slot.words[i].load(std::memory_order_relaxed) != w[i]) {
        match = false;
        break;
      }
    }
    const uint64_t p_bits = slot.p_bits.load(std::memory_order_relaxed);
    const uint32_t stored_shard = slot.shard.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != s1) {
      continue;  // torn by a concurrent replacement; treat as a miss here
    }
    if (!match) {
      continue;
    }
    Hit hit;
    hit.p_value = BitsToDouble(p_bits);
    hit.cross_shard = stored_shard != shard;
    return hit;
  }
  return std::nullopt;
}

void CICache::InsertReadTable(const Key& key, double p_value, uint32_t shard) {
  ReadSlot* table = EnsureReadTable();
  std::array<uint64_t, 8> w;
  PackKey(key, &w);
  const size_t h = KeyHash{}(key);
  constexpr size_t mask = kReadSlots - 1;
  const auto fill = [&](ReadSlot& slot, uint32_t claimed_seq) {
    for (size_t i = 0; i < w.size(); ++i) {
      slot.words[i].store(w[i], std::memory_order_relaxed);
    }
    slot.p_bits.store(DoubleToBits(p_value), std::memory_order_relaxed);
    slot.shard.store(shard, std::memory_order_relaxed);
    slot.seq.store(claimed_seq + 1, std::memory_order_release);  // back to even
  };
  for (size_t probe = 0; probe < kReadProbes; ++probe) {
    ReadSlot& slot = table[(h + probe) & mask];
    uint32_t s = slot.seq.load(std::memory_order_acquire);
    if ((s & 1u) != 0) {
      continue;  // another writer owns it right now
    }
    if (s == 0) {
      // Claim the empty slot. Losing the race just means someone else filled
      // it; re-examine it as an occupied slot.
      if (slot.seq.compare_exchange_strong(s, 1u, std::memory_order_acq_rel)) {
        fill(slot, 1u);
        return;
      }
      continue;
    }
    bool match = true;
    for (size_t i = 0; i < w.size(); ++i) {
      if (slot.words[i].load(std::memory_order_relaxed) != w[i]) {
        match = false;
        break;
      }
    }
    if (match) {
      return;  // already cached (the test is deterministic: same value)
    }
  }
  // Window full of other keys: displace the home slot (newest-wins keeps the
  // hot working set resident). Opportunistic — give up silently on a race;
  // the authoritative tier holds the entry either way.
  ReadSlot& slot = table[h & mask];
  uint32_t s = slot.seq.load(std::memory_order_relaxed);
  if ((s & 1u) != 0) {
    return;
  }
  if (!slot.seq.compare_exchange_strong(s, s + 1, std::memory_order_acq_rel)) {
    return;
  }
  fill(slot, s + 1);
}

std::optional<CICache::Hit> CICache::Probe(const Key& key, uint32_t shard,
                                           const WriteBuffer* pending) const {
  if (auto fast = ProbeReadTable(key, shard)) {
    return fast;
  }
  if (pending != nullptr && pending->any_.load(std::memory_order_acquire)) {
    const WriteBuffer::Lane& lane = pending->lanes_[KeyHash{}(key) % WriteBuffer::kLanes];
    std::lock_guard<std::mutex> lock(lane.mu);
    const auto it = lane.map.find(key);
    if (it != lane.map.end()) {
      return Hit{it->second, /*cross_shard=*/false};  // our own unpublished store
    }
  }
  const Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    return std::nullopt;
  }
  Hit hit;
  hit.p_value = it->second.p_value;
  hit.cross_shard = it->second.shard != shard;
  return hit;
}

std::optional<CICache::Hit> CICache::LookupFrom(const Key& key, uint32_t shard,
                                                const WriteBuffer* pending) {
  BumpCell(lookup_cells_, 1);
  const auto hit = Probe(key, shard, pending);
  if (hit) {
    BumpCell(hit_cells_, 1);
    if (hit->cross_shard) {
      BumpCell(cross_cells_, 1);
    }
  }
  return hit;
}

std::optional<CICache::Hit> CICache::LookupQuiet(const Key& key, uint32_t shard,
                                                 const WriteBuffer* pending) const {
  return Probe(key, shard, pending);
}

void CICache::Store(const Key& key, double p_value, uint32_t shard) {
  {
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (max_entries_ > 0 && stripe.map.size() >= std::max<size_t>(1, max_entries_ / kStripes)) {
      // Coarse per-stripe eviction: drop the stripe and start over. Entries
      // are pure memoization, so losing them costs re-evaluation, never
      // correctness; tracking recency on the hot path would cost more than
      // the occasional refill. (The read table is deliberately left alone —
      // a resident copy of an evicted entry still serves the same value.)
      stripe.map.clear();
    }
    stripe.map.emplace(key, Entry{p_value, shard});
  }
  InsertReadTable(key, p_value, shard);
}

void CICache::StoreBuffered(const Key& key, double p_value, WriteBuffer* pending) {
  WriteBuffer::Lane& lane = pending->lanes_[KeyHash{}(key) % WriteBuffer::kLanes];
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.map.emplace(key, p_value);  // dupes carry the same value; first wins
  }
  pending->any_.store(true, std::memory_order_release);
}

void CICache::Publish(WriteBuffer* pending, uint32_t shard) {
  if (!pending->any_.load(std::memory_order_acquire)) {
    return;
  }
  for (WriteBuffer::Lane& lane : pending->lanes_) {
    std::lock_guard<std::mutex> lock(lane.mu);
    for (const auto& [key, p] : lane.map) {
      Store(key, p, shard);
    }
    lane.map.clear();
  }
  // Publish must not race StoreBuffered on the same buffer (it is called at
  // phase barriers / destruction, when the owning sweep is quiescent), so
  // clearing the flag after the drain cannot lose a store.
  pending->any_.store(false, std::memory_order_release);
}

void CICache::AddCounterSamples(long long lookups, long long hits, long long cross_shard) {
  if (lookups != 0) {
    BumpCell(lookup_cells_, lookups);
  }
  if (hits != 0) {
    BumpCell(hit_cells_, hits);
  }
  if (cross_shard != 0) {
    BumpCell(cross_cells_, cross_shard);
  }
}

size_t CICache::size() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.map.size();
  }
  return total;
}

void CICache::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.map.clear();
  }
  // Quiescence is the caller's contract (see header): with no concurrent
  // readers or writers, resetting every slot to its empty state is safe.
  ReadSlot* table = read_table_.load(std::memory_order_acquire);
  if (table != nullptr) {
    for (size_t i = 0; i < kReadSlots; ++i) {
      table[i].seq.store(0, std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_release);
  }
}

void CICache::ResetCounters() {
  for (CounterCell& cell : hit_cells_) {
    cell.v.store(0, std::memory_order_relaxed);
  }
  for (CounterCell& cell : lookup_cells_) {
    cell.v.store(0, std::memory_order_relaxed);
  }
  for (CounterCell& cell : cross_cells_) {
    cell.v.store(0, std::memory_order_relaxed);
  }
}

bool CICache::SaveTo(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  // Snapshot the stripes under their locks first so the entry count in the
  // header is exact even while other shards keep storing.
  std::vector<std::pair<Key, double>> entries;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    entries.reserve(entries.size() + stripe.map.size());
    for (const auto& [key, entry] : stripe.map) {
      entries.emplace_back(key, entry.p_value);
    }
  }
  out.write(kCacheMagic, sizeof(kCacheMagic));
  binio::WriteU32(out, binio::kEndianMarker);
  binio::WriteU32(out, 0);  // reserved
  binio::WriteU64(out, entries.size());
  for (const auto& [key, p] : entries) {
    binio::WriteU64(out, key.table_tag);
    binio::WriteU32(out, static_cast<uint32_t>(key.x));
    binio::WriteU32(out, static_cast<uint32_t>(key.y));
    binio::WriteU64(out, key.n_rows);
    binio::WriteU32(out, key.s_size);
    for (size_t i = 0; i < kMaxConditioning; ++i) {
      binio::WriteU32(out, static_cast<uint32_t>(key.s[i]));
    }
    binio::WriteDouble(out, p);
  }
  return static_cast<bool>(out);
}

long long CICache::LoadFrom(const std::string& path, uint32_t shard) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return -1;
  }
  char magic[8];
  if (!in.read(magic, sizeof(magic)) || std::memcmp(magic, kCacheMagic, sizeof(magic)) != 0) {
    return -1;
  }
  uint32_t endian = 0;
  uint32_t reserved = 0;
  uint64_t count = 0;
  if (!binio::ReadU32(in, &endian) || endian != binio::kEndianMarker ||
      !binio::ReadU32(in, &reserved) || !binio::ReadU64(in, &count)) {
    return -1;
  }
  long long loaded = 0;
  for (uint64_t e = 0; e < count; ++e) {
    Key key;
    uint32_t x = 0;
    uint32_t y = 0;
    uint32_t field = 0;
    double p = 0.0;
    if (!binio::ReadU64(in, &key.table_tag) || !binio::ReadU32(in, &x) ||
        !binio::ReadU32(in, &y) || !binio::ReadU64(in, &key.n_rows) ||
        !binio::ReadU32(in, &key.s_size)) {
      return -1;  // truncated mid-entry
    }
    key.x = static_cast<int32_t>(x);
    key.y = static_cast<int32_t>(y);
    if (key.s_size > kMaxConditioning) {
      return -1;
    }
    for (size_t i = 0; i < kMaxConditioning; ++i) {
      if (!binio::ReadU32(in, &field)) {
        return -1;
      }
      key.s[i] = static_cast<int32_t>(field);
    }
    if (!binio::ReadDouble(in, &p)) {
      return -1;
    }
    Store(key, p, shard);
    ++loaded;
  }
  return loaded;
}

double CachedCITest::PValue(int x, int y, const std::vector<int>& s) const {
  ++calls;
  if (cache_ == nullptr || !CICache::Cacheable(s)) {
    return inner_.PValue(x, y, s);
  }
  const CICache::Key key = CICache::MakeKey(x, y, s, n_rows_, table_tag_);
  if (const auto cached = cache_->LookupFrom(key, shard_, &pending_)) {
    ++hits_;
    if (cached->cross_shard) {
      ++cross_shard_hits_;
    }
    return cached->p_value;
  }
  // Concurrent misses on the same key may both evaluate; the test is
  // deterministic, so both store the same value.
  const double p = inner_.PValue(x, y, s);
  cache_->StoreBuffered(key, p, &pending_);
  return p;
}

int CachedCITest::FirstIndependent(const BatchedCIRequest& req, double* p_out) const {
  if (cache_ == nullptr) {
    // No cache: hand the whole level to the inner test so it can amortize,
    // advancing this decorator's counter once per examined set as the serial
    // loop would.
    const int idx = inner_.FirstIndependent(req, p_out);
    calls += idx >= 0 ? idx + 1 : static_cast<long long>(req.sets->size());
    return idx;
  }
  const auto& sets = *req.sets;
  for (size_t i = 0; i < sets.size(); ++i) {
    ++calls;
    const std::vector<int>& s = sets[i];
    double p;
    if (!CICache::Cacheable(s)) {
      p = inner_.PValue(req.x, req.y, s);
    } else {
      const CICache::Key key = CICache::MakeKey(req.x, req.y, s, n_rows_, table_tag_);
      if (const auto cached = cache_->LookupFrom(key, shard_, &pending_)) {
        ++hits_;
        if (cached->cross_shard) {
          ++cross_shard_hits_;
        }
        p = cached->p_value;
      } else {
        p = inner_.PValue(req.x, req.y, s);
        cache_->StoreBuffered(key, p, &pending_);
      }
    }
    if (p >= req.alpha) {
      if (p_out != nullptr) {
        *p_out = p;
      }
      return static_cast<int>(i);
    }
  }
  return -1;
}

void CachedCITest::SpeculateFirstIndependent(const BatchedCIRequest& req,
                                             const PendingPValues* overlay,
                                             CISpeculation* out) const {
  if (cache_ == nullptr) {
    // No cache: delegate to the inner test's speculation (its counter
    // advances during evaluation and rolls back on discard); this
    // decorator's own counter advances only on adoption.
    inner_.SpeculateFirstIndependent(req, nullptr, out);
    return;
  }
  *out = CISpeculation{};  // a reused speculation must not accumulate
  const auto& sets = *req.sets;
  for (size_t i = 0; i < sets.size(); ++i) {
    ++out->examined;
    const std::vector<int>& s = sets[i];
    double p = 0.0;
    if (!CICache::Cacheable(s)) {
      p = inner_.PValue(req.x, req.y, s);
      ++out->inner_evals;
    } else {
      ++out->lookups;
      bool found = false;
      if (overlay != nullptr && !overlay->empty()) {
        // The prior sweep of this pair's other side stored these; a serial
        // run would find them in the cache.
        std::vector<int> sorted = s;
        std::sort(sorted.begin(), sorted.end());
        const auto it = overlay->find(sorted);
        if (it != overlay->end()) {
          p = it->second;
          found = true;
          ++out->hits;
        }
      }
      if (!found) {
        const CICache::Key key = CICache::MakeKey(req.x, req.y, s, n_rows_, table_tag_);
        if (const auto cached = cache_->LookupQuiet(key, shard_, &pending_)) {
          p = cached->p_value;
          found = true;
          ++out->hits;
          if (cached->cross_shard) {
            ++out->cross_shard_hits;
          }
        }
      }
      if (!found) {
        p = inner_.PValue(req.x, req.y, s);
        ++out->inner_evals;
        out->stores.emplace_back(i, p);
      }
    }
    if (p >= req.alpha) {
      out->first_independent = static_cast<int>(i);
      out->p = p;
      return;
    }
  }
}

void CachedCITest::AdoptSpeculation(const CISpeculation& spec, const BatchedCIRequest& req) const {
  calls += spec.examined;
  if (cache_ == nullptr) {
    return;  // the inner test already carries its evaluation counts
  }
  hits_ += spec.hits;
  cross_shard_hits_ += spec.cross_shard_hits;
  cache_->AddCounterSamples(spec.lookups, spec.hits, spec.cross_shard_hits);
  for (const auto& [index, p] : spec.stores) {
    const CICache::Key key =
        CICache::MakeKey(req.x, req.y, (*req.sets)[index], n_rows_, table_tag_);
    cache_->StoreBuffered(key, p, &pending_);
  }
}

void CachedCITest::DiscardSpeculation(const CISpeculation& spec) const {
  // Roll back the inner evaluations' counter advances; the memoized
  // intermediate state they warmed (coded columns, correlations) is
  // value-deterministic, so leaving it warm cannot change any later result.
  inner_.DiscardSpeculation(spec);
}

void CachedCITest::AppendPendingOverlay(const CISpeculation& spec, const BatchedCIRequest& req,
                                        PendingPValues* overlay) const {
  if (cache_ == nullptr) {
    return;  // uncached: no cross-sweep visibility to model
  }
  for (const auto& [index, p] : spec.stores) {
    std::vector<int> s = (*req.sets)[index];
    std::sort(s.begin(), s.end());
    (*overlay)[std::move(s)] = p;
  }
}

void CachedCITest::PublishPending() const {
  if (cache_ != nullptr) {
    cache_->Publish(&pending_, shard_);
  }
}

}  // namespace unicorn
