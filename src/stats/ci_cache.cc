#include "stats/ci_cache.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "util/binio.h"

namespace unicorn {
namespace {

// ci-cache snapshot format, version 1:
//   magic "UNCICHE1" | u32 endian marker | u32 reserved | u64 entry count
//   then per entry: u64 table_tag | u32 x | u32 y | u64 n_rows |
//                   u32 s_size | 8 × u32 s[i] | f64 p_value
constexpr char kCacheMagic[8] = {'U', 'N', 'C', 'I', 'C', 'H', 'E', '1'};

}  // namespace

CICache::Key CICache::MakeKey(int x, int y, const std::vector<int>& s, uint64_t n_rows,
                              uint64_t table_tag) {
  Key key;
  key.table_tag = table_tag;
  key.x = std::min(x, y);
  key.y = std::max(x, y);
  key.n_rows = n_rows;
  key.s_size = static_cast<uint32_t>(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    key.s[i] = s[i];
  }
  // Insertion sort: conditioning sets are tiny (<= kMaxConditioning) and
  // usually already sorted, so this is a handful of compares.
  for (uint32_t i = 1; i < key.s_size; ++i) {
    const int32_t v = key.s[i];
    uint32_t j = i;
    while (j > 0 && key.s[j - 1] > v) {
      key.s[j] = key.s[j - 1];
      --j;
    }
    key.s[j] = v;
  }
  return key;
}

size_t CICache::KeyHash::operator()(const Key& k) const {
  // FNV-style mix over the key fields.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(k.table_tag);
  mix(static_cast<uint64_t>(static_cast<uint32_t>(k.x)) |
      (static_cast<uint64_t>(static_cast<uint32_t>(k.y)) << 32));
  mix(k.n_rows);
  mix(k.s_size);
  for (uint32_t i = 0; i < k.s_size; ++i) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(k.s[i])) + 0x9e3779b97f4a7c15ULL);
  }
  return static_cast<size_t>(h);
}

std::optional<CICache::Hit> CICache::LookupFrom(const Key& key, uint32_t shard) {
  ++lookups_;
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    return std::nullopt;
  }
  ++hits_;
  Hit hit;
  hit.p_value = it->second.p_value;
  hit.cross_shard = it->second.shard != shard;
  if (hit.cross_shard) {
    ++cross_shard_hits_;
  }
  return hit;
}

void CICache::Store(const Key& key, double p_value, uint32_t shard) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (max_entries_ > 0 && stripe.map.size() >= std::max<size_t>(1, max_entries_ / kStripes)) {
    // Coarse per-stripe eviction: drop the stripe and start over. Entries
    // are pure memoization, so losing them costs re-evaluation, never
    // correctness; tracking recency on the hot path would cost more than
    // the occasional refill.
    stripe.map.clear();
  }
  stripe.map.emplace(key, Entry{p_value, shard});
}

size_t CICache::size() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.map.size();
  }
  return total;
}

void CICache::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.map.clear();
  }
}

void CICache::ResetCounters() {
  hits_ = 0;
  lookups_ = 0;
  cross_shard_hits_ = 0;
}

bool CICache::SaveTo(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  // Snapshot the stripes under their locks first so the entry count in the
  // header is exact even while other shards keep storing.
  std::vector<std::pair<Key, double>> entries;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    entries.reserve(entries.size() + stripe.map.size());
    for (const auto& [key, entry] : stripe.map) {
      entries.emplace_back(key, entry.p_value);
    }
  }
  out.write(kCacheMagic, sizeof(kCacheMagic));
  binio::WriteU32(out, binio::kEndianMarker);
  binio::WriteU32(out, 0);  // reserved
  binio::WriteU64(out, entries.size());
  for (const auto& [key, p] : entries) {
    binio::WriteU64(out, key.table_tag);
    binio::WriteU32(out, static_cast<uint32_t>(key.x));
    binio::WriteU32(out, static_cast<uint32_t>(key.y));
    binio::WriteU64(out, key.n_rows);
    binio::WriteU32(out, key.s_size);
    for (size_t i = 0; i < kMaxConditioning; ++i) {
      binio::WriteU32(out, static_cast<uint32_t>(key.s[i]));
    }
    binio::WriteDouble(out, p);
  }
  return static_cast<bool>(out);
}

long long CICache::LoadFrom(const std::string& path, uint32_t shard) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return -1;
  }
  char magic[8];
  if (!in.read(magic, sizeof(magic)) || std::memcmp(magic, kCacheMagic, sizeof(magic)) != 0) {
    return -1;
  }
  uint32_t endian = 0;
  uint32_t reserved = 0;
  uint64_t count = 0;
  if (!binio::ReadU32(in, &endian) || endian != binio::kEndianMarker ||
      !binio::ReadU32(in, &reserved) || !binio::ReadU64(in, &count)) {
    return -1;
  }
  long long loaded = 0;
  for (uint64_t e = 0; e < count; ++e) {
    Key key;
    uint32_t x = 0;
    uint32_t y = 0;
    uint32_t field = 0;
    double p = 0.0;
    if (!binio::ReadU64(in, &key.table_tag) || !binio::ReadU32(in, &x) ||
        !binio::ReadU32(in, &y) || !binio::ReadU64(in, &key.n_rows) ||
        !binio::ReadU32(in, &key.s_size)) {
      return -1;  // truncated mid-entry
    }
    key.x = static_cast<int32_t>(x);
    key.y = static_cast<int32_t>(y);
    if (key.s_size > kMaxConditioning) {
      return -1;
    }
    for (size_t i = 0; i < kMaxConditioning; ++i) {
      if (!binio::ReadU32(in, &field)) {
        return -1;
      }
      key.s[i] = static_cast<int32_t>(field);
    }
    if (!binio::ReadDouble(in, &p)) {
      return -1;
    }
    Store(key, p, shard);
    ++loaded;
  }
  return loaded;
}

double CachedCITest::PValue(int x, int y, const std::vector<int>& s) const {
  ++calls;
  if (cache_ == nullptr || !CICache::Cacheable(s)) {
    return inner_.PValue(x, y, s);
  }
  const CICache::Key key = CICache::MakeKey(x, y, s, n_rows_, table_tag_);
  if (const auto cached = cache_->LookupFrom(key, shard_)) {
    ++hits_;
    if (cached->cross_shard) {
      ++cross_shard_hits_;
    }
    return cached->p_value;
  }
  // Concurrent misses on the same key may both evaluate; the test is
  // deterministic, so both store the same value.
  const double p = inner_.PValue(x, y, s);
  cache_->Store(key, p, shard_);
  return p;
}

int CachedCITest::FirstIndependent(const BatchedCIRequest& req, double* p_out) const {
  if (cache_ == nullptr) {
    // No cache: hand the whole level to the inner test so it can amortize,
    // advancing this decorator's counter once per examined set as the serial
    // loop would.
    const int idx = inner_.FirstIndependent(req, p_out);
    calls += idx >= 0 ? idx + 1 : static_cast<long long>(req.sets->size());
    return idx;
  }
  const auto& sets = *req.sets;
  for (size_t i = 0; i < sets.size(); ++i) {
    ++calls;
    const std::vector<int>& s = sets[i];
    double p;
    if (!CICache::Cacheable(s)) {
      p = inner_.PValue(req.x, req.y, s);
    } else {
      const CICache::Key key = CICache::MakeKey(req.x, req.y, s, n_rows_, table_tag_);
      if (const auto cached = cache_->LookupFrom(key, shard_)) {
        ++hits_;
        if (cached->cross_shard) {
          ++cross_shard_hits_;
        }
        p = cached->p_value;
      } else {
        p = inner_.PValue(req.x, req.y, s);
        cache_->Store(key, p, shard_);
      }
    }
    if (p >= req.alpha) {
      if (p_out != nullptr) {
        *p_out = p;
      }
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace unicorn
