#include "stats/ci_cache.h"

#include <algorithm>
#include <utility>

namespace unicorn {

CICache::Key CICache::MakeKey(int x, int y, const std::vector<int>& s, uint64_t n_rows,
                              uint64_t table_tag) {
  Key key;
  key.table_tag = table_tag;
  key.x = std::min(x, y);
  key.y = std::max(x, y);
  key.n_rows = n_rows;
  key.s_size = static_cast<uint32_t>(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    key.s[i] = s[i];
  }
  // Insertion sort: conditioning sets are tiny (<= kMaxConditioning) and
  // usually already sorted, so this is a handful of compares.
  for (uint32_t i = 1; i < key.s_size; ++i) {
    const int32_t v = key.s[i];
    uint32_t j = i;
    while (j > 0 && key.s[j - 1] > v) {
      key.s[j] = key.s[j - 1];
      --j;
    }
    key.s[j] = v;
  }
  return key;
}

size_t CICache::KeyHash::operator()(const Key& k) const {
  // FNV-style mix over the key fields.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(k.table_tag);
  mix(static_cast<uint64_t>(static_cast<uint32_t>(k.x)) |
      (static_cast<uint64_t>(static_cast<uint32_t>(k.y)) << 32));
  mix(k.n_rows);
  mix(k.s_size);
  for (uint32_t i = 0; i < k.s_size; ++i) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(k.s[i])) + 0x9e3779b97f4a7c15ULL);
  }
  return static_cast<size_t>(h);
}

std::optional<CICache::Hit> CICache::LookupFrom(const Key& key, uint32_t shard) {
  ++lookups_;
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.map.find(key);
  if (it == stripe.map.end()) {
    return std::nullopt;
  }
  ++hits_;
  Hit hit;
  hit.p_value = it->second.p_value;
  hit.cross_shard = it->second.shard != shard;
  if (hit.cross_shard) {
    ++cross_shard_hits_;
  }
  return hit;
}

void CICache::Store(const Key& key, double p_value, uint32_t shard) {
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (max_entries_ > 0 && stripe.map.size() >= std::max<size_t>(1, max_entries_ / kStripes)) {
    // Coarse per-stripe eviction: drop the stripe and start over. Entries
    // are pure memoization, so losing them costs re-evaluation, never
    // correctness; tracking recency on the hot path would cost more than
    // the occasional refill.
    stripe.map.clear();
  }
  stripe.map.emplace(key, Entry{p_value, shard});
}

size_t CICache::size() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.map.size();
  }
  return total;
}

void CICache::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.map.clear();
  }
}

void CICache::ResetCounters() {
  hits_ = 0;
  lookups_ = 0;
  cross_shard_hits_ = 0;
}

double CachedCITest::PValue(int x, int y, const std::vector<int>& s) const {
  ++calls;
  if (cache_ == nullptr || !CICache::Cacheable(s)) {
    return inner_.PValue(x, y, s);
  }
  const CICache::Key key = CICache::MakeKey(x, y, s, n_rows_, table_tag_);
  if (const auto cached = cache_->LookupFrom(key, shard_)) {
    ++hits_;
    if (cached->cross_shard) {
      ++cross_shard_hits_;
    }
    return cached->p_value;
  }
  // Concurrent misses on the same key may both evaluate; the test is
  // deterministic, so both store the same value.
  const double p = inner_.PValue(x, y, s);
  cache_->Store(key, p, shard_);
  return p;
}

}  // namespace unicorn
