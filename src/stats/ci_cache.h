// Memoization of conditional-independence test results.
//
// One iteration of the Unicorn loop issues thousands of CI tests, and the
// skeleton search, the Possible-D-SEP pruning, and warm-started refreshes ask
// for many (x, y | S) combinations repeatedly. The cache keys a p-value on
// the unordered pair, the sorted conditioning set, and the identity of the
// data the test saw.
//
// Data identity has two layers. Within one engine, tables are append-only,
// so equal row counts imply the exact same data. Across engines (the sharded
// reasoning plane: one CausalModelEngine per objective group consulting one
// process-wide cache), equal row counts imply nothing — each shard grows its
// own table — so the key also carries a `table_tag`: an order-sensitive
// fingerprint chained over every absorbed row. Two shards whose tables are
// bit-identical (e.g. transfer campaigns seeded from the same source
// recording, or replicated policies absorbing the same bootstrap) produce
// the same tag and share hits; the first divergent row changes the tag
// forever after, so a stale cross-shard result can never be served.
//
// The cache is concurrent, with three tiers on the read path:
//   1. A lock-free read table: a fixed-size open-addressed array of seqlock
//      slots holding the hottest entries. Readers never take a lock and
//      never write shared cache state, so eight sweep threads probing one
//      cache stop serializing on stripe mutexes. It is a pure accelerator —
//      a miss (empty slot, torn read, evicted entry) falls through to tier 3,
//      so hit accounting never depends on it.
//   2. An optional per-caller pending-write buffer (WriteBuffer): parallel
//      search phases buffer their stores locally and publish them at phase
//      barriers (deterministic points), instead of contending on the shared
//      stripes mid-sweep. Lookups that pass their buffer see their own
//      pending writes, so buffering is invisible to the owning caller.
//   3. The authoritative striped-lock maps (writes always land here).
//
// Every entry remembers which shard stored it so cross-shard hits ("how many
// tests did the shared cache buy?") are accounted separately from
// shard-local ones. Hit/lookup counters are sharded cells (summed on read)
// so the counting itself does not bounce a cache line between sweep threads.
#ifndef UNICORN_STATS_CI_CACHE_H_
#define UNICORN_STATS_CI_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/independence.h"

namespace unicorn {

class CICache {
 public:
  // Conditioning sets larger than this are not cached (a size-9 set is
  // effectively never requested twice anyway).
  static constexpr size_t kMaxConditioning = 8;

  // Plain-old-data key: no heap allocation on the lookup fast path. The hot
  // loop issues millions of lookups, so key construction must cost nothing
  // beyond a few register moves.
  struct Key {
    uint64_t table_tag = 0;  // data fingerprint (0 = single-table legacy use)
    int32_t x = 0;  // stored with x <= y
    int32_t y = 0;
    uint64_t n_rows = 0;
    uint32_t s_size = 0;
    std::array<int32_t, kMaxConditioning> s{};  // sorted; first s_size valid

    bool operator==(const Key& o) const {
      if (table_tag != o.table_tag || x != o.x || y != o.y || n_rows != o.n_rows ||
          s_size != o.s_size) {
        return false;
      }
      for (uint32_t i = 0; i < s_size; ++i) {
        if (s[i] != o.s[i]) {
          return false;
        }
      }
      return true;
    }
  };

  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  // A successful lookup: the memoized p-value plus whether the entry was
  // stored by a different shard than the one asking.
  struct Hit {
    double p_value = 0.0;
    bool cross_shard = false;
  };

  // Per-caller buffer of stores not yet published to the shared stripes.
  // Striped internally so one decorator's sweep workers can buffer
  // concurrently; the owning CICache drains it in Publish(). Movable-nothing:
  // owned by value inside a decorator, referenced by pointer elsewhere.
  class WriteBuffer {
   public:
    WriteBuffer() = default;
    WriteBuffer(const WriteBuffer&) = delete;
    WriteBuffer& operator=(const WriteBuffer&) = delete;

   private:
    friend class CICache;
    static constexpr size_t kLanes = 16;
    struct Lane {
      mutable std::mutex mu;
      std::unordered_map<Key, double, KeyHash> map;
    };
    std::array<Lane, kLanes> lanes_;
    // Cheap emptiness probe so lookups skip the lane lock entirely while the
    // buffer has never been written (the overwhelmingly common case for
    // read-heavy phases).
    std::atomic<bool> any_{false};
  };

  // Canonical key: unordered pair + sorted conditioning set. `Cacheable`
  // must be checked first; MakeKey assumes s fits.
  static bool Cacheable(const std::vector<int>& s) { return s.size() <= kMaxConditioning; }
  static Key MakeKey(int x, int y, const std::vector<int>& s, uint64_t n_rows,
                     uint64_t table_tag = 0);

  // `max_entries` > 0 bounds memory in long-lived shared mode: when a lock
  // stripe outgrows its share of the budget it is dropped wholesale (coarse
  // eviction — correctness never depends on an entry being present).
  // 0 = unbounded (an engine-private cache clears itself every refresh).
  explicit CICache(size_t max_entries = 0) : max_entries_(max_entries) {}

  std::optional<double> Lookup(const Key& key) {
    const auto hit = LookupFrom(key, 0);
    return hit ? std::optional<double>(hit->p_value) : std::nullopt;
  }
  // Shard-attributed lookup: counts a cross-shard hit when the entry was
  // stored by a shard other than `shard`. When `pending` is given, the
  // caller's unpublished stores are consulted too (as shard-local entries).
  std::optional<Hit> LookupFrom(const Key& key, uint32_t shard,
                                const WriteBuffer* pending = nullptr);
  // Same probe sequence, but touches no counters — the speculative sweeps
  // use it and replay the counter deltas only if the speculation is adopted.
  std::optional<Hit> LookupQuiet(const Key& key, uint32_t shard,
                                 const WriteBuffer* pending = nullptr) const;
  void Store(const Key& key, double p_value, uint32_t shard = 0);
  // Buffered store: lands in `pending` only; visible to lookups that pass
  // the same buffer, published to the shared tiers by Publish().
  void StoreBuffered(const Key& key, double p_value, WriteBuffer* pending);
  // Phase barrier: drains `pending` into the striped maps and the read
  // table, attributed to `shard`. Safe to call concurrently with lookups and
  // stores from other callers.
  void Publish(WriteBuffer* pending, uint32_t shard);
  // Replays the counter deltas of an adopted speculative sweep (which probed
  // via LookupQuiet so discarded sweeps leave no trace in the totals).
  void AddCounterSamples(long long lookups, long long hits, long long cross_shard);

  long long hits() const { return SumCells(hit_cells_); }
  long long lookups() const { return SumCells(lookup_cells_); }
  // Hits on entries another shard paid for — the shared-cache dividend.
  long long cross_shard_hits() const { return SumCells(cross_cells_); }
  size_t size() const;
  // Drops every entry (striped maps and the read table). Requires external
  // quiescence: no concurrent lookups or stores (the engine clears its
  // private cache only between sweeps; the shared cache is never cleared
  // mid-flight). The read-table seqlocks restart from their empty state, so
  // a racing reader could otherwise see a torn refill as stable.
  void Clear();
  void ResetCounters();

  // Cross-process persistence. Entries are keyed on the order-sensitive
  // table fingerprint (plus row count), so a snapshot taken against one
  // recording can only ever hit for an engine that absorbed bit-identical
  // rows in the same order — loading a stale or unrelated snapshot costs
  // memory, never correctness. SaveTo writes every entry (all stripes) to a
  // versioned little-endian binary file; returns false on I/O failure.
  bool SaveTo(const std::string& path) const;
  // Loads a snapshot into this cache (on top of what is already present),
  // attributing the entries to `shard`. Returns the number of entries
  // loaded, or -1 on I/O failure or a malformed/foreign file (the cache is
  // untouched on -1, except possibly entries already applied before a
  // mid-file truncation is detected).
  long long LoadFrom(const std::string& path, uint32_t shard = 0);

 private:
  struct Entry {
    double p_value = 0.0;
    uint32_t shard = 0;  // who stored it (cross-shard hit accounting)
  };
  // Striped locking: concurrent shard refreshes mostly touch different
  // stripes, so the shared cache does not serialize the reasoning plane.
  static constexpr size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> map;
  };

  // Lock-free read tier: open-addressed seqlock slots. A slot is empty while
  // seq == 0, mid-write while seq is odd, stable otherwise; writers only
  // ever move seq forward (except under the quiescent Clear), so a reader
  // that sees the same even seq before and after its field loads saw a
  // consistent snapshot. The key is pre-packed into 8 words (trailing s[]
  // entries are zero by construction) so the compare is branch-light.
  struct ReadSlot {
    std::atomic<uint32_t> seq{0};
    std::atomic<uint32_t> shard{0};
    std::atomic<uint64_t> p_bits{0};
    std::array<std::atomic<uint64_t>, 8> words{};
  };
  static constexpr size_t kReadSlotsLog2 = 15;  // 32768 slots, ~2.8 MiB, lazy
  static constexpr size_t kReadSlots = size_t{1} << kReadSlotsLog2;
  static constexpr size_t kReadProbes = 8;  // linear probe window

  // Sharded counter cells: each thread bumps a (sticky, thread-local) cell,
  // totals are summed on read. Padded to a cache line each.
  struct alignas(64) CounterCell {
    std::atomic<long long> v{0};
  };
  static constexpr size_t kCounterCells = 8;
  using CounterCells = std::array<CounterCell, kCounterCells>;

  static void PackKey(const Key& key, std::array<uint64_t, 8>* words);
  static long long SumCells(const CounterCells& cells);
  static void BumpCell(CounterCells& cells, long long delta);

  Stripe& StripeFor(const Key& key) { return stripes_[KeyHash{}(key) % kStripes]; }
  const Stripe& StripeFor(const Key& key) const { return stripes_[KeyHash{}(key) % kStripes]; }

  // The uncounted three-tier probe shared by LookupFrom and LookupQuiet.
  std::optional<Hit> Probe(const Key& key, uint32_t shard, const WriteBuffer* pending) const;
  std::optional<Hit> ProbeReadTable(const Key& key, uint32_t shard) const;
  ReadSlot* EnsureReadTable();
  void InsertReadTable(const Key& key, double p_value, uint32_t shard);

  size_t max_entries_ = 0;
  std::array<Stripe, kStripes> stripes_;
  mutable std::atomic<ReadSlot*> read_table_{nullptr};
  std::unique_ptr<ReadSlot[]> read_table_storage_;
  std::mutex read_init_mu_;
  mutable CounterCells hit_cells_;
  mutable CounterCells lookup_cells_;
  mutable CounterCells cross_cells_;
};

// CITest decorator that consults a (shared) CICache before delegating.
// `calls` on this object counts requested tests (hits + misses); `calls` on
// the inner test counts the p-values actually evaluated. `hits()` and
// `cross_shard_hits()` count locally — exact for this decorator even while
// other shards hammer the same cache concurrently.
//
// Stores are buffered: evaluated p-values land in a decorator-private
// WriteBuffer that this decorator's own lookups always consult, and are
// published to the shared cache at phase barriers (PublishPending, called by
// the search phases) and on destruction. Within one decorator the buffering
// is invisible; other shards see the entries at the next barrier instead of
// mid-sweep.
class CachedCITest : public CITest {
 public:
  CachedCITest(const CITest& inner, CICache* cache, uint64_t n_rows,
               uint64_t table_tag = 0, uint32_t shard = 0)
      : inner_(inner), cache_(cache), n_rows_(n_rows), table_tag_(table_tag), shard_(shard) {}
  ~CachedCITest() override {
    if (cache_ != nullptr) {
      cache_->Publish(&pending_, shard_);
    }
  }

  double PValue(int x, int y, const std::vector<int>& s) const override;

  // Batched: one cache-key template per level; per-set semantics (lookup,
  // store, counters, early exit) identical to per-set PValue calls.
  int FirstIndependent(const BatchedCIRequest& req, double* p_out = nullptr) const override;

  // Speculative sweep protocol (see CITest): probes via LookupQuiet and
  // records stores/counter deltas in the speculation; adoption replays them
  // onto this decorator, the cache totals, and the pending buffer.
  void SpeculateFirstIndependent(const BatchedCIRequest& req, const PendingPValues* overlay,
                                 CISpeculation* out) const override;
  void AdoptSpeculation(const CISpeculation& spec, const BatchedCIRequest& req) const override;
  void DiscardSpeculation(const CISpeculation& spec) const override;
  void AppendPendingOverlay(const CISpeculation& spec, const BatchedCIRequest& req,
                            PendingPValues* overlay) const override;
  void PublishPending() const override;

  const CITest& inner() const { return inner_; }
  long long hits() const { return hits_.load(); }
  long long cross_shard_hits() const { return cross_shard_hits_.load(); }

 private:
  const CITest& inner_;
  CICache* cache_;
  uint64_t n_rows_;
  uint64_t table_tag_;
  uint32_t shard_;
  mutable std::atomic<long long> hits_{0};
  mutable std::atomic<long long> cross_shard_hits_{0};
  mutable CICache::WriteBuffer pending_;
};

}  // namespace unicorn

#endif  // UNICORN_STATS_CI_CACHE_H_
