// Memoization of conditional-independence test results.
//
// One iteration of the Unicorn loop issues thousands of CI tests, and the
// skeleton search, the Possible-D-SEP pruning, and warm-started refreshes ask
// for many (x, y | S) combinations repeatedly. The cache keys a p-value on
// the unordered pair, the sorted conditioning set, and the identity of the
// data the test saw.
//
// Data identity has two layers. Within one engine, tables are append-only,
// so equal row counts imply the exact same data. Across engines (the sharded
// reasoning plane: one CausalModelEngine per objective group consulting one
// process-wide cache), equal row counts imply nothing — each shard grows its
// own table — so the key also carries a `table_tag`: an order-sensitive
// fingerprint chained over every absorbed row. Two shards whose tables are
// bit-identical (e.g. transfer campaigns seeded from the same source
// recording, or replicated policies absorbing the same bootstrap) produce
// the same tag and share hits; the first divergent row changes the tag
// forever after, so a stale cross-shard result can never be served.
//
// The cache is concurrent: lookups and stores from parallel shard refreshes
// go through striped locks, and every entry remembers which shard stored it
// so cross-shard hits ("how many tests did the shared cache buy?") are
// accounted separately from shard-local ones.
#ifndef UNICORN_STATS_CI_CACHE_H_
#define UNICORN_STATS_CI_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/independence.h"

namespace unicorn {

class CICache {
 public:
  // Conditioning sets larger than this are not cached (a size-9 set is
  // effectively never requested twice anyway).
  static constexpr size_t kMaxConditioning = 8;

  // Plain-old-data key: no heap allocation on the lookup fast path. The hot
  // loop issues millions of lookups, so key construction must cost nothing
  // beyond a few register moves.
  struct Key {
    uint64_t table_tag = 0;  // data fingerprint (0 = single-table legacy use)
    int32_t x = 0;  // stored with x <= y
    int32_t y = 0;
    uint64_t n_rows = 0;
    uint32_t s_size = 0;
    std::array<int32_t, kMaxConditioning> s{};  // sorted; first s_size valid

    bool operator==(const Key& o) const {
      if (table_tag != o.table_tag || x != o.x || y != o.y || n_rows != o.n_rows ||
          s_size != o.s_size) {
        return false;
      }
      for (uint32_t i = 0; i < s_size; ++i) {
        if (s[i] != o.s[i]) {
          return false;
        }
      }
      return true;
    }
  };

  // A successful lookup: the memoized p-value plus whether the entry was
  // stored by a different shard than the one asking.
  struct Hit {
    double p_value = 0.0;
    bool cross_shard = false;
  };

  // Canonical key: unordered pair + sorted conditioning set. `Cacheable`
  // must be checked first; MakeKey assumes s fits.
  static bool Cacheable(const std::vector<int>& s) { return s.size() <= kMaxConditioning; }
  static Key MakeKey(int x, int y, const std::vector<int>& s, uint64_t n_rows,
                     uint64_t table_tag = 0);

  // `max_entries` > 0 bounds memory in long-lived shared mode: when a lock
  // stripe outgrows its share of the budget it is dropped wholesale (coarse
  // eviction — correctness never depends on an entry being present).
  // 0 = unbounded (an engine-private cache clears itself every refresh).
  explicit CICache(size_t max_entries = 0) : max_entries_(max_entries) {}

  std::optional<double> Lookup(const Key& key) {
    const auto hit = LookupFrom(key, 0);
    return hit ? std::optional<double>(hit->p_value) : std::nullopt;
  }
  // Shard-attributed lookup: counts a cross-shard hit when the entry was
  // stored by a shard other than `shard`.
  std::optional<Hit> LookupFrom(const Key& key, uint32_t shard);
  void Store(const Key& key, double p_value, uint32_t shard = 0);

  long long hits() const { return hits_.load(); }
  long long lookups() const { return lookups_.load(); }
  // Hits on entries another shard paid for — the shared-cache dividend.
  long long cross_shard_hits() const { return cross_shard_hits_.load(); }
  size_t size() const;
  void Clear();
  void ResetCounters();

  // Cross-process persistence. Entries are keyed on the order-sensitive
  // table fingerprint (plus row count), so a snapshot taken against one
  // recording can only ever hit for an engine that absorbed bit-identical
  // rows in the same order — loading a stale or unrelated snapshot costs
  // memory, never correctness. SaveTo writes every entry (all stripes) to a
  // versioned little-endian binary file; returns false on I/O failure.
  bool SaveTo(const std::string& path) const;
  // Loads a snapshot into this cache (on top of what is already present),
  // attributing the entries to `shard`. Returns the number of entries
  // loaded, or -1 on I/O failure or a malformed/foreign file (the cache is
  // untouched on -1, except possibly entries already applied before a
  // mid-file truncation is detected).
  long long LoadFrom(const std::string& path, uint32_t shard = 0);

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    double p_value = 0.0;
    uint32_t shard = 0;  // who stored it (cross-shard hit accounting)
  };
  // Striped locking: concurrent shard refreshes mostly touch different
  // stripes, so the shared cache does not serialize the reasoning plane.
  static constexpr size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> map;
  };

  Stripe& StripeFor(const Key& key) { return stripes_[KeyHash{}(key) % kStripes]; }

  size_t max_entries_ = 0;
  std::array<Stripe, kStripes> stripes_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> lookups_{0};
  std::atomic<long long> cross_shard_hits_{0};
};

// CITest decorator that consults a (shared) CICache before delegating.
// `calls` on this object counts requested tests (hits + misses); `calls` on
// the inner test counts the p-values actually evaluated. `hits()` and
// `cross_shard_hits()` count locally — exact for this decorator even while
// other shards hammer the same cache concurrently.
class CachedCITest : public CITest {
 public:
  CachedCITest(const CITest& inner, CICache* cache, uint64_t n_rows,
               uint64_t table_tag = 0, uint32_t shard = 0)
      : inner_(inner), cache_(cache), n_rows_(n_rows), table_tag_(table_tag), shard_(shard) {}

  double PValue(int x, int y, const std::vector<int>& s) const override;

  // Batched: one cache-key template per level; per-set semantics (lookup,
  // store, counters, early exit) identical to per-set PValue calls.
  int FirstIndependent(const BatchedCIRequest& req, double* p_out = nullptr) const override;

  const CITest& inner() const { return inner_; }
  long long hits() const { return hits_.load(); }
  long long cross_shard_hits() const { return cross_shard_hits_.load(); }

 private:
  const CITest& inner_;
  CICache* cache_;
  uint64_t n_rows_;
  uint64_t table_tag_;
  uint32_t shard_;
  mutable std::atomic<long long> hits_{0};
  mutable std::atomic<long long> cross_shard_hits_{0};
};

}  // namespace unicorn

#endif  // UNICORN_STATS_CI_CACHE_H_
