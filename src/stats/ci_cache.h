// Memoization of conditional-independence test results.
//
// One iteration of the Unicorn loop issues thousands of CI tests, and the
// skeleton search, the Possible-D-SEP pruning, and warm-started refreshes ask
// for many (x, y | S) combinations repeatedly. The cache keys a p-value on
// the unordered pair, the sorted conditioning set, and the number of rows the
// test saw: data tables are append-only, so equal row counts imply the exact
// same data and the cached value is bit-identical to a fresh evaluation.
#ifndef UNICORN_STATS_CI_CACHE_H_
#define UNICORN_STATS_CI_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "stats/independence.h"

namespace unicorn {

class CICache {
 public:
  // Conditioning sets larger than this are not cached (a size-9 set is
  // effectively never requested twice anyway).
  static constexpr size_t kMaxConditioning = 8;

  // Plain-old-data key: no heap allocation on the lookup fast path. The hot
  // loop issues millions of lookups, so key construction must cost nothing
  // beyond a few register moves.
  struct Key {
    int32_t x = 0;  // stored with x <= y
    int32_t y = 0;
    uint64_t n_rows = 0;
    uint32_t s_size = 0;
    std::array<int32_t, kMaxConditioning> s{};  // sorted; first s_size valid

    bool operator==(const Key& o) const {
      if (x != o.x || y != o.y || n_rows != o.n_rows || s_size != o.s_size) {
        return false;
      }
      for (uint32_t i = 0; i < s_size; ++i) {
        if (s[i] != o.s[i]) {
          return false;
        }
      }
      return true;
    }
  };

  // Canonical key: unordered pair + sorted conditioning set. `Cacheable`
  // must be checked first; MakeKey assumes s fits.
  static bool Cacheable(const std::vector<int>& s) { return s.size() <= kMaxConditioning; }
  static Key MakeKey(int x, int y, const std::vector<int>& s, uint64_t n_rows);

  std::optional<double> Lookup(const Key& key);
  void Store(const Key& key, double p_value);

  long long hits() const { return hits_.load(); }
  long long lookups() const { return lookups_.load(); }
  size_t size() const;
  void Clear();
  void ResetCounters();

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, double, KeyHash> map_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> lookups_{0};
};

// CITest decorator that consults a (shared) CICache before delegating.
// `calls` on this object counts requested tests (hits + misses); `calls` on
// the inner test counts the p-values actually evaluated.
class CachedCITest : public CITest {
 public:
  CachedCITest(const CITest& inner, CICache* cache, uint64_t n_rows)
      : inner_(inner), cache_(cache), n_rows_(n_rows) {}

  double PValue(int x, int y, const std::vector<int>& s) const override;

  const CITest& inner() const { return inner_; }

 private:
  const CITest& inner_;
  CICache* cache_;
  uint64_t n_rows_;
};

}  // namespace unicorn

#endif  // UNICORN_STATS_CI_CACHE_H_
