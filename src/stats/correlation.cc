#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace unicorn {

double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) {
    return 0.0;
  }
  double ma = 0.0;
  double mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double saa = 0.0;
  double sbb = 0.0;
  double sab = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) {
    return 0.0;
  }
  return sab / std::sqrt(saa * sbb);
}

std::vector<double> MidRanks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) { return v[i] < v[j]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) {
      ++j;
    }
    const double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) {
      ranks[order[k]] = mid;
    }
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  return PearsonCorrelation(MidRanks(a), MidRanks(b));
}

double Mape(const std::vector<double>& truth, const std::vector<double>& pred, double eps) {
  const size_t n = std::min(truth.size(), pred.size());
  double total = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(truth[i]) < eps) {
      continue;
    }
    total += std::fabs((truth[i] - pred[i]) / truth[i]);
    ++used;
  }
  return used == 0 ? 0.0 : 100.0 * total / static_cast<double>(used);
}

}  // namespace unicorn
