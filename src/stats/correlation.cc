#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace unicorn {

double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) {
    return 0.0;
  }
  double ma = 0.0;
  double mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double saa = 0.0;
  double sbb = 0.0;
  double sab = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) {
    return 0.0;
  }
  return sab / std::sqrt(saa * sbb);
}

std::vector<double> MidRanks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) { return v[i] < v[j]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) {
      ++j;
    }
    const double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) {
      ranks[order[k]] = mid;
    }
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  return PearsonCorrelation(MidRanks(a), MidRanks(b));
}

StreamingMoments::StreamingMoments(size_t num_vars)
    : num_vars_(num_vars),
      sum_(num_vars, 0.0),
      cross_(num_vars * (num_vars + 1) / 2, 0.0) {}

size_t StreamingMoments::TriIndex(size_t a, size_t b) const {
  if (a > b) {
    std::swap(a, b);
  }
  return a * num_vars_ - a * (a - 1) / 2 + (b - a);
}

void StreamingMoments::AddRow(const std::vector<double>& row) {
  if (n_ == 0) {
    offset_ = row;  // shift origin to the first row (see header)
  }
  for (size_t a = 0; a < num_vars_; ++a) {
    const double va = row[a] - offset_[a];
    sum_[a] += va;
    double* cross = &cross_[TriIndex(a, a)];
    for (size_t b = a; b < num_vars_; ++b) {
      cross[b - a] += va * (row[b] - offset_[b]);
    }
  }
  ++n_;
}

double StreamingMoments::Mean(size_t v) const {
  return n_ == 0 ? 0.0 : offset_[v] + sum_[v] / static_cast<double>(n_);
}

double StreamingMoments::Variance(size_t v) const {
  if (n_ == 0) {
    return 0.0;
  }
  const double shifted_mean = sum_[v] / static_cast<double>(n_);
  const double var =
      cross_[TriIndex(v, v)] / static_cast<double>(n_) - shifted_mean * shifted_mean;
  return var > 0.0 ? var : 0.0;
}

double StreamingMoments::Pearson(size_t a, size_t b) const {
  if (n_ < 2) {
    return 0.0;
  }
  const double ma = sum_[a] / static_cast<double>(n_);
  const double mb = sum_[b] / static_cast<double>(n_);
  const double cov = cross_[TriIndex(a, b)] / static_cast<double>(n_) - ma * mb;
  const double va = Variance(a);
  const double vb = Variance(b);
  if (va <= 1e-15 || vb <= 1e-15) {
    return 0.0;
  }
  double r = cov / std::sqrt(va * vb);
  return std::max(-1.0, std::min(1.0, r));
}

double Mape(const std::vector<double>& truth, const std::vector<double>& pred, double eps) {
  const size_t n = std::min(truth.size(), pred.size());
  double total = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(truth[i]) < eps) {
      continue;
    }
    total += std::fabs((truth[i] - pred[i]) / truth[i]);
    ++used;
  }
  return used == 0 ? 0.0 : 100.0 * total / static_cast<double>(used);
}

}  // namespace unicorn
