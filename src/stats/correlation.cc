#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/simd.h"

namespace unicorn {

double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) {
    return 0.0;
  }
  double ma = 0.0;
  double mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double saa = 0.0;
  double sbb = 0.0;
  double sab = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) {
    return 0.0;
  }
  return sab / std::sqrt(saa * sbb);
}

std::vector<double> MidRanks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) { return v[i] < v[j]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) {
      ++j;
    }
    const double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) {
      ranks[order[k]] = mid;
    }
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  return PearsonCorrelation(MidRanks(a), MidRanks(b));
}

StreamingMoments::StreamingMoments(size_t num_vars)
    : num_vars_(num_vars),
      sum_(num_vars, 0.0),
      cross_(num_vars * (num_vars + 1) / 2, 0.0) {}

size_t StreamingMoments::TriIndex(size_t a, size_t b) const {
  if (a > b) {
    std::swap(a, b);
  }
  return a * num_vars_ - a * (a - 1) / 2 + (b - a);
}

void StreamingMoments::AddRow(const std::vector<double>& row) {
  if (n_ == 0) {
    offset_ = row;  // shift origin to the first row (see header)
  }
  // Shift the row once, then the per-variable update is a pure axpy into the
  // contiguous cross-moment slice. Each cross entry still receives the exact
  // product va * (row[b] - offset_[b]), so the moments are bit-identical to
  // the unbatched update regardless of vectorization.
  shifted_.resize(num_vars_);
  for (size_t b = 0; b < num_vars_; ++b) {
    shifted_[b] = row[b] - offset_[b];
  }
  for (size_t a = 0; a < num_vars_; ++a) {
    const double va = shifted_[a];
    sum_[a] += va;
    simd::Axpy(va, &shifted_[a], &cross_[TriIndex(a, a)], num_vars_ - a);
  }
  ++n_;
}

double StreamingMoments::Mean(size_t v) const {
  return n_ == 0 ? 0.0 : offset_[v] + sum_[v] / static_cast<double>(n_);
}

double StreamingMoments::Variance(size_t v) const {
  if (n_ == 0) {
    return 0.0;
  }
  const double shifted_mean = sum_[v] / static_cast<double>(n_);
  const double var =
      cross_[TriIndex(v, v)] / static_cast<double>(n_) - shifted_mean * shifted_mean;
  return var > 0.0 ? var : 0.0;
}

double StreamingMoments::Pearson(size_t a, size_t b) const {
  if (n_ < 2) {
    return 0.0;
  }
  const double ma = sum_[a] / static_cast<double>(n_);
  const double mb = sum_[b] / static_cast<double>(n_);
  const double cov = cross_[TriIndex(a, b)] / static_cast<double>(n_) - ma * mb;
  const double va = Variance(a);
  const double vb = Variance(b);
  if (va <= 1e-15 || vb <= 1e-15) {
    return 0.0;
  }
  double r = cov / std::sqrt(va * vb);
  return std::max(-1.0, std::min(1.0, r));
}

void StreamingMoments::PearsonUpperTri(std::vector<double>* out) const {
  out->resize(num_vars_ * (num_vars_ + 1) / 2);
  if (n_ < 2) {
    std::fill(out->begin(), out->end(), 0.0);
    for (size_t a = 0, tri = 0; a < num_vars_; tri += num_vars_ - a, ++a) {
      (*out)[tri] = 1.0;
    }
    return;
  }
  // Hoist the O(V) quantities; each is the same double Pearson(a, b) derives
  // per call, so the per-pair expressions below match it bit for bit.
  std::vector<double> mean(num_vars_);
  std::vector<double> var(num_vars_);
  for (size_t v = 0; v < num_vars_; ++v) {
    mean[v] = sum_[v] / static_cast<double>(n_);
    var[v] = Variance(v);
  }
  size_t tri = 0;
  for (size_t a = 0; a < num_vars_; ++a) {
    const double ma = mean[a];
    const double va = var[a];
    const double* cross = &cross_[TriIndex(a, a)];
    double* row = out->data() + tri;
    row[0] = 1.0;
    UNICORN_SIMD_LOOP
    for (size_t b = a + 1; b < num_vars_; ++b) {
      const double cov = cross[b - a] / static_cast<double>(n_) - ma * mean[b];
      const double vb = var[b];
      double r = 0.0;
      if (va > 1e-15 && vb > 1e-15) {
        r = std::max(-1.0, std::min(1.0, cov / std::sqrt(va * vb)));
      }
      row[b - a] = r;
    }
    tri += num_vars_ - a;
  }
}

double Mape(const std::vector<double>& truth, const std::vector<double>& pred, double eps) {
  const size_t n = std::min(truth.size(), pred.size());
  double total = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(truth[i]) < eps) {
      continue;
    }
    total += std::fabs((truth[i] - pred[i]) / truth[i]);
    ++used;
  }
  return used == 0 ? 0.0 : 100.0 * total / static_cast<double>(used);
}

}  // namespace unicorn
