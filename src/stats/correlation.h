// Rank and linear correlation helpers used by the transferability analyses
// (Fig. 4: Spearman rank correlation between source/target model terms).
#ifndef UNICORN_STATS_CORRELATION_H_
#define UNICORN_STATS_CORRELATION_H_

#include <vector>

namespace unicorn {

// Pearson linear correlation; 0 for degenerate input.
double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b);

// Spearman rank correlation (Pearson on mid-ranks).
double SpearmanCorrelation(const std::vector<double>& a, const std::vector<double>& b);

// Mid-ranks of a vector (ties get averaged ranks).
std::vector<double> MidRanks(const std::vector<double>& v);

// Mean absolute percentage error of predictions vs. truth (percent).
// Entries with |truth| < eps are skipped.
double Mape(const std::vector<double>& truth, const std::vector<double>& pred,
            double eps = 1e-9);

}  // namespace unicorn

#endif  // UNICORN_STATS_CORRELATION_H_
