// Rank and linear correlation helpers used by the transferability analyses
// (Fig. 4: Spearman rank correlation between source/target model terms) and
// the incremental statistics of the causal-model engine.
#ifndef UNICORN_STATS_CORRELATION_H_
#define UNICORN_STATS_CORRELATION_H_

#include <cstddef>
#include <vector>

namespace unicorn {

// Pearson linear correlation; 0 for degenerate input.
double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b);

// Spearman rank correlation (Pearson on mid-ranks).
double SpearmanCorrelation(const std::vector<double>& a, const std::vector<double>& b);

// Mid-ranks of a vector (ties get averaged ranks).
std::vector<double> MidRanks(const std::vector<double>& v);

// Mean absolute percentage error of predictions vs. truth (percent).
// Entries with |truth| < eps are skipped.
double Mape(const std::vector<double>& truth, const std::vector<double>& pred,
            double eps = 1e-9);

// Streaming first and second moments over a fixed set of variables.
//
// AddRow is a rank-1 update of the per-variable sums and the pairwise
// cross-moment matrix, so appending measurements never rebuilds anything.
// The causal-model engine uses the implied Pearson correlations to decide
// which variables' statistics "changed materially" since the last model
// refresh (paper §4 Stage IV, incremental update).
class StreamingMoments {
 public:
  explicit StreamingMoments(size_t num_vars = 0);

  void AddRow(const std::vector<double>& row);

  size_t NumVars() const { return num_vars_; }
  size_t NumRows() const { return n_; }

  double Mean(size_t v) const;
  double Variance(size_t v) const;  // population variance

  // Pearson correlation of (a, b) from the streaming moments; 0 when
  // degenerate or fewer than two rows.
  double Pearson(size_t a, size_t b) const;

  // All pairwise correlations in one batched sweep, flattened over the upper
  // triangle including the diagonal (same layout as the engine's correlation
  // snapshot: index advances b within a). Diagonal entries are 1.0; with
  // fewer than two rows every off-diagonal entry is 0.0. Means and
  // variances are hoisted out of the pair loop but every per-pair expression
  // is the one Pearson(a, b) evaluates, so each entry is bit-identical to a
  // per-pair call.
  void PearsonUpperTri(std::vector<double>* out) const;

 private:
  size_t TriIndex(size_t a, size_t b) const;  // upper triangle incl. diagonal

  size_t num_vars_ = 0;
  size_t n_ = 0;
  // Moments accumulate on values shifted by the first observed row: E[x^2]
  // minus mean^2 on raw values cancels catastrophically for large-offset,
  // low-relative-variance columns (saturated counters), and the dirty-pair
  // detection built on these correlations would go blind there.
  std::vector<double> offset_;
  std::vector<double> sum_;
  std::vector<double> cross_;  // flattened upper-triangular sum of products
  std::vector<double> shifted_;  // AddRow scratch: row - offset, reused per call
};

}  // namespace unicorn

#endif  // UNICORN_STATS_CORRELATION_H_
