#include "stats/discretize.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace unicorn {

CodedColumn DiscretizeColumn(const std::vector<double>& col, VarType type, int max_bins,
                             ColumnCoding* coding) {
  CodedColumn out;
  out.codes.resize(col.size());
  if (coding != nullptr) {
    coding->direct = false;
    coding->levels.clear();
  }
  if (col.empty()) {
    return out;
  }

  // Map distinct values to codes directly when the alphabet is small. This
  // covers binary/discrete columns and degenerate continuous columns.
  std::map<double, int> levels;
  bool small_alphabet = true;
  for (double v : col) {
    if (levels.emplace(v, 0).second && levels.size() > static_cast<size_t>(max_bins)) {
      if (type != VarType::kContinuous) {
        // Discrete variable with many levels: still map levels directly.
        continue;
      }
      small_alphabet = false;
      break;
    }
  }

  if (type != VarType::kContinuous || small_alphabet) {
    levels.clear();
    for (double v : col) {
      levels.emplace(v, 0);
    }
    int next = 0;
    for (auto& [value, code] : levels) {
      code = next++;
    }
    for (size_t i = 0; i < col.size(); ++i) {
      out.codes[i] = levels[col[i]];
    }
    out.cardinality = next;
    if (coding != nullptr) {
      coding->direct = true;
      coding->levels = std::move(levels);
    }
    return out;
  }

  // Quantile binning for continuous columns.
  std::vector<double> sorted = col;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cuts;
  cuts.reserve(max_bins - 1);
  for (int b = 1; b < max_bins; ++b) {
    size_t idx = static_cast<size_t>(
        std::min<double>(sorted.size() - 1.0, std::floor(sorted.size() * b / double(max_bins))));
    cuts.push_back(sorted[idx]);
  }
  // Deduplicate cut points (heavy ties collapse bins).
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  for (size_t i = 0; i < col.size(); ++i) {
    int code = 0;
    for (double c : cuts) {
      if (col[i] >= c) {
        ++code;
      } else {
        break;
      }
    }
    out.codes[i] = code;
  }
  out.cardinality = static_cast<int>(cuts.size()) + 1;
  return out;
}

CodedTable::CodedTable(const DataTable& table, int max_bins) : num_rows_(table.NumRows()) {
  columns_.reserve(table.NumVars());
  for (size_t v = 0; v < table.NumVars(); ++v) {
    columns_.push_back(DiscretizeColumn(table.Col(v), table.Var(v).type, max_bins));
  }
}

CodedColumn CombineStrata(const std::vector<const CodedColumn*>& cols, size_t num_rows,
                          std::map<long long, int>* dense_out) {
  CodedColumn out;
  out.codes.assign(num_rows, 0);
  if (dense_out != nullptr) {
    dense_out->clear();
  }
  if (cols.empty()) {
    out.cardinality = num_rows == 0 ? 0 : 1;
    return out;
  }
  // Build combined keys, then compress them to dense codes.
  std::vector<long long> keys(num_rows, 0);
  for (const CodedColumn* c : cols) {
    const long long card = std::max(1, c->cardinality);
    for (size_t r = 0; r < num_rows; ++r) {
      keys[r] = keys[r] * card + c->codes[r];
    }
  }
  std::map<long long, int> dense;
  for (size_t r = 0; r < num_rows; ++r) {
    auto [it, inserted] = dense.emplace(keys[r], static_cast<int>(dense.size()));
    out.codes[r] = it->second;
  }
  out.cardinality = static_cast<int>(dense.size());
  if (dense_out != nullptr) {
    *dense_out = std::move(dense);
  }
  return out;
}

CodedColumn CodedTable::Strata(const std::vector<int>& vars) const {
  std::vector<const CodedColumn*> cols;
  cols.reserve(vars.size());
  for (int v : vars) {
    cols.push_back(&columns_[static_cast<size_t>(v)]);
  }
  return CombineStrata(cols, num_rows_);
}

}  // namespace unicorn
