// Discretization of mixed-type columns into integer codes.
//
// Entropy/mutual-information machinery (G-test, LatentSearch, entropic edge
// orientation) operates on small categorical alphabets. Discrete columns map
// their observed levels to codes; continuous columns are binned by quantiles.
#ifndef UNICORN_STATS_DISCRETIZE_H_
#define UNICORN_STATS_DISCRETIZE_H_

#include <map>
#include <vector>

#include "stats/table.h"

namespace unicorn {

// One discretized column: integer codes in [0, cardinality).
struct CodedColumn {
  std::vector<int> codes;
  int cardinality = 0;
};

// How DiscretizeColumn coded a column — captured on request so incremental
// consumers (GSquareTest::Update) can extend codes for appended rows without
// re-coding the prefix. `direct` means each distinct value maps straight to
// a code (codes assigned in sorted-value order); only then is extension
// sound, and only while appended values hit existing levels — a new level
// would renumber the whole column, and quantile bins shift with the data.
struct ColumnCoding {
  bool direct = false;
  std::map<double, int> levels;  // value -> code; populated when direct
};

// Discretizes one column. Continuous columns are split into at most
// `max_bins` quantile bins (fewer if the data has few distinct values).
// When `coding` is non-null it receives how the column was coded.
CodedColumn DiscretizeColumn(const std::vector<double>& col, VarType type, int max_bins,
                             ColumnCoding* coding = nullptr);

// Combines several coded columns into one stratum id per row (mixed-radix
// key, then dense renumbering). All callers that stratify — CodedTable and
// the G-square test's memoized strata — share this one implementation so the
// codes stay bit-identical. Every column must have at least `num_rows` codes.
// When `dense_out` is non-null it receives the radix-key -> dense-id map
// (ids assigned by first appearance in row order), which lets incremental
// consumers append rows with stable stratum ids.
CodedColumn CombineStrata(const std::vector<const CodedColumn*>& cols, size_t num_rows,
                          std::map<long long, int>* dense_out = nullptr);

// Discretized view of a whole table.
class CodedTable {
 public:
  CodedTable(const DataTable& table, int max_bins = 5);

  size_t NumVars() const { return columns_.size(); }
  size_t NumRows() const { return num_rows_; }
  const CodedColumn& Col(size_t v) const { return columns_[v]; }

  // Combines the codes of several columns into a single stratum id per row;
  // returns the codes plus the number of distinct observed strata.
  CodedColumn Strata(const std::vector<int>& vars) const;

 private:
  std::vector<CodedColumn> columns_;
  size_t num_rows_ = 0;
};

}  // namespace unicorn

#endif  // UNICORN_STATS_DISCRETIZE_H_
