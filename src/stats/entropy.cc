#include "stats/entropy.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace unicorn {
namespace {

double PlogP(double p) { return p > 0.0 ? -p * std::log(p) : 0.0; }

}  // namespace

double DistributionEntropy(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) {
      total += w;
    }
  }
  return DistributionEntropyWithTotal(weights, total);
}

double DistributionEntropyWithTotal(const std::vector<double>& weights, double total) {
  if (total <= 0.0) {
    return 0.0;
  }
  double h = 0.0;
  for (double w : weights) {
    if (w > 0.0) {
      h += PlogP(w / total);
    }
  }
  return h;
}

double Entropy(const CodedColumn& x) {
  if (x.codes.empty()) {
    return 0.0;
  }
  std::vector<double> counts(static_cast<size_t>(std::max(1, x.cardinality)), 0.0);
  for (int c : x.codes) {
    counts[static_cast<size_t>(c)] += 1.0;
  }
  return DistributionEntropy(counts);
}

double JointEntropy(const CodedColumn& x, const CodedColumn& y) {
  if (x.codes.empty()) {
    return 0.0;
  }
  const size_t cy = static_cast<size_t>(std::max(1, y.cardinality));
  std::vector<double> counts(static_cast<size_t>(std::max(1, x.cardinality)) * cy, 0.0);
  for (size_t r = 0; r < x.codes.size(); ++r) {
    counts[static_cast<size_t>(x.codes[r]) * cy + static_cast<size_t>(y.codes[r])] += 1.0;
  }
  return DistributionEntropy(counts);
}

double MutualInformation(const CodedColumn& x, const CodedColumn& y) {
  const double mi = Entropy(x) + Entropy(y) - JointEntropy(x, y);
  return std::max(0.0, mi);
}

double ConditionalMutualInformation(const CodedColumn& x, const CodedColumn& y,
                                    const CodedColumn& z) {
  // I(X;Y|Z) = H(X,Z) + H(Y,Z) - H(X,Y,Z) - H(Z).
  // Build the (X,Y) pair column to reuse JointEntropy for the triple.
  CodedColumn xy;
  xy.codes.resize(x.codes.size());
  const int cy = std::max(1, y.cardinality);
  for (size_t r = 0; r < x.codes.size(); ++r) {
    xy.codes[r] = x.codes[r] * cy + y.codes[r];
  }
  xy.cardinality = std::max(1, x.cardinality) * cy;
  const double cmi = JointEntropy(x, z) + JointEntropy(y, z) - JointEntropy(xy, z) - Entropy(z);
  return std::max(0.0, cmi);
}

std::vector<std::vector<double>> JointDistribution(const CodedColumn& x, const CodedColumn& y) {
  const size_t cx = static_cast<size_t>(std::max(1, x.cardinality));
  const size_t cy = static_cast<size_t>(std::max(1, y.cardinality));
  std::vector<std::vector<double>> p(cx, std::vector<double>(cy, 0.0));
  if (x.codes.empty()) {
    return p;
  }
  const double inv = 1.0 / static_cast<double>(x.codes.size());
  for (size_t r = 0; r < x.codes.size(); ++r) {
    p[static_cast<size_t>(x.codes[r])][static_cast<size_t>(y.codes[r])] += inv;
  }
  return p;
}

double GreedyMinimumEntropyCoupling(const std::vector<std::vector<double>>& marginals) {
  if (marginals.empty()) {
    return 0.0;
  }
  std::vector<std::vector<double>> rows = marginals;
  std::vector<double> atoms;
  constexpr double kEps = 1e-12;
  // Greedily peel off the largest mass simultaneously available in every
  // marginal. Each peeled atom becomes one outcome of the coupling variable.
  while (true) {
    double peel = std::numeric_limits<double>::infinity();
    std::vector<size_t> argmax(rows.size());
    bool exhausted = false;
    for (size_t i = 0; i < rows.size(); ++i) {
      size_t best = 0;
      double best_mass = -1.0;
      for (size_t j = 0; j < rows[i].size(); ++j) {
        if (rows[i][j] > best_mass) {
          best_mass = rows[i][j];
          best = j;
        }
      }
      if (best_mass <= kEps) {
        exhausted = true;
        break;
      }
      argmax[i] = best;
      peel = std::min(peel, best_mass);
    }
    if (exhausted || peel <= kEps) {
      break;
    }
    atoms.push_back(peel);
    for (size_t i = 0; i < rows.size(); ++i) {
      rows[i][argmax[i]] -= peel;
    }
  }
  return DistributionEntropy(atoms);
}

}  // namespace unicorn
