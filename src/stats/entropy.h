// Entropy, mutual information, and minimum-entropy coupling on coded data.
//
// These are the information-theoretic primitives behind (a) the G-test of
// conditional independence used while pruning the causal skeleton and (b) the
// entropic edge-orientation step (Kocaoglu et al.) that resolves the circle
// marks FCI leaves behind.
#ifndef UNICORN_STATS_ENTROPY_H_
#define UNICORN_STATS_ENTROPY_H_

#include <vector>

#include "stats/discretize.h"

namespace unicorn {

// Shannon entropy (nats) of a distribution given as non-negative weights
// (normalized internally; zero entries ignored).
double DistributionEntropy(const std::vector<double>& weights);

// Same value when `total` equals the sum of the positive weights. Exists for
// callers that know the sum exactly without a pass — contingency counts are
// exact integers summing to the row count, so floating-point summation order
// cannot change the total and the result is bit-identical to
// DistributionEntropy(weights).
double DistributionEntropyWithTotal(const std::vector<double>& weights, double total);

// Empirical entropy (nats) of a coded column.
double Entropy(const CodedColumn& x);

// Empirical joint entropy H(X, Y).
double JointEntropy(const CodedColumn& x, const CodedColumn& y);

// Empirical mutual information I(X; Y) >= 0.
double MutualInformation(const CodedColumn& x, const CodedColumn& y);

// Empirical conditional mutual information I(X; Y | Z) >= 0.
double ConditionalMutualInformation(const CodedColumn& x, const CodedColumn& y,
                                    const CodedColumn& z);

// Empirical joint distribution p(x, y) as a matrix [card_x][card_y].
std::vector<std::vector<double>> JointDistribution(const CodedColumn& x, const CodedColumn& y);

// Greedy minimum-entropy coupling (Kocaoglu et al., AAAI'17).
//
// Given m marginal distributions (rows of `marginals`, each summing to ~1),
// greedily constructs a joint distribution whose marginals match and whose
// entropy is (approximately) minimal; returns the entropy of that coupling.
// Used to score candidate causal directions: for X -> Y the exogenous noise E
// must couple the conditionals {P(Y | X = x)}, so H(E) is approximated by the
// minimum-entropy coupling of those conditionals.
double GreedyMinimumEntropyCoupling(const std::vector<std::vector<double>>& marginals);

}  // namespace unicorn

#endif  // UNICORN_STATS_ENTROPY_H_
