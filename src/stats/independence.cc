#include "stats/independence.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/correlation.h"
#include "stats/entropy.h"
#include "stats/linalg.h"
#include "stats/special.h"
#include "util/thread_pool.h"

namespace unicorn {
namespace {

// Packed-code cap: codes above this don't fit uint16_t, so the column keeps
// only its int codes and the fused kernel reads those instead.
constexpr int kMaxPackedCode = 0xFFFF;

// Scratch cap for the fused contingency kernel: contingency cubes beyond
// this many cells (8 MiB of doubles) fall back to the unfused reference
// path, which allocates per call but never materializes the full cube
// marginals at once.
constexpr size_t kMaxFusedCells = size_t{1} << 20;

std::vector<uint16_t> PackCodes(const CodedColumn& col) {
  if (col.cardinality > kMaxPackedCode) {
    return {};
  }
  std::vector<uint16_t> packed(col.codes.size());
  for (size_t i = 0; i < col.codes.size(); ++i) {
    packed[i] = static_cast<uint16_t>(col.codes[i]);
  }
  return packed;
}

// Single pass over the rows filling the (x, y, z) contingency cube. The cube
// entries are exact small integers in doubles, so the count order does not
// matter for bit-identity.
template <typename XT, typename YT, typename ZT>
void CountTriples(const XT* x, const YT* y, const ZT* z, size_t n, size_t cy, size_t cz,
                  double* counts) {
  for (size_t r = 0; r < n; ++r) {
    counts[(static_cast<size_t>(x[r]) * cy + static_cast<size_t>(y[r])) * cz +
           static_cast<size_t>(z[r])] += 1.0;
  }
}

}  // namespace

// --- CITest -----------------------------------------------------------------

int CITest::FirstIndependent(const BatchedCIRequest& req, double* p_out) const {
  const auto& sets = *req.sets;
  for (size_t i = 0; i < sets.size(); ++i) {
    const double p = PValue(req.x, req.y, sets[i]);
    if (p >= req.alpha) {
      if (p_out != nullptr) {
        *p_out = p;
      }
      return static_cast<int>(i);
    }
  }
  return -1;
}

void CITest::SpeculateFirstIndependent(const BatchedCIRequest& req,
                                       const PendingPValues* overlay,
                                       CISpeculation* out) const {
  // Uncached base path: every examined set is an inner evaluation, which
  // advances `calls` immediately (PValue owns that counter). Adoption is
  // therefore a no-op and discard rolls the advances back; the overlay is
  // irrelevant because an uncached serial run re-evaluates every set too.
  (void)overlay;
  *out = CISpeculation{};  // a reused speculation must not accumulate
  const auto& sets = *req.sets;
  for (size_t i = 0; i < sets.size(); ++i) {
    ++out->examined;
    ++out->inner_evals;
    const double p = PValue(req.x, req.y, sets[i]);
    if (p >= req.alpha) {
      out->first_independent = static_cast<int>(i);
      out->p = p;
      return;
    }
  }
}

void CITest::AdoptSpeculation(const CISpeculation& spec, const BatchedCIRequest& req) const {
  (void)spec;
  (void)req;  // counters already advanced during the speculative evaluation
}

void CITest::DiscardSpeculation(const CISpeculation& spec) const {
  calls.fetch_sub(spec.inner_evals, std::memory_order_relaxed);
}

void CITest::AppendPendingOverlay(const CISpeculation& spec, const BatchedCIRequest& req,
                                  PendingPValues* overlay) const {
  (void)spec;
  (void)req;
  (void)overlay;  // no cache, no cross-sweep visibility
}

// --- FisherZTest ------------------------------------------------------------

FisherZTest::FisherZTest(const DataTable& table, ThreadPool* pool) { Update(table, pool); }

void FisherZTest::Update(const DataTable& table, ThreadPool* pool) {
  std::lock_guard<std::mutex> lock(mu_);
  n_ = table.NumRows();
  num_vars_ = table.NumVars();
  stride_ = simd::PaddedStride(n_);
  // Work on mid-ranks (Spearman-style): performance data has heavy-tailed
  // objectives (fault cliffs) and monotone nonlinearities (saturation), both
  // of which break plain Pearson correlations but leave ranks intact.
  if (centered_.size() != num_vars_ * stride_) {
    centered_.resize(num_vars_ * stride_);
  }
  norm_.assign(num_vars_, 0.0);
  // Columns are independent (disjoint SoA slots, one norm each), so the
  // O(n log n) ranking parallelizes without changing a single bit. Each
  // worker writes its whole column including the zero pad, so on a fresh
  // buffer the pages of a column block are first-touched by a sweep thread —
  // the placement the blocked correlation dot later streams from.
  const auto rank_column = [&](size_t v) {
    std::vector<double> ranks = MidRanks(table.Col(v));
    double mean = 0.0;
    for (double r : ranks) {
      mean += r;
    }
    mean = ranks.empty() ? 0.0 : mean / static_cast<double>(ranks.size());
    double ss = 0.0;
    double* col = &centered_[v * stride_];
    for (size_t i = 0; i < ranks.size(); ++i) {
      const double c = ranks[i] - mean;
      col[i] = c;
      ss += c * c;
    }
    for (size_t i = ranks.size(); i < stride_; ++i) {
      col[i] = 0.0;  // pad tail: DotBlocked streams the full stride
    }
    norm_[v] = std::sqrt(ss);
  };
  if (pool != nullptr && num_vars_ > 1) {
    pool->ParallelFor(num_vars_, rank_column);
  } else {
    for (size_t v = 0; v < num_vars_; ++v) {
      rank_column(v);
    }
  }
  corr_.assign(num_vars_ * num_vars_, std::numeric_limits<double>::quiet_NaN());
}

double FisherZTest::Correlation(size_t a, size_t b) const {
  if (a == b) {
    return 1.0;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    const double memo = corr_[a * num_vars_ + b];
    if (!std::isnan(memo)) {
      return memo;
    }
  }
  // Compute outside the lock so parallel sweep workers do not serialize on
  // the O(n) dot product; concurrent misses compute the same deterministic
  // value and both stores are identical (same policy as the CI cache).
  double r = 0.0;
  if (n_ >= 2 && norm_[a] > 0.0 && norm_[b] > 0.0) {
    const double* ca = &centered_[a * stride_];
    const double* cb = &centered_[b * stride_];
    double dot;
    if (simd::UseReferenceKernels()) {
      dot = 0.0;
      for (size_t i = 0; i < n_; ++i) {
        dot += ca[i] * cb[i];
      }
    } else {
      dot = simd::DotBlocked(ca, cb, n_);
    }
    r = dot / (norm_[a] * norm_[b]);
    r = std::max(-1.0, std::min(1.0, r));
  }
  std::lock_guard<std::mutex> lock(mu_);
  corr_[a * num_vars_ + b] = r;
  corr_[b * num_vars_ + a] = r;
  return r;
}

double FisherZTest::PartialCorrelation(int x, int y, const std::vector<int>& s) const {
  if (s.empty()) {
    return Correlation(static_cast<size_t>(x), static_cast<size_t>(y));
  }
  // Partial correlation via regression residuals in correlation space:
  // solve Css * bx = Csx and Css * by = Csy, then
  // r = (Cxy - bx'Csy) / sqrt((1 - bx'Csx)(1 - by'Csy)).
  const size_t k = s.size();
  std::vector<std::vector<double>> css(k, std::vector<double>(k));
  std::vector<double> csx(k);
  std::vector<double> csy(k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      css[i][j] = Correlation(static_cast<size_t>(s[i]), static_cast<size_t>(s[j]));
    }
    // Tiny ridge keeps near-duplicate conditioning variables solvable.
    css[i][i] += 1e-9;
    csx[i] = Correlation(static_cast<size_t>(s[i]), static_cast<size_t>(x));
    csy[i] = Correlation(static_cast<size_t>(s[i]), static_cast<size_t>(y));
  }
  std::vector<double> bx;
  std::vector<double> by;
  if (!SolveLinearSystem(css, csx, &bx) || !SolveLinearSystem(css, csy, &by)) {
    return 0.0;
  }
  double num = Correlation(static_cast<size_t>(x), static_cast<size_t>(y));
  double dx = 1.0;
  double dy = 1.0;
  for (size_t i = 0; i < k; ++i) {
    num -= bx[i] * csy[i];
    dx -= bx[i] * csx[i];
    dy -= by[i] * csy[i];
  }
  if (dx <= 1e-12 || dy <= 1e-12) {
    return 0.0;
  }
  double r = num / std::sqrt(dx * dy);
  if (r > 1.0) {
    r = 1.0;
  }
  if (r < -1.0) {
    r = -1.0;
  }
  return r;
}

double FisherZTest::PValue(int x, int y, const std::vector<int>& s) const {
  ++calls;
  const double dof = static_cast<double>(n_) - static_cast<double>(s.size()) - 3.0;
  if (dof <= 0.0) {
    return 1.0;
  }
  const double r = PartialCorrelation(x, y, s);
  if (std::fabs(r) >= 1.0 - 1e-12) {
    return 0.0;
  }
  const double z = std::sqrt(dof) * 0.5 * std::log((1.0 + r) / (1.0 - r));
  return NormalTwoSidedPValue(z);
}

// --- GSquareTest ------------------------------------------------------------

GSquareTest::GSquareTest(const DataTable& table, int max_bins)
    : table_(&table), max_bins_(max_bins), rows_(table.NumRows()), coded_(table.NumVars()) {}

GSquareTest::ColumnState GSquareTest::BuildColumnState(size_t v) const {
  const std::vector<double>& col = table_->Col(v);
  ColumnState state;
  if (col.size() == rows_) {
    state.coded = DiscretizeColumn(col, table_->Var(v).type, max_bins_, &state.coding);
  } else {
    // Rows appended after the snapshot are ignored until Update().
    const std::vector<double> prefix(col.begin(), col.begin() + rows_);
    state.coded = DiscretizeColumn(prefix, table_->Var(v).type, max_bins_, &state.coding);
  }
  state.packed = PackCodes(state.coded);
  return state;
}

bool GSquareTest::TryExtendColumn(size_t v, ColumnState* state, size_t old_rows) const {
  if (!state->coding.direct) {
    return false;  // quantile bins shift with the data; must recode
  }
  const std::vector<double>& col = table_->Col(v);
  auto& codes = state->coded.codes;
  const bool pack = !state->packed.empty();
  for (size_t r = old_rows; r < rows_; ++r) {
    const auto it = state->coding.levels.find(col[r]);
    if (it == state->coding.levels.end()) {
      // New level: codes are assigned in sorted-value order, so the whole
      // column renumbers. Roll back and let the caller recode.
      codes.resize(old_rows);
      if (pack) {
        state->packed.resize(old_rows);
      }
      return false;
    }
    codes.push_back(it->second);
    if (pack) {
      state->packed.push_back(static_cast<uint16_t>(it->second));
    }
  }
  return true;
}

void GSquareTest::Update(const DataTable& table) {
  std::lock_guard<std::mutex> coded_lock(coded_mu_);
  std::lock_guard<std::mutex> strata_lock(strata_mu_);
  const size_t old_rows = rows_;
  // Incremental extension is sound only for the append-only case: the same
  // table object with at least as many rows (the engine's usage). Reference
  // mode always rebuilds so the legacy arithmetic is reproduced from cold.
  const bool incremental = !simd::UseReferenceKernels() && &table == table_ &&
                           table.NumRows() >= old_rows && table.NumVars() == coded_.size();
  table_ = &table;
  rows_ = table.NumRows();
  if (!incremental) {
    coded_.clear();
    coded_.resize(table.NumVars());
    strata_.clear();
    ++epoch_counter_;  // conservatively invalidate any strata built later
    return;
  }
  if (rows_ == old_rows) {
    return;
  }
  // Extend (or recode) every materialized column for the appended rows.
  for (size_t v = 0; v < coded_.size(); ++v) {
    ColumnState* state = coded_[v].get();
    if (state == nullptr) {
      continue;  // never touched; first use codes the full prefix lazily
    }
    if (!TryExtendColumn(v, state, old_rows)) {
      *state = BuildColumnState(v);
      state->epoch = ++epoch_counter_;
    }
  }
  // Extend strata whose member columns kept their coding; drop the rest.
  // Dense stratum ids are assigned by first appearance in row order, which
  // appending preserves, so extended ids match a cold CombineStrata.
  for (auto it = strata_.begin(); it != strata_.end();) {
    const std::vector<int>& key = it->first;
    StratumState& st = it->second;
    bool extendable = true;
    for (size_t i = 0; i < key.size(); ++i) {
      const ColumnState* member = coded_[static_cast<size_t>(key[i])].get();
      if (member == nullptr || member->epoch != st.member_epochs[i]) {
        extendable = false;
        break;
      }
    }
    if (!extendable) {
      it = strata_.erase(it);
      continue;
    }
    if (key.empty()) {
      st.coded.codes.resize(rows_, 0);
      st.coded.cardinality = rows_ == 0 ? 0 : 1;
      st.packed.resize(rows_, 0);
      ++it;
      continue;
    }
    bool pack = !st.packed.empty();
    for (size_t r = old_rows; r < rows_; ++r) {
      long long radix = 0;
      for (int v : key) {
        const CodedColumn& member = coded_[static_cast<size_t>(v)]->coded;
        radix = radix * std::max(1, member.cardinality) + member.codes[r];
      }
      const auto [dit, inserted] =
          st.dense.emplace(radix, static_cast<int>(st.dense.size()));
      st.coded.codes.push_back(dit->second);
      if (pack) {
        if (dit->second <= kMaxPackedCode) {
          st.packed.push_back(static_cast<uint16_t>(dit->second));
        } else {
          pack = false;
          st.packed.clear();
        }
      }
    }
    st.coded.cardinality = static_cast<int>(st.dense.size());
    ++it;
  }
}

const GSquareTest::ColumnState& GSquareTest::Coded(size_t v) const {
  {
    std::lock_guard<std::mutex> lock(coded_mu_);
    if (coded_[v] != nullptr) {
      return *coded_[v];
    }
  }
  // Discretize outside the lock so sweep workers do not serialize on the
  // O(n log n) coding; concurrent misses produce identical columns and the
  // first store wins (same policy as the CI cache).
  auto fresh = std::make_unique<ColumnState>(BuildColumnState(v));
  std::lock_guard<std::mutex> lock(coded_mu_);
  if (coded_[v] == nullptr) {
    fresh->epoch = ++epoch_counter_;
    coded_[v] = std::move(fresh);
  }
  return *coded_[v];
}

const GSquareTest::StratumState& GSquareTest::Strata(const std::vector<int>& s) const {
  std::vector<int> key = s;
  std::sort(key.begin(), key.end());
  {
    std::lock_guard<std::mutex> lock(strata_mu_);
    auto it = strata_.find(key);
    if (it != strata_.end()) {
      return it->second;
    }
  }
  // Materialize the member columns outside the strata lock (Coded takes its
  // own lock), then combine their codes into dense stratum ids. Member
  // epochs only move inside Update, never concurrently with a sweep, so
  // capturing them here is race-free.
  std::vector<const CodedColumn*> cols;
  StratumState fresh;
  cols.reserve(key.size());
  fresh.member_epochs.reserve(key.size());
  for (int v : key) {
    const ColumnState& member = Coded(static_cast<size_t>(v));
    cols.push_back(&member.coded);
    fresh.member_epochs.push_back(member.epoch);
  }
  fresh.coded = CombineStrata(cols, rows_, &fresh.dense);
  fresh.packed = PackCodes(fresh.coded);
  std::lock_guard<std::mutex> lock(strata_mu_);
  // Another worker may have inserted the same key meanwhile; emplace keeps
  // the first copy and both are identical.
  return strata_.emplace(std::move(key), std::move(fresh)).first->second;
}

double GSquareTest::PValueFrom(const ColumnState& sx, const ColumnState& sy,
                               const StratumState& sz) const {
  const size_t n = rows_;  // snapshot, see class comment
  const CodedColumn& cx = sx.coded;
  const CodedColumn& cy = sy.coded;
  const CodedColumn& cz = sz.coded;
  if (!simd::UseReferenceKernels()) {
    const size_t cxc = static_cast<size_t>(std::max(1, cx.cardinality));
    const size_t cyc = static_cast<size_t>(std::max(1, cy.cardinality));
    const size_t czc = static_cast<size_t>(std::max(1, cz.cardinality));
    if (cyc <= kMaxFusedCells / czc && cxc <= kMaxFusedCells / (cyc * czc)) {
      // Fused path: one pass over the rows fills the full contingency cube;
      // the three entropies' marginals are derived from the cube. Every
      // count is an exact integer (sums of disjoint cells stay exact), and
      // DistributionEntropy consumes vectors laid out exactly as the
      // unfused JointEntropy/Entropy path builds them, so the result is
      // bit-identical to the reference arithmetic.
      thread_local std::vector<double> counts, xz, yz, zc;
      counts.assign(cxc * cyc * czc, 0.0);
      if (!sx.packed.empty() && !sy.packed.empty() && !sz.packed.empty()) {
        CountTriples(sx.packed.data(), sy.packed.data(), sz.packed.data(), n, cyc, czc,
                     counts.data());
      } else {
        CountTriples(cx.codes.data(), cy.codes.data(), cz.codes.data(), n, cyc, czc,
                     counts.data());
      }
      xz.assign(cxc * czc, 0.0);
      yz.assign(cyc * czc, 0.0);
      zc.assign(czc, 0.0);
      for (size_t x = 0; x < cxc; ++x) {
        for (size_t y = 0; y < cyc; ++y) {
          const double* cell = &counts[(x * cyc + y) * czc];
          double* xrow = &xz[x * czc];
          double* yrow = &yz[y * czc];
          UNICORN_SIMD_LOOP
          for (size_t z = 0; z < czc; ++z) {
            xrow[z] += cell[z];
            yrow[z] += cell[z];
          }
        }
        const double* xrow = &xz[x * czc];
        UNICORN_SIMD_LOOP
        for (size_t z = 0; z < czc; ++z) {
          zc[z] += xrow[z];
        }
      }
      // Every row lands in exactly one cube cell, so each vector's positive
      // entries sum to exactly n (integer counts add exactly in doubles);
      // passing the total skips one full scan per entropy, bit-identically.
      const double total = static_cast<double>(n);
      const double hxz = DistributionEntropyWithTotal(xz, total);
      const double hyz = DistributionEntropyWithTotal(yz, total);
      const double hxyz = DistributionEntropyWithTotal(counts, total);
      const double hz = DistributionEntropyWithTotal(zc, total);
      const double cmi = std::max(0.0, hxz + hyz - hxyz - hz);
      const double g = 2.0 * static_cast<double>(n) * cmi;
      const double dof = std::max(
          1.0, (cx.cardinality - 1.0) * (cy.cardinality - 1.0) * std::max(1, cz.cardinality));
      return ChiSquareSurvival(g, dof);
    }
  }
  const double cmi = ConditionalMutualInformation(cx, cy, cz);
  const double g = 2.0 * static_cast<double>(n) * cmi;
  const double dof = std::max(
      1.0, (cx.cardinality - 1.0) * (cy.cardinality - 1.0) * std::max(1, cz.cardinality));
  return ChiSquareSurvival(g, dof);
}

double GSquareTest::PValue(int x, int y, const std::vector<int>& s) const {
  ++calls;
  if (rows_ == 0) {
    return 1.0;
  }
  const ColumnState& sx = Coded(static_cast<size_t>(x));
  const ColumnState& sy = Coded(static_cast<size_t>(y));
  const StratumState& sz = Strata(s);
  return PValueFrom(sx, sy, sz);
}

int GSquareTest::FirstIndependent(const BatchedCIRequest& req, double* p_out) const {
  const auto& sets = *req.sets;
  if (rows_ == 0) {
    for (size_t i = 0; i < sets.size(); ++i) {
      ++calls;
      if (1.0 >= req.alpha) {
        if (p_out != nullptr) {
          *p_out = 1.0;
        }
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  if (sets.empty()) {
    return -1;
  }
  // One coded-column fetch for the whole level.
  const ColumnState& sx = Coded(static_cast<size_t>(req.x));
  const ColumnState& sy = Coded(static_cast<size_t>(req.y));
  for (size_t i = 0; i < sets.size(); ++i) {
    ++calls;
    const StratumState& sz = Strata(sets[i]);
    const double p = PValueFrom(sx, sy, sz);
    if (p >= req.alpha) {
      if (p_out != nullptr) {
        *p_out = p;
      }
      return static_cast<int>(i);
    }
  }
  return -1;
}

// --- CompositeTest ----------------------------------------------------------

CompositeTest::CompositeTest(const DataTable& table, int max_bins, ThreadPool* pool)
    : fisher_(table, pool), gsq_(table, max_bins) {
  types_.reserve(table.NumVars());
  for (size_t v = 0; v < table.NumVars(); ++v) {
    types_.push_back(table.Var(v).type);
  }
}

void CompositeTest::Update(const DataTable& table, ThreadPool* pool) {
  fisher_.Update(table, pool);
  gsq_.Update(table);
}

double CompositeTest::PValue(int x, int y, const std::vector<int>& s) const {
  ++calls;
  const bool continuous_pair = types_[static_cast<size_t>(x)] == VarType::kContinuous &&
                               types_[static_cast<size_t>(y)] == VarType::kContinuous;
  if (continuous_pair) {
    return fisher_.PValue(x, y, s);
  }
  return gsq_.PValue(x, y, s);
}

int CompositeTest::FirstIndependent(const BatchedCIRequest& req, double* p_out) const {
  const bool continuous_pair = types_[static_cast<size_t>(req.x)] == VarType::kContinuous &&
                               types_[static_cast<size_t>(req.y)] == VarType::kContinuous;
  const int idx = continuous_pair ? fisher_.FirstIndependent(req, p_out)
                                  : gsq_.FirstIndependent(req, p_out);
  // Serial equivalence: the dispatcher's counter advances once per examined
  // set, exactly as per-set PValue dispatch would.
  calls += idx >= 0 ? idx + 1 : static_cast<long long>(req.sets->size());
  return idx;
}

}  // namespace unicorn
