#include "stats/independence.h"

#include <cmath>

#include "stats/correlation.h"
#include "stats/entropy.h"
#include "stats/linalg.h"
#include "stats/special.h"

namespace unicorn {
namespace {

// Pearson correlation between two columns.
double Pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size();
  if (n < 2) {
    return 0.0;
  }
  double ma = 0.0;
  double mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double saa = 0.0;
  double sbb = 0.0;
  double sab = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) {
    return 0.0;
  }
  return sab / std::sqrt(saa * sbb);
}

}  // namespace

FisherZTest::FisherZTest(const DataTable& table) : n_(table.NumRows()) {
  // Work on mid-ranks (Spearman-style): performance data has heavy-tailed
  // objectives (fault cliffs) and monotone nonlinearities (saturation), both
  // of which break plain Pearson correlations but leave ranks intact.
  std::vector<std::vector<double>> ranked(table.NumVars());
  for (size_t i = 0; i < table.NumVars(); ++i) {
    ranked[i] = MidRanks(table.Col(i));
  }
  const size_t v = table.NumVars();
  corr_.assign(v, std::vector<double>(v, 0.0));
  for (size_t i = 0; i < v; ++i) {
    corr_[i][i] = 1.0;
    for (size_t j = i + 1; j < v; ++j) {
      const double r = Pearson(ranked[i], ranked[j]);
      corr_[i][j] = r;
      corr_[j][i] = r;
    }
  }
}

double FisherZTest::PartialCorrelation(int x, int y, const std::vector<int>& s) const {
  if (s.empty()) {
    return corr_[static_cast<size_t>(x)][static_cast<size_t>(y)];
  }
  // Partial correlation via regression residuals in correlation space:
  // solve Css * bx = Csx and Css * by = Csy, then
  // r = (Cxy - bx'Csy) / sqrt((1 - bx'Csx)(1 - by'Csy)).
  const size_t k = s.size();
  std::vector<std::vector<double>> css(k, std::vector<double>(k));
  std::vector<double> csx(k);
  std::vector<double> csy(k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      css[i][j] = corr_[static_cast<size_t>(s[i])][static_cast<size_t>(s[j])];
    }
    // Tiny ridge keeps near-duplicate conditioning variables solvable.
    css[i][i] += 1e-9;
    csx[i] = corr_[static_cast<size_t>(s[i])][static_cast<size_t>(x)];
    csy[i] = corr_[static_cast<size_t>(s[i])][static_cast<size_t>(y)];
  }
  std::vector<double> bx;
  std::vector<double> by;
  if (!SolveLinearSystem(css, csx, &bx) || !SolveLinearSystem(css, csy, &by)) {
    return 0.0;
  }
  double num = corr_[static_cast<size_t>(x)][static_cast<size_t>(y)];
  double dx = 1.0;
  double dy = 1.0;
  for (size_t i = 0; i < k; ++i) {
    num -= bx[i] * csy[i];
    dx -= bx[i] * csx[i];
    dy -= by[i] * csy[i];
  }
  if (dx <= 1e-12 || dy <= 1e-12) {
    return 0.0;
  }
  double r = num / std::sqrt(dx * dy);
  if (r > 1.0) {
    r = 1.0;
  }
  if (r < -1.0) {
    r = -1.0;
  }
  return r;
}

double FisherZTest::PValue(int x, int y, const std::vector<int>& s) const {
  ++calls;
  const double dof = static_cast<double>(n_) - static_cast<double>(s.size()) - 3.0;
  if (dof <= 0.0) {
    return 1.0;
  }
  const double r = PartialCorrelation(x, y, s);
  if (std::fabs(r) >= 1.0 - 1e-12) {
    return 0.0;
  }
  const double z = std::sqrt(dof) * 0.5 * std::log((1.0 + r) / (1.0 - r));
  return NormalTwoSidedPValue(z);
}

GSquareTest::GSquareTest(const DataTable& table, int max_bins) : coded_(table, max_bins) {}

double GSquareTest::PValue(int x, int y, const std::vector<int>& s) const {
  ++calls;
  const size_t n = coded_.NumRows();
  if (n == 0) {
    return 1.0;
  }
  const CodedColumn& cx = coded_.Col(static_cast<size_t>(x));
  const CodedColumn& cy = coded_.Col(static_cast<size_t>(y));
  const CodedColumn cz = coded_.Strata(s);
  const double cmi = ConditionalMutualInformation(cx, cy, cz);
  const double g = 2.0 * static_cast<double>(n) * cmi;
  const double dof = std::max(
      1.0, (cx.cardinality - 1.0) * (cy.cardinality - 1.0) * std::max(1, cz.cardinality));
  return ChiSquareSurvival(g, dof);
}

CompositeTest::CompositeTest(const DataTable& table, int max_bins)
    : fisher_(table), gsq_(table, max_bins) {
  types_.reserve(table.NumVars());
  for (size_t v = 0; v < table.NumVars(); ++v) {
    types_.push_back(table.Var(v).type);
  }
}

double CompositeTest::PValue(int x, int y, const std::vector<int>& s) const {
  ++calls;
  const bool continuous_pair = types_[static_cast<size_t>(x)] == VarType::kContinuous &&
                               types_[static_cast<size_t>(y)] == VarType::kContinuous;
  if (continuous_pair) {
    return fisher_.PValue(x, y, s);
  }
  return gsq_.PValue(x, y, s);
}

}  // namespace unicorn
