#include "stats/independence.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/correlation.h"
#include "stats/entropy.h"
#include "stats/linalg.h"
#include "stats/special.h"

namespace unicorn {

// --- FisherZTest ------------------------------------------------------------

FisherZTest::FisherZTest(const DataTable& table) { Update(table); }

void FisherZTest::Update(const DataTable& table) {
  std::lock_guard<std::mutex> lock(mu_);
  n_ = table.NumRows();
  num_vars_ = table.NumVars();
  // Work on mid-ranks (Spearman-style): performance data has heavy-tailed
  // objectives (fault cliffs) and monotone nonlinearities (saturation), both
  // of which break plain Pearson correlations but leave ranks intact.
  centered_.assign(num_vars_, {});
  norm_.assign(num_vars_, 0.0);
  for (size_t v = 0; v < num_vars_; ++v) {
    std::vector<double> ranks = MidRanks(table.Col(v));
    double mean = 0.0;
    for (double r : ranks) {
      mean += r;
    }
    mean = ranks.empty() ? 0.0 : mean / static_cast<double>(ranks.size());
    double ss = 0.0;
    for (double& r : ranks) {
      r -= mean;
      ss += r * r;
    }
    centered_[v] = std::move(ranks);
    norm_[v] = std::sqrt(ss);
  }
  corr_.assign(num_vars_ * num_vars_, std::numeric_limits<double>::quiet_NaN());
}

double FisherZTest::Correlation(size_t a, size_t b) const {
  if (a == b) {
    return 1.0;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    const double memo = corr_[a * num_vars_ + b];
    if (!std::isnan(memo)) {
      return memo;
    }
  }
  // Compute outside the lock so parallel sweep workers do not serialize on
  // the O(n) dot product; concurrent misses compute the same deterministic
  // value and both stores are identical (same policy as the CI cache).
  double r = 0.0;
  if (n_ >= 2 && norm_[a] > 0.0 && norm_[b] > 0.0) {
    const std::vector<double>& ca = centered_[a];
    const std::vector<double>& cb = centered_[b];
    double dot = 0.0;
    for (size_t i = 0; i < n_; ++i) {
      dot += ca[i] * cb[i];
    }
    r = dot / (norm_[a] * norm_[b]);
    r = std::max(-1.0, std::min(1.0, r));
  }
  std::lock_guard<std::mutex> lock(mu_);
  corr_[a * num_vars_ + b] = r;
  corr_[b * num_vars_ + a] = r;
  return r;
}

double FisherZTest::PartialCorrelation(int x, int y, const std::vector<int>& s) const {
  if (s.empty()) {
    return Correlation(static_cast<size_t>(x), static_cast<size_t>(y));
  }
  // Partial correlation via regression residuals in correlation space:
  // solve Css * bx = Csx and Css * by = Csy, then
  // r = (Cxy - bx'Csy) / sqrt((1 - bx'Csx)(1 - by'Csy)).
  const size_t k = s.size();
  std::vector<std::vector<double>> css(k, std::vector<double>(k));
  std::vector<double> csx(k);
  std::vector<double> csy(k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      css[i][j] = Correlation(static_cast<size_t>(s[i]), static_cast<size_t>(s[j]));
    }
    // Tiny ridge keeps near-duplicate conditioning variables solvable.
    css[i][i] += 1e-9;
    csx[i] = Correlation(static_cast<size_t>(s[i]), static_cast<size_t>(x));
    csy[i] = Correlation(static_cast<size_t>(s[i]), static_cast<size_t>(y));
  }
  std::vector<double> bx;
  std::vector<double> by;
  if (!SolveLinearSystem(css, csx, &bx) || !SolveLinearSystem(css, csy, &by)) {
    return 0.0;
  }
  double num = Correlation(static_cast<size_t>(x), static_cast<size_t>(y));
  double dx = 1.0;
  double dy = 1.0;
  for (size_t i = 0; i < k; ++i) {
    num -= bx[i] * csy[i];
    dx -= bx[i] * csx[i];
    dy -= by[i] * csy[i];
  }
  if (dx <= 1e-12 || dy <= 1e-12) {
    return 0.0;
  }
  double r = num / std::sqrt(dx * dy);
  if (r > 1.0) {
    r = 1.0;
  }
  if (r < -1.0) {
    r = -1.0;
  }
  return r;
}

double FisherZTest::PValue(int x, int y, const std::vector<int>& s) const {
  ++calls;
  const double dof = static_cast<double>(n_) - static_cast<double>(s.size()) - 3.0;
  if (dof <= 0.0) {
    return 1.0;
  }
  const double r = PartialCorrelation(x, y, s);
  if (std::fabs(r) >= 1.0 - 1e-12) {
    return 0.0;
  }
  const double z = std::sqrt(dof) * 0.5 * std::log((1.0 + r) / (1.0 - r));
  return NormalTwoSidedPValue(z);
}

// --- GSquareTest ------------------------------------------------------------

GSquareTest::GSquareTest(const DataTable& table, int max_bins)
    : table_(&table), max_bins_(max_bins), rows_(table.NumRows()), coded_(table.NumVars()) {}

void GSquareTest::Update(const DataTable& table) {
  std::lock_guard<std::mutex> coded_lock(coded_mu_);
  std::lock_guard<std::mutex> strata_lock(strata_mu_);
  table_ = &table;
  rows_ = table.NumRows();
  coded_.clear();
  coded_.resize(table.NumVars());
  strata_.clear();
}

const CodedColumn& GSquareTest::Coded(size_t v) const {
  {
    std::lock_guard<std::mutex> lock(coded_mu_);
    if (coded_[v] != nullptr) {
      return *coded_[v];
    }
  }
  // Discretize outside the lock so sweep workers do not serialize on the
  // O(n log n) coding; concurrent misses produce identical columns and the
  // first store wins (same policy as the CI cache).
  const std::vector<double>& col = table_->Col(v);
  std::unique_ptr<CodedColumn> fresh;
  if (col.size() == rows_) {
    fresh = std::make_unique<CodedColumn>(
        DiscretizeColumn(col, table_->Var(v).type, max_bins_));
  } else {
    // Rows appended after the snapshot are ignored until Update().
    const std::vector<double> prefix(col.begin(), col.begin() + rows_);
    fresh = std::make_unique<CodedColumn>(
        DiscretizeColumn(prefix, table_->Var(v).type, max_bins_));
  }
  std::lock_guard<std::mutex> lock(coded_mu_);
  if (coded_[v] == nullptr) {
    coded_[v] = std::move(fresh);
  }
  return *coded_[v];
}

const CodedColumn& GSquareTest::Strata(const std::vector<int>& s) const {
  std::vector<int> key = s;
  std::sort(key.begin(), key.end());
  {
    std::lock_guard<std::mutex> lock(strata_mu_);
    auto it = strata_.find(key);
    if (it != strata_.end()) {
      return it->second;
    }
  }
  // Materialize the member columns outside the strata lock (Coded takes its
  // own lock), then combine their codes into dense stratum ids.
  std::vector<const CodedColumn*> cols;
  cols.reserve(key.size());
  for (int v : key) {
    cols.push_back(&Coded(static_cast<size_t>(v)));
  }
  CodedColumn combined = CombineStrata(cols, rows_);
  std::lock_guard<std::mutex> lock(strata_mu_);
  // Another worker may have inserted the same key meanwhile; emplace keeps
  // the first copy and both are identical.
  return strata_.emplace(std::move(key), std::move(combined)).first->second;
}

double GSquareTest::PValue(int x, int y, const std::vector<int>& s) const {
  ++calls;
  const size_t n = rows_;  // snapshot, see class comment
  if (n == 0) {
    return 1.0;
  }
  const CodedColumn& cx = Coded(static_cast<size_t>(x));
  const CodedColumn& cy = Coded(static_cast<size_t>(y));
  const CodedColumn& cz = Strata(s);
  const double cmi = ConditionalMutualInformation(cx, cy, cz);
  const double g = 2.0 * static_cast<double>(n) * cmi;
  const double dof = std::max(
      1.0, (cx.cardinality - 1.0) * (cy.cardinality - 1.0) * std::max(1, cz.cardinality));
  return ChiSquareSurvival(g, dof);
}

// --- CompositeTest ----------------------------------------------------------

CompositeTest::CompositeTest(const DataTable& table, int max_bins)
    : fisher_(table), gsq_(table, max_bins) {
  types_.reserve(table.NumVars());
  for (size_t v = 0; v < table.NumVars(); ++v) {
    types_.push_back(table.Var(v).type);
  }
}

void CompositeTest::Update(const DataTable& table) {
  fisher_.Update(table);
  gsq_.Update(table);
}

double CompositeTest::PValue(int x, int y, const std::vector<int>& s) const {
  ++calls;
  const bool continuous_pair = types_[static_cast<size_t>(x)] == VarType::kContinuous &&
                               types_[static_cast<size_t>(y)] == VarType::kContinuous;
  if (continuous_pair) {
    return fisher_.PValue(x, y, s);
  }
  return gsq_.PValue(x, y, s);
}

}  // namespace unicorn
