// Conditional-independence tests.
//
// The constraint-based causal discovery in src/causal consumes an abstract
// CITest so that the skeleton search is agnostic to variable types. Two tests
// are provided, mirroring the paper (§4 Stage II): Fisher's z on partial
// correlation for continuous variables and a G-test (2N * conditional mutual
// information, chi-square calibrated) for discrete/mixed variables. The
// composite test dispatches per variable pair.
//
// Both tests are *updatable*: `Update(table)` refreshes the internal
// statistics after rows were appended without rebuilding eagerly. Derived
// quantities (rank correlations, coded columns, conditioning strata) are
// computed lazily per pair / per conditioning set and memoized, so a sparse
// warm-started skeleton search touching few pairs pays only for those pairs.
// All tests are safe to call concurrently from the parallel skeleton sweep.
//
// Kernel layers (see stats/simd.h): FisherZTest stores its centered
// mid-ranks as one aligned SoA block and reduces with the blocked dot;
// GSquareTest keeps packed 16-bit codes next to the int codes and computes
// the G statistic in a fused single-pass contingency kernel whose entropy
// sums replicate the unfused reference arithmetic exactly (counts are exact
// small integers), so its p-values are bit-identical to the legacy path.
// simd::SetReferenceKernels(true) routes every test through the legacy
// scalar arithmetic for equivalence pinning.
#ifndef UNICORN_STATS_INDEPENDENCE_H_
#define UNICORN_STATS_INDEPENDENCE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "stats/discretize.h"
#include "stats/simd.h"
#include "stats/table.h"

namespace unicorn {

class ThreadPool;

// One batched CI query: all conditioning sets the search wants to try for a
// single (x, y) pair at one level, in the order it would have tried them
// serially. Lets a test amortize per-pair setup (coded-column lookups, cache
// key construction) across the whole level instead of paying it per set.
struct BatchedCIRequest {
  int x = 0;
  int y = 0;
  const std::vector<std::vector<int>>* sets = nullptr;  // examined in order
  double alpha = 0.05;
};

// Sorted-conditioning-set -> p-value overlay used when two speculative sweeps
// of the *same* pair run back to back in one worker task: the second sweep
// must see the first sweep's pending cache stores to reproduce the serial
// hit accounting. Only ever spans one (x, y) pair on one table snapshot, so
// the conditioning set alone identifies the entry.
using PendingPValues = std::map<std::vector<int>, double>;

// Result of a speculative FirstIndependent sweep (see
// CITest::SpeculateFirstIndependent): everything the sweep *would* have done
// to observable state, recorded instead of applied. A deterministic merge
// thread later replays it (AdoptSpeculation) when the sweep's inputs were
// validated against the live search state, or rolls back the side effects
// that could not be deferred (DiscardSpeculation) — inner evaluations mutate
// shared memoized state and counters as they run.
struct CISpeculation {
  int first_independent = -1;  // index of the first independent set, or -1
  double p = 0.0;              // its p-value (valid when first_independent >= 0)
  long long examined = 0;      // sets visited, early exit included
  long long inner_evals = 0;   // PValue evaluations actually performed
  long long lookups = 0;       // cache probes issued (cacheable sets only)
  long long hits = 0;          // probes served from cache / overlay
  long long cross_shard_hits = 0;
  // Pending cache stores: (index into req.sets, p-value). Applied on adopt.
  std::vector<std::pair<size_t, double>> stores;
};

// Interface: p-value of the null hypothesis X ⊥ Y | S.
class CITest {
 public:
  virtual ~CITest() = default;

  virtual double PValue(int x, int y, const std::vector<int>& s) const = 0;

  bool Independent(int x, int y, const std::vector<int>& s, double alpha) const {
    return PValue(x, y, s) >= alpha;
  }

  // Batched form of the level-ℓ inner loop: examines req.sets in order and
  // returns the index of the first set with PValue >= req.alpha (writing the
  // p-value to *p_out when given), or -1 when none is independent. The
  // contract is exact serial equivalence: the same sets are evaluated in the
  // same order with the same early exit, and `calls` advances once per
  // examined set — overrides may only amortize setup work, never change
  // which tests run.
  virtual int FirstIndependent(const BatchedCIRequest& req, double* p_out = nullptr) const;

  // Speculative form of FirstIndependent for parallel search phases that
  // must stay bit-identical to their serial loop. The sweep runs on a worker
  // against a *snapshot* of the search state; instead of touching observable
  // counters or the CI cache it records what it did into *out. A merge
  // thread walking pairs in serial order then either adopts the speculation
  // (replaying counters and pending stores — valid only when the request it
  // validated equals the one speculated) or discards it (rolling back the
  // inner evaluations' counter advances; memoized intermediate state such as
  // coded columns or correlations may stay warm, it is value-deterministic).
  // The base implementation evaluates every set via PValue — advancing
  // `calls` as it goes — so adoption is a no-op and discard subtracts
  // `inner_evals`. Cached overrides defer everything.
  virtual void SpeculateFirstIndependent(const BatchedCIRequest& req,
                                         const PendingPValues* overlay,
                                         CISpeculation* out) const;
  virtual void AdoptSpeculation(const CISpeculation& spec, const BatchedCIRequest& req) const;
  virtual void DiscardSpeculation(const CISpeculation& spec) const;
  // Adds spec's pending stores to *overlay so a second sweep of the same
  // pair (other side) sees them exactly as a serial run would through the
  // cache. No-op for uncached tests, which have no cross-sweep visibility.
  virtual void AppendPendingOverlay(const CISpeculation& spec, const BatchedCIRequest& req,
                                    PendingPValues* overlay) const;
  // Phase barrier: publish any pending (buffered) cache writes so they
  // become visible to other shards / future phases. No-op for uncached
  // tests; CachedCITest drains its per-decorator write buffer.
  virtual void PublishPending() const {}

  // Number of tests issued so far (for scalability reporting). All discovery
  // code derives its test counts from this counter — never by hand — so the
  // numbers in the scalability tables cannot disagree.
  mutable std::atomic<long long> calls{0};
};

// Fisher z-test on partial correlations. Assumes roughly Gaussian margins;
// robust enough for monotone relationships, which is what the simulator and
// real performance data produce. Correlations are Spearman-style (Pearson on
// mid-ranks), computed lazily per pair and memoized.
//
// Storage is SoA: all centered mid-rank columns live in one 64-byte aligned
// block at a padded stride, so the correlation dot products stream two
// contiguous aligned columns. The blocked reduction's accumulation order
// differs from the legacy sequential loop in the low bits (documented ≤ a
// few ulps on the correlation); simd::SetReferenceKernels(true) restores the
// sequential order exactly.
class FisherZTest : public CITest {
 public:
  explicit FisherZTest(const DataTable& table, ThreadPool* pool = nullptr);

  // Refreshes ranks after the table grew (or changed); drops the memo.
  // When a pool is given the per-column ranking runs in parallel and each
  // worker writes (first-touches) the SoA column block it ranks, placing
  // pages near the thread that will stream them in the sweep.
  void Update(const DataTable& table, ThreadPool* pool = nullptr);

  double PValue(int x, int y, const std::vector<int>& s) const override;

  // Partial correlation of (x, y) given s (exposed for tests/diagnostics).
  double PartialCorrelation(int x, int y, const std::vector<int>& s) const;

  // Rank correlation of a pair (lazy, memoized).
  double Correlation(size_t a, size_t b) const;

 private:
  size_t n_ = 0;
  size_t num_vars_ = 0;
  size_t stride_ = 0;  // padded column stride of the SoA block
  // Centered mid-rank columns: column v is centered_[v * stride_ .. +n_),
  // tail zero-padded; corr = dot / (norm*norm).
  simd::AlignedVector<double> centered_;
  std::vector<double> norm_;
  // Flattened memo of pairwise correlations; NaN = not yet computed.
  mutable std::vector<double> corr_;
  mutable std::mutex mu_;
};

// G-test of conditional independence on the discretized table:
// G = 2 * N * CMI(X; Y | S); G ~ chi-square under H0.
//
// Holds a pointer to the data table (which must outlive the test); columns
// are discretized on first use and conditioning strata are memoized per
// conditioning set. Like the effect estimator, the test reasons on the
// *snapshot* of rows present at construction (or the last Update): rows
// appended afterwards are ignored until Update() is called, so the memoized
// codes can never be indexed past their length.
//
// Update is incremental: when the same table merely grew, memoized codes and
// strata are *extended* by the appended rows in O(appended) — directly
// level-coded columns whose new values hit existing levels keep their codes
// (codes are assigned in sorted-value order, so a new level would renumber
// everything and forces a full recode), and strata whose member columns kept
// their coding append stable dense ids (ids are assigned by first
// appearance, which appending preserves). Everything extension cannot
// reproduce bit-identically is recoded from scratch, so the codes always
// equal what a cold test would compute. All mutation of memoized state
// happens inside Update (never concurrently with the sweep), so references
// handed out during a sweep stay valid.
class GSquareTest : public CITest {
 public:
  explicit GSquareTest(const DataTable& table, int max_bins = 5);

  // Re-binds the (grown) table; extends or invalidates codes and strata.
  void Update(const DataTable& table);

  double PValue(int x, int y, const std::vector<int>& s) const override;

  // Batched: fetches the (x, y) codes once for the whole level.
  int FirstIndependent(const BatchedCIRequest& req, double* p_out = nullptr) const override;

 private:
  // A memoized coded column plus what incremental extension needs: how it
  // was coded (ColumnCoding), a packed 16-bit copy of the codes for the
  // fused counting kernel (empty when cardinality exceeds 16 bits), and an
  // epoch that bumps on every full recode so dependent strata notice.
  struct ColumnState {
    CodedColumn coded;
    std::vector<uint16_t> packed;
    ColumnCoding coding;
    uint64_t epoch = 0;
  };
  // A memoized conditioning stratum: dense ids plus the radix-key map and
  // the member-column epochs that make appending stable ids possible.
  struct StratumState {
    CodedColumn coded;
    std::vector<uint16_t> packed;
    std::map<long long, int> dense;
    std::vector<uint64_t> member_epochs;  // parallel to the sorted set
  };

  const ColumnState& Coded(size_t v) const;
  const StratumState& Strata(const std::vector<int>& s) const;
  // G-test p-value from materialized codes. Uses the fused counting kernel
  // unless reference mode is on or the contingency cube is too large.
  double PValueFrom(const ColumnState& sx, const ColumnState& sy,
                    const StratumState& sz) const;
  ColumnState BuildColumnState(size_t v) const;
  // Returns false (leaving the state at its pre-call length) when appended
  // rows cannot extend the coding bit-identically.
  bool TryExtendColumn(size_t v, ColumnState* state, size_t old_rows) const;

  const DataTable* table_;
  int max_bins_;
  size_t rows_ = 0;  // snapshot row count; codes/strata all have this length
  mutable std::vector<std::unique_ptr<ColumnState>> coded_;
  mutable std::map<std::vector<int>, StratumState> strata_;
  mutable uint64_t epoch_counter_ = 0;
  mutable std::mutex coded_mu_;
  mutable std::mutex strata_mu_;
};

// Dispatches: Fisher z when both endpoints are continuous, G-test otherwise
// ("mutual info for discrete variables and Fisher z-test for continuous",
// paper §4 Stage II).
class CompositeTest : public CITest {
 public:
  explicit CompositeTest(const DataTable& table, int max_bins = 5, ThreadPool* pool = nullptr);

  // Refreshes both member tests after the table grew. The pool (if any) is
  // forwarded to the Fisher-z rank rebuild; G² stays serial (its extension
  // path is O(appended) and order-dependent).
  void Update(const DataTable& table, ThreadPool* pool = nullptr);

  double PValue(int x, int y, const std::vector<int>& s) const override;

  // Batched: dispatches the whole level to one member test.
  int FirstIndependent(const BatchedCIRequest& req, double* p_out = nullptr) const override;

 private:
  std::vector<VarType> types_;
  FisherZTest fisher_;
  GSquareTest gsq_;
};

}  // namespace unicorn

#endif  // UNICORN_STATS_INDEPENDENCE_H_
