// Conditional-independence tests.
//
// The constraint-based causal discovery in src/causal consumes an abstract
// CITest so that the skeleton search is agnostic to variable types. Two tests
// are provided, mirroring the paper (§4 Stage II): Fisher's z on partial
// correlation for continuous variables and a G-test (2N * conditional mutual
// information, chi-square calibrated) for discrete/mixed variables. The
// composite test dispatches per variable pair.
#ifndef UNICORN_STATS_INDEPENDENCE_H_
#define UNICORN_STATS_INDEPENDENCE_H_

#include <memory>
#include <vector>

#include "stats/discretize.h"
#include "stats/table.h"

namespace unicorn {

// Interface: p-value of the null hypothesis X ⊥ Y | S.
class CITest {
 public:
  virtual ~CITest() = default;

  virtual double PValue(int x, int y, const std::vector<int>& s) const = 0;

  bool Independent(int x, int y, const std::vector<int>& s, double alpha) const {
    return PValue(x, y, s) >= alpha;
  }

  // Number of tests issued so far (for scalability reporting).
  mutable long long calls = 0;
};

// Fisher z-test on partial correlations. Assumes roughly Gaussian margins;
// robust enough for monotone relationships, which is what the simulator and
// real performance data produce.
class FisherZTest : public CITest {
 public:
  explicit FisherZTest(const DataTable& table);

  double PValue(int x, int y, const std::vector<int>& s) const override;

  // Partial correlation of (x, y) given s (exposed for tests/diagnostics).
  double PartialCorrelation(int x, int y, const std::vector<int>& s) const;

 private:
  size_t n_;
  // Full correlation matrix, precomputed once.
  std::vector<std::vector<double>> corr_;
};

// G-test of conditional independence on the discretized table:
// G = 2 * N * CMI(X; Y | S); G ~ chi-square under H0.
class GSquareTest : public CITest {
 public:
  explicit GSquareTest(const DataTable& table, int max_bins = 5);

  double PValue(int x, int y, const std::vector<int>& s) const override;

 private:
  CodedTable coded_;
};

// Dispatches: Fisher z when both endpoints are continuous, G-test otherwise
// ("mutual info for discrete variables and Fisher z-test for continuous",
// paper §4 Stage II).
class CompositeTest : public CITest {
 public:
  explicit CompositeTest(const DataTable& table, int max_bins = 5);

  double PValue(int x, int y, const std::vector<int>& s) const override;

 private:
  std::vector<VarType> types_;
  FisherZTest fisher_;
  GSquareTest gsq_;
};

}  // namespace unicorn

#endif  // UNICORN_STATS_INDEPENDENCE_H_
