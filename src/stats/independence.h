// Conditional-independence tests.
//
// The constraint-based causal discovery in src/causal consumes an abstract
// CITest so that the skeleton search is agnostic to variable types. Two tests
// are provided, mirroring the paper (§4 Stage II): Fisher's z on partial
// correlation for continuous variables and a G-test (2N * conditional mutual
// information, chi-square calibrated) for discrete/mixed variables. The
// composite test dispatches per variable pair.
//
// Both tests are *updatable*: `Update(table)` refreshes the internal
// statistics after rows were appended without rebuilding eagerly. Derived
// quantities (rank correlations, coded columns, conditioning strata) are
// computed lazily per pair / per conditioning set and memoized, so a sparse
// warm-started skeleton search touching few pairs pays only for those pairs.
// All tests are safe to call concurrently from the parallel skeleton sweep.
#ifndef UNICORN_STATS_INDEPENDENCE_H_
#define UNICORN_STATS_INDEPENDENCE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "stats/discretize.h"
#include "stats/table.h"

namespace unicorn {

// Interface: p-value of the null hypothesis X ⊥ Y | S.
class CITest {
 public:
  virtual ~CITest() = default;

  virtual double PValue(int x, int y, const std::vector<int>& s) const = 0;

  bool Independent(int x, int y, const std::vector<int>& s, double alpha) const {
    return PValue(x, y, s) >= alpha;
  }

  // Number of tests issued so far (for scalability reporting). All discovery
  // code derives its test counts from this counter — never by hand — so the
  // numbers in the scalability tables cannot disagree.
  mutable std::atomic<long long> calls{0};
};

// Fisher z-test on partial correlations. Assumes roughly Gaussian margins;
// robust enough for monotone relationships, which is what the simulator and
// real performance data produce. Correlations are Spearman-style (Pearson on
// mid-ranks), computed lazily per pair and memoized.
class FisherZTest : public CITest {
 public:
  explicit FisherZTest(const DataTable& table);

  // Refreshes ranks after the table grew (or changed); drops the memo.
  void Update(const DataTable& table);

  double PValue(int x, int y, const std::vector<int>& s) const override;

  // Partial correlation of (x, y) given s (exposed for tests/diagnostics).
  double PartialCorrelation(int x, int y, const std::vector<int>& s) const;

  // Rank correlation of a pair (lazy, memoized).
  double Correlation(size_t a, size_t b) const;

 private:
  size_t n_ = 0;
  size_t num_vars_ = 0;
  // Centered mid-rank columns and their L2 norms: corr = dot / (norm*norm).
  std::vector<std::vector<double>> centered_;
  std::vector<double> norm_;
  // Flattened memo of pairwise correlations; NaN = not yet computed.
  mutable std::vector<double> corr_;
  mutable std::mutex mu_;
};

// G-test of conditional independence on the discretized table:
// G = 2 * N * CMI(X; Y | S); G ~ chi-square under H0.
//
// Holds a pointer to the data table (which must outlive the test); columns
// are discretized on first use and conditioning strata are memoized per
// conditioning set. Like the effect estimator, the test reasons on the
// *snapshot* of rows present at construction (or the last Update): rows
// appended afterwards are ignored until Update() is called, so the memoized
// codes can never be indexed past their length.
class GSquareTest : public CITest {
 public:
  explicit GSquareTest(const DataTable& table, int max_bins = 5);

  // Re-binds the (grown) table and invalidates codes and strata.
  void Update(const DataTable& table);

  double PValue(int x, int y, const std::vector<int>& s) const override;

 private:
  const CodedColumn& Coded(size_t v) const;
  const CodedColumn& Strata(const std::vector<int>& s) const;

  const DataTable* table_;
  int max_bins_;
  size_t rows_ = 0;  // snapshot row count; codes/strata all have this length
  mutable std::vector<std::unique_ptr<CodedColumn>> coded_;
  mutable std::map<std::vector<int>, CodedColumn> strata_;
  mutable std::mutex coded_mu_;
  mutable std::mutex strata_mu_;
};

// Dispatches: Fisher z when both endpoints are continuous, G-test otherwise
// ("mutual info for discrete variables and Fisher z-test for continuous",
// paper §4 Stage II).
class CompositeTest : public CITest {
 public:
  explicit CompositeTest(const DataTable& table, int max_bins = 5);

  // Refreshes both member tests after the table grew.
  void Update(const DataTable& table);

  double PValue(int x, int y, const std::vector<int>& s) const override;

 private:
  std::vector<VarType> types_;
  FisherZTest fisher_;
  GSquareTest gsq_;
};

}  // namespace unicorn

#endif  // UNICORN_STATS_INDEPENDENCE_H_
