#include "stats/linalg.h"

#include <cmath>

namespace unicorn {

bool SolveLinearSystem(std::vector<std::vector<double>> m, std::vector<double> rhs,
                       std::vector<double>* x) {
  const size_t n = rhs.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(m[r][col]) > std::fabs(m[pivot][col])) {
        pivot = r;
      }
    }
    if (std::fabs(m[pivot][col]) < 1e-12) {
      return false;
    }
    std::swap(m[pivot], m[col]);
    std::swap(rhs[pivot], rhs[col]);
    const double inv = 1.0 / m[col][col];
    for (size_t r = col + 1; r < n; ++r) {
      const double f = m[r][col] * inv;
      if (f == 0.0) {
        continue;
      }
      for (size_t c = col; c < n; ++c) {
        m[r][c] -= f * m[col][c];
      }
      rhs[r] -= f * rhs[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = rhs[ri];
    for (size_t c = ri + 1; c < n; ++c) {
      acc -= m[ri][c] * (*x)[c];
    }
    (*x)[ri] = acc / m[ri][ri];
  }
  return true;
}

}  // namespace unicorn
