// Small dense linear-algebra helpers (the problems here are tiny: conditioning
// sets and regression designs of at most a few dozen columns).
#ifndef UNICORN_STATS_LINALG_H_
#define UNICORN_STATS_LINALG_H_

#include <vector>

namespace unicorn {

// Solves M x = rhs by Gaussian elimination with partial pivoting.
// Returns false when M is numerically singular.
bool SolveLinearSystem(std::vector<std::vector<double>> m, std::vector<double> rhs,
                       std::vector<double>* x);

}  // namespace unicorn

#endif  // UNICORN_STATS_LINALG_H_
