#include "stats/regression.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "stats/correlation.h"
#include "stats/linalg.h"

namespace unicorn {
namespace {

// Evaluates one term (product of columns) for every row.
std::vector<double> TermColumn(const DataTable& table, const RegressionTerm& term) {
  std::vector<double> col(table.NumRows(), 1.0);
  for (size_t v : term.vars) {
    const auto& src = table.Col(v);
    for (size_t r = 0; r < col.size(); ++r) {
      col[r] *= src[r];
    }
  }
  return col;
}

// Residual sum of squares of a fitted model.
double Rss(const DataTable& table, const InfluenceModel& model, size_t target_var) {
  const auto& y = table.Col(target_var);
  double rss = 0.0;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    const double e = y[r] - model.Predict(table.Row(r));
    rss += e * e;
  }
  return rss;
}

// Bayesian information criterion: n*ln(rss/n) + k*ln(n).
double Bic(double rss, size_t n, size_t k) {
  const double safe_rss = std::max(rss, 1e-12);
  return static_cast<double>(n) * std::log(safe_rss / static_cast<double>(n)) +
         static_cast<double>(k) * std::log(static_cast<double>(n));
}

// Generates candidate terms up to max_degree over the feature variables,
// keeping only the `max_candidates` with highest |correlation| to the target.
std::vector<RegressionTerm> CandidateTerms(const DataTable& table,
                                           const std::vector<size_t>& feature_vars,
                                           size_t target_var, const StepwiseOptions& options) {
  std::vector<RegressionTerm> all;
  for (size_t i = 0; i < feature_vars.size(); ++i) {
    all.push_back({{feature_vars[i]}});
  }
  if (options.max_degree >= 2) {
    for (size_t i = 0; i < feature_vars.size(); ++i) {
      for (size_t j = i + 1; j < feature_vars.size(); ++j) {
        all.push_back({{feature_vars[i], feature_vars[j]}});
      }
    }
  }
  if (options.max_degree >= 3) {
    for (size_t i = 0; i < feature_vars.size(); ++i) {
      for (size_t j = i + 1; j < feature_vars.size(); ++j) {
        for (size_t k = j + 1; k < feature_vars.size(); ++k) {
          all.push_back({{feature_vars[i], feature_vars[j], feature_vars[k]}});
        }
      }
    }
  }
  if (all.size() <= static_cast<size_t>(options.max_candidates)) {
    return all;
  }
  // Score by marginal correlation with the target; always keep singletons.
  const auto& y = table.Col(target_var);
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(all.size());
  for (size_t t = 0; t < all.size(); ++t) {
    double score = std::numeric_limits<double>::infinity();  // singletons first
    if (all[t].vars.size() > 1) {
      score = std::fabs(PearsonCorrelation(TermColumn(table, all[t]), y));
    }
    scored.push_back({score, t});
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<RegressionTerm> kept;
  kept.reserve(static_cast<size_t>(options.max_candidates));
  for (int i = 0; i < options.max_candidates; ++i) {
    kept.push_back(all[scored[static_cast<size_t>(i)].second]);
  }
  return kept;
}

}  // namespace

std::string RegressionTerm::Name(const DataTable& table) const {
  std::string out;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i) {
      out += " x ";
    }
    out += table.Var(vars[i]).name;
  }
  return out;
}

double InfluenceModel::Predict(const std::vector<double>& row) const {
  double y = coefficients.empty() ? 0.0 : coefficients[0];
  for (size_t t = 0; t < terms.size(); ++t) {
    double prod = 1.0;
    for (size_t v : terms[t].vars) {
      prod *= row[v];
    }
    y += coefficients[t + 1] * prod;
  }
  return y;
}

std::vector<double> InfluenceModel::PredictAll(const DataTable& table) const {
  std::vector<double> out;
  out.reserve(table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    out.push_back(Predict(table.Row(r)));
  }
  return out;
}

InfluenceModel FitOls(const DataTable& table, const std::vector<RegressionTerm>& terms,
                      size_t target_var, double ridge) {
  const size_t n = table.NumRows();
  const size_t k = terms.size() + 1;  // + intercept
  // Design matrix columns.
  std::vector<std::vector<double>> design;
  design.reserve(k);
  design.emplace_back(n, 1.0);
  for (const auto& t : terms) {
    design.push_back(TermColumn(table, t));
  }
  // Normal equations: (X'X + ridge I) b = X'y.
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  const auto& y = table.Col(target_var);
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a; b < k; ++b) {
      double acc = 0.0;
      for (size_t r = 0; r < n; ++r) {
        acc += design[a][r] * design[b][r];
      }
      xtx[a][b] = acc;
      xtx[b][a] = acc;
    }
    xtx[a][a] += ridge;
    double acc = 0.0;
    for (size_t r = 0; r < n; ++r) {
      acc += design[a][r] * y[r];
    }
    xty[a] = acc;
  }
  InfluenceModel model;
  model.terms = terms;
  if (!SolveLinearSystem(xtx, xty, &model.coefficients)) {
    model.coefficients.assign(k, 0.0);
    // Fall back to predicting the mean.
    double mean = 0.0;
    for (size_t r = 0; r < n; ++r) {
      mean += y[r];
    }
    model.coefficients[0] = n > 0 ? mean / static_cast<double>(n) : 0.0;
  }
  // Training fit statistics.
  double rss = 0.0;
  double mean_y = 0.0;
  for (size_t r = 0; r < n; ++r) {
    mean_y += y[r];
  }
  mean_y = n > 0 ? mean_y / static_cast<double>(n) : 0.0;
  double tss = 0.0;
  for (size_t r = 0; r < n; ++r) {
    const double e = y[r] - model.Predict(table.Row(r));
    rss += e * e;
    tss += (y[r] - mean_y) * (y[r] - mean_y);
  }
  model.train_rmse = n > 0 ? std::sqrt(rss / static_cast<double>(n)) : 0.0;
  model.train_r2 = tss > 0.0 ? 1.0 - rss / tss : 0.0;
  return model;
}

InfluenceModel FitStepwiseRegression(const DataTable& table,
                                     const std::vector<size_t>& feature_vars, size_t target_var,
                                     const StepwiseOptions& options) {
  const size_t n = table.NumRows();
  std::vector<RegressionTerm> candidates = CandidateTerms(table, feature_vars, target_var, options);
  std::vector<RegressionTerm> selected;
  std::vector<bool> used(candidates.size(), false);

  InfluenceModel current = FitOls(table, selected, target_var, options.ridge);
  double current_bic = Bic(Rss(table, current, target_var), n, 1);

  // Forward selection.
  while (selected.size() < static_cast<size_t>(options.max_terms)) {
    double best_bic = current_bic;
    size_t best_idx = candidates.size();
    InfluenceModel best_model;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (used[c]) {
        continue;
      }
      std::vector<RegressionTerm> trial = selected;
      trial.push_back(candidates[c]);
      InfluenceModel m = FitOls(table, trial, target_var, options.ridge);
      const double bic = Bic(Rss(table, m, target_var), n, trial.size() + 1);
      if (bic < best_bic - options.min_bic_gain) {
        best_bic = bic;
        best_idx = c;
        best_model = std::move(m);
      }
    }
    if (best_idx == candidates.size()) {
      break;
    }
    used[best_idx] = true;
    selected.push_back(candidates[best_idx]);
    current = std::move(best_model);
    current_bic = best_bic;
  }

  // Backward elimination.
  bool removed = true;
  while (removed && !selected.empty()) {
    removed = false;
    for (size_t t = 0; t < selected.size(); ++t) {
      std::vector<RegressionTerm> trial;
      trial.reserve(selected.size() - 1);
      for (size_t u = 0; u < selected.size(); ++u) {
        if (u != t) {
          trial.push_back(selected[u]);
        }
      }
      InfluenceModel m = FitOls(table, trial, target_var, options.ridge);
      const double bic = Bic(Rss(table, m, target_var), n, trial.size() + 1);
      if (bic < current_bic - options.min_bic_gain) {
        selected = std::move(trial);
        current = std::move(m);
        current_bic = bic;
        removed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace unicorn
