// Performance-influence models: stepwise polynomial regression.
//
// This is the state-of-the-art baseline the paper argues against (§2):
// f(c) = b0 + sum_i phi(o_i) + sum_ij phi(o_i .. o_j), learned with forward
// selection and backward elimination. It is used by the motivating
// transferability analyses (Fig. 4, 5, 21, 22) and by the EnCore-style
// correlational baselines.
#ifndef UNICORN_STATS_REGRESSION_H_
#define UNICORN_STATS_REGRESSION_H_

#include <string>
#include <vector>

#include "stats/table.h"

namespace unicorn {

// One model term: the product of the listed variable columns.
struct RegressionTerm {
  std::vector<size_t> vars;  // sorted variable indices; size 1..max_degree

  bool operator==(const RegressionTerm& other) const { return vars == other.vars; }

  // Human-readable name, e.g. "CPU Frequency x Bitrate".
  std::string Name(const DataTable& table) const;
};

// A fitted linear model over polynomial terms.
struct InfluenceModel {
  std::vector<RegressionTerm> terms;  // excludes the intercept
  std::vector<double> coefficients;   // coefficients[0] = intercept, then one per term
  double train_rmse = 0.0;
  double train_r2 = 0.0;

  double Predict(const std::vector<double>& row) const;
  std::vector<double> PredictAll(const DataTable& table) const;
};

// Configuration for the stepwise search.
struct StepwiseOptions {
  int max_degree = 2;      // highest interaction order considered
  int max_terms = 30;      // cap on selected terms
  double min_bic_gain = 1e-6;
  double ridge = 1e-8;     // stabilizer on the normal equations
  // Candidate pool cap: the pairwise/triple candidate set is pruned to the
  // terms with the highest marginal |correlation| with the target.
  int max_candidates = 400;
};

// Fits y ~ stepwise polynomial over `feature_vars` using forward selection by
// BIC followed by backward elimination.
InfluenceModel FitStepwiseRegression(const DataTable& table,
                                     const std::vector<size_t>& feature_vars, size_t target_var,
                                     const StepwiseOptions& options = {});

// Ordinary least squares for a fixed term set (exposed for tests).
InfluenceModel FitOls(const DataTable& table, const std::vector<RegressionTerm>& terms,
                      size_t target_var, double ridge = 1e-8);

}  // namespace unicorn

#endif  // UNICORN_STATS_REGRESSION_H_
