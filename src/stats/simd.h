// SIMD-friendly kernel primitives for the statistics hot path.
//
// The CI kernels (Fisher-z rank correlations, the fused G-square contingency
// pass, streaming-moment updates) spend their time in a handful of dense
// loops over contiguous column blocks. This header centralizes what those
// loops need to autovectorize well on the baked-in toolchain without
// intrinsics: 64-byte aligned storage, a padded column stride, and reduction
// kernels with a fixed blocked accumulation order.
//
// Determinism contract: every kernel here has ONE arithmetic order. The
// UNICORN_NO_SIMD build compiles the same additions in the same order with
// vectorization pragmas disabled, so fast and portable builds produce
// bit-identical doubles. The blocked order differs from a naive sequential
// reduction in the low bits; callers that must reproduce the legacy
// sequential order (the kernel-equivalence tests, the bench self-check)
// flip the process-wide reference switch below.
#ifndef UNICORN_STATS_SIMD_H_
#define UNICORN_STATS_SIMD_H_

#include <atomic>
#include <cstddef>
#include <new>
#include <vector>

#if !defined(UNICORN_NO_SIMD) && defined(__GNUC__) && !defined(__clang__)
#define UNICORN_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define UNICORN_SIMD_LOOP
#endif

namespace unicorn {
namespace simd {

// Accumulator blocking of the reduction kernels. Four independent partial
// sums break the loop-carried dependence of a sequential reduction, which is
// what lets the compiler keep four vector accumulators in flight.
inline constexpr size_t kLanes = 4;

#if defined(UNICORN_NO_SIMD)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// 64-byte aligned allocator: column blocks start on cache-line (and any
// realistic vector-register) boundaries.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, size_t) noexcept { ::operator delete(p, kAlign); }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const {
    return false;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

// Column stride for SoA blocks: rows rounded up to a multiple of 8 doubles
// (one cache line), so every column starts aligned and tail loads of one
// column never touch the next.
inline size_t PaddedStride(size_t rows) { return (rows + 7) & ~size_t{7}; }

// Process-wide switch to the legacy reference kernels (sequential reduction
// order, unfused entropy path). Tests and the bench self-check flip this to
// compare the fast kernels against the exact arithmetic the code used before
// the batched kernels existed. Not meant to be toggled while a parallel
// sweep is in flight.
inline std::atomic<bool>& ReferenceSwitch() {
  static std::atomic<bool> v{false};
  return v;
}
inline void SetReferenceKernels(bool on) { ReferenceSwitch().store(on, std::memory_order_relaxed); }
inline bool UseReferenceKernels() { return ReferenceSwitch().load(std::memory_order_relaxed); }

// Blocked dot product: kLanes independent accumulators over the main body,
// sequential tail, lanes combined pairwise. The accumulation order is fixed
// and identical in SIMD and UNICORN_NO_SIMD builds (no FMA contraction is
// assumed); it intentionally differs from a naive sequential loop, which is
// why FisherZTest keeps a reference path for equivalence pinning.
inline double DotBlocked(const double* a, const double* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  const size_t main = n & ~(kLanes - 1);
  size_t i = 0;
  UNICORN_SIMD_LOOP
  for (; i < main; i += kLanes) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += a[i] * b[i];
  }
  return ((acc0 + acc1) + (acc2 + acc3)) + tail;
}

// dst[i] += scale * src[i]. Each destination element receives exactly one
// add, so the result is bit-identical no matter how the loop is vectorized.
inline void Axpy(double scale, const double* src, double* dst, size_t n) {
  UNICORN_SIMD_LOOP
  for (size_t i = 0; i < n; ++i) {
    dst[i] += scale * src[i];
  }
}

}  // namespace simd
}  // namespace unicorn

#endif  // UNICORN_STATS_SIMD_H_
