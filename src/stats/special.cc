#include "stats/special.h"

#include <math.h>

#include <cmath>
#include <limits>

namespace unicorn {
namespace {

// std::lgamma writes the process-global `signgam` (POSIX), a data race once
// CI tests run on skeleton-sweep / measurement pool threads. lgamma_r keeps
// the sign in a local instead; we never need it.
inline double LGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// Continued-fraction evaluation of the upper incomplete gamma Q(a, x)
// (Numerical Recipes "gcf").
double GammaQContinuedFraction(double a, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = b + an / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      break;
    }
  }
  return std::exp(-x + a * std::log(x) - LGamma(a)) * h;
}

// Series evaluation of the lower incomplete gamma P(a, x) ("gser").
double GammaPSeries(double a, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-12;
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - LGamma(a));
}

// Continued fraction for the incomplete beta function ("betacf").
double BetaContinuedFraction(double x, double a, double b) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-12;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) {
    d = kFpMin;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) {
      d = kFpMin;
    }
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) {
      c = kFpMin;
    }
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) {
      break;
    }
  }
  return h;
}

}  // namespace

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalTwoSidedPValue(double z) {
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

double RegularizedGammaP(double a, double x) {
  if (x <= 0.0 || a <= 0.0) {
    return x <= 0.0 ? 0.0 : 1.0;
  }
  if (x < a + 1.0) {
    return GammaPSeries(a, x);
  }
  return 1.0 - GammaQContinuedFraction(a, x);
}

double ChiSquareSurvival(double x, double dof) {
  if (dof <= 0.0) {
    return 1.0;
  }
  if (x <= 0.0) {
    return 1.0;
  }
  return 1.0 - RegularizedGammaP(dof / 2.0, x / 2.0);
}

double RegularizedBeta(double x, double a, double b) {
  if (x <= 0.0) {
    return 0.0;
  }
  if (x >= 1.0) {
    return 1.0;
  }
  const double ln_front =
      LGamma(a + b) - LGamma(a) - LGamma(b) + a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(x, a, b) / a;
  }
  return 1.0 - front * BetaContinuedFraction(1.0 - x, b, a) / b;
}

double StudentTTwoSidedPValue(double t, double dof) {
  if (dof <= 0.0) {
    return 1.0;
  }
  const double x = dof / (dof + t * t);
  return RegularizedBeta(x, dof / 2.0, 0.5);
}

}  // namespace unicorn
