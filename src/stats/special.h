// Special functions needed for p-value computation.
#ifndef UNICORN_STATS_SPECIAL_H_
#define UNICORN_STATS_SPECIAL_H_

namespace unicorn {

// Standard normal CDF.
double NormalCdf(double x);

// Two-sided p-value for a standard normal statistic.
double NormalTwoSidedPValue(double z);

// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

// Survival function of the chi-square distribution with `dof` degrees of
// freedom: Pr[X >= x].
double ChiSquareSurvival(double x, double dof);

// Survival function of Student's t distribution (two-sided p-value for |t|).
double StudentTTwoSidedPValue(double t, double dof);

// Regularized incomplete beta function I_x(a, b).
double RegularizedBeta(double x, double a, double b);

}  // namespace unicorn

#endif  // UNICORN_STATS_SPECIAL_H_
