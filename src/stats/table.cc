#include "stats/table.h"

#include <algorithm>
#include <cassert>

namespace unicorn {

const char* VarTypeName(VarType type) {
  switch (type) {
    case VarType::kBinary:
      return "binary";
    case VarType::kDiscrete:
      return "discrete";
    case VarType::kContinuous:
      return "continuous";
  }
  return "unknown";
}

const char* VarRoleName(VarRole role) {
  switch (role) {
    case VarRole::kOption:
      return "option";
    case VarRole::kEvent:
      return "event";
    case VarRole::kObjective:
      return "objective";
  }
  return "unknown";
}

DataTable::DataTable(std::vector<Variable> variables)
    : variables_(std::move(variables)), cols_(variables_.size()) {}

std::optional<size_t> DataTable::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i].name == name) {
      return i;
    }
  }
  return std::nullopt;
}

void DataTable::AddRow(const std::vector<double>& values) {
  assert(values.size() == variables_.size());
  for (size_t v = 0; v < variables_.size(); ++v) {
    cols_[v].push_back(values[v]);
  }
  ++num_rows_;
}

void DataTable::Reserve(size_t rows) {
  reserved_rows_ = std::max(reserved_rows_, rows);
  for (auto& col : cols_) {
    col.reserve(rows);
  }
}

std::vector<double> DataTable::Row(size_t row) const {
  std::vector<double> out(variables_.size());
  for (size_t v = 0; v < variables_.size(); ++v) {
    out[v] = cols_[v][row];
  }
  return out;
}

DataTable DataTable::SelectVars(const std::vector<size_t>& vars) const {
  std::vector<Variable> selected;
  selected.reserve(vars.size());
  for (size_t v : vars) {
    selected.push_back(variables_[v]);
  }
  DataTable out(std::move(selected));
  for (size_t i = 0; i < vars.size(); ++i) {
    out.cols_[i] = cols_[vars[i]];
  }
  out.num_rows_ = num_rows_;
  if (reserved_rows_ > 0) {
    out.Reserve(reserved_rows_);  // carry the capacity hint (no-op if smaller)
  }
  return out;
}

DataTable DataTable::SelectRows(const std::vector<size_t>& rows) const {
  DataTable out(variables_);
  const size_t capacity = std::max(rows.size(), reserved_rows_);
  for (size_t v = 0; v < variables_.size(); ++v) {
    out.cols_[v].reserve(capacity);
    for (size_t r : rows) {
      out.cols_[v].push_back(cols_[v][r]);
    }
  }
  out.num_rows_ = rows.size();
  out.reserved_rows_ = reserved_rows_;
  return out;
}

void DataTable::AppendRows(const DataTable& other) {
  assert(other.NumVars() == NumVars());
  for (size_t v = 0; v < variables_.size(); ++v) {
    const auto& src = other.cols_[v];
    cols_[v].insert(cols_[v].end(), src.begin(), src.end());
  }
  num_rows_ += other.num_rows_;
}

std::vector<size_t> DataTable::IndicesWithRole(VarRole role) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i].role == role) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace unicorn
