// Typed, column-major data table.
//
// Every measurement pipeline in this repo produces a DataTable: one column per
// variable (configuration option, system event, or performance objective), one
// row per measured configuration. Causal discovery, independence testing, and
// regression all consume this type.
#ifndef UNICORN_STATS_TABLE_H_
#define UNICORN_STATS_TABLE_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace unicorn {

// Statistical type of a variable; drives the choice of independence test and
// of discretization strategy.
enum class VarType {
  kBinary,      // two levels, encoded 0/1
  kDiscrete,    // finite set of levels (nominal or ordinal)
  kContinuous,  // real-valued
};

// Role of a variable in the system stack (paper §3: three variable types).
enum class VarRole {
  kOption,     // software/hardware/kernel configuration option (intervenable)
  kEvent,      // intermediate system event (observable only)
  kObjective,  // end-to-end performance objective (latency, energy, ...)
};

const char* VarTypeName(VarType type);
const char* VarRoleName(VarRole role);

// Metadata for one column.
struct Variable {
  std::string name;
  VarType type = VarType::kContinuous;
  VarRole role = VarRole::kEvent;
  // For kBinary/kDiscrete: the permitted levels (ordered).
  // For kContinuous options: {lo, hi} range. Empty for observables.
  std::vector<double> domain;

  bool Intervenable() const { return role == VarRole::kOption; }
};

// Column-major table of doubles with per-column metadata.
class DataTable {
 public:
  DataTable() = default;
  explicit DataTable(std::vector<Variable> variables);

  size_t NumVars() const { return variables_.size(); }
  size_t NumRows() const { return num_rows_; }

  const Variable& Var(size_t v) const { return variables_[v]; }
  const std::vector<Variable>& Variables() const { return variables_; }

  // Index of the variable with this name, if present.
  std::optional<size_t> IndexOf(const std::string& name) const;

  const std::vector<double>& Col(size_t v) const { return cols_[v]; }
  double At(size_t row, size_t v) const { return cols_[v][row]; }
  void Set(size_t row, size_t v, double value) { cols_[v][row] = value; }

  // Appends one row; `values` must have NumVars() entries.
  void AddRow(const std::vector<double>& values);

  // Pre-allocates column storage for `rows` total rows (appending stays
  // amortized O(vars) either way; this avoids reallocation in tight loops).
  // The hint sticks: derived tables (SelectVars/SelectRows) re-apply it so
  // hot-loop seeding into a derived table never reallocates either.
  void Reserve(size_t rows);

  // The largest Reserve hint seen so far (0 = never reserved).
  size_t ReservedRows() const { return reserved_rows_; }

  // Returns one row as a vector.
  std::vector<double> Row(size_t row) const;

  // New table with only the given variables (in the given order).
  DataTable SelectVars(const std::vector<size_t>& vars) const;

  // New table with only the given rows.
  DataTable SelectRows(const std::vector<size_t>& rows) const;

  // Appends all rows of `other`; variable lists must match in size.
  void AppendRows(const DataTable& other);

  // All indices whose role matches.
  std::vector<size_t> IndicesWithRole(VarRole role) const;

 private:
  std::vector<Variable> variables_;
  std::vector<std::vector<double>> cols_;
  size_t num_rows_ = 0;
  size_t reserved_rows_ = 0;  // sticky capacity hint, see Reserve
};

}  // namespace unicorn

#endif  // UNICORN_STATS_TABLE_H_
