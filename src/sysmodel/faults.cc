#include "sysmodel/faults.h"

#include <algorithm>
#include <cmath>

namespace unicorn {

FaultCuration CurateFaults(const SystemModel& model, const Environment& env,
                           const Workload& workload, size_t num_samples, Rng* rng,
                           double percentile) {
  FaultCuration out;
  out.objective_vars = model.ObjectiveIndices();

  // Sample and measure.
  out.configs.reserve(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    out.configs.push_back(model.SampleConfig(rng));
  }
  out.samples = model.MeasureMany(out.configs, env, workload, rng);

  // Percentile thresholds per objective.
  for (size_t obj : out.objective_vars) {
    std::vector<double> values = out.samples.Col(obj);
    std::sort(values.begin(), values.end());
    const size_t idx = std::min(
        values.size() - 1,
        static_cast<size_t>(std::floor(percentile * static_cast<double>(values.size()))));
    out.thresholds.push_back(values[idx]);
  }

  // Label faults.
  for (size_t r = 0; r < out.samples.NumRows(); ++r) {
    Fault fault;
    for (size_t o = 0; o < out.objective_vars.size(); ++o) {
      if (out.samples.At(r, out.objective_vars[o]) > out.thresholds[o]) {
        fault.objectives.push_back(out.objective_vars[o]);
      }
    }
    if (fault.objectives.empty()) {
      continue;
    }
    fault.config = out.configs[r];
    fault.measurement = out.samples.Row(r);
    for (size_t obj : fault.objectives) {
      for (size_t cause : model.TrueRootCauses(fault.config, obj)) {
        if (std::find(fault.root_causes.begin(), fault.root_causes.end(), cause) ==
            fault.root_causes.end()) {
          fault.root_causes.push_back(cause);
        }
      }
    }
    std::sort(fault.root_causes.begin(), fault.root_causes.end());
    out.faults.push_back(std::move(fault));
  }
  return out;
}

std::vector<Fault> FaultsOn(const FaultCuration& curation, size_t objective_var) {
  std::vector<Fault> out;
  for (const auto& fault : curation.faults) {
    if (fault.objectives.size() == 1 && fault.objectives[0] == objective_var) {
      out.push_back(fault);
    }
  }
  return out;
}

std::vector<Fault> MultiObjectiveFaults(const FaultCuration& curation) {
  std::vector<Fault> out;
  for (const auto& fault : curation.faults) {
    if (fault.objectives.size() > 1) {
      out.push_back(fault);
    }
  }
  return out;
}

}  // namespace unicorn
