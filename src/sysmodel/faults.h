// Non-functional fault curation (paper §6 "Ground truth").
//
// Faults live in the tail of the performance distribution: sample the
// configuration space, measure, and label every configuration whose
// objective value exceeds the 99th percentile as faulty. The simulator's
// fault rules give each fault its true root-cause option set.
#ifndef UNICORN_SYSMODEL_FAULTS_H_
#define UNICORN_SYSMODEL_FAULTS_H_

#include <vector>

#include "sysmodel/system_model.h"

namespace unicorn {

struct Fault {
  std::vector<double> config;        // option values (option order)
  Measurement measurement;           // the faulty measurement
  std::vector<size_t> objectives;    // objective vars above threshold
  std::vector<size_t> root_causes;   // true root-cause option vars (global idx)
};

struct FaultCuration {
  DataTable samples;                  // the ground-truth dataset
  std::vector<std::vector<double>> configs;  // config per sample row
  std::vector<size_t> objective_vars;
  std::vector<double> thresholds;     // per objective (aligned with above)
  std::vector<Fault> faults;
};

FaultCuration CurateFaults(const SystemModel& model, const Environment& env,
                           const Workload& workload, size_t num_samples, Rng* rng,
                           double percentile = 0.99);

// Convenience filters.
std::vector<Fault> FaultsOn(const FaultCuration& curation, size_t objective_var);
std::vector<Fault> MultiObjectiveFaults(const FaultCuration& curation);

}  // namespace unicorn

#endif  // UNICORN_SYSMODEL_FAULTS_H_
