#include "sysmodel/system_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace unicorn {
namespace {

double Softplus(double x) {
  if (x > 30.0) {
    return x;
  }
  return std::log1p(std::exp(x));
}

bool IsEnergyObjective(const std::string& name) {
  return name.find("energy") != std::string::npos;
}

bool IsHeatObjective(const std::string& name) {
  return name.find("heat") != std::string::npos;
}

}  // namespace

SystemModel::SystemModel(std::string name, std::vector<Variable> variables,
                         std::vector<Mechanism> mechanisms, std::vector<FaultRule> fault_rules)
    : name_(std::move(name)),
      variables_(std::move(variables)),
      mechanisms_(std::move(mechanisms)),
      fault_rules_(std::move(fault_rules)) {
  assert(mechanisms_.size() == variables_.size());
  // Builders lay out variables so that mechanism inputs always precede their
  // node; evaluation in index order is therefore a topological order.
  for (size_t v = 0; v < variables_.size(); ++v) {
    if (variables_[v].role != VarRole::kOption) {
      eval_order_.push_back(v);
      for (const auto& term : mechanisms_[v].terms) {
        for (size_t in : term.inputs) {
          assert(in < v && "mechanism inputs must precede the node");
          (void)in;
        }
      }
    }
  }
}

std::vector<size_t> SystemModel::OptionIndices() const {
  DataTable t(variables_);
  return t.IndicesWithRole(VarRole::kOption);
}

std::vector<size_t> SystemModel::EventIndices() const {
  DataTable t(variables_);
  return t.IndicesWithRole(VarRole::kEvent);
}

std::vector<size_t> SystemModel::ObjectiveIndices() const {
  DataTable t(variables_);
  return t.IndicesWithRole(VarRole::kObjective);
}

double SystemModel::Normalize(size_t v, double raw) const {
  const auto& domain = variables_[v].domain;
  if (domain.empty()) {
    return raw;
  }
  const double lo = domain.front();
  const double hi = domain.back();
  if (hi <= lo) {
    return 0.0;
  }
  return std::clamp((raw - lo) / (hi - lo), 0.0, 1.0);
}

std::vector<double> SystemModel::SampleConfig(Rng* rng) const {
  std::vector<double> config;
  for (size_t v : OptionIndices()) {
    const Variable& var = variables_[v];
    if (var.type == VarType::kContinuous) {
      config.push_back(rng->Uniform(var.domain.front(), var.domain.back()));
    } else {
      config.push_back(var.domain[rng->UniformInt(static_cast<uint64_t>(var.domain.size()))]);
    }
  }
  return config;
}

std::vector<double> SystemModel::DefaultConfig() const {
  std::vector<double> config;
  for (size_t v : OptionIndices()) {
    config.push_back(variables_[v].domain.front());
  }
  return config;
}

std::vector<double> SystemModel::EnvScales(const Environment& env) const {
  // One deterministic multiplicative jitter per mechanism term, derived from
  // the environment seed: environments share structure but not coefficients.
  size_t total_terms = 0;
  for (const auto& m : mechanisms_) {
    total_terms += m.terms.size();
  }
  std::vector<double> scales;
  scales.reserve(total_terms);
  Rng rng(env.seed * 0x9E3779B97F4A7C15ULL + 17);
  for (size_t i = 0; i < total_terms; ++i) {
    scales.push_back(1.0 + env.coeff_jitter * (2.0 * rng.Uniform() - 1.0));
  }
  return scales;
}

double SystemModel::EvaluateNode(size_t v, const std::vector<double>& activations,
                                 const std::vector<double>& env_scale_slice,
                                 const Workload& workload, double noise) const {
  (void)workload;
  const Mechanism& m = mechanisms_[v];
  double act = m.bias + noise;
  for (size_t t = 0; t < m.terms.size(); ++t) {
    const MechanismTerm& term = m.terms[t];
    double prod = 1.0;
    for (size_t in : term.inputs) {
      prod *= activations[in];
    }
    if (term.saturating) {
      prod = std::tanh(2.0 * prod);
    }
    act += term.coeff * env_scale_slice[t] * prod;
  }
  return act;
}

Measurement SystemModel::MeasureNoiseless(const std::vector<double>& config,
                                          const Environment& env,
                                          const Workload& workload) const {
  Rng null_rng(1);
  // Replicates = 1 and sigma scaled to zero via the dedicated path below.
  const std::vector<double> env_scales = EnvScales(env);
  std::vector<double> activations(variables_.size(), 0.0);
  Measurement raw(variables_.size(), 0.0);

  const auto options = OptionIndices();
  for (size_t i = 0; i < options.size(); ++i) {
    raw[options[i]] = config[i];
    activations[options[i]] = Normalize(options[i], config[i]);
  }
  const auto active_rules = ActiveFaultRules(config);

  size_t term_cursor = 0;
  for (size_t v = 0; v < variables_.size(); ++v) {
    const Mechanism& m = mechanisms_[v];
    if (variables_[v].role == VarRole::kOption) {
      term_cursor += m.terms.size();
      continue;
    }
    const std::vector<double> slice(env_scales.begin() + static_cast<long>(term_cursor),
                                    env_scales.begin() +
                                        static_cast<long>(term_cursor + m.terms.size()));
    term_cursor += m.terms.size();
    const double act = EvaluateNode(v, activations, slice, workload, 0.0);
    activations[v] = std::tanh(0.5 * act);  // bounded but far from saturation
    double value = m.base * Softplus(act) * workload.scale;
    if (variables_[v].role == VarRole::kObjective) {
      if (IsEnergyObjective(variables_[v].name)) {
        value *= env.energy_factor;
      } else if (IsHeatObjective(variables_[v].name)) {
        value *= 0.5 * (env.energy_factor + 1.0 / env.speed);
      } else {
        value /= env.speed;
      }
      for (size_t rule_idx : active_rules) {
        if (fault_rules_[rule_idx].objective == v) {
          value *= fault_rules_[rule_idx].penalty;
        }
      }
    }
    raw[v] = value;
  }
  return raw;
}

Measurement SystemModel::Measure(const std::vector<double>& config, const Environment& env,
                                 const Workload& workload, Rng* rng, int replicates) const {
  const std::vector<double> env_scales = EnvScales(env);
  const auto options = OptionIndices();
  const auto active_rules = ActiveFaultRules(config);

  std::vector<Measurement> runs;
  runs.reserve(static_cast<size_t>(replicates));
  for (int rep = 0; rep < replicates; ++rep) {
    std::vector<double> activations(variables_.size(), 0.0);
    Measurement raw(variables_.size(), 0.0);
    for (size_t i = 0; i < options.size(); ++i) {
      raw[options[i]] = config[i];
      activations[options[i]] = Normalize(options[i], config[i]);
    }
    size_t term_cursor = 0;
    for (size_t v = 0; v < variables_.size(); ++v) {
      const Mechanism& m = mechanisms_[v];
      if (variables_[v].role == VarRole::kOption) {
        term_cursor += m.terms.size();
        continue;
      }
      const std::vector<double> slice(env_scales.begin() + static_cast<long>(term_cursor),
                                      env_scales.begin() +
                                          static_cast<long>(term_cursor + m.terms.size()));
      term_cursor += m.terms.size();
      const double noise = rng->Gaussian(0.0, m.noise_sigma);
      const double act = EvaluateNode(v, activations, slice, workload, noise);
      activations[v] = std::tanh(0.5 * act);
      double value = m.base * Softplus(act) * workload.scale;
      if (variables_[v].role == VarRole::kObjective) {
        if (IsEnergyObjective(variables_[v].name)) {
          value *= env.energy_factor;
        } else if (IsHeatObjective(variables_[v].name)) {
          value *= 0.5 * (env.energy_factor + 1.0 / env.speed);
        } else {
          value /= env.speed;
        }
        for (size_t rule_idx : active_rules) {
          if (fault_rules_[rule_idx].objective == v) {
            value *= fault_rules_[rule_idx].penalty;
          }
        }
      }
      raw[v] = value;
    }
    runs.push_back(std::move(raw));
  }
  // Per-variable median across replicates (paper §6 "Ground truth").
  Measurement out(variables_.size(), 0.0);
  std::vector<double> buf(runs.size());
  for (size_t v = 0; v < variables_.size(); ++v) {
    for (size_t r = 0; r < runs.size(); ++r) {
      buf[r] = runs[r][v];
    }
    std::nth_element(buf.begin(), buf.begin() + static_cast<long>(buf.size() / 2), buf.end());
    out[v] = buf[buf.size() / 2];
  }
  return out;
}

DataTable SystemModel::MeasureMany(const std::vector<std::vector<double>>& configs,
                                   const Environment& env, const Workload& workload, Rng* rng,
                                   int replicates) const {
  DataTable table(variables_);
  for (const auto& config : configs) {
    table.AddRow(Measure(config, env, workload, rng, replicates));
  }
  return table;
}

MixedGraph SystemModel::GroundTruthGraph() const {
  MixedGraph g(variables_.size());
  for (size_t v = 0; v < variables_.size(); ++v) {
    for (const auto& term : mechanisms_[v].terms) {
      for (size_t in : term.inputs) {
        if (!g.HasEdge(in, v)) {
          g.AddDirected(in, v);
        }
      }
    }
  }
  for (const auto& rule : fault_rules_) {
    for (const auto& cond : rule.conditions) {
      if (!g.HasEdge(cond.var, rule.objective)) {
        g.AddDirected(cond.var, rule.objective);
      }
    }
  }
  return g;
}

std::vector<size_t> SystemModel::ActiveFaultRules(const std::vector<double>& config) const {
  // Map global option index -> config position.
  const auto options = OptionIndices();
  std::vector<size_t> pos(variables_.size(), static_cast<size_t>(-1));
  for (size_t i = 0; i < options.size(); ++i) {
    pos[options[i]] = i;
  }
  std::vector<size_t> active;
  for (size_t r = 0; r < fault_rules_.size(); ++r) {
    bool holds = true;
    for (const auto& cond : fault_rules_[r].conditions) {
      const size_t p = pos[cond.var];
      if (p == static_cast<size_t>(-1)) {
        holds = false;
        break;
      }
      const double norm = Normalize(cond.var, config[p]);
      if (norm < cond.lo || norm > cond.hi) {
        holds = false;
        break;
      }
    }
    if (holds) {
      active.push_back(r);
    }
  }
  return active;
}

std::vector<size_t> SystemModel::TrueRootCauses(const std::vector<double>& config,
                                                size_t objective) const {
  std::vector<size_t> causes;
  for (size_t r : ActiveFaultRules(config)) {
    if (fault_rules_[r].objective != objective) {
      continue;
    }
    for (const auto& cond : fault_rules_[r].conditions) {
      if (std::find(causes.begin(), causes.end(), cond.var) == causes.end()) {
        causes.push_back(cond.var);
      }
    }
  }
  std::sort(causes.begin(), causes.end());
  return causes;
}

double SystemModel::TrueAce(size_t z, size_t x, const Environment& env, const Workload& workload,
                            Rng* rng, int num_contexts) const {
  const Variable& var = variables_[x];
  // Treatment levels: the domain for discrete options, 5 evenly spaced values
  // for continuous ones.
  std::vector<double> levels;
  if (var.type == VarType::kContinuous) {
    const double lo = var.domain.front();
    const double hi = var.domain.back();
    for (int i = 0; i < 5; ++i) {
      levels.push_back(lo + (hi - lo) * i / 4.0);
    }
  } else {
    levels = var.domain;
  }
  if (levels.size() < 2) {
    return 0.0;
  }
  const auto options = OptionIndices();
  size_t x_pos = 0;
  for (size_t i = 0; i < options.size(); ++i) {
    if (options[i] == x) {
      x_pos = i;
    }
  }
  // Common random contexts across levels for variance reduction.
  std::vector<std::vector<double>> contexts;
  contexts.reserve(static_cast<size_t>(num_contexts));
  for (int c = 0; c < num_contexts; ++c) {
    contexts.push_back(SampleConfig(rng));
  }
  std::vector<double> means(levels.size(), 0.0);
  for (size_t l = 0; l < levels.size(); ++l) {
    double acc = 0.0;
    for (auto context : contexts) {
      context[x_pos] = levels[l];
      acc += MeasureNoiseless(context, env, workload)[z];
    }
    means[l] = acc / static_cast<double>(contexts.size());
  }
  double total = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < levels.size(); ++a) {
    for (size_t b = a + 1; b < levels.size(); ++b) {
      total += std::fabs(means[b] - means[a]);
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace unicorn
