// Ground-truth configurable-system simulator.
//
// Substitute for the paper's hardware testbed (NVIDIA Jetson TX1/TX2/Xavier
// running Deepstream, Xception, BERT, Deepspeech, x264, SQLite): each system
// is a structural causal model over configuration options, intermediate
// system events, and performance objectives. Options are exogenous; every
// event/objective node has a polynomial mechanism with interaction and
// saturation terms plus Gaussian noise; "fault rules" add configuration
// cliffs that produce the heavy performance tails the paper debugs.
//
// Environments (hardware platforms) keep the causal structure fixed and
// rescale mechanism coefficients — the exact premise behind the paper's
// transferability claims (§8). Workload size scales event magnitudes.
//
// Because the ground truth is known, evaluation can compute exact structural
// Hamming distances, true root causes, and true (interventional) ACE weights.
#ifndef UNICORN_SYSMODEL_SYSTEM_MODEL_H_
#define UNICORN_SYSMODEL_SYSTEM_MODEL_H_

#include <string>
#include <vector>

#include "graph/mixed_graph.h"
#include "stats/table.h"
#include "util/rng.h"

namespace unicorn {

// One additive term of a node mechanism: coeff * prod(normalized inputs),
// optionally squashed through tanh to create saturation/non-convexity.
struct MechanismTerm {
  std::vector<size_t> inputs;  // variable indices (options or earlier nodes)
  double coeff = 0.0;
  bool saturating = false;
};

// Mechanism of one event/objective node. The mechanism produces a
// scale-free activation; the reported raw value is
//   base * softplus(activation) * workload/environment scales * penalties.
struct Mechanism {
  double bias = 0.0;
  std::vector<MechanismTerm> terms;
  double noise_sigma = 0.02;
  double base = 1.0;  // magnitude of the reported raw value
};

// One conjunctive condition over a variable's *normalized* value.
struct FaultCondition {
  size_t var = 0;
  double lo = 0.0;
  double hi = 1.0;
};

// A configuration cliff: when all conditions hold, the objective is degraded
// multiplicatively. The options appearing in conditions are the true root
// causes of the resulting non-functional fault.
struct FaultRule {
  std::string name;
  std::vector<FaultCondition> conditions;
  size_t objective = 0;
  double penalty = 2.0;  // multiplier > 1 applied to the objective
};

// Hardware platform: shared structure, environment-specific mechanism scales.
struct Environment {
  std::string name;
  uint64_t seed = 1;           // drives per-term deterministic rescaling
  double speed = 1.0;          // divides latency-like objectives
  double energy_factor = 1.0;  // multiplies energy-like objectives
  double coeff_jitter = 0.35;  // relative magnitude of per-term rescale
};

// Workload: linear scale on event magnitudes (e.g. number of test images).
struct Workload {
  std::string name;
  double scale = 1.0;
};

// A full measurement: raw values for every variable (options echoed back).
using Measurement = std::vector<double>;

class SystemModel {
 public:
  SystemModel(std::string name, std::vector<Variable> variables,
              std::vector<Mechanism> mechanisms, std::vector<FaultRule> fault_rules);

  const std::string& name() const { return name_; }
  const std::vector<Variable>& variables() const { return variables_; }
  size_t NumVars() const { return variables_.size(); }
  const std::vector<FaultRule>& fault_rules() const { return fault_rules_; }

  std::vector<size_t> OptionIndices() const;
  std::vector<size_t> EventIndices() const;
  std::vector<size_t> ObjectiveIndices() const;

  // Uniform-random configuration (one value per option, in option order).
  std::vector<double> SampleConfig(Rng* rng) const;

  // Default configuration: first level / low end of each option domain.
  std::vector<double> DefaultConfig() const;

  // Simulates one measurement of `config` (option order as OptionIndices()).
  // Follows the paper's protocol: `replicates` noisy runs, per-variable
  // median reported. Const and free of shared mutable state: safe to call
  // concurrently from measurement-broker pool threads as long as each caller
  // passes its own Rng.
  Measurement Measure(const std::vector<double>& config, const Environment& env,
                      const Workload& workload, Rng* rng, int replicates = 5) const;

  // Noise-free measurement (for ground-truth analyses).
  Measurement MeasureNoiseless(const std::vector<double>& config, const Environment& env,
                               const Workload& workload) const;

  // Batch measurement into a DataTable with this model's variable metadata.
  DataTable MeasureMany(const std::vector<std::vector<double>>& configs, const Environment& env,
                        const Workload& workload, Rng* rng, int replicates = 5) const;

  // The true causal graph (ADMG with directed edges only): one edge from each
  // mechanism input to its node, plus edges from fault-rule root causes to
  // the affected objective.
  MixedGraph GroundTruthGraph() const;

  // True interventional ACE of option `x` on variable `z`, estimated by
  // Monte-Carlo intervention on the simulator: for pairs of levels of x,
  // average |E[z | do(x=b)] - E[z | do(x=a)]| with other options randomized.
  double TrueAce(size_t z, size_t x, const Environment& env, const Workload& workload, Rng* rng,
                 int num_contexts = 40) const;

  // Active fault rules for a measured configuration; union of their condition
  // options = true root causes.
  std::vector<size_t> ActiveFaultRules(const std::vector<double>& config) const;
  std::vector<size_t> TrueRootCauses(const std::vector<double>& config, size_t objective) const;

  // Normalizes a raw value of variable v into [0, 1] by its domain.
  double Normalize(size_t v, double raw) const;

 private:
  double EvaluateNode(size_t v, const std::vector<double>& raw_values,
                      const std::vector<double>& env_scale, const Workload& workload,
                      double noise) const;
  std::vector<double> EnvScales(const Environment& env) const;

  std::string name_;
  std::vector<Variable> variables_;
  std::vector<Mechanism> mechanisms_;  // size NumVars(); empty terms for options
  std::vector<FaultRule> fault_rules_;
  std::vector<size_t> eval_order_;  // non-option nodes in dependency order
};

}  // namespace unicorn

#endif  // UNICORN_SYSMODEL_SYSTEM_MODEL_H_
