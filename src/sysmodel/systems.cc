#include "sysmodel/systems.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/rng.h"

namespace unicorn {
namespace {

// Incremental construction of a SystemModel.
class Builder {
 public:
  size_t AddOption(const std::string& name, VarType type, std::vector<double> domain) {
    Variable v;
    v.name = name;
    v.type = type;
    v.role = VarRole::kOption;
    v.domain = std::move(domain);
    vars_.push_back(std::move(v));
    mechs_.emplace_back();
    return vars_.size() - 1;
  }

  size_t AddBinaryOption(const std::string& name) {
    return AddOption(name, VarType::kBinary, {0.0, 1.0});
  }

  size_t AddNode(const std::string& name, VarRole role, Mechanism mech) {
    Variable v;
    v.name = name;
    v.type = VarType::kContinuous;
    v.role = role;
    vars_.push_back(std::move(v));
    mechs_.push_back(std::move(mech));
    return vars_.size() - 1;
  }

  void AddRule(FaultRule rule) { rules_.push_back(std::move(rule)); }

  // Appends a mechanism term to an existing (event/objective) node.
  void AddTermTo(size_t node, MechanismTerm term) {
    mechs_[node].terms.push_back(std::move(term));
  }

  const std::vector<Variable>& vars() const { return vars_; }

  std::vector<size_t> OptionIds() const {
    std::vector<size_t> out;
    for (size_t i = 0; i < vars_.size(); ++i) {
      if (vars_[i].role == VarRole::kOption) {
        out.push_back(i);
      }
    }
    return out;
  }

  SystemModel Build(std::string name) {
    return SystemModel(std::move(name), std::move(vars_), std::move(mechs_), std::move(rules_));
  }

 private:
  std::vector<Variable> vars_;
  std::vector<Mechanism> mechs_;
  std::vector<FaultRule> rules_;
};

// The 22 kernel options of appendix Table 8.
void AddKernelOptions(Builder* b) {
  b->AddOption("vm.vfs_cache_pressure", VarType::kDiscrete, {1, 100, 500});
  b->AddOption("vm.swappiness", VarType::kDiscrete, {10, 60, 90});
  b->AddOption("vm.dirty_bytes", VarType::kDiscrete, {30, 60});
  b->AddOption("vm.dirty_background_ratio", VarType::kDiscrete, {10, 80});
  b->AddOption("vm.dirty_background_bytes", VarType::kDiscrete, {30, 60});
  b->AddOption("vm.dirty_ratio", VarType::kDiscrete, {5, 50});
  b->AddOption("vm.nr_hugepages", VarType::kDiscrete, {0, 1, 2});
  b->AddOption("vm.overcommit_ratio", VarType::kDiscrete, {50, 80});
  b->AddOption("vm.overcommit_memory", VarType::kDiscrete, {0, 2});
  b->AddOption("vm.overcommit_hugepages", VarType::kDiscrete, {0, 1, 2});
  b->AddOption("kernel.cpu_time_max_percent", VarType::kContinuous, {10, 100});
  b->AddOption("kernel.max_pids", VarType::kDiscrete, {32768, 65536});
  b->AddOption("kernel.numa_balancing", VarType::kBinary, {0, 1});
  b->AddOption("kernel.sched_latency_ns", VarType::kDiscrete, {24000000, 48000000});
  b->AddOption("kernel.sched_nr_migrate", VarType::kDiscrete, {32, 64, 128});
  b->AddOption("kernel.sched_rt_period_us", VarType::kDiscrete, {1000000, 2000000});
  b->AddOption("kernel.sched_rt_runtime_us", VarType::kDiscrete, {500000, 950000});
  b->AddOption("kernel.sched_time_avg_ms", VarType::kDiscrete, {1000, 2000});
  b->AddOption("kernel.sched_child_runs_first", VarType::kBinary, {0, 1});
  b->AddOption("swap_memory_gb", VarType::kDiscrete, {1, 2, 3, 4});
  b->AddOption("scheduler_policy", VarType::kBinary, {0, 1});  // CFP / NOOP
  b->AddOption("drop_caches", VarType::kDiscrete, {0, 1, 2, 3});
}

// The 4 hardware options of appendix Table 9.
void AddHardwareOptions(Builder* b) {
  b->AddOption("cpu_cores", VarType::kDiscrete, {1, 2, 3, 4});
  b->AddOption("cpu_frequency_ghz", VarType::kContinuous, {0.3, 2.0});
  b->AddOption("gpu_frequency_ghz", VarType::kContinuous, {0.1, 1.3});
  b->AddOption("emc_frequency_ghz", VarType::kContinuous, {0.1, 1.8});
}

// The 19 perf events of appendix Table 10 (base magnitudes are arbitrary but
// realistic orders of magnitude).
const struct EventSpec {
  const char* name;
  double base;
} kEventSpecs[] = {
    {"context_switches", 1e4},   {"major_faults", 1e2},
    {"minor_faults", 1e4},       {"migrations", 1e3},
    {"sched_wait_time", 1e3},    {"sched_sleep_time", 1e3},
    {"cycles", 1e9},             {"instructions", 1e9},
    {"syscall_enter", 1e5},      {"syscall_exit", 1e5},
    {"l1_dcache_load_misses", 1e7}, {"l1_dcache_loads", 1e8},
    {"l1_dcache_stores", 1e8},   {"branch_loads", 1e8},
    {"branch_load_misses", 1e6}, {"branch_misses", 1e6},
    {"cache_references", 1e8},   {"cache_misses", 1e7},
    {"emulation_faults", 1e1},
};

constexpr size_t kNumNamedEvents = sizeof(kEventSpecs) / sizeof(kEventSpecs[0]);
const char* const kTracepointSubsystems[] = {"block", "sched", "irq", "ext4"};

// Wires events and objectives with deterministic pseudo-random sparse
// structure, then injects fault rules.
void WireSystem(Builder* b, uint64_t seed, int num_events, bool include_heat,
                int num_fault_rules) {
  Rng rng(seed);
  const std::vector<size_t> options = b->OptionIds();

  // --- events ---------------------------------------------------------
  std::vector<size_t> events;
  std::map<size_t, std::vector<size_t>> event_option_inputs;
  for (int e = 0; e < num_events; ++e) {
    Mechanism mech;
    mech.bias = rng.Uniform(-0.3, 0.5);
    mech.noise_sigma = rng.Uniform(0.02, 0.08);
    double base = 0.0;
    std::string name;
    if (static_cast<size_t>(e) < kNumNamedEvents) {
      name = kEventSpecs[e].name;
      base = kEventSpecs[e].base;
    } else {
      const size_t sub = static_cast<size_t>(e) % 4;
      name = std::string("tracepoint_") + kTracepointSubsystems[sub] + "_" +
             std::to_string(e - static_cast<int>(kNumNamedEvents));
      base = std::pow(10.0, rng.Uniform(2.0, 6.0));
    }
    mech.base = base;
    // 2-4 option parents.
    std::vector<size_t> option_inputs;
    const int num_parents = static_cast<int>(rng.UniformInt(2, 4));
    for (int p = 0; p < num_parents; ++p) {
      MechanismTerm term;
      const size_t opt = options[rng.UniformInt(static_cast<uint64_t>(options.size()))];
      option_inputs.push_back(opt);
      term.inputs = {opt};
      term.coeff = rng.Uniform(0.4, 1.5) * (rng.Bernoulli(0.5) ? 1.0 : -1.0);
      term.saturating = rng.Bernoulli(0.3);
      mech.terms.push_back(std::move(term));
    }
    // One pairwise option interaction.
    if (rng.Bernoulli(0.6)) {
      MechanismTerm term;
      const size_t a = options[rng.UniformInt(static_cast<uint64_t>(options.size()))];
      size_t c = options[rng.UniformInt(static_cast<uint64_t>(options.size()))];
      if (a != c) {
        term.inputs = {a, c};
        term.coeff = rng.Uniform(0.5, 1.8) * (rng.Bernoulli(0.5) ? 1.0 : -1.0);
        term.saturating = rng.Bernoulli(0.4);
        mech.terms.push_back(std::move(term));
      }
    }
    // Occasionally depend on an earlier event (event chains).
    if (!events.empty() && rng.Bernoulli(0.35)) {
      MechanismTerm term;
      term.inputs = {events[rng.UniformInt(static_cast<uint64_t>(events.size()))]};
      term.coeff = rng.Uniform(0.3, 1.0);
      mech.terms.push_back(std::move(term));
    }
    const size_t node = b->AddNode(name, VarRole::kEvent, std::move(mech));
    event_option_inputs[node] = std::move(option_inputs);
    events.push_back(node);
  }

  // --- objectives -----------------------------------------------------
  std::map<size_t, std::vector<size_t>> objective_event_parents;
  auto make_objective = [&](const std::string& name, double base, double positivity) {
    Mechanism mech;
    mech.bias = rng.Uniform(0.4, 1.0);
    mech.noise_sigma = rng.Uniform(0.02, 0.05);
    mech.base = base;
    // Sparse, strong dependencies (cf. the learned graphs in the paper's
    // Fig. 6 / Table 3): a handful of event parents with sizeable
    // coefficients keeps every causal link statistically visible at the
    // small sample sizes Unicorn operates with.
    const int num_event_parents = static_cast<int>(
        rng.UniformInt(3, std::min<int64_t>(5, static_cast<int64_t>(events.size()))));
    std::vector<size_t> shuffled = events;
    rng.Shuffle(&shuffled);
    std::vector<size_t> parents;
    for (int p = 0; p < num_event_parents; ++p) {
      MechanismTerm term;
      term.inputs = {shuffled[static_cast<size_t>(p)]};
      parents.push_back(shuffled[static_cast<size_t>(p)]);
      term.coeff = rng.Uniform(0.5, 1.3) * (rng.Bernoulli(positivity) ? 1.0 : -1.0);
      term.saturating = rng.Bernoulli(0.3);
      mech.terms.push_back(std::move(term));
    }
    // One direct option parent (e.g. a hardware frequency effect not
    // mediated by any measured event).
    {
      MechanismTerm term;
      term.inputs = {options[rng.UniformInt(static_cast<uint64_t>(options.size()))]};
      term.coeff = rng.Uniform(0.4, 1.0) * (rng.Bernoulli(0.5) ? 1.0 : -1.0);
      mech.terms.push_back(std::move(term));
    }
    const size_t node = b->AddNode(name, VarRole::kObjective, std::move(mech));
    objective_event_parents[node] = std::move(parents);
    return node;
  };

  const size_t latency = make_objective(kLatencyName, 20.0, 0.75);
  const size_t energy = make_objective(kEnergyName, 120.0, 0.7);
  size_t heat = static_cast<size_t>(-1);
  if (include_heat) {
    heat = make_objective(kHeatName, 45.0, 0.65);
  }

  // --- fault rules ------------------------------------------------------
  // Configuration cliffs: conjunction of normalized option ranges. Most rules
  // involve >= 4 options (matching the paper's observation that 411 of 494
  // faults had five or more root causes), a few involve 1-2.
  for (int r = 0; r < num_fault_rules; ++r) {
    FaultRule rule;
    rule.name = "rule_" + std::to_string(r);
    int size = 0;
    if (r == 0) {
      size = 1;  // the rare single-root-cause fault
    } else if (r % 5 == 1) {
      size = static_cast<int>(rng.UniformInt(2, 3));
    } else {
      size = static_cast<int>(rng.UniformInt(5, 6));
    }
    // Target objective: mostly latency or energy; every 4th rule also gets a
    // twin rule on the other objective -> multi-objective faults.
    const bool on_latency = rng.Bernoulli(0.5);
    rule.objective = on_latency ? latency : energy;
    rule.penalty = rng.Uniform(3.0, 8.0);

    // Misconfigurations involve *influential* options (the paper's case
    // studies are CUDA flags and hardware clocks, not dead knobs): bias the
    // condition pool toward options that already drive the events feeding
    // the penalized objective.
    std::vector<size_t> influential;
    for (size_t e : objective_event_parents[rule.objective]) {
      for (size_t opt : event_option_inputs[e]) {
        if (std::find(influential.begin(), influential.end(), opt) == influential.end()) {
          influential.push_back(opt);
        }
      }
    }
    std::vector<size_t> pool;
    if (size <= 3) {
      // Small rules must stay rare: anchor them on continuous options where
      // a narrow window gives a low trigger probability.
      for (size_t opt : options) {
        if (b->vars()[opt].type == VarType::kContinuous) {
          pool.push_back(opt);
        }
      }
      rng.Shuffle(&pool);
    } else {
      // ~2/3 influential options, the rest random.
      rng.Shuffle(&influential);
      const size_t take = std::min(influential.size(), static_cast<size_t>(size * 2 / 3 + 1));
      pool.assign(influential.begin(), influential.begin() + static_cast<long>(take));
      std::vector<size_t> rest = options;
      rng.Shuffle(&rest);
      for (size_t opt : rest) {
        if (std::find(pool.begin(), pool.end(), opt) == pool.end()) {
          pool.push_back(opt);
        }
      }
    }
    if (pool.size() < static_cast<size_t>(size)) {
      pool = options;
      rng.Shuffle(&pool);
    }
    for (int c = 0; c < size && c < static_cast<int>(pool.size()); ++c) {
      FaultCondition cond;
      cond.var = pool[static_cast<size_t>(c)];
      // Windows are anchored on actual option levels so that every condition
      // is satisfiable; widths keep the per-rule trigger probability in the
      // low-percent range (the 99th-percentile tail the paper debugs).
      const Variable& var = b->vars()[cond.var];
      const double lo_dom = var.domain.front();
      const double hi_dom = var.domain.back();
      if (var.type == VarType::kContinuous) {
        double width = 0.0;
        if (size == 1) {
          width = rng.Uniform(0.010, 0.020);  // single-cause faults stay rare
        } else if (size <= 3) {
          width = rng.Uniform(0.08, 0.15);
        } else {
          width = rng.Uniform(0.3, 0.45);
        }
        const double start = rng.Uniform(0.0, 1.0 - width);
        cond.lo = start;
        cond.hi = start + width;
      } else {
        // Pick a single target level; the window covers exactly it in
        // normalized space.
        const size_t idx = rng.UniformInt(static_cast<uint64_t>(var.domain.size()));
        const double span = hi_dom > lo_dom ? hi_dom - lo_dom : 1.0;
        const double center = (var.domain[idx] - lo_dom) / span;
        const double half = 0.02;
        cond.lo = std::max(0.0, center - half);
        cond.hi = std::min(1.0, center + half);
      }
      rule.conditions.push_back(cond);
    }
    // Root-cause options must be observable outside the cliff too: each
    // condition option also influences (with high probability) an event that
    // feeds the penalized objective. Misconfigured knobs in real systems
    // shift performance continuously in addition to falling off cliffs —
    // this is what lets causal discovery put them on causal paths.
    const auto& feed_events = objective_event_parents[rule.objective];
    for (const auto& cond : rule.conditions) {
      if (feed_events.empty() || !rng.Bernoulli(0.85)) {
        continue;
      }
      MechanismTerm term;
      term.inputs = {cond.var};
      term.coeff = rng.Uniform(0.35, 0.9) * (rng.Bernoulli(0.5) ? 1.0 : -1.0);
      term.saturating = rng.Bernoulli(0.25);
      b->AddTermTo(feed_events[rng.UniformInt(static_cast<uint64_t>(feed_events.size()))],
                   std::move(term));
    }
    const bool twin = r % 4 == 0;
    FaultRule twin_rule = rule;
    b->AddRule(std::move(rule));
    if (twin) {
      twin_rule.name += "_twin";
      twin_rule.objective = on_latency ? energy : latency;
      twin_rule.penalty = rng.Uniform(2.5, 6.0);
      b->AddRule(std::move(twin_rule));
    } else if (include_heat && r % 7 == 3) {
      twin_rule.name += "_heat";
      twin_rule.objective = heat;
      twin_rule.penalty = rng.Uniform(1.5, 3.0);
      b->AddRule(std::move(twin_rule));
    }
  }
}

void AddDeepstreamSoftwareOptions(Builder* b) {
  // Decoder (appendix Table 11).
  b->AddOption("crf", VarType::kDiscrete, {13, 18, 24, 30});
  b->AddOption("bitrate", VarType::kDiscrete, {1000, 2000, 2800, 5000});
  b->AddOption("buffer_size", VarType::kDiscrete, {6000, 8000, 20000});
  b->AddOption("preset", VarType::kDiscrete, {0, 1, 2, 3, 4});
  b->AddOption("maximum_rate", VarType::kDiscrete, {600, 1000});
  b->AddBinaryOption("refresh");
  // Stream muxer.
  b->AddOption("mux_batch_size", VarType::kDiscrete, {1, 5, 10, 20, 30});
  b->AddOption("batched_push_timeout", VarType::kDiscrete, {0, 5, 10, 20});
  b->AddOption("num_surfaces_per_frame", VarType::kDiscrete, {1, 2, 3, 4});
  b->AddBinaryOption("enable_padding");
  b->AddOption("buffer_pool_size", VarType::kDiscrete, {1, 8, 16, 26});
  b->AddBinaryOption("sync_inputs");
  b->AddOption("nvbuf_memory_type", VarType::kDiscrete, {0, 1, 2, 3});
  // Nvinfer.
  b->AddOption("net_scale_factor", VarType::kContinuous, {0.01, 10.0});
  b->AddOption("infer_batch_size", VarType::kDiscrete, {1, 15, 30, 60});
  b->AddOption("interval", VarType::kDiscrete, {1, 5, 10, 20});
  b->AddBinaryOption("offset");
  b->AddBinaryOption("process_mode");
  b->AddBinaryOption("use_dla_core");
  b->AddBinaryOption("enable_dla");
  b->AddBinaryOption("enable_dbscan");
  b->AddOption("secondary_reinfer_interval", VarType::kDiscrete, {0, 5, 10, 20});
  b->AddBinaryOption("maintain_aspect_ratio");
  // Nvtracker.
  b->AddOption("iou_threshold", VarType::kContinuous, {0, 60});
  b->AddBinaryOption("enable_batch_process");
  b->AddBinaryOption("enable_past_frame");
  b->AddOption("compute_hw", VarType::kDiscrete, {0, 1, 2, 3, 4});
  // Compiler option from the Fig. 12 case study.
  b->AddBinaryOption("cuda_static");
}

void AddDnnOptions(Builder* b) {
  // Appendix Table 5 plus the deployment-stack options every DNN system has.
  b->AddOption("memory_growth", VarType::kDiscrete, {-1, 0.5, 0.9});
  b->AddBinaryOption("logical_devices");
}

void AddX264Options(Builder* b) {
  b->AddOption("crf", VarType::kDiscrete, {13, 18, 24, 30});
  b->AddOption("bitrate", VarType::kDiscrete, {1000, 2000, 2800, 5000});
  b->AddOption("buffer_size", VarType::kDiscrete, {6000, 8000, 20000});
  b->AddOption("preset", VarType::kDiscrete, {0, 1, 2, 3, 4});
  b->AddOption("maximum_rate", VarType::kDiscrete, {600, 1000});
  b->AddBinaryOption("refresh");
}

void AddSqliteOptions(Builder* b, bool extended) {
  b->AddOption("pragma_temp_store", VarType::kDiscrete, {0, 1, 2});
  b->AddOption("pragma_journal_mode", VarType::kDiscrete, {0, 1, 2, 3, 4});
  b->AddOption("pragma_synchronous", VarType::kDiscrete, {0, 1, 2});
  b->AddOption("pragma_locking_mode", VarType::kBinary, {0, 1});
  b->AddOption("pragma_cache_size", VarType::kDiscrete, {0, 1000, 2000, 4000, 10000});
  b->AddOption("pragma_page_size", VarType::kDiscrete, {2048, 4096, 8192});
  b->AddOption("pragma_max_page_count", VarType::kDiscrete, {32, 64});
  b->AddOption("pragma_mmap_size", VarType::kDiscrete, {0, 30, 60});
  if (extended) {
    // The paper's scalability scenario uses all 242 modifiable options; the
    // extra knobs here stand in for the long tail of PRAGMA/compile-time
    // settings.
    for (int i = 0; i < 208; ++i) {
      b->AddOption("sqlite_knob_" + std::to_string(i), VarType::kDiscrete, {0, 1, 2});
    }
  }
}

}  // namespace

const char* SystemName(SystemId id) {
  switch (id) {
    case SystemId::kDeepstream:
      return "deepstream";
    case SystemId::kXception:
      return "xception";
    case SystemId::kBert:
      return "bert";
    case SystemId::kDeepspeech:
      return "deepspeech";
    case SystemId::kX264:
      return "x264";
    case SystemId::kSqlite:
      return "sqlite";
  }
  return "unknown";
}

SystemModel BuildSystem(SystemId id, const SystemSpec& spec) {
  Builder b;
  AddKernelOptions(&b);
  AddHardwareOptions(&b);
  uint64_t seed = 0;
  int num_rules = 12;
  switch (id) {
    case SystemId::kDeepstream:
      AddDeepstreamSoftwareOptions(&b);
      seed = 1001;
      num_rules = 14;
      break;
    case SystemId::kXception:
      AddDnnOptions(&b);
      seed = 2002;
      num_rules = 12;
      break;
    case SystemId::kBert:
      AddDnnOptions(&b);
      seed = 3003;
      num_rules = 12;
      break;
    case SystemId::kDeepspeech:
      AddDnnOptions(&b);
      seed = 4004;
      num_rules = 12;
      break;
    case SystemId::kX264:
      AddX264Options(&b);
      seed = 5005;
      num_rules = 12;
      break;
    case SystemId::kSqlite:
      AddSqliteOptions(&b, spec.extended_options);
      seed = 6006;
      num_rules = 12;
      break;
  }
  WireSystem(&b, seed, spec.num_events, spec.include_heat, num_rules);

  // Deepstream additionally carries the Fig. 12 case-study misconfiguration:
  // CUDA_STATIC off together with low hardware clocks tanks latency (the
  // real-world TX2 scene-detection regression the paper debugs in §5).
  if (id == SystemId::kDeepstream) {
    auto index_of = [&](const char* name) -> size_t {
      for (size_t i = 0; i < b.vars().size(); ++i) {
        if (b.vars()[i].name == name) {
          return i;
        }
      }
      return static_cast<size_t>(-1);
    };
    FaultRule rule;
    rule.name = "cuda_static_misconfig";
    rule.conditions = {
        {index_of("cuda_static"), 0.0, 0.4},        // CUDA_STATIC disabled
        {index_of("cpu_cores"), 0.0, 0.4},          // too few cores
        {index_of("cpu_frequency_ghz"), 0.0, 0.45},
        {index_of("emc_frequency_ghz"), 0.0, 0.5},
        {index_of("gpu_frequency_ghz"), 0.0, 0.5},
    };
    rule.objective = index_of(kLatencyName);
    rule.penalty = 7.0;  // the paper reports a 7x latency gain after the fix
    b.AddRule(std::move(rule));
    // The paper's diagnosis: CUDA_STATIC affects latency indirectly via
    // Context Switches. Mirror that mediation in the mechanisms.
    const size_t ctx = index_of("context_switches");
    const size_t cuda = index_of("cuda_static");
    const size_t lat = index_of(kLatencyName);
    if (ctx != static_cast<size_t>(-1)) {
      b.AddTermTo(ctx, MechanismTerm{{cuda}, -0.8, false});
      b.AddTermTo(lat, MechanismTerm{{ctx}, 0.6, false});
    }
  }
  return b.Build(SystemName(id));
}

Environment Tx1() {
  Environment env;
  env.name = "TX1";
  env.seed = 11;
  env.speed = 0.6;
  env.energy_factor = 1.3;
  return env;
}

Environment Tx2() {
  Environment env;
  env.name = "TX2";
  env.seed = 22;
  env.speed = 1.0;
  env.energy_factor = 1.0;
  return env;
}

Environment Xavier() {
  Environment env;
  env.name = "Xavier";
  env.seed = 33;
  env.speed = 1.8;
  env.energy_factor = 0.8;
  return env;
}

Workload DefaultWorkload() { return Workload{"default", 1.0}; }

Workload ImageWorkload(int thousands_of_images) {
  return Workload{std::to_string(thousands_of_images) + "k-images",
                  static_cast<double>(thousands_of_images) / 5.0};
}

}  // namespace unicorn
