// Builders for the six configurable systems of the paper (Table 1) plus the
// three Jetson-like hardware environments.
//
// Option spaces follow the paper's appendix:
//   Table 8  - 22 Linux kernel options (shared by all systems)
//   Table 9  - 4 hardware options (shared)
//   Table 11 - Deepstream software options (27, per component)
//   Table 5  - Xception/BERT/Deepspeech DNN options
//   Table 6  - x264 options
//   Table 7  - SQLite PRAGMA options (plus generated knobs in extended mode
//              to reach the paper's 242-option scalability scenario)
//   Table 10 - 19 perf events (extended mode generates tracepoint events up
//              to 288, as in Table 3)
// The causal wiring and mechanism coefficients are synthetic but
// deterministic per system (see DESIGN.md, substitution table).
#ifndef UNICORN_SYSMODEL_SYSTEMS_H_
#define UNICORN_SYSMODEL_SYSTEMS_H_

#include "sysmodel/system_model.h"

namespace unicorn {

enum class SystemId {
  kDeepstream,
  kXception,
  kBert,
  kDeepspeech,
  kX264,
  kSqlite,
};

const char* SystemName(SystemId id);

struct SystemSpec {
  int num_events = 19;            // 19 (curated) or up to 288 (with tracepoints)
  bool extended_options = false;  // SQLite: 242-option scalability scenario
  bool include_heat = true;       // third objective used by the appendix tables
};

SystemModel BuildSystem(SystemId id, const SystemSpec& spec = {});

// Hardware environments (distinct microarchitectures: structure-preserving
// coefficient changes plus speed/energy scaling).
Environment Tx1();
Environment Tx2();
Environment Xavier();

// Workloads. The Xception transfer experiment (Fig. 17) uses 5k/10k/20k/50k
// test images.
Workload DefaultWorkload();
Workload ImageWorkload(int thousands_of_images);

// Names of the objective columns produced by every builder.
inline constexpr const char* kLatencyName = "latency";
inline constexpr const char* kEnergyName = "energy";
inline constexpr const char* kHeatName = "heat";

}  // namespace unicorn

#endif  // UNICORN_SYSMODEL_SYSTEMS_H_
