// The measurement backend abstraction: one executor the fleet can dispatch
// configuration measurements to.
//
// The paper's experiment plane is a handful of NVIDIA Jetson boards, each a
// distinct hardware environment, each slow and occasionally flaky. A
// MeasurementBackend models one such executor: it takes a configuration and
// returns either the full measurement row or a *typed* failure — transient
// (retry, preferably elsewhere) or permanent (this backend is unhealthy or
// structurally cannot serve the request). The BackendFleet owns routing,
// queues, retries, and circuit-breaking on top of this interface; backends
// stay dumb and single-purpose:
//
//   InProcessBackend        today's PerformanceTask::measure, in this process
//   SimulatedDeviceBackend  a Jetson-like device profile: its own
//                           Environment-specific task, seeded service-time
//                           and failure injection
//   RecordedBackend         replays a persisted measurement table (cross-
//                           session reuse; supports only recorded configs)
#ifndef UNICORN_UNICORN_BACKEND_BACKEND_H_
#define UNICORN_UNICORN_BACKEND_BACKEND_H_

#include <string>
#include <vector>

namespace unicorn {

enum class MeasureStatus {
  kOk,         // row is the full measurement
  kTransient,  // this attempt failed; the request is retryable (elsewhere)
  kPermanent,  // this backend cannot serve the request; counts toward its
               // circuit-breaker
};

// What one measurement attempt on one backend produced.
struct MeasureOutcome {
  MeasureStatus status = MeasureStatus::kOk;
  std::vector<double> row;  // valid iff status == kOk
  std::string error;        // diagnostic for failures

  static MeasureOutcome Ok(std::vector<double> row) {
    MeasureOutcome outcome;
    outcome.row = std::move(row);
    return outcome;
  }
  static MeasureOutcome Transient(std::string error) {
    MeasureOutcome outcome;
    outcome.status = MeasureStatus::kTransient;
    outcome.error = std::move(error);
    return outcome;
  }
  static MeasureOutcome Permanent(std::string error) {
    MeasureOutcome outcome;
    outcome.status = MeasureStatus::kPermanent;
    outcome.error = std::move(error);
    return outcome;
  }
};

class MeasurementBackend {
 public:
  virtual ~MeasurementBackend() = default;

  virtual const std::string& name() const = 0;

  // Worker threads the fleet runs against this backend (a device that can
  // measure two configurations at once reports 2).
  virtual int concurrency() const { return 1; }

  // Capability check used by the fleet's routing: can this backend measure
  // this configuration at all? (A RecordedBackend only supports recorded
  // configurations.) Must be cheap and safe to call under the fleet lock.
  virtual bool Supports(const std::vector<double>& config) const {
    (void)config;
    return true;
  }

  // Measures one configuration. `attempt` is the request's 1-based global
  // try number — simulated backends derive deterministic failure/service
  // draws from (backend seed, config, attempt), so a retry rolls fresh
  // randomness instead of failing forever. Called concurrently from up to
  // concurrency() fleet worker threads; implementations must be thread-safe.
  virtual MeasureOutcome Measure(const std::vector<double>& config, int attempt) = 0;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_BACKEND_BACKEND_H_
