// The measurement backend abstraction: one executor the fleet can dispatch
// configuration measurements to.
//
// The paper's experiment plane is a handful of NVIDIA Jetson boards, each a
// distinct hardware environment, each slow and occasionally flaky. A
// MeasurementBackend models one such executor: it takes a configuration and
// returns either the full measurement row or a *typed* failure — transient
// (retry, preferably elsewhere) or permanent (this backend is unhealthy or
// structurally cannot serve the request). The BackendFleet owns routing,
// queues, retries, and circuit-breaking on top of this interface; backends
// stay dumb and single-purpose:
//
//   InProcessBackend        today's PerformanceTask::measure, in this process
//   SimulatedDeviceBackend  a Jetson-like device profile: its own
//                           Environment-specific task, seeded service-time
//                           and failure injection
//   RecordedBackend         replays a persisted measurement table (cross-
//                           session reuse; supports only recorded configs)
#ifndef UNICORN_UNICORN_BACKEND_BACKEND_H_
#define UNICORN_UNICORN_BACKEND_BACKEND_H_

#include <string>
#include <vector>

namespace unicorn {

/// Outcome classification of one measurement attempt.
enum class MeasureStatus {
  kOk,         ///< row is the full measurement
  kTransient,  ///< this attempt failed; the request is retryable (elsewhere)
  kPermanent,  ///< this backend cannot serve the request; counts toward its
               ///< circuit-breaker
};

/// What one measurement attempt on one backend produced. Plain value type;
/// no thread-safety concerns of its own.
struct MeasureOutcome {
  MeasureStatus status = MeasureStatus::kOk;
  std::vector<double> row;  ///< valid iff status == kOk
  std::string error;        ///< diagnostic for failures; empty on success

  static MeasureOutcome Ok(std::vector<double> row) {
    MeasureOutcome outcome;
    outcome.row = std::move(row);
    return outcome;
  }
  static MeasureOutcome Transient(std::string error) {
    MeasureOutcome outcome;
    outcome.status = MeasureStatus::kTransient;
    outcome.error = std::move(error);
    return outcome;
  }
  static MeasureOutcome Permanent(std::string error) {
    MeasureOutcome outcome;
    outcome.status = MeasureStatus::kPermanent;
    outcome.error = std::move(error);
    return outcome;
  }
};

/// One measurement executor behind the fleet. Implementations are
/// constructed, handed to a BackendFleet, and from then on called only by
/// the fleet's worker threads; every method below states what it must
/// tolerate under that regime.
class MeasurementBackend {
 public:
  virtual ~MeasurementBackend() = default;

  /// Stable human-readable identifier (FleetStats rows key on it).
  /// Thread-safety: must be safe to call concurrently with Measure; the
  /// returned reference must stay valid for the backend's lifetime.
  virtual const std::string& name() const = 0;

  /// Worker threads the fleet runs against this backend (a device that can
  /// measure two configurations at once reports 2). Values < 1 are treated
  /// as 1 by the fleet. Must be constant for the backend's lifetime.
  virtual int concurrency() const { return 1; }

  /// Environment tag for environment-aware routing: a request submitted with
  /// a non-empty environment is served only by backends whose tag matches
  /// exactly. The default (empty) means "unspecified": such a backend serves
  /// only untagged requests, and untagged requests may land anywhere. For a
  /// transfer fleet this is how source-hardware requests are pinned to the
  /// source recording and target requests to live target devices.
  /// Thread-safety: called under the fleet lock — must be cheap, non-
  /// blocking, and constant for the backend's lifetime.
  virtual const std::string& environment() const {
    static const std::string kUnspecified;
    return kUnspecified;
  }

  /// Capability check used by the fleet's routing: can this backend measure
  /// this configuration at all? (A RecordedBackend only supports recorded
  /// configurations.)
  /// Thread-safety: called under the fleet lock — must be cheap, non-
  /// blocking, and must not call back into the fleet.
  virtual bool Supports(const std::vector<double>& config) const {
    (void)config;
    return true;
  }

  /// Measures one configuration. `attempt` is the request's 1-based global
  /// try number — simulated backends derive deterministic failure/service
  /// draws from (backend seed, config, attempt), so a retry rolls fresh
  /// randomness instead of failing forever.
  /// Failure: report failures through the returned MeasureOutcome (typed
  /// transient/permanent), never by throwing — an exception escaping
  /// Measure terminates the fleet worker (and the process).
  /// Thread-safety: called concurrently from up to concurrency() fleet
  /// worker threads; implementations must be thread-safe.
  virtual MeasureOutcome Measure(const std::vector<double>& config, int attempt) = 0;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_BACKEND_BACKEND_H_
