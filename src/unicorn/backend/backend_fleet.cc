#include "unicorn/backend/backend_fleet.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace unicorn {
namespace {

using Clock = std::chrono::steady_clock;

// Exclusion is a 64-bit mask; fleets larger than that simply stop excluding
// the overflow backends (routing still works, retries may revisit them).
uint64_t BackendBit(size_t slot) { return slot < 64 ? (uint64_t{1} << slot) : 0; }

// Process-wide fleet instruments (shared across BackendFleet instances; the
// per-instance FleetStats ledger stays per-fleet). The gauges are the live
// view the ISSUE's satellite asks for: queue depth / in-flight / busy time
// sampleable DURING a run, not just at campaign end.
struct FleetMetrics {
  obs::Counter* submitted;
  obs::Counter* completed;
  obs::Counter* retries;
  obs::Counter* rerouted;
  obs::Counter* failed;
  obs::Counter* circuit_breaks;
  obs::Gauge* queue_depth;
  obs::Gauge* in_flight;
  obs::Gauge* busy_seconds;
  obs::Histogram* queue_wait_seconds;
  obs::Histogram* service_seconds;
};

const FleetMetrics& Metrics() {
  static const FleetMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return FleetMetrics{registry.Counter("fleet.submitted"),
                        registry.Counter("fleet.completed"),
                        registry.Counter("fleet.retries"),
                        registry.Counter("fleet.rerouted"),
                        registry.Counter("fleet.failed"),
                        registry.Counter("fleet.circuit_breaks"),
                        registry.Gauge("fleet.queue_depth"),
                        registry.Gauge("fleet.in_flight"),
                        registry.Gauge("fleet.busy_seconds"),
                        registry.Histogram("fleet.queue_wait_seconds"),
                        registry.Histogram("fleet.service_seconds")};
  }();
  return metrics;
}

}  // namespace

BackendFleet::BackendFleet(std::vector<std::unique_ptr<MeasurementBackend>> backends,
                           FleetOptions options)
    : options_(options),
      // The completion stream never exceeds the number of outstanding
      // requests; its capacity only matters as a ForcePush-free fast path.
      completions_(options.queue_capacity * (backends.empty() ? 1 : backends.size()) + 1) {
  slots_.reserve(backends.size());
  for (auto& backend : backends) {
    auto slot = std::make_unique<Slot>();
    slot->counters.name = backend->name();
    slot->counters.environment = backend->environment();
    slot->backend = std::move(backend);
    slots_.push_back(std::move(slot));
  }
  for (size_t s = 0; s < slots_.size(); ++s) {
    // At least one worker per slot: a zero-worker backend would still be
    // routable and swallow requests forever.
    const int workers = std::max(1, slots_[s]->backend->concurrency());
    for (int w = 0; w < workers; ++w) {
      workers_.emplace_back([this, s] { WorkerLoop(s); });
    }
  }
}

BackendFleet::~BackendFleet() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (auto& slot : slots_) {
      slot->work_cv.notify_all();
    }
    space_cv_.notify_all();
  }
  completions_.Close();
  for (auto& worker : workers_) {
    worker.join();
  }
}

int BackendFleet::Route(const Request& request, bool respect_excluded,
                        bool respect_capacity) const {
  int best = -1;
  size_t best_load = std::numeric_limits<size_t>::max();
  for (size_t s = 0; s < slots_.size(); ++s) {
    const Slot& slot = *slots_[s];
    if (slot.broken) {
      continue;
    }
    if (respect_excluded && (request.excluded & BackendBit(s)) != 0) {
      continue;
    }
    if (respect_capacity && slot.queue.size() >= options_.queue_capacity) {
      continue;
    }
    // Environment-aware routing: a tagged request binds to exactly-matching
    // backends (a recorded source row must come from the source recording,
    // a target measurement from a target device); untagged goes anywhere.
    if (!request.environment.empty() &&
        slot.backend->environment() != request.environment) {
      continue;
    }
    if (!slot.backend->Supports(request.config)) {
      continue;
    }
    const size_t load = slot.queue.size() + slot.in_flight;
    if (load < best_load) {  // ties go to the lowest index
      best_load = load;
      best = static_cast<int>(s);
    }
  }
  return best;
}

void BackendFleet::Enqueue(size_t slot_index, Request request) {
  Slot& slot = *slots_[slot_index];
  ++slot.counters.dispatched;
  request.enqueued = Clock::now();
  slot.queue.push_back(std::move(request));
  slot.counters.max_queue_depth = std::max(slot.counters.max_queue_depth, slot.queue.size());
  Metrics().queue_depth->Add(1.0);
  slot.work_cv.notify_one();
}

bool BackendFleet::Redispatch(Request request, size_t from_slot) {
  int target = Route(request, /*respect_excluded=*/true, /*respect_capacity=*/false);
  if (target < 0) {
    // Everything preferable is excluded: retrying on an excluded backend
    // (fresh attempt number, fresh failure draw) beats giving up.
    target = Route(request, /*respect_excluded=*/false, /*respect_capacity=*/false);
  }
  if (target < 0) {
    CompleteFailure(request, -1,
                    MeasureOutcome::Permanent("no eligible backend (all circuit-broken, "
                                              "excluded, environment-mismatched, or "
                                              "unsupporting)"),
                    0.0);
    return false;
  }
  if (static_cast<size_t>(target) != from_slot) {
    ++totals_.rerouted;
    Metrics().rerouted->Increment();
  }
  Enqueue(static_cast<size_t>(target), std::move(request));
  return true;
}

void BackendFleet::CompleteOk(const Request& request, size_t slot_index,
                              std::vector<double> row, double seconds) {
  ++slots_[slot_index]->counters.completed;
  ++totals_.completed;
  Metrics().completed->Increment();
  FleetCompletion done;
  done.ticket = request.ticket;
  done.config = request.config;
  done.environment = request.environment;
  done.outcome = MeasureOutcome::Ok(std::move(row));
  done.attempts = request.attempt;
  done.backend = static_cast<int>(slot_index);
  done.measure_seconds = seconds;
  --outstanding_;
  completions_.ForcePush(std::move(done));
}

void BackendFleet::CompleteFailure(const Request& request, int slot_index,
                                   MeasureOutcome outcome, double seconds) {
  ++totals_.failed;
  Metrics().failed->Increment();
  FleetCompletion done;
  done.ticket = request.ticket;
  done.config = request.config;
  done.environment = request.environment;
  done.outcome = std::move(outcome);
  done.attempts = request.attempt;
  done.backend = slot_index;
  done.measure_seconds = seconds;
  --outstanding_;
  completions_.ForcePush(std::move(done));
}

void BackendFleet::BreakCircuit(size_t slot_index) {
  Slot& slot = *slots_[slot_index];
  slot.broken = true;
  slot.counters.circuit_broken = true;
  ++totals_.circuit_breaks;
  Metrics().circuit_breaks->Increment();
  obs::trace::Instant("fleet.circuit_break", "fleet", "backend",
                      static_cast<double>(slot_index));
  // Nothing queued behind a retired backend is lost: migrate every pending
  // request (no attempt spent — they were never measured here).
  std::deque<Request> pending;
  pending.swap(slot.queue);
  for (auto& request : pending) {
    request.excluded |= BackendBit(slot_index);
    Redispatch(std::move(request), slot_index);
  }
  space_cv_.notify_all();
}

uint64_t BackendFleet::Submit(std::vector<double> config, std::string environment) {
  std::unique_lock<std::mutex> lock(mu_);
  Request request;
  const uint64_t ticket = next_ticket_++;
  request.ticket = ticket;
  request.config = std::move(config);
  request.environment = std::move(environment);
  ++totals_.submitted;
  ++outstanding_;
  Metrics().submitted->Increment();
  for (;;) {
    if (stop_) {
      CompleteFailure(request, -1, MeasureOutcome::Permanent("fleet shut down"), 0.0);
      return ticket;
    }
    const int target = Route(request, /*respect_excluded=*/true, /*respect_capacity=*/true);
    if (target >= 0) {
      Enqueue(static_cast<size_t>(target), std::move(request));
      return ticket;
    }
    if (Route(request, /*respect_excluded=*/true, /*respect_capacity=*/false) < 0) {
      // Not a capacity problem: no backend can ever serve this request.
      CompleteFailure(request, -1,
                      MeasureOutcome::Permanent("no eligible backend (all circuit-broken, "
                                                "environment-mismatched, or unsupporting)"),
                      0.0);
      return ticket;
    }
    space_cv_.wait(lock);  // eligible backends exist but their queues are full
  }
}

bool BackendFleet::WaitCompletion(FleetCompletion* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (outstanding_ == 0 && completions_.size() == 0) {
      return false;
    }
  }
  return completions_.Pop(out);
}

bool BackendFleet::WaitCompletionFor(FleetCompletion* out, double timeout_seconds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (outstanding_ == 0 && completions_.size() == 0) {
      return false;
    }
  }
  return completions_.PopFor(
      out, std::chrono::duration<double>(timeout_seconds < 0.0 ? 0.0 : timeout_seconds));
}

size_t BackendFleet::Outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outstanding_;
}

FleetStats BackendFleet::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetStats stats = totals_;
  stats.backends.reserve(slots_.size());
  for (const auto& slot : slots_) {
    BackendCounters counters = slot->counters;
    counters.queue_depth = slot->queue.size();
    counters.in_flight = slot->in_flight;
    stats.backends.push_back(std::move(counters));
  }
  return stats;
}

void BackendFleet::WorkerLoop(size_t slot_index) {
  Slot& slot = *slots_[slot_index];
  obs::trace::SetThreadName("fleet/" + slot.backend->name());
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    slot.work_cv.wait(lock, [&] { return stop_ || !slot.queue.empty(); });
    if (stop_) {
      return;
    }
    Request request = std::move(slot.queue.front());
    slot.queue.pop_front();
    ++slot.in_flight;
    space_cv_.notify_all();
    lock.unlock();

    const double queue_wait =
        std::chrono::duration<double>(Clock::now() - request.enqueued).count();
    Metrics().queue_depth->Add(-1.0);
    Metrics().in_flight->Add(1.0);
    Metrics().queue_wait_seconds->Record(queue_wait);
    obs::trace::Begin("fleet.service", "fleet");
    const auto start = Clock::now();
    MeasureOutcome outcome = slot.backend->Measure(request.config, request.attempt);
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    obs::trace::End("queue_wait_ms", queue_wait * 1e3, "attempt",
                    static_cast<double>(request.attempt));
    Metrics().in_flight->Add(-1.0);
    Metrics().busy_seconds->Add(seconds);
    Metrics().service_seconds->Record(seconds);

    lock.lock();
    --slot.in_flight;
    slot.counters.busy_seconds += seconds;
    if (stop_) {
      return;  // shutdown mid-flight: the outcome is abandoned with the rest
    }
    switch (outcome.status) {
      case MeasureStatus::kOk:
        CompleteOk(request, slot_index, std::move(outcome.row), seconds);
        break;
      case MeasureStatus::kTransient:
      case MeasureStatus::kPermanent: {
        if (outcome.status == MeasureStatus::kTransient) {
          ++slot.counters.transient_failures;
        } else {
          ++slot.counters.permanent_failures;
          if (!slot.broken &&
              slot.counters.permanent_failures >=
                  static_cast<size_t>(options_.circuit_break_after)) {
            BreakCircuit(slot_index);
          }
        }
        if (request.attempt >= options_.max_attempts) {
          outcome.error += " (gave up after " + std::to_string(request.attempt) + " attempts)";
          CompleteFailure(request, static_cast<int>(slot_index), std::move(outcome), seconds);
          break;
        }
        ++request.attempt;
        request.excluded |= BackendBit(slot_index);
        ++totals_.retries;
        Metrics().retries->Increment();
        obs::trace::Instant("fleet.retry", "fleet", "attempt",
                            static_cast<double>(request.attempt));
        Redispatch(std::move(request), slot_index);
        break;
      }
    }
  }
}

}  // namespace unicorn
