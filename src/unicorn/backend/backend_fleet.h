// The fleet dispatcher: several measurement backends behind one submit/
// completion interface — the experiment plane as the paper actually ran it
// (a rack of Jetson boards), not an idealized serial oracle.
//
// Each backend gets a bounded work queue and `concurrency()` worker threads.
// Submission routes to the least-loaded backend that supports the
// configuration, matches the request's environment tag, is not
// circuit-broken, and is not in the request's excluded set; Submit blocks
// when every eligible queue is full (bounded backpressure toward the
// caller). Failures are typed:
//
//   transient  — the attempt is retried, preferably on a different backend
//                (the failing backend joins the request's excluded set),
//                with a fresh global attempt number, up to max_attempts;
//   permanent  — counts toward the backend's circuit breaker; at
//                circuit_break_after permanent failures the backend is
//                retired and everything still in its queue is rerouted, so
//                no queued request is lost.
//
// Every outcome lands on one completion stream (a BoundedQueue) tagged with
// the submit ticket; callers reassemble order from tickets. The FleetStats
// ledger tracks per-backend dispatched/completed/failure counts, queue
// depths, and busy time.
//
// Environment-aware routing: a request submitted with a non-empty
// environment is eligible only for backends whose environment() matches it
// exactly; an untagged request may land on any backend. This is how a
// transfer campaign pins source-hardware requests to the RecordedBackend
// replaying the source recording while target requests go to live target
// devices — and why "Unicorn (Reuse)" can guarantee zero fresh
// source-hardware measurements.
//
// Determinism: routing reacts to live queue depths, so WHICH backend
// measures a configuration depends on timing — but with homogeneous
// backends (same task/Environment) and pure per-configuration measurement,
// the ROWS are identical no matter how requests are routed or retried. The
// broker's fleet-backed MeasureBatch builds its bit-identical-to-serial
// guarantee on exactly that, with ticket-ordered reassembly on top.
#ifndef UNICORN_UNICORN_BACKEND_BACKEND_FLEET_H_
#define UNICORN_UNICORN_BACKEND_BACKEND_FLEET_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "unicorn/backend/backend.h"
#include "util/bounded_queue.h"

namespace unicorn {

/// Fleet-wide knobs, fixed at construction. Plain value type.
struct FleetOptions {
  /// Per-backend queue bound; Submit blocks while every eligible backend's
  /// queue is full. Internal re-dispatches (retries, circuit-break
  /// migration) bypass the bound rather than risk deadlocking a worker.
  size_t queue_capacity = 64;
  /// Total measurement tries per request across all backends.
  int max_attempts = 4;
  /// Permanent failures a backend may produce before it is retired.
  int circuit_break_after = 3;
};

/// Per-backend slice of the FleetStats ledger. Snapshot value type: returned
/// by BackendFleet::stats(), never shared live.
struct BackendCounters {
  std::string name;
  std::string environment;        ///< routing tag ("" = untagged)
  size_t dispatched = 0;          ///< requests enqueued to this backend
  size_t completed = 0;           ///< successful measurements
  size_t transient_failures = 0;  ///< attempts lost to transient faults here
  size_t permanent_failures = 0;  ///< permanent faults here
  size_t queue_depth = 0;         ///< at snapshot time
  size_t max_queue_depth = 0;     ///< high-water mark
  size_t in_flight = 0;           ///< measuring right now, at snapshot time
  double busy_seconds = 0.0;      ///< wall time inside Measure on this backend
  bool circuit_broken = false;
};

/// Consistent snapshot of the fleet ledger (see BackendFleet::stats()).
struct FleetStats {
  std::vector<BackendCounters> backends;
  size_t submitted = 0;
  size_t completed = 0;       ///< requests that ultimately succeeded
  size_t retries = 0;         ///< re-dispatches after a failed attempt
  size_t rerouted = 0;        ///< re-dispatches that moved to another backend
  size_t failed = 0;          ///< requests that ultimately failed
  size_t circuit_breaks = 0;  ///< backends retired

  size_t TotalMeasured() const {
    size_t total = 0;
    for (const auto& b : backends) {
      total += b.completed + b.transient_failures + b.permanent_failures;
    }
    return total;
  }
};

/// One finished request on the completion stream. Value type.
struct FleetCompletion {
  uint64_t ticket = 0;
  std::vector<double> config;
  std::string environment;  ///< the tag the request was submitted with
  MeasureOutcome outcome;   ///< kOk with the row, or the final typed failure
  int attempts = 0;         ///< measurement tries spent
  int backend = -1;         ///< backend index of the final outcome (-1: none)
  double measure_seconds = 0.0;  ///< busy time of the final attempt
};

/// The dispatcher. Thread-safety: Submit and stats() may be called from any
/// thread concurrently with the worker threads; WaitCompletion is
/// single-consumer (exactly one thread drains the stream). The destructor
/// must not race a concurrent Submit/WaitCompletion by the owner's design.
class BackendFleet {
 public:
  BackendFleet(std::vector<std::unique_ptr<MeasurementBackend>> backends,
               FleetOptions options = {});
  /// Stops workers; outstanding requests are abandoned (their completions
  /// never surface — drain before destroying if you need them).
  ~BackendFleet();

  BackendFleet(const BackendFleet&) = delete;
  BackendFleet& operator=(const BackendFleet&) = delete;

  /// Routes and enqueues one request, returning its ticket. `environment`
  /// non-empty restricts routing to exactly-matching backends. Blocks while
  /// every eligible backend's queue is at capacity.
  /// Failure: a request no backend can serve (all broken, unsupported, or
  /// environment-mismatched) never blocks and never throws — it completes
  /// immediately with a typed permanent failure on the stream.
  /// Thread-safety: safe from multiple threads.
  uint64_t Submit(std::vector<double> config, std::string environment = "");

  /// Blocks for the next completed request. Returns false when nothing is
  /// outstanding (every submitted request already streamed out) or the
  /// fleet is shutting down.
  /// Thread-safety: single-consumer — one thread drains the stream.
  bool WaitCompletion(FleetCompletion* out);

  /// Timed WaitCompletion: false when nothing completed within
  /// `timeout_seconds` (as well as when nothing is outstanding — callers
  /// that must distinguish check Outstanding()). The campaign scheduler uses
  /// it to multiplex the completion stream with its refresh-done queue.
  /// Thread-safety: single-consumer, same as WaitCompletion.
  bool WaitCompletionFor(FleetCompletion* out, double timeout_seconds);

  size_t Outstanding() const;
  size_t num_backends() const { return slots_.size(); }
  const MeasurementBackend& backend(size_t i) const { return *slots_[i]->backend; }

  /// Consistent snapshot of every counter (one lock acquisition).
  /// Thread-safety: safe from any thread.
  FleetStats stats() const;

 private:
  struct Request {
    uint64_t ticket = 0;
    std::vector<double> config;
    std::string environment;  // "" = any backend may serve it
    int attempt = 1;          // the try number the next dispatch will be
    uint64_t excluded = 0;    // bitmask of backends this request should avoid
    // Stamped by Enqueue; the worker's queue-wait observation (the time the
    // request sat in this backend's queue, reset on every re-dispatch).
    std::chrono::steady_clock::time_point enqueued{};
  };

  struct Slot {
    std::unique_ptr<MeasurementBackend> backend;
    std::deque<Request> queue;
    std::condition_variable work_cv;
    size_t in_flight = 0;
    BackendCounters counters;
    bool broken = false;
  };

  void WorkerLoop(size_t slot_index);
  // All of the below require mu_ held.
  int Route(const Request& request, bool respect_excluded, bool respect_capacity) const;
  void Enqueue(size_t slot_index, Request request);
  bool Redispatch(Request request, size_t from_slot);
  void CompleteOk(const Request& request, size_t slot_index, std::vector<double> row,
                  double seconds);
  void CompleteFailure(const Request& request, int slot_index, MeasureOutcome outcome,
                       double seconds);
  void BreakCircuit(size_t slot_index);

  const FleetOptions options_;
  mutable std::mutex mu_;
  std::condition_variable space_cv_;  // submitters waiting for queue space
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> workers_;
  BoundedQueue<FleetCompletion> completions_;
  uint64_t next_ticket_ = 1;
  size_t outstanding_ = 0;  // submitted, not yet on the completion stream
  FleetStats totals_;       // fleet-level counters (backends[] filled on demand)
  bool stop_ = false;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_BACKEND_BACKEND_FLEET_H_
