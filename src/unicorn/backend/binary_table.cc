#include "unicorn/backend/binary_table.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "util/binio.h"

#if defined(__unix__) || defined(__APPLE__)
#define UNICORN_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace unicorn {
namespace {

constexpr char kBinaryMagic[8] = {'U', 'N', 'I', 'C', 'T', 'B', 'L', '1'};
constexpr uint64_t kHeaderBytes = 64;

struct Header {
  uint64_t num_options = 0;
  uint64_t num_vars = 0;
  uint64_t num_rows = 0;
  uint64_t payload_offset = 0;
  uint64_t prov_offset = 0;
  uint64_t prov_bytes = 0;
};

// Validates the fixed-size header and the declared section geometry against
// the file size. Returns false on any inconsistency — a binary table is
// either exactly right or rejected wholesale.
bool ParseHeader(const unsigned char* base, uint64_t file_size, Header* h) {
  if (file_size < kHeaderBytes) {
    return false;
  }
  if (std::memcmp(base, kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    return false;
  }
  if (binio::LoadU32(base + 8) != binio::kEndianMarker) {
    return false;  // wrong-endian writer (or corrupt probe)
  }
  h->num_options = binio::LoadU64(base + 16);
  h->num_vars = binio::LoadU64(base + 24);
  h->num_rows = binio::LoadU64(base + 32);
  h->payload_offset = binio::LoadU64(base + 40);
  h->prov_offset = binio::LoadU64(base + 48);
  h->prov_bytes = binio::LoadU64(base + 56);
  if (h->num_options == 0 || h->num_vars < h->num_options) {
    return false;  // impossible shape, same rule as the CSV loader
  }
  if (h->payload_offset != kHeaderBytes) {
    return false;
  }
  const uint64_t cols = h->num_options + h->num_vars;
  if (cols < h->num_options) {
    return false;  // overflow
  }
  const uint64_t max_cells = std::numeric_limits<uint64_t>::max() / 8;
  if (h->num_rows != 0 && cols > max_cells / h->num_rows) {
    return false;  // payload size overflows
  }
  const uint64_t payload_bytes = cols * h->num_rows * 8;
  if (h->prov_offset != h->payload_offset + payload_bytes) {
    return false;
  }
  const uint64_t offsets_bytes = (h->num_rows + 1) * 8;
  if (h->prov_offset > file_size || offsets_bytes > file_size - h->prov_offset ||
      h->prov_bytes != file_size - h->prov_offset - offsets_bytes) {
    return false;  // truncated or padded file
  }
  // Provenance offsets: start at 0, monotone, end exactly at prov_bytes.
  const unsigned char* offs = base + h->prov_offset;
  uint64_t prev = binio::LoadU64(offs);
  if (prev != 0) {
    return false;
  }
  for (uint64_t r = 1; r <= h->num_rows; ++r) {
    const uint64_t cur = binio::LoadU64(offs + r * 8);
    if (cur < prev || cur > h->prov_bytes) {
      return false;
    }
    prev = cur;
  }
  if (prev != h->prov_bytes) {
    return false;
  }
  return true;
}

}  // namespace

bool SaveMeasurementTableBinary(const std::string& path, const MeasurementTable& table) {
  return SaveMeasurementTableBinary(path, table.num_options, table.num_vars, table.entries);
}

bool SaveMeasurementTableBinary(const std::string& path, size_t num_options, size_t num_vars,
                                const std::vector<MeasurementTable::Entry>& entries) {
  if (num_options == 0 || num_vars < num_options) {
    return false;
  }
  for (const auto& entry : entries) {
    if (entry.config.size() != num_options || entry.row.size() != num_vars) {
      return false;  // would not round-trip; reject before touching the disk
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  const uint64_t rows = entries.size();
  const uint64_t cols = static_cast<uint64_t>(num_options) + num_vars;
  uint64_t prov_bytes = 0;
  for (const auto& entry : entries) {
    prov_bytes += entry.provenance.size();
  }
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  binio::WriteU32(out, binio::kEndianMarker);
  binio::WriteU32(out, 0);  // reserved
  binio::WriteU64(out, num_options);
  binio::WriteU64(out, num_vars);
  binio::WriteU64(out, rows);
  binio::WriteU64(out, kHeaderBytes);
  binio::WriteU64(out, kHeaderBytes + cols * rows * 8);
  binio::WriteU64(out, prov_bytes);
  // Column-major payload: config columns, then row columns.
  for (size_t c = 0; c < num_options; ++c) {
    for (const auto& entry : entries) {
      binio::WriteDouble(out, entry.config[c]);
    }
  }
  for (size_t v = 0; v < num_vars; ++v) {
    for (const auto& entry : entries) {
      binio::WriteDouble(out, entry.row[v]);
    }
  }
  uint64_t offset = 0;
  binio::WriteU64(out, offset);
  for (const auto& entry : entries) {
    offset += entry.provenance.size();
    binio::WriteU64(out, offset);
  }
  for (const auto& entry : entries) {
    out.write(entry.provenance.data(),
              static_cast<std::streamsize>(entry.provenance.size()));
  }
  return static_cast<bool>(out);
}

BinaryTableWriter::BinaryTableWriter(size_t num_options, size_t num_vars)
    : num_options_(num_options), num_vars_(num_vars), columns_(num_options + num_vars) {}

bool BinaryTableWriter::AddRow(const std::vector<double>& config,
                               const std::vector<double>& row, std::string_view provenance) {
  if (config.size() != num_options_ || row.size() != num_vars_) {
    return false;
  }
  for (size_t c = 0; c < num_options_; ++c) {
    columns_[c].push_back(config[c]);
  }
  for (size_t v = 0; v < num_vars_; ++v) {
    columns_[num_options_ + v].push_back(row[v]);
  }
  prov_blob_.append(provenance.data(), provenance.size());
  prov_offsets_.push_back(prov_blob_.size());
  ++num_rows_;
  return true;
}

bool BinaryTableWriter::WriteFile(const std::string& path) const {
  if (num_options_ == 0 || num_vars_ < num_options_) {
    return false;  // same shape rule as the entry-list saver
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  const uint64_t rows = num_rows_;
  const uint64_t cols = static_cast<uint64_t>(num_options_) + num_vars_;
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  binio::WriteU32(out, binio::kEndianMarker);
  binio::WriteU32(out, 0);  // reserved
  binio::WriteU64(out, num_options_);
  binio::WriteU64(out, num_vars_);
  binio::WriteU64(out, rows);
  binio::WriteU64(out, kHeaderBytes);
  binio::WriteU64(out, kHeaderBytes + cols * rows * 8);
  binio::WriteU64(out, prov_blob_.size());
  for (const auto& column : columns_) {
    for (const double value : column) {
      binio::WriteDouble(out, value);
    }
  }
  binio::WriteU64(out, 0);
  for (const uint64_t offset : prov_offsets_) {
    binio::WriteU64(out, offset);
  }
  out.write(prov_blob_.data(), static_cast<std::streamsize>(prov_blob_.size()));
  return static_cast<bool>(out);
}

bool IsBinaryMeasurementTable(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[8];
  return in && in.read(magic, sizeof(magic)) &&
         std::memcmp(magic, kBinaryMagic, sizeof(magic)) == 0;
}

// --- BinaryTableView --------------------------------------------------------

BinaryTableView::~BinaryTableView() { Close(); }

BinaryTableView::BinaryTableView(BinaryTableView&& other) noexcept {
  *this = std::move(other);
}

BinaryTableView& BinaryTableView::operator=(BinaryTableView&& other) noexcept {
  if (this != &other) {
    Close();
    base_ = other.base_;
    file_size_ = other.file_size_;
    mapped_ = other.mapped_;
    num_options_ = other.num_options_;
    num_vars_ = other.num_vars_;
    num_rows_ = other.num_rows_;
    payload_ = other.payload_;
    prov_offsets_ = other.prov_offsets_;
    prov_blob_ = other.prov_blob_;
    other.base_ = nullptr;
    other.payload_ = nullptr;
    other.prov_offsets_ = nullptr;
    other.prov_blob_ = nullptr;
    other.file_size_ = 0;
    other.mapped_ = false;
    other.num_options_ = other.num_vars_ = other.num_rows_ = 0;
  }
  return *this;
}

void BinaryTableView::Close() {
  if (base_ != nullptr) {
#if UNICORN_HAVE_MMAP
    if (mapped_) {
      ::munmap(const_cast<unsigned char*>(base_), file_size_);
    } else {
      delete[] base_;
    }
#else
    delete[] base_;
#endif
  }
  base_ = nullptr;
  payload_ = nullptr;
  prov_offsets_ = nullptr;
  prov_blob_ = nullptr;
  file_size_ = 0;
  mapped_ = false;
  num_options_ = num_vars_ = num_rows_ = 0;
}

bool BinaryTableView::Open(const std::string& path) {
  Close();
  if (!binio::HostIsLittleEndian()) {
    return false;  // the view aliases file bytes as host doubles
  }
  const unsigned char* base = nullptr;
  uint64_t size = 0;
  bool mapped = false;
#if UNICORN_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size >= 0) {
      size = static_cast<uint64_t>(st.st_size);
      if (size > 0) {
        void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        if (map != MAP_FAILED) {
          base = static_cast<const unsigned char*>(map);
          mapped = true;
        }
      }
    }
    ::close(fd);
  }
#endif
  if (base == nullptr) {
    // Fallback: one read into an owned buffer (also the no-mmap build path).
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
      return false;
    }
    const std::streamoff end = in.tellg();
    if (end < 0) {
      return false;
    }
    size = static_cast<uint64_t>(end);
    auto* buffer = new unsigned char[size > 0 ? size : 1];
    in.seekg(0);
    if (size > 0 && !in.read(reinterpret_cast<char*>(buffer), static_cast<std::streamsize>(size))) {
      delete[] buffer;
      return false;
    }
    base = buffer;
    mapped = false;
  }
  Header h;
  if (!ParseHeader(base, size, &h)) {
#if UNICORN_HAVE_MMAP
    if (mapped) {
      ::munmap(const_cast<unsigned char*>(base), size);
    } else {
      delete[] base;
    }
#else
    delete[] base;
#endif
    return false;
  }
  base_ = base;
  file_size_ = size;
  mapped_ = mapped;
  num_options_ = h.num_options;
  num_vars_ = h.num_vars;
  num_rows_ = h.num_rows;
  // payload_offset is 64, so the doubles are 8-byte aligned both in the
  // page-aligned mapping and in the new[]'d buffer.
  payload_ = reinterpret_cast<const double*>(base_ + h.payload_offset);
  prov_offsets_ = base_ + h.prov_offset;
  prov_blob_ = prov_offsets_ + (num_rows_ + 1) * 8;
  return true;
}

std::string_view BinaryTableView::Provenance(size_t r) const {
  const uint64_t begin = binio::LoadU64(prov_offsets_ + r * 8);
  const uint64_t end = binio::LoadU64(prov_offsets_ + (r + 1) * 8);
  return std::string_view(reinterpret_cast<const char*>(prov_blob_) + begin,
                          static_cast<size_t>(end - begin));
}

void BinaryTableView::ReadRow(size_t r, std::vector<double>* out) const {
  out->resize(num_vars_);
  for (size_t v = 0; v < num_vars_; ++v) {
    (*out)[v] = RowCol(v)[r];
  }
}

bool LoadMeasurementTableBinary(const std::string& path, MeasurementTable* table) {
  BinaryTableView view;
  if (!view.Open(path)) {
    return false;
  }
  table->num_options = view.num_options();
  table->num_vars = view.num_vars();
  table->entries.clear();
  table->entries.resize(view.num_rows());
  for (size_t r = 0; r < view.num_rows(); ++r) {
    MeasurementTable::Entry& entry = table->entries[r];
    entry.config.resize(view.num_options());
    for (size_t c = 0; c < view.num_options(); ++c) {
      entry.config[c] = view.ConfigCol(c)[r];
    }
    view.ReadRow(r, &entry.row);
    entry.provenance = std::string(view.Provenance(r));
  }
  return true;
}

}  // namespace unicorn
