// Compact binary MeasurementTable format with zero-copy memory-mapped load.
//
// CSV stays the interchange format of the measurement plane; this is the
// bulk format for tables too big to re-parse — recorded campaigns replayed
// by RecordedBackend, engine warm starts via SeedFromFile. The two are
// losslessly interconvertible (doubles are stored as their IEEE bit
// patterns, provenance strings verbatim); tools/table_convert does the
// round trip, and LoadMeasurementTable sniffs the magic so every CSV
// call-site transparently accepts binary files too.
//
// unicorn-binary-table format, version 1 (all integers little-endian):
//
//   offset  size  field
//        0     8  magic "UNICTBL1"
//        8     4  endian marker 0x01020304 (wrong-endian files are rejected)
//       12     4  reserved (0)
//       16     8  u64 num_options
//       24     8  u64 num_vars
//       32     8  u64 num_rows
//       40     8  u64 payload_offset (= 64; doubles stay 8-byte aligned)
//       48     8  u64 prov_offset   (= payload_offset + payload bytes)
//       56     8  u64 prov_bytes    (provenance blob size)
//
//   payload   column-major f64: num_options config columns, then num_vars
//             row columns; column c starts at payload_offset + c*num_rows*8
//   prov      (num_rows+1) u64 offsets into the blob (offsets[0] = 0,
//             offsets[num_rows] = prov_bytes), then the concatenated
//             provenance strings
//
// The file ends exactly at the provenance blob; any size mismatch, bad
// bound, or non-monotonic offset rejects the whole file.
#ifndef UNICORN_UNICORN_BACKEND_BINARY_TABLE_H_
#define UNICORN_UNICORN_BACKEND_BINARY_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "unicorn/backend/measurement_table.h"

namespace unicorn {

/// Writes `table` to `path` in the binary format above.
/// Failure: returns false on I/O failure or a malformed table (an entry
/// whose config/row width disagrees with the declared shape).
/// Thread-safety: safe for distinct paths; callers serialize same-path use.
bool SaveMeasurementTableBinary(const std::string& path, const MeasurementTable& table);

/// Same, streaming from a caller-owned entry list.
bool SaveMeasurementTableBinary(const std::string& path, size_t num_options, size_t num_vars,
                                const std::vector<MeasurementTable::Entry>& entries);

/// Streaming writer for tables too large to materialize as MeasurementTable
/// entries (a million-row table costs ~5x its payload in per-entry vectors;
/// this buffers exactly the payload doubles plus the provenance blob).
/// AddRow appends in row order; WriteFile emits the column-major file in one
/// pass. Reusable after WriteFile (the buffered table is kept); value type.
class BinaryTableWriter {
 public:
  /// Shape is fixed at construction, same validity rule as the savers
  /// (num_options >= 1, num_vars >= num_options) — violations surface as
  /// WriteFile returning false rather than a throw, matching the savers.
  BinaryTableWriter(size_t num_options, size_t num_vars);

  /// Appends one measurement. Returns false (row not appended) when the
  /// config/row widths disagree with the declared shape.
  bool AddRow(const std::vector<double>& config, const std::vector<double>& row,
              std::string_view provenance = {});

  size_t num_rows() const { return num_rows_; }

  /// Writes the buffered table to `path` in the binary format. Failure:
  /// false on I/O failure or an invalid declared shape.
  /// Thread-safety: as SaveMeasurementTableBinary.
  bool WriteFile(const std::string& path) const;

 private:
  size_t num_options_ = 0;
  size_t num_vars_ = 0;
  size_t num_rows_ = 0;
  std::vector<std::vector<double>> columns_;  // config cols, then row cols
  std::vector<uint64_t> prov_offsets_;        // running end offsets, one per row
  std::string prov_blob_;
};

/// True when the file at `path` starts with the binary-table magic.
/// (I/O failure reads as false.)
bool IsBinaryMeasurementTable(const std::string& path);

/// Loads a binary table into `*table` (copying; use BinaryTableView to read
/// without materializing entries). Failure: returns false — and leaves
/// `*table` unspecified — on I/O failure, a bad or wrong-endian header,
/// truncation, or an impossible shape.
bool LoadMeasurementTableBinary(const std::string& path, MeasurementTable* table);

/// Zero-copy view of a binary table: the payload doubles are read in place
/// from the memory-mapped file (falling back to one read() into an owned
/// buffer when mmap is unavailable); no per-entry vectors are materialized.
/// Requires a little-endian host — Open fails otherwise, because the view
/// aliases raw file bytes as doubles.
/// Thread-safety: const after Open; safe to read concurrently.
class BinaryTableView {
 public:
  BinaryTableView() = default;
  ~BinaryTableView();
  BinaryTableView(BinaryTableView&& other) noexcept;
  BinaryTableView& operator=(BinaryTableView&& other) noexcept;
  BinaryTableView(const BinaryTableView&) = delete;
  BinaryTableView& operator=(const BinaryTableView&) = delete;

  /// Maps and validates `path`. Returns false (leaving the view empty) on
  /// any of the failures LoadMeasurementTableBinary rejects.
  bool Open(const std::string& path);

  size_t num_options() const { return num_options_; }
  size_t num_vars() const { return num_vars_; }
  size_t num_rows() const { return num_rows_; }
  /// Whether the payload is served straight from the page cache (mmap) as
  /// opposed to an owned in-memory copy.
  bool mapped() const { return mapped_; }

  /// Column `opt` of the config matrix (num_rows doubles, contiguous).
  const double* ConfigCol(size_t opt) const { return payload_ + opt * num_rows_; }
  /// Column `v` of the row matrix (num_rows doubles, contiguous).
  const double* RowCol(size_t v) const {
    return payload_ + (num_options_ + v) * num_rows_;
  }
  /// Provenance label of row `r` (points into the mapping; copy to keep).
  std::string_view Provenance(size_t r) const;

  /// Gathers row `r` of the row matrix into `*out` (resized to num_vars).
  void ReadRow(size_t r, std::vector<double>* out) const;

 private:
  void Close();

  const unsigned char* base_ = nullptr;  // mapping (or owned buffer) start
  size_t file_size_ = 0;
  bool mapped_ = false;  // true: munmap on close; false: delete[] buffer
  size_t num_options_ = 0;
  size_t num_vars_ = 0;
  size_t num_rows_ = 0;
  const double* payload_ = nullptr;
  const unsigned char* prov_offsets_ = nullptr;  // (num_rows+1) u64 entries
  const unsigned char* prov_blob_ = nullptr;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_BACKEND_BINARY_TABLE_H_
