#include "unicorn/backend/in_process_backend.h"

#include <utility>

namespace unicorn {

InProcessBackend::InProcessBackend(PerformanceTask task, std::string name, int concurrency,
                                   std::string environment)
    : task_(std::move(task)),
      name_(std::move(name)),
      concurrency_(concurrency < 1 ? 1 : concurrency),
      environment_(std::move(environment)) {}

MeasureOutcome InProcessBackend::Measure(const std::vector<double>& config, int attempt) {
  (void)attempt;
  return MeasureOutcome::Ok(task_.measure(config));
}

}  // namespace unicorn
