// The trivial backend: PerformanceTask::measure in this process — exactly
// what the flat thread-pool broker did, behind the fleet interface.
#ifndef UNICORN_UNICORN_BACKEND_IN_PROCESS_BACKEND_H_
#define UNICORN_UNICORN_BACKEND_IN_PROCESS_BACKEND_H_

#include <string>
#include <vector>

#include "unicorn/backend/backend.h"
#include "unicorn/task.h"

namespace unicorn {

class InProcessBackend : public MeasurementBackend {
 public:
  // `concurrency` is how many fleet workers may call task.measure at once
  // (harness tasks are pure per configuration, so any value is safe).
  explicit InProcessBackend(PerformanceTask task, std::string name = "in-process",
                            int concurrency = 1);

  const std::string& name() const override { return name_; }
  int concurrency() const override { return concurrency_; }
  MeasureOutcome Measure(const std::vector<double>& config, int attempt) override;

 private:
  PerformanceTask task_;
  std::string name_;
  int concurrency_;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_BACKEND_IN_PROCESS_BACKEND_H_
