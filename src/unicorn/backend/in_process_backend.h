// The trivial backend: PerformanceTask::measure in this process — exactly
// what the flat thread-pool broker did, behind the fleet interface.
#ifndef UNICORN_UNICORN_BACKEND_IN_PROCESS_BACKEND_H_
#define UNICORN_UNICORN_BACKEND_IN_PROCESS_BACKEND_H_

#include <string>
#include <vector>

#include "unicorn/backend/backend.h"
#include "unicorn/task.h"

namespace unicorn {

/// Wraps a PerformanceTask as a fleet member. Stateless beyond the task;
/// never fails on its own (failures can only come from task.measure
/// throwing, which the backend contract forbids — harness tasks don't).
class InProcessBackend : public MeasurementBackend {
 public:
  /// `concurrency` is how many fleet workers may call task.measure at once
  /// (harness tasks are pure per configuration, so any value is safe; values
  /// < 1 clamp to 1). `environment` is the routing tag — set it when this
  /// process stands in for one specific hardware environment of a
  /// heterogeneous fleet, leave empty for an untagged capacity member.
  explicit InProcessBackend(PerformanceTask task, std::string name = "in-process",
                            int concurrency = 1, std::string environment = "");

  const std::string& name() const override { return name_; }
  int concurrency() const override { return concurrency_; }
  const std::string& environment() const override { return environment_; }

  /// Always returns kOk with task.measure's row; `attempt` is ignored.
  /// Thread-safety: safe from concurrency() workers iff task.measure is
  /// (every harness task is — pure per configuration).
  MeasureOutcome Measure(const std::vector<double>& config, int attempt) override;

 private:
  PerformanceTask task_;
  std::string name_;
  int concurrency_;
  std::string environment_;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_BACKEND_IN_PROCESS_BACKEND_H_
