#include "unicorn/backend/measurement_table.h"

#include <cstdlib>

#include "util/csv.h"

namespace unicorn {
namespace {

constexpr const char* kMagic = "unicorn-measurement-table-v1";

bool ParseDoubles(const std::vector<std::string>& fields, size_t begin, size_t count,
                  std::vector<double>* out) {
  out->clear();
  out->reserve(count);
  for (size_t i = begin; i < begin + count; ++i) {
    const char* text = fields[i].c_str();
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0') {
      return false;
    }
    out->push_back(value);
  }
  return true;
}

}  // namespace

bool SaveMeasurementTable(const std::string& path, const MeasurementTable& table) {
  return SaveMeasurementTable(path, table.num_options, table.num_vars, table.entries);
}

bool SaveMeasurementTable(
    const std::string& path, size_t num_options, size_t num_vars,
    const std::vector<std::pair<std::vector<double>, std::vector<double>>>& entries) {
  CsvWriter writer(path);
  if (!writer.ok()) {
    return false;
  }
  writer.WriteRow({kMagic, std::to_string(num_options), std::to_string(num_vars)});
  std::vector<double> record;
  for (const auto& [config, row] : entries) {
    record.clear();
    record.insert(record.end(), config.begin(), config.end());
    record.insert(record.end(), row.begin(), row.end());
    writer.WriteNumericRow(record, 17);  // max_digits10: bit-exact round trip
  }
  return writer.ok();
}

bool LoadMeasurementTable(const std::string& path, MeasurementTable* table) {
  CsvReader reader(path);
  if (!reader.ok()) {
    return false;
  }
  std::vector<std::string> fields;
  if (!reader.ReadRow(&fields) || fields.size() != 3 || fields[0] != kMagic) {
    return false;
  }
  table->num_options = std::strtoul(fields[1].c_str(), nullptr, 10);
  table->num_vars = std::strtoul(fields[2].c_str(), nullptr, 10);
  table->entries.clear();
  if (table->num_options == 0 || table->num_vars < table->num_options) {
    return false;
  }
  while (reader.ReadRow(&fields)) {
    if (fields.size() == 1 && fields[0].empty()) {
      continue;  // trailing newline
    }
    if (fields.size() != table->num_options + table->num_vars) {
      return false;
    }
    std::pair<std::vector<double>, std::vector<double>> entry;
    if (!ParseDoubles(fields, 0, table->num_options, &entry.first) ||
        !ParseDoubles(fields, table->num_options, table->num_vars, &entry.second)) {
      return false;
    }
    table->entries.push_back(std::move(entry));
  }
  return true;
}

}  // namespace unicorn
