#include "unicorn/backend/measurement_table.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "unicorn/backend/binary_table.h"
#include "util/csv.h"

namespace unicorn {
namespace {

constexpr const char* kMagicV1 = "unicorn-measurement-table-v1";
constexpr const char* kMagicV2 = "unicorn-measurement-table-v2";

// Locale-independent parse of one payload cell. std::from_chars always uses
// the C locale's decimal point, so a 17-digit round trip survives any
// LC_NUMERIC setting (strtod would read "1.5" as 1.0 under a comma locale).
// Non-finite cells are rejected: a NaN or Inf absorbed into the streaming
// moments poisons every correlation downstream, so a file carrying one is
// malformed, not data.
bool ParseCell(const std::string& field, double* out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto result = std::from_chars(begin, end, *out);
  return result.ec == std::errc() && result.ptr == end && std::isfinite(*out);
}

bool ParseDoubles(const std::vector<std::string>& fields, size_t begin, size_t count,
                  std::vector<double>* out) {
  out->clear();
  out->reserve(count);
  for (size_t i = begin; i < begin + count; ++i) {
    double value;
    if (!ParseCell(fields[i], &value)) {
      return false;
    }
    out->push_back(value);
  }
  return true;
}

bool ParseCount(const std::string& field, size_t* out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto result = std::from_chars(begin, end, *out);
  return result.ec == std::errc() && result.ptr == end;
}

void FormatDoubles(const std::vector<double>& values, std::vector<std::string>* out) {
  char buffer[64];
  for (double v : values) {
    // max_digits10: the bit-exact round-trip guarantee of the format.
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    out->push_back(buffer);
  }
}

}  // namespace

std::string MeasurementTable::UniformProvenance() const {
  if (entries.empty()) {
    return "";
  }
  const std::string& first = entries.front().provenance;
  for (const Entry& entry : entries) {
    if (entry.provenance != first) {
      return "";
    }
  }
  return first;
}

bool SaveMeasurementTable(const std::string& path, const MeasurementTable& table) {
  return SaveMeasurementTable(path, table.num_options, table.num_vars, table.entries);
}

bool SaveMeasurementTable(const std::string& path, size_t num_options, size_t num_vars,
                          const std::vector<MeasurementTable::Entry>& entries) {
  CsvWriter writer(path);
  if (!writer.ok()) {
    return false;
  }
  writer.WriteRow({kMagicV2, std::to_string(num_options), std::to_string(num_vars)});
  std::vector<std::string> record;
  for (const auto& entry : entries) {
    record.clear();
    FormatDoubles(entry.config, &record);
    FormatDoubles(entry.row, &record);
    record.push_back(entry.provenance);
    writer.WriteRow(record);
  }
  return writer.ok();
}

bool LoadMeasurementTable(const std::string& path, MeasurementTable* table) {
  // One loader for both on-disk formats: the binary bulk format announces
  // itself with an 8-byte magic, everything else parses as v1/v2 CSV.
  if (IsBinaryMeasurementTable(path)) {
    return LoadMeasurementTableBinary(path, table);
  }
  CsvReader reader(path);
  if (!reader.ok()) {
    return false;
  }
  std::vector<std::string> fields;
  if (!reader.ReadRow(&fields) || fields.size() != 3) {
    return false;
  }
  const bool v2 = fields[0] == kMagicV2;
  if (!v2 && fields[0] != kMagicV1) {
    return false;
  }
  if (!ParseCount(fields[1], &table->num_options) || !ParseCount(fields[2], &table->num_vars)) {
    return false;
  }
  table->entries.clear();
  if (table->num_options == 0 || table->num_vars < table->num_options) {
    return false;
  }
  const size_t numeric_fields = table->num_options + table->num_vars;
  while (reader.ReadRow(&fields)) {
    if (fields.size() == 1 && fields[0].empty()) {
      continue;  // trailing newline
    }
    if (fields.size() != numeric_fields + (v2 ? 1 : 0)) {
      return false;
    }
    MeasurementTable::Entry entry;
    if (!ParseDoubles(fields, 0, table->num_options, &entry.config) ||
        !ParseDoubles(fields, table->num_options, table->num_vars, &entry.row)) {
      return false;
    }
    if (v2) {
      entry.provenance = fields[numeric_fields];
    }
    table->entries.push_back(std::move(entry));
  }
  return true;
}

}  // namespace unicorn
