// The one on-disk format of the measurement plane: a persisted map from
// configuration to full measurement row.
//
// MeasurementBroker::SaveCache dumps its dedup cache here, RecordedBackend
// replays it, and a warm-started campaign loads it back — the ROADMAP's
// "cross-campaign table sharing" in one CSV. Values are written with 17
// significant digits so doubles round-trip bit-exactly: the broker keys its
// cache on the exact bit pattern of a configuration, and replay identity
// depends on getting those bits back.
//
// Layout: a header row `unicorn-measurement-table-v1,<num options>,<num
// vars>`, then one record per measurement — the option values followed by
// the full variable row.
#ifndef UNICORN_UNICORN_BACKEND_MEASUREMENT_TABLE_H_
#define UNICORN_UNICORN_BACKEND_MEASUREMENT_TABLE_H_

#include <string>
#include <utility>
#include <vector>

namespace unicorn {

struct MeasurementTable {
  size_t num_options = 0;
  size_t num_vars = 0;
  // (configuration, full measurement row) pairs, in insertion order.
  std::vector<std::pair<std::vector<double>, std::vector<double>>> entries;
};

// Returns false (and writes nothing useful) on I/O failure.
bool SaveMeasurementTable(const std::string& path, const MeasurementTable& table);

// Same, streaming from a caller-owned entry list (no copy into a
// MeasurementTable — the broker's cache can be large).
bool SaveMeasurementTable(
    const std::string& path, size_t num_options, size_t num_vars,
    const std::vector<std::pair<std::vector<double>, std::vector<double>>>& entries);

// Returns false on I/O failure, a bad header, or a malformed record.
bool LoadMeasurementTable(const std::string& path, MeasurementTable* table);

}  // namespace unicorn

#endif  // UNICORN_UNICORN_BACKEND_MEASUREMENT_TABLE_H_
