// The one on-disk format of the measurement plane: a persisted map from
// configuration to full measurement row, with per-row provenance.
//
// MeasurementBroker::SaveCache dumps its dedup cache here, RecordedBackend
// replays it, and CausalModelEngine::SeedFromTable warm-starts a model from
// it — the ROADMAP's "cross-campaign table sharing" in one CSV. The full
// column schema, round-trip guarantee, and rejection rules are documented in
// docs/MEASUREMENT_PLANE.md; in short:
//
//   header  `unicorn-measurement-table-v2,<num options>,<num vars>`
//   record  <option values...>,<full variable row...>,<provenance>
//
// Values are written with 17 significant digits so doubles round-trip
// bit-exactly: the broker keys its cache on the exact bit pattern of a
// configuration, and replay identity depends on getting those bits back.
// `provenance` is the environment label of the backend that measured the row
// (empty when unknown) — the column that lets a transfer campaign tell
// source-hardware rows from target-hardware rows. v1 files (no provenance
// field) still load; their provenance reads back empty.
#ifndef UNICORN_UNICORN_BACKEND_MEASUREMENT_TABLE_H_
#define UNICORN_UNICORN_BACKEND_MEASUREMENT_TABLE_H_

#include <string>
#include <vector>

namespace unicorn {

/// A persisted measurement table: (configuration, row, provenance) records
/// in insertion order. Plain data — copyable, no hidden state.
/// Thread-safety: none (value type; guard concurrent mutation yourself).
struct MeasurementTable {
  /// One persisted measurement.
  struct Entry {
    std::vector<double> config;  ///< option values, in option order
    std::vector<double> row;     ///< the full variable row (options echoed)
    /// Environment label of the backend that measured the row; empty when
    /// unknown (v1 files, pool-mode brokers with untagged requests).
    std::string provenance;
  };

  size_t num_options = 0;
  size_t num_vars = 0;
  std::vector<Entry> entries;

  /// The single provenance label shared by every entry, or "" when the table
  /// is empty or entries disagree. RecordedBackend uses this to adopt the
  /// recording's environment tag automatically.
  /// Thread-safety: const, safe concurrently with other readers.
  std::string UniformProvenance() const;
};

/// Writes `table` to `path` in the v2 CSV format above.
/// Failure: returns false on I/O failure (nothing useful was written).
/// Thread-safety: safe for distinct paths; callers serialize same-path use.
bool SaveMeasurementTable(const std::string& path, const MeasurementTable& table);

/// Same, streaming from a caller-owned entry list (no copy into a
/// MeasurementTable — the broker's cache can be large).
/// Failure: returns false on I/O failure.
bool SaveMeasurementTable(const std::string& path, size_t num_options, size_t num_vars,
                          const std::vector<MeasurementTable::Entry>& entries);

/// Loads a v1 or v2 CSV table — or, transparently, a binary table (see
/// unicorn/backend/binary_table.h; the format is sniffed from the magic) —
/// from `path` into `*table`.
/// Failure: returns false — and leaves `*table` unspecified — on I/O
/// failure, a bad header, a malformed record (including non-finite payload
/// cells, which would poison the streaming moments), or an impossible shape
/// (zero options, or fewer variables than options).
bool LoadMeasurementTable(const std::string& path, MeasurementTable* table);

}  // namespace unicorn

#endif  // UNICORN_UNICORN_BACKEND_MEASUREMENT_TABLE_H_
