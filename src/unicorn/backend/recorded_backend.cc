#include "unicorn/backend/recorded_backend.h"

#include <utility>

namespace unicorn {

RecordedBackend::RecordedBackend(MeasurementTable table, std::string name, int concurrency,
                                 std::string environment)
    : name_(std::move(name)),
      concurrency_(concurrency < 1 ? 1 : concurrency),
      environment_(environment.empty() ? table.UniformProvenance() : std::move(environment)) {
  for (auto& entry : table.entries) {
    rows_.emplace(std::move(entry.config), std::move(entry.row));
  }
}

RecordedBackend RecordedBackend::FromFile(const std::string& path, std::string name,
                                          std::string environment) {
  MeasurementTable table;
  LoadMeasurementTable(path, &table);  // failure leaves the table empty
  return RecordedBackend(std::move(table), std::move(name), 1, std::move(environment));
}

bool RecordedBackend::Supports(const std::vector<double>& config) const {
  return rows_.count(config) > 0;
}

MeasureOutcome RecordedBackend::Measure(const std::vector<double>& config, int attempt) {
  (void)attempt;
  const auto it = rows_.find(config);
  if (it == rows_.end()) {
    // Routing should never send an unrecorded configuration here; if it
    // does, the failure is structural, not retryable-on-this-backend.
    return MeasureOutcome::Permanent(name_ + ": configuration not recorded");
  }
  return MeasureOutcome::Ok(it->second);
}

}  // namespace unicorn
