#include "unicorn/backend/recorded_backend.h"

#include <utility>

namespace unicorn {

RecordedBackend::RecordedBackend(MeasurementTable table, std::string name, int concurrency)
    : name_(std::move(name)), concurrency_(concurrency < 1 ? 1 : concurrency) {
  for (auto& [config, row] : table.entries) {
    rows_.emplace(std::move(config), std::move(row));
  }
}

RecordedBackend RecordedBackend::FromFile(const std::string& path, std::string name) {
  MeasurementTable table;
  LoadMeasurementTable(path, &table);  // failure leaves the table empty
  return RecordedBackend(std::move(table), std::move(name));
}

bool RecordedBackend::Supports(const std::vector<double>& config) const {
  return rows_.count(config) > 0;
}

MeasureOutcome RecordedBackend::Measure(const std::vector<double>& config, int attempt) {
  (void)attempt;
  const auto it = rows_.find(config);
  if (it == rows_.end()) {
    // Routing should never send an unrecorded configuration here; if it
    // does, the failure is structural, not retryable-on-this-backend.
    return MeasureOutcome::Permanent(name_ + ": configuration not recorded");
  }
  return MeasureOutcome::Ok(it->second);
}

}  // namespace unicorn
