// Replays a persisted measurement table: cross-session reuse as a backend.
//
// A RecordedBackend serves exactly the configurations some earlier campaign
// measured (loaded from the MeasurementTable CSV a broker SaveCache wrote).
// It is the capability-aware fleet member: Supports() is false for anything
// unrecorded, so routing sends known configurations here for free and novel
// ones to live backends. With an environment tag — taken from the table's
// provenance column when uniform, or set explicitly — it is also the
// transfer benches' "source hardware we already measured": requests tagged
// with the source environment resolve from the recording, and no fresh
// source-hardware measurement ever happens.
#ifndef UNICORN_UNICORN_BACKEND_RECORDED_BACKEND_H_
#define UNICORN_UNICORN_BACKEND_RECORDED_BACKEND_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "unicorn/backend/backend.h"
#include "unicorn/backend/measurement_table.h"
#include "util/hash.h"

namespace unicorn {

/// Replay member of a fleet. Immutable after construction, so every method
/// is safe from any number of fleet workers concurrently.
class RecordedBackend : public MeasurementBackend {
 public:
  /// Takes ownership of the table's entries. `environment` overrides the
  /// routing tag; when empty, the tag is the table's uniform provenance
  /// label (empty again if the recording is unlabeled or mixed). Duplicate
  /// configurations keep the first recorded row.
  explicit RecordedBackend(MeasurementTable table, std::string name = "recorded",
                           int concurrency = 1, std::string environment = "");

  /// Loads `path`. Failure: a missing/corrupt file yields an empty backend
  /// that supports nothing (check size()) — it never throws.
  static RecordedBackend FromFile(const std::string& path, std::string name = "recorded",
                                  std::string environment = "");

  const std::string& name() const override { return name_; }
  int concurrency() const override { return concurrency_; }
  const std::string& environment() const override { return environment_; }

  /// True iff `config` was recorded (bit-exact match).
  bool Supports(const std::vector<double>& config) const override;

  /// Returns the recorded row for `config`. Failure: a configuration that
  /// was never recorded returns a *permanent* failure (routing should not
  /// have sent it here; retrying on this backend can never succeed).
  /// Thread-safety: read-only lookup; safe from any number of workers.
  MeasureOutcome Measure(const std::vector<double>& config, int attempt) override;

  size_t size() const { return rows_.size(); }

 private:
  std::string name_;
  int concurrency_;
  std::string environment_;
  std::unordered_map<std::vector<double>, std::vector<double>, ConfigHash> rows_;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_BACKEND_RECORDED_BACKEND_H_
