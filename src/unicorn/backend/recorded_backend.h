// Replays a persisted measurement table: cross-session reuse as a backend.
//
// A RecordedBackend serves exactly the configurations some earlier campaign
// measured (loaded from the MeasurementTable CSV a broker SaveCache wrote).
// It is the capability-aware fleet member: Supports() is false for anything
// unrecorded, so routing sends known configurations here for free and novel
// ones to live backends — the transfer benches' "source hardware we already
// measured" modeled directly.
#ifndef UNICORN_UNICORN_BACKEND_RECORDED_BACKEND_H_
#define UNICORN_UNICORN_BACKEND_RECORDED_BACKEND_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "unicorn/backend/backend.h"
#include "unicorn/backend/measurement_table.h"
#include "util/hash.h"

namespace unicorn {

class RecordedBackend : public MeasurementBackend {
 public:
  explicit RecordedBackend(MeasurementTable table, std::string name = "recorded",
                           int concurrency = 1);

  // Loads `path`; a missing/corrupt file yields an empty backend that
  // supports nothing (check size()).
  static RecordedBackend FromFile(const std::string& path, std::string name = "recorded");

  const std::string& name() const override { return name_; }
  int concurrency() const override { return concurrency_; }
  bool Supports(const std::vector<double>& config) const override;
  MeasureOutcome Measure(const std::vector<double>& config, int attempt) override;

  size_t size() const { return rows_.size(); }

 private:
  std::string name_;
  int concurrency_;
  std::unordered_map<std::vector<double>, std::vector<double>, ConfigHash> rows_;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_BACKEND_RECORDED_BACKEND_H_
