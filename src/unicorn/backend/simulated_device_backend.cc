#include "unicorn/backend/simulated_device_backend.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/hash.h"

namespace unicorn {
namespace {

// Uniform [0, 1) from a mixed 64-bit state (the same construction Rng uses
// for its output stage, without carrying stream state across calls).
double UnitDraw(uint64_t state) {
  return static_cast<double>(Mix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

SimulatedDeviceBackend::SimulatedDeviceBackend(PerformanceTask task, DeviceProfile profile)
    : task_(std::move(task)), profile_(std::move(profile)) {
  profile_.concurrency = std::max(1, profile_.concurrency);
  profile_.service_time_jitter = std::clamp(profile_.service_time_jitter, 0.0, 1.0);
}

MeasureOutcome SimulatedDeviceBackend::Measure(const std::vector<double>& config, int attempt) {
  // One deterministic stream per (device, config, attempt): thread
  // interleaving cannot change which attempts fail or how long they take.
  const uint64_t stream =
      HashDoubles(config, Mix64(profile_.seed ^ static_cast<uint64_t>(attempt)));

  const double jitter_draw = 2.0 * UnitDraw(stream) - 1.0;  // [-1, 1)
  const double service_seconds = std::max(
      0.0, profile_.service_time_mean * (1.0 + profile_.service_time_jitter * jitter_draw));
  busy_us_.fetch_add(static_cast<long long>(service_seconds * 1e6));
  if (profile_.sleep && service_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(service_seconds));
  }

  const double failure_draw = UnitDraw(stream ^ 0x5bf03635dc1e8937ULL);
  if (failure_draw < profile_.permanent_failure_rate) {
    return MeasureOutcome::Permanent(profile_.name + ": device fault (injected permanent)");
  }
  if (failure_draw < profile_.permanent_failure_rate + profile_.transient_failure_rate) {
    return MeasureOutcome::Transient(profile_.name + ": measurement lost (injected transient)");
  }
  return MeasureOutcome::Ok(task_.measure(config));
}

}  // namespace unicorn
