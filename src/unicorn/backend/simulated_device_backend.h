// A Jetson-like simulated device: a real fleet member in miniature.
//
// The paper measures on physical TX1/TX2/Xavier boards — slow, occasionally
// flaky, each its own hardware environment. This backend reproduces that
// texture deterministically: the wrapped PerformanceTask carries the
// device's Environment (built via eval/harness MakeDeviceBackend), and the
// profile adds a seeded service-time distribution plus injectable
// transient/permanent failure rates. Every draw derives from
// (profile seed, config hash, attempt), so a fleet run's failure pattern is
// reproducible from seeds alone no matter how threads interleave — and a
// retry of the same configuration rolls fresh randomness instead of hitting
// the same failure forever.
#ifndef UNICORN_UNICORN_BACKEND_SIMULATED_DEVICE_BACKEND_H_
#define UNICORN_UNICORN_BACKEND_SIMULATED_DEVICE_BACKEND_H_

#include <atomic>
#include <string>
#include <vector>

#include "unicorn/backend/backend.h"
#include "unicorn/task.h"

namespace unicorn {

/// Static description of one simulated device. Plain value type; fixed at
/// backend construction.
struct DeviceProfile {
  std::string name = "device";
  uint64_t seed = 1;  ///< drives failure and service-time draws
  /// Routing tag (see MeasurementBackend::environment). MakeDeviceBackend
  /// defaults it to the device Environment's name when left empty, so a
  /// heterogeneous fleet's members are distinguishable without extra setup.
  std::string environment;
  // Service-time model: seconds = mean * (1 ± jitter), drawn per
  // (config, attempt). With `sleep` the worker actually sleeps it (bench
  // realism: heterogeneous fleet wall clocks); otherwise it is accounted in
  // simulated_busy_seconds() only, keeping tests fast.
  double service_time_mean = 0.0;
  double service_time_jitter = 0.0;  ///< relative, in [0, 1]
  bool sleep = false;
  // Failure injection, per measurement attempt.
  double transient_failure_rate = 0.0;
  double permanent_failure_rate = 0.0;
  int concurrency = 1;  ///< fleet workers this device serves at once
};

/// One simulated device. All mutable state is the atomic busy-time counter,
/// so every method is safe from concurrency() fleet workers at once.
class SimulatedDeviceBackend : public MeasurementBackend {
 public:
  SimulatedDeviceBackend(PerformanceTask task, DeviceProfile profile);

  const std::string& name() const override { return profile_.name; }
  int concurrency() const override { return profile_.concurrency; }
  const std::string& environment() const override { return profile_.environment; }

  /// Draws the attempt's service time and failure outcome from
  /// (profile seed, config, attempt). Failure: returns kTransient/kPermanent
  /// per the injected rates (typed, never throws); at rate 0 it always
  /// returns kOk with the device task's row.
  /// Thread-safety: safe from concurrency() workers (task.measure is pure
  /// per configuration; the busy counter is atomic).
  MeasureOutcome Measure(const std::vector<double>& config, int attempt) override;

  const DeviceProfile& profile() const { return profile_; }
  const PerformanceTask& task() const { return task_; }

  /// Total simulated service time across all attempts (whether slept or only
  /// accounted) — the device-side view of busy time.
  /// Thread-safety: atomic read; safe any time.
  double simulated_busy_seconds() const { return busy_us_.load() * 1e-6; }

 private:
  PerformanceTask task_;
  DeviceProfile profile_;
  std::atomic<long long> busy_us_{0};
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_BACKEND_SIMULATED_DEVICE_BACKEND_H_
