#include "unicorn/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace unicorn {

namespace {

using SchedClock = std::chrono::steady_clock;

// Process-wide scheduler instruments. campaign.round_seconds is the SLO
// histogram the multi-tenant service will report p50/p99 from: one sample
// per policy round, covering refresh wait + propose + measurement + absorb.
struct CampaignMetrics {
  obs::Counter* rounds;
  obs::Histogram* round_seconds;
};

const CampaignMetrics& Metrics() {
  static const CampaignMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return CampaignMetrics{registry.Counter("campaign.rounds"),
                           registry.Histogram("campaign.round_seconds")};
  }();
  return metrics;
}

}  // namespace

bool GoalsMet(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals) {
  for (const auto& goal : goals) {
    if (row[goal.var] > goal.threshold) {
      return false;
    }
  }
  return true;
}

double GoalViolation(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals) {
  double worst = -1e18;
  for (const auto& goal : goals) {
    const double denom = std::max(1e-9, std::fabs(goal.threshold));
    worst = std::max(worst, (row[goal.var] - goal.threshold) / denom);
  }
  return worst;
}

TransferPolicy::TransferPolicy(TransferOptions options, MeasurementTable source,
                               CampaignPolicy* inner)
    : options_(std::move(options)), source_(std::move(source)), inner_(inner) {
  if (options_.max_source_rows > 0 && source_.entries.size() > options_.max_source_rows) {
    source_.entries.resize(options_.max_source_rows);
  }
  // Nothing to replay: degrade to pure delegation from round 0 on.
  replayed_ = source_.entries.empty();
}

bool TransferPolicy::WantsRefresh(const CampaignContext& ctx) {
  return inner_->WantsRefresh(ctx);
}

std::vector<std::vector<double>> TransferPolicy::Propose(CampaignContext& ctx) {
  std::vector<std::vector<double>> batch;
  if (!replayed_) {
    // Round 0: the source recording's configurations, then the inner
    // policy's own bootstrap — ONE combined batch, so the inner policy sees
    // the same round numbering (and thus the same refresh-seed stream) as a
    // legacy warm-table run.
    batch.reserve(source_.entries.size());
    for (const auto& entry : source_.entries) {
      batch.push_back(entry.config);
    }
    replay_count_ = batch.size();
  } else {
    replay_count_ = 0;
  }
  std::vector<std::vector<double>> inner_batch = inner_->Propose(ctx);
  inner_proposed_ = inner_batch.size();
  batch.insert(batch.end(), std::make_move_iterator(inner_batch.begin()),
               std::make_move_iterator(inner_batch.end()));
  return batch;
}

std::vector<std::string> TransferPolicy::ProposalEnvironments(size_t proposal_size) {
  std::vector<std::string> envs(replay_count_, options_.source_environment);
  std::vector<std::string> inner_envs = inner_->ProposalEnvironments(inner_proposed_);
  if (inner_envs.empty()) {
    // Backstop: an untagged fresh request could otherwise be routed to the
    // source recording if its configuration happens to be recorded.
    envs.resize(proposal_size, options_.target_environment);
  } else {
    envs.insert(envs.end(), std::make_move_iterator(inner_envs.begin()),
                std::make_move_iterator(inner_envs.end()));
  }
  return envs;
}

void TransferPolicy::Absorb(const std::vector<std::vector<double>>& configs,
                            const std::vector<std::vector<double>>& rows,
                            CampaignContext& ctx) {
  if (replayed_) {
    inner_->Absorb(configs, rows, ctx);  // every round after the replay
    return;
  }
  // The replayed slice: straight into the shared engine, tagged as
  // source-provenance rows (the warm model's training set).
  size_t offset = 0;
  for (; offset < replay_count_; ++offset) {
    ctx.engine.AddRow(rows[offset], RowProvenance::kSource);
    ++stats_.source_rows;
  }
  replayed_ = true;
  if (inner_proposed_ == 0) {
    return;  // the runner never hands empty slices to a policy
  }
  const std::vector<std::vector<double>> inner_configs(configs.begin() + offset, configs.end());
  const std::vector<std::vector<double>> inner_rows(rows.begin() + offset, rows.end());
  inner_->Absorb(inner_configs, inner_rows, ctx);
}

bool TransferPolicy::Finished() const { return replayed_ && inner_->Finished(); }

void TransferPolicy::Finalize(CampaignContext& ctx) {
  inner_->Finalize(ctx);
  stats_.target_rows = ctx.engine.ProvenanceRows(RowProvenance::kTarget);
}

ShardPoolOptions CampaignRunner::MakePoolOptions(const CampaignOptions& options) {
  ShardPoolOptions pool;
  pool.model = options.model;
  pool.engine = options.engine;
  pool.refresh_threads = options.refresh_threads;
  pool.share_ci_cache = options.share_ci_cache;
  pool.pin_refresh_threads = options.pin_refresh_threads;
  return pool;
}

CampaignRunner::CampaignRunner(PerformanceTask task, CampaignOptions options)
    : options_(std::move(options)),
      broker_(std::move(task), options_.broker),
      pool_(broker_.task().variables, MakePoolOptions(options_)) {
  pool_.ShardForGroup("");  // the default group's shard is always shard 0
}

CampaignRunner::CampaignRunner(PerformanceTask task, CampaignOptions options,
                               std::unique_ptr<BackendFleet> fleet)
    : options_(std::move(options)),
      broker_(std::move(task), std::move(fleet), options_.broker),
      pool_(broker_.task().variables, MakePoolOptions(options_)) {
  pool_.ShardForGroup("");
}

std::vector<std::vector<double>> CampaignRunner::SampleConfigs(size_t count, Rng* rng) const {
  std::vector<std::vector<double>> configs;
  configs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    configs.push_back(broker_.task().sample_config(rng));
  }
  return configs;
}

std::vector<std::vector<double>> CampaignRunner::MeasureUniform(size_t count, Rng* rng) {
  return broker_.MeasureBatch(SampleConfigs(count, rng));
}

void CampaignRunner::Run(const std::vector<CampaignPolicy*>& policies) {
  std::vector<GroupedPolicy> grouped;
  grouped.reserve(policies.size());
  for (CampaignPolicy* policy : policies) {
    grouped.push_back(GroupedPolicy{policy, ""});
  }
  RunGrouped(grouped);
}

void CampaignRunner::RunGrouped(const std::vector<GroupedPolicy>& policies) {
  std::vector<size_t> shard_of(policies.size());
  for (size_t p = 0; p < policies.size(); ++p) {
    shard_of[p] = pool_.ShardForGroup(policies[p].group);
  }

  std::vector<size_t> active;  // indices into `policies`
  for (size_t p = 0; p < policies.size(); ++p) {
    if (policies[p].policy->Finished()) {
      CampaignContext ctx = ContextFor(shard_of[p], 0);
      policies[p].policy->Finalize(ctx);
    } else {
      active.push_back(p);
    }
  }

  for (size_t round = 0; !active.empty(); ++round) {
    obs::trace::Span round_span("campaign.round", "campaign");
    round_span.SetArg("round", static_cast<double>(round));
    round_span.SetArg("policies", static_cast<double>(active.size()));
    const auto round_start = SchedClock::now();
    // A shard is dirty when any of its active policies asks for a refresh;
    // dirty shards refresh in parallel, all with this round's seed (the
    // same seed + iteration stream the sequential debugger — refresh every
    // iteration — and optimizer — every relearn_every-th — used).
    std::vector<size_t> dirty;
    for (const size_t p : active) {
      CampaignContext ctx = ContextFor(shard_of[p], round);
      if (policies[p].policy->WantsRefresh(ctx)) {
        dirty.push_back(shard_of[p]);
      }
    }
    pool_.RefreshShards(std::move(dirty), RefreshSeed(round));

    // Collect every policy's proposal (and its environment routing tags)
    // and measure them as one batch: one fan-out over the pool/fleet, and a
    // (environment, config) request two policies propose in the same round
    // is measured once — even across objective groups.
    std::vector<std::vector<std::vector<double>>> proposals;
    std::vector<std::vector<double>> combined;
    std::vector<std::string> combined_envs;
    bool any_env = false;
    proposals.reserve(active.size());
    obs::trace::Begin("campaign.propose", "campaign");
    for (const size_t p : active) {
      CampaignContext ctx = ContextFor(shard_of[p], round);
      proposals.push_back(policies[p].policy->Propose(ctx));
      combined.insert(combined.end(), proposals.back().begin(), proposals.back().end());
      std::vector<std::string> envs =
          policies[p].policy->ProposalEnvironments(proposals.back().size());
      if (!envs.empty() && envs.size() != proposals.back().size()) {
        throw std::logic_error("campaign: ProposalEnvironments must parallel the proposal");
      }
      if (envs.empty()) {
        combined_envs.resize(combined_envs.size() + proposals.back().size());
      } else {
        any_env = true;
        combined_envs.insert(combined_envs.end(), std::make_move_iterator(envs.begin()),
                             std::make_move_iterator(envs.end()));
      }
    }
    obs::trace::End("proposals", static_cast<double>(combined.size()));
    const auto rows =
        broker_.MeasureBatch(combined, any_env ? combined_envs : std::vector<std::string>{});

    {
      TRACE_SPAN("campaign.absorb", "campaign");
      size_t offset = 0;
      for (size_t a = 0; a < active.size(); ++a) {
        if (proposals[a].empty()) {
          continue;
        }
        const std::vector<std::vector<double>> slice(
            rows.begin() + static_cast<long>(offset),
            rows.begin() + static_cast<long>(offset + proposals[a].size()));
        CampaignContext ctx = ContextFor(shard_of[active[a]], round);
        policies[active[a]].policy->Absorb(proposals[a], slice, ctx);
        offset += proposals[a].size();
      }
    }
    // Every active policy completed one round this wall interval: one SLO
    // sample each, same definition as the asynchronous schedulers'.
    const double round_seconds =
        std::chrono::duration<double>(SchedClock::now() - round_start).count();
    for (size_t a = 0; a < active.size(); ++a) {
      Metrics().rounds->Increment();
      Metrics().round_seconds->Record(round_seconds);
    }

    // Retire finished policies — and any policy that proposed nothing while
    // claiming to continue, which could otherwise spin forever.
    std::vector<size_t> still_active;
    for (size_t a = 0; a < active.size(); ++a) {
      const size_t p = active[a];
      if (policies[p].policy->Finished() || proposals[a].empty() ||
          round + 1 >= options_.max_rounds) {
        CampaignContext ctx = ContextFor(shard_of[p], round);
        policies[p].policy->Finalize(ctx);
      } else {
        still_active.push_back(p);
      }
    }
    active = std::move(still_active);
  }
}

void CampaignRunner::RunAsync(const std::vector<CampaignPolicy*>& policies) {
  std::vector<GroupedPolicy> grouped;
  grouped.reserve(policies.size());
  for (CampaignPolicy* policy : policies) {
    grouped.push_back(GroupedPolicy{policy, ""});
  }
  RunAsyncGrouped(grouped);
}

void CampaignRunner::RunAsyncGrouped(const std::vector<GroupedPolicy>& policies) {
  if (options_.pipeline) {
    RunAsyncGroupedPipelined(policies);
  } else {
    RunAsyncGroupedBarrier(policies);
  }
}

// The pre-pipeline drain loop: refreshes run inline on the campaign thread,
// so a completed policy that needs (or follows) a long refresh blocks every
// other policy's absorb-and-resubmit — head-of-line blocking that starves
// the fleet. Kept as the measurable baseline for bench/table_pipeline.cc
// and selectable via CampaignOptions::pipeline = false.
void CampaignRunner::RunAsyncGroupedBarrier(const std::vector<GroupedPolicy>& policies) {
  // Per-policy pipeline state: each policy is always either retired or
  // waiting on exactly one outstanding broker batch.
  struct PolicyState {
    CampaignPolicy* policy = nullptr;
    size_t shard = 0;
    size_t round = 0;
    std::vector<std::vector<double>> proposal;
    std::vector<std::vector<double>> rows;
    size_t received = 0;
    SchedClock::time_point round_start{};
  };
  std::vector<PolicyState> states;
  std::unordered_map<uint64_t, size_t> batch_owner;  // broker batch id -> state
  size_t active = 0;

  // Refresh (the policy's own shard, per-policy round, same seed stream as
  // Run), propose, submit. Returns false when the policy retired instead of
  // launching a round.
  const auto launch_round = [&](size_t state_index) {
    PolicyState& state = states[state_index];
    state.round_start = SchedClock::now();
    CampaignContext ctx = ContextFor(state.shard, state.round);
    if (state.policy->WantsRefresh(ctx)) {
      // Single-shard batch: the empty-table guard and the refresh ledger
      // live in the pool.
      pool_.RefreshShards({state.shard}, RefreshSeed(state.round));
    }
    state.proposal = state.policy->Propose(ctx);
    if (state.proposal.empty()) {
      // A policy proposing nothing can never finish itself (same guard as
      // the synchronous loop).
      state.policy->Finalize(ctx);
      return false;
    }
    std::vector<std::string> envs = state.policy->ProposalEnvironments(state.proposal.size());
    if (!envs.empty() && envs.size() != state.proposal.size()) {
      throw std::logic_error("campaign: ProposalEnvironments must parallel the proposal");
    }
    state.rows.assign(state.proposal.size(), {});
    state.received = 0;
    const BatchTicket ticket = broker_.SubmitBatch(state.proposal, envs);
    batch_owner.emplace(ticket.id, state_index);
    return true;
  };

  states.reserve(policies.size());
  for (const GroupedPolicy& entry : policies) {
    const size_t shard = pool_.ShardForGroup(entry.group);
    if (entry.policy->Finished()) {
      CampaignContext ctx = ContextFor(shard, 0);
      entry.policy->Finalize(ctx);
      continue;
    }
    states.push_back(PolicyState{entry.policy, shard, 0, {}, {}, 0});
    if (launch_round(states.size() - 1)) {
      ++active;
    }
  }

  // Drain the completion stream: whichever policy's batch fills first
  // absorbs first and immediately pipelines its next round — no barrier on
  // the other policies' in-flight measurements. Completions of batches
  // someone else submitted through the shared broker are set aside and
  // requeued for their own consumer once the campaign is done.
  std::vector<BrokerCompletion> foreign;
  const auto requeue_foreign = [&] {
    for (auto it = foreign.rbegin(); it != foreign.rend(); ++it) {
      broker_.Requeue(std::move(*it));
    }
    foreign.clear();
  };
  while (active > 0) {
    BrokerCompletion done;
    if (!broker_.WaitCompletion(&done)) {
      requeue_foreign();
      throw std::runtime_error("async campaign: completion stream ended with active policies");
    }
    const auto owner = batch_owner.find(done.batch);
    if (owner == batch_owner.end()) {
      foreign.push_back(std::move(done));
      continue;
    }
    if (!done.ok) {
      requeue_foreign();
      throw std::runtime_error("async campaign: measurement failed permanently: " + done.error);
    }
    PolicyState& state = states[owner->second];
    state.rows[done.index] = std::move(done.row);
    if (++state.received < state.proposal.size()) {
      continue;
    }
    const size_t state_index = owner->second;
    batch_owner.erase(owner);

    CampaignContext ctx = ContextFor(state.shard, state.round);
    {
      TRACE_SPAN_NAMED(absorb_span, "campaign.absorb", "campaign");
      absorb_span.SetArg("round", static_cast<double>(state.round));
      state.policy->Absorb(state.proposal, state.rows, ctx);
    }
    Metrics().rounds->Increment();
    Metrics().round_seconds->Record(
        std::chrono::duration<double>(SchedClock::now() - state.round_start).count());
    if (state.policy->Finished() || state.round + 1 >= options_.max_rounds) {
      state.policy->Finalize(ctx);
      --active;
      continue;
    }
    ++state.round;
    if (!launch_round(state_index)) {
      --active;
    }
  }
  requeue_foreign();
}

// The pipelined campaign scheduler (ROADMAP "pipelined campaign rounds"):
// a ready-set event loop over two completion streams — measurement rows from
// the broker/fleet and shard-refresh done events from the pool's
// asynchronous refresh workers. A policy whose next round wants a refresh
// hands its shard to the workers and the loop keeps absorbing and
// resubmitting every other policy meanwhile, so dirty shards of *different*
// policies refresh as one parallel batch while their own and other policies'
// measurements keep the fleet busy — refresh compute hidden behind device
// service time (the overlap the pool's ledger reports).
//
// Per-policy semantics are exactly the synchronous loop's: refresh decided
// at round start (WantsRefresh before Propose), seeded RefreshSeed(round)
// fixed at enqueue, rows absorbed as one batch in proposal order. Policies
// in distinct objective groups are therefore bit-identical to RunGrouped;
// same-group interleaving remains completion-order-dependent, as documented
// on RunAsyncGrouped.
void CampaignRunner::RunAsyncGroupedPipelined(const std::vector<GroupedPolicy>& policies) {
  // Alternation quantum while both streams are live: the timed row-wait
  // returns early on every completion, so this bounds only refresh-done
  // latency. 2ms keeps refresh-chain resubmission prompt (a chained shard
  // sits idle until the done event is seen) while staying far below a
  // device service time, so fleet feeding is never the bottleneck.
  constexpr double kPollSeconds = 0.002;

  struct PolicyState {
    CampaignPolicy* policy = nullptr;
    size_t shard = 0;
    size_t round = 0;
    std::vector<std::vector<double>> proposal;
    std::vector<std::vector<double>> rows;
    size_t received = 0;
    SchedClock::time_point round_start{};
  };
  enum class ShardAction : uint8_t { kAbsorb, kPropose };

  std::vector<PolicyState> states;
  std::unordered_map<uint64_t, size_t> batch_owner;  // broker batch id -> state
  size_t active = 0;
  // Per-shard scheduling state. A shard with an asynchronous refresh in
  // flight must not be touched (pool contract), so a same-group policy whose
  // batch fills — or whose own refresh finished while a groupmate's is still
  // queued — parks its next step here; the queue drains FIFO the moment the
  // shard goes quiet. Policies in distinct groups never park.
  std::vector<size_t> shard_refreshing;
  std::vector<std::deque<std::pair<ShardAction, size_t>>> shard_queue;
  // Measurement rows currently on the fleet (submitted, row not yet back):
  // the gauge the pool's overlap ledger samples.
  std::atomic<size_t> in_flight_rows{0};

  std::vector<BrokerCompletion> foreign;
  const auto requeue_foreign = [&] {
    for (auto it = foreign.rbegin(); it != foreign.rend(); ++it) {
      broker_.Requeue(std::move(*it));
    }
    foreign.clear();
  };

  // Propose and submit the policy's current round (its shard is quiet and
  // refreshed, or needed no refresh). Returns false when the policy retired
  // on an empty proposal instead.
  const auto propose_and_submit = [&](size_t state_index) -> bool {
    PolicyState& state = states[state_index];
    TRACE_SPAN_NAMED(propose_span, "campaign.propose", "campaign");
    propose_span.SetArg("round", static_cast<double>(state.round));
    CampaignContext ctx = ContextFor(state.shard, state.round);
    state.proposal = state.policy->Propose(ctx);
    if (state.proposal.empty()) {
      state.policy->Finalize(ctx);
      return false;
    }
    std::vector<std::string> envs = state.policy->ProposalEnvironments(state.proposal.size());
    if (!envs.empty() && envs.size() != state.proposal.size()) {
      throw std::logic_error("campaign: ProposalEnvironments must parallel the proposal");
    }
    state.rows.assign(state.proposal.size(), {});
    state.received = 0;
    const size_t now_in_flight =
        in_flight_rows.fetch_add(state.proposal.size(), std::memory_order_relaxed) +
        state.proposal.size();
    obs::trace::CounterValue("campaign.in_flight_rows", static_cast<double>(now_in_flight));
    const BatchTicket ticket = broker_.SubmitBatch(state.proposal, envs);
    batch_owner.emplace(ticket.id, state_index);
    return true;
  };

  // Start the policy's round: same trigger point and seed stream as the
  // synchronous loop, but the refresh itself runs on the pool's workers —
  // the Propose happens when its done event comes back. Returns false when
  // the policy retired.
  const auto launch_round = [&](size_t state_index) -> bool {
    PolicyState& state = states[state_index];
    state.round_start = SchedClock::now();
    CampaignContext ctx = ContextFor(state.shard, state.round);
    if (state.policy->WantsRefresh(ctx)) {
      ++shard_refreshing[state.shard];
      pool_.StartRefreshAsync(state.shard, RefreshSeed(state.round),
                              static_cast<uint64_t>(state_index));
      return true;  // still active: awaiting the refresh
    }
    return propose_and_submit(state_index);
  };

  const auto absorb_and_advance = [&](size_t state_index) {
    PolicyState& state = states[state_index];
    CampaignContext ctx = ContextFor(state.shard, state.round);
    {
      TRACE_SPAN_NAMED(absorb_span, "campaign.absorb", "campaign");
      absorb_span.SetArg("round", static_cast<double>(state.round));
      state.policy->Absorb(state.proposal, state.rows, ctx);
    }
    Metrics().rounds->Increment();
    Metrics().round_seconds->Record(
        std::chrono::duration<double>(SchedClock::now() - state.round_start).count());
    if (state.policy->Finished() || state.round + 1 >= options_.max_rounds) {
      state.policy->Finalize(ctx);
      --active;
      return;
    }
    ++state.round;
    if (!launch_round(state_index)) {
      --active;
    }
  };

  // Drain the shard's parked actions while it stays quiet. An absorb may
  // relaunch a round that starts a new refresh on this very shard — the loop
  // stops and the remainder waits for that refresh's done event.
  const auto process_shard = [&](size_t shard) {
    auto& queue = shard_queue[shard];
    while (!queue.empty() && shard_refreshing[shard] == 0) {
      const auto [action, state_index] = queue.front();
      queue.pop_front();
      if (action == ShardAction::kAbsorb) {
        absorb_and_advance(state_index);
      } else if (!propose_and_submit(state_index)) {
        --active;
      }
    }
  };

  const auto handle_refresh_done = [&](ShardRefreshDone& done) {
    --shard_refreshing[done.shard];
    if (done.error != nullptr) {
      std::rethrow_exception(done.error);
    }
    shard_queue[done.shard].push_back(
        {ShardAction::kPropose, static_cast<size_t>(done.token)});
    process_shard(done.shard);
  };

  // Resolve every group's shard up front: shard storage must not grow once
  // refresh workers hold engine references.
  std::vector<size_t> shard_of(policies.size());
  for (size_t p = 0; p < policies.size(); ++p) {
    shard_of[p] = pool_.ShardForGroup(policies[p].group);
  }
  shard_refreshing.assign(pool_.num_shards(), 0);
  shard_queue.assign(pool_.num_shards(), {});

  pool_.SetInFlightGauge(&in_flight_rows);
  try {
    states.reserve(policies.size());
    for (size_t p = 0; p < policies.size(); ++p) {
      if (policies[p].policy->Finished()) {
        CampaignContext ctx = ContextFor(shard_of[p], 0);
        policies[p].policy->Finalize(ctx);
        continue;
      }
      states.push_back(PolicyState{policies[p].policy, shard_of[p], 0, {}, {}, 0});
    }
    for (size_t i = 0; i < states.size(); ++i) {
      if (launch_round(i)) {
        ++active;
      }
    }

    while (active > 0) {
      // Refresh-done events first: they are cheap to handle and each one
      // unparks a Propose whose batch then feeds the fleet.
      ShardRefreshDone rdone;
      bool handled = false;
      while (pool_.TryPopRefreshDone(&rdone)) {
        handle_refresh_done(rdone);
        handled = true;
      }
      if (handled || active == 0) {
        continue;  // scheduling state changed: re-evaluate what to wait on
      }
      const bool measurements_pending = !batch_owner.empty();
      const bool refreshes_pending = pool_.PendingAsyncRefreshes() > 0;
      BrokerCompletion done;
      if (measurements_pending && refreshes_pending) {
        // Both streams live: timed wait on the row stream, then loop back
        // to poll the refresh stream.
        if (!broker_.WaitCompletionFor(&done, kPollSeconds)) {
          continue;
        }
      } else if (measurements_pending) {
        if (!broker_.WaitCompletion(&done)) {
          throw std::runtime_error(
              "async campaign: completion stream ended with active policies");
        }
      } else if (refreshes_pending) {
        if (pool_.WaitRefreshDone(&rdone)) {
          handle_refresh_done(rdone);
        }
        continue;
      } else {
        throw std::logic_error("async campaign: active policies with nothing outstanding");
      }

      const auto owner = batch_owner.find(done.batch);
      if (owner == batch_owner.end()) {
        foreign.push_back(std::move(done));
        continue;
      }
      if (!done.ok) {
        throw std::runtime_error("async campaign: measurement failed permanently: " +
                                 done.error);
      }
      PolicyState& state = states[owner->second];
      state.rows[done.index] = std::move(done.row);
      const size_t now_in_flight =
          in_flight_rows.fetch_sub(1, std::memory_order_relaxed) - 1;
      obs::trace::CounterValue("campaign.in_flight_rows",
                               static_cast<double>(now_in_flight));
      if (++state.received < state.proposal.size()) {
        continue;
      }
      const size_t state_index = owner->second;
      batch_owner.erase(owner);
      shard_queue[state.shard].push_back({ShardAction::kAbsorb, state_index});
      process_shard(state.shard);
    }
  } catch (...) {
    // Workers may still hold engine and gauge references: quiesce the pool
    // before unwinding releases them, then hand foreign completions back.
    pool_.DrainAsyncRefreshes();
    pool_.SetInFlightGauge(nullptr);
    requeue_foreign();
    throw;
  }
  pool_.DrainAsyncRefreshes();  // no-op: no policy retires with a refresh in flight
  pool_.SetInFlightGauge(nullptr);
  requeue_foreign();
}

}  // namespace unicorn
