#include "unicorn/campaign.h"

#include <algorithm>
#include <cmath>

namespace unicorn {

bool GoalsMet(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals) {
  for (const auto& goal : goals) {
    if (row[goal.var] > goal.threshold) {
      return false;
    }
  }
  return true;
}

double GoalViolation(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals) {
  double worst = -1e18;
  for (const auto& goal : goals) {
    const double denom = std::max(1e-9, std::fabs(goal.threshold));
    worst = std::max(worst, (row[goal.var] - goal.threshold) / denom);
  }
  return worst;
}

CampaignRunner::CampaignRunner(PerformanceTask task, CampaignOptions options)
    : options_(std::move(options)),
      broker_(std::move(task), options_.broker),
      engine_(broker_.task().variables, options_.model, options_.engine) {}

std::vector<std::vector<double>> CampaignRunner::SampleConfigs(size_t count, Rng* rng) const {
  std::vector<std::vector<double>> configs;
  configs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    configs.push_back(broker_.task().sample_config(rng));
  }
  return configs;
}

std::vector<std::vector<double>> CampaignRunner::MeasureUniform(size_t count, Rng* rng) {
  return broker_.MeasureBatch(SampleConfigs(count, rng));
}

void CampaignRunner::Run(const std::vector<CampaignPolicy*>& policies) {
  CampaignContext ctx{broker_.task(), engine_, broker_, 0};
  std::vector<CampaignPolicy*> active;
  for (CampaignPolicy* policy : policies) {
    if (policy->Finished()) {
      policy->Finalize(ctx);
    } else {
      active.push_back(policy);
    }
  }

  for (size_t round = 0; !active.empty(); ++round) {
    ctx.round = round;
    bool refresh = false;
    for (CampaignPolicy* policy : active) {
      refresh = policy->WantsRefresh(ctx) || refresh;
    }
    if (refresh && engine_.data().NumRows() > 0) {
      // Round 0 is the bootstrap round, so the r-th refreshing round reseeds
      // with seed + (r - 1): the same seed + iteration stream the sequential
      // debugger (refresh every iteration) and optimizer (every
      // relearn_every-th) used.
      engine_.Refresh(options_.seed + (round > 0 ? round - 1 : 0));
    }

    // Collect every policy's proposal and measure them as one batch: one
    // fan-out over the pool, and a config two policies propose in the same
    // round is measured once.
    std::vector<std::vector<std::vector<double>>> proposals;
    std::vector<std::vector<double>> combined;
    proposals.reserve(active.size());
    for (CampaignPolicy* policy : active) {
      proposals.push_back(policy->Propose(ctx));
      combined.insert(combined.end(), proposals.back().begin(), proposals.back().end());
    }
    const auto rows = broker_.MeasureBatch(combined);

    size_t offset = 0;
    for (size_t p = 0; p < active.size(); ++p) {
      if (proposals[p].empty()) {
        continue;
      }
      const std::vector<std::vector<double>> slice(
          rows.begin() + static_cast<long>(offset),
          rows.begin() + static_cast<long>(offset + proposals[p].size()));
      active[p]->Absorb(proposals[p], slice, ctx);
      offset += proposals[p].size();
    }

    // Retire finished policies — and any policy that proposed nothing while
    // claiming to continue, which could otherwise spin forever.
    std::vector<CampaignPolicy*> still_active;
    for (size_t p = 0; p < active.size(); ++p) {
      if (active[p]->Finished() || proposals[p].empty() ||
          round + 1 >= options_.max_rounds) {
        active[p]->Finalize(ctx);
      } else {
        still_active.push_back(active[p]);
      }
    }
    active = std::move(still_active);
  }
}

}  // namespace unicorn
