// The shared campaign runner: the generic propose → measure(batch) →
// absorb → refresh loop under every Unicorn policy.
//
// A campaign decouples the reasoning plane (the causal-discovery engine plus
// whatever policy proposes the next configurations) from the experiment
// plane (the measurement broker). UnicornDebugger and UnicornOptimizer are
// thin policies over this runner, and several policies — multi-fault,
// multi-objective, transfer source+target — can run concurrently.
//
// The reasoning plane is *sharded* (unicorn/engine_pool): every policy is
// assigned to an objective group, each group owns one CausalModelEngine
// shard (its own measurement table, model, and warm-start state), and dirty
// shards refresh in parallel each round instead of serializing on one
// engine. Policies of the same group still share everything — every row one
// of them measures teaches the model all of them reason on — and all groups
// share the broker's measurement cache plus one process-wide CI-result
// cache, so a configuration or a p-value one group already paid for is free
// for the rest. The plain Run/RunAsync overloads put every policy in one
// default group, which is exactly the old single-engine campaign.
//
// Cross-environment transfer is a first-class campaign scenario:
// TransferPolicy replays a recorded source-hardware table through the
// measurement plane (served by the fleet's RecordedBackend — zero fresh
// source measurements), warm-starting the shared engine with
// source-provenance rows, then hands the rounds to an inner debug/optimize
// policy whose fresh measurements route to live target-environment
// backends.
#ifndef UNICORN_UNICORN_CAMPAIGN_H_
#define UNICORN_UNICORN_CAMPAIGN_H_

#include <memory>
#include <string>
#include <vector>

#include "causal/counterfactual.h"
#include "unicorn/backend/measurement_table.h"
#include "unicorn/engine_pool.h"
#include "unicorn/measurement_broker.h"
#include "unicorn/model_learner.h"
#include "unicorn/task.h"

namespace unicorn {

// Goal predicates shared by the debugger, the baselines, and the benches
// (previously copy-pasted in each).
//
/// All goals satisfied by this measurement row?
/// Thread-safety: pure function. Failure: `row` must cover every goal.var.
bool GoalsMet(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals);
/// Scalar "badness": max relative violation across goals (<= 0 means met).
/// Thread-safety: pure function.
double GoalViolation(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals);

/// What a policy sees each round: its objective group's engine shard, the
/// shared broker, the task metadata, and the round counter. Borrowed
/// references — valid only for the duration of the callback that received
/// the context. `engine` is the policy's shard: policies written against the
/// old single-engine campaign keep working unchanged, they just reason on
/// (and absorb into) their group's table. `pool` exposes the whole shard
/// pool for fleet-style accounting (aggregate stats, cross-shard cache
/// hits); policies must not refresh other groups' shards from callbacks.
struct CampaignContext {
  const PerformanceTask& task;
  CausalModelEngine& engine;
  MeasurementBroker& broker;
  size_t round = 0;
  size_t shard = 0;                    // index of `engine` in `pool`
  EngineShardPool* pool = nullptr;     // owned by the runner; never null there
};

/// A reasoning policy driven by the CampaignRunner. Give concurrent policies
/// distinct seeds unless shared bootstrap configurations are intended: the
/// broker makes repeat measurements free, but each accepting policy still
/// appends its rows to the shared table, and exact duplicate rows inflate
/// the CI tests' effective sample size.
///
/// Per-round contract: Propose() returns the configurations to measure this
/// round; ProposalEnvironments() (called immediately after, with the
/// proposal's size) returns their routing tags; Absorb() receives the
/// measured rows in proposal order and appends whatever it accepts to
/// ctx.engine (so speculative batch rows a sequential loop would never have
/// measured can be dropped, keeping batched == serial). A policy that
/// proposes an empty batch must report Finished() — the runner retires it
/// either way, since a policy proposing nothing can never finish itself.
///
/// Thread-safety: none required or provided. The runner invokes every
/// callback from the one thread driving the campaign, never concurrently —
/// policies may keep plain mutable state.
class CampaignPolicy {
 public:
  virtual ~CampaignPolicy() = default;

  /// Should the runner refresh this policy's engine shard before this
  /// round's Propose()? Refreshes are per shard: one refresh serves every
  /// policy of the same objective group, and the runner refreshes all dirty
  /// shards of a round in parallel.
  virtual bool WantsRefresh(const CampaignContext& ctx) = 0;

  /// The configurations to measure this round (possibly empty: see the
  /// class contract). Failure: exceptions propagate out of the runner.
  virtual std::vector<std::vector<double>> Propose(CampaignContext& ctx) = 0;

  /// Environment routing tags for the proposal just returned by Propose()
  /// (`proposal_size` entries, parallel). Return {} — the default — when
  /// every request may run on any backend. Called exactly once per round,
  /// immediately after Propose().
  virtual std::vector<std::string> ProposalEnvironments(size_t proposal_size) {
    (void)proposal_size;
    return {};
  }

  /// Receives the measured rows of this policy's proposal, in proposal
  /// order. Not called for rounds where the policy proposed nothing.
  virtual void Absorb(const std::vector<std::vector<double>>& configs,
                      const std::vector<std::vector<double>>& rows,
                      CampaignContext& ctx) = 0;

  virtual bool Finished() const = 0;

  /// Called exactly once, when the policy leaves the campaign (finished or
  /// round cap hit): capture result state from the shared engine/broker.
  virtual void Finalize(CampaignContext& ctx) = 0;
};

/// Options of the transfer wrapper (see TransferPolicy). Plain value type.
struct TransferOptions {
  /// Routing tag the replayed source configurations are submitted with; it
  /// must match the fleet's recorded-source member (RecordedBackend adopts
  /// the table's provenance label automatically). Empty = untagged: the
  /// replay may then land on any backend that Supports() the config, which
  /// is only correct in single-environment fleets.
  std::string source_environment;
  /// Backstop routing tag for the inner policy's requests: applied to every
  /// round for which the inner policy returns no tags of its own. Without
  /// it, an untagged fresh request whose configuration happens to exist in
  /// the recording could be answered by the source RecordedBackend and be
  /// silently absorbed as a "target" row. Inner-policy tags (e.g.
  /// DebugOptions::environment) take precedence; empty = no backstop.
  std::string target_environment;
  /// Replay at most this many recorded rows (0 = the whole recording).
  size_t max_source_rows = 0;
};

/// How much of a transfer campaign's model rests on reused source rows
/// versus fresh target measurements (paper Fig. 16/17, Table 15 reporting).
struct TransferStats {
  size_t source_rows = 0;  ///< recorded rows replayed into the engine
  size_t target_rows = 0;  ///< rows in the shared engine measured live
};

/// Cross-environment transfer as a campaign policy: wraps an inner
/// debug/optimize policy. Its first round proposes the recorded source
/// table's configurations (tagged with the source environment, so the
/// fleet's RecordedBackend answers them — zero fresh source-hardware
/// measurements) concatenated with the inner policy's own first-round
/// batch; the replayed rows are absorbed into the shared engine with
/// RowProvenance::kSource. Every later round delegates to the inner policy
/// unchanged. Because the replay and the inner bootstrap share round 0, the
/// refresh-seed stream the inner policy sees is identical to a legacy
/// warm-table run — with matching source rows and a target fleet matching
/// the legacy task, results are bit-identical (pinned by
/// tests/transfer_campaign_test.cc).
///
/// Thread-safety: as CampaignPolicy (single campaign thread). The inner
/// policy is borrowed, must outlive the TransferPolicy, and must not be
/// driven by anything else during the campaign.
/// Failure: an empty or shape-mismatched recording replays nothing (the
/// wrapper degrades to pure delegation); replay requests no fleet member
/// can serve surface as broker measurement failures.
class TransferPolicy : public CampaignPolicy {
 public:
  TransferPolicy(TransferOptions options, MeasurementTable source, CampaignPolicy* inner);

  bool WantsRefresh(const CampaignContext& ctx) override;
  std::vector<std::vector<double>> Propose(CampaignContext& ctx) override;
  std::vector<std::string> ProposalEnvironments(size_t proposal_size) override;
  void Absorb(const std::vector<std::vector<double>>& configs,
              const std::vector<std::vector<double>>& rows, CampaignContext& ctx) override;
  bool Finished() const override;
  void Finalize(CampaignContext& ctx) override;

  /// Valid once the campaign has run (Finalize was called).
  const TransferStats& stats() const { return stats_; }

 private:
  TransferOptions options_;
  MeasurementTable source_;
  CampaignPolicy* inner_;
  bool replayed_ = false;       // source configs already proposed?
  size_t replay_count_ = 0;     // replay slice of the round-0 proposal
  size_t inner_proposed_ = 0;   // inner slice of the current proposal
  TransferStats stats_;
};

/// A policy plus the objective group whose engine shard it reasons on.
/// Policies with equal group strings share one shard (one table, one model);
/// distinct groups get distinct shards that refresh in parallel.
struct GroupedPolicy {
  CampaignPolicy* policy = nullptr;
  std::string group;  // "" = the default group (shard 0)
};

/// Campaign-wide knobs. Plain value type.
struct CampaignOptions {
  CausalModelOptions model;
  EngineOptions engine;
  BrokerOptions broker;
  /// Refresh-seed stream: the round-r refresh uses seed + (r - 1) (round 0
  /// is the bootstrap round), matching the per-iteration reseeding the
  /// sequential loops did. All shards of a round refresh with the same
  /// seed, so a group's stream is independent of how many other groups run.
  uint64_t seed = 17;
  /// Runaway guard; policies normally terminate themselves.
  size_t max_rounds = 100000;
  /// Worker threads for parallel refreshes of dirty engine shards (see
  /// ShardPoolOptions::refresh_threads). 1 = serial; results bit-identical
  /// for any value.
  int refresh_threads = 1;
  /// One process-wide CI cache across all shards (cross-shard p-value
  /// reuse); see ShardPoolOptions::share_ci_cache.
  bool share_ci_cache = true;
  /// RunAsyncGrouped engine. true (default): the pipelined campaign
  /// scheduler — shard refreshes run asynchronously on the pool's refresh
  /// workers and dirty shards of different policies coalesce into one
  /// parallel refresh batch, so another policy's absorb/propose/submit is
  /// never stuck behind a refresh it does not need (its measurements keep
  /// the fleet busy while refresh compute runs). false: the drain loop that
  /// refreshes inline on the campaign thread, kept as the measurable
  /// baseline (bench/table_pipeline.cc compares the two). Per-policy
  /// results are bit-identical either way — same refresh-seed stream, same
  /// refresh trigger points, same rows in the same order (pinned by
  /// tests/pipeline_scheduler_test.cc).
  bool pipeline = true;
  /// Pin the asynchronous refresh workers to CPUs (see
  /// ShardPoolOptions::pin_refresh_threads). Performance hint, off by
  /// default; bit-identity is unaffected.
  bool pin_refresh_threads = false;
};

/// Owns the reasoning plane (an EngineShardPool: per-objective-group engine
/// shards over one shared CI cache) and the experiment plane (the
/// MeasurementBroker) of a campaign, and drives its policies' rounds to
/// completion.
/// Thread-safety: a runner is driven by one thread; concurrency lives below
/// it (broker pool threads, fleet workers, parallel shard refreshes), never
/// in the runner itself.
class CampaignRunner {
 public:
  CampaignRunner(PerformanceTask task, CampaignOptions options = {});
  /// Fleet-backed campaign: measurements dispatch through `fleet`
  /// (per-backend queues, retries, circuit breaking) instead of the flat
  /// thread pool. `task` still provides variable metadata and must match
  /// what the backends measure.
  CampaignRunner(PerformanceTask task, CampaignOptions options,
                 std::unique_ptr<BackendFleet> fleet);

  /// The default group's engine shard (shard 0) — the engine every policy
  /// of a plain Run(policies) call shares, and the campaign's only engine
  /// unless grouped overloads created more shards.
  CausalModelEngine& engine() { return pool_.shard(0); }
  /// The whole sharded reasoning plane (per-group shards, shared CI cache,
  /// aggregate ShardPoolStats).
  EngineShardPool& pool() { return pool_; }
  MeasurementBroker& broker() { return broker_; }
  const PerformanceTask& task() const { return broker_.task(); }

  /// Runs rounds until every policy is finished. Each round: refresh every
  /// shard whose active policies ask (dirty shards refresh in parallel on
  /// the pool's refresh threads), collect every policy's proposal (in the
  /// given order) and its environment tags, measure them as ONE combined
  /// broker batch (shared dedup, maximal fan-out), and hand each policy its
  /// slice of rows.
  /// Failure: measurement failures (fleet retries exhausted) and policy
  /// exceptions propagate; the campaign is then abandoned mid-round.
  void RunGrouped(const std::vector<GroupedPolicy>& policies);
  /// Ungrouped variant: every policy in the default group — one shared
  /// shard, the exact pre-sharding campaign.
  void Run(const std::vector<CampaignPolicy*>& policies);

  /// The barrier-free variant (ROADMAP "async campaign rounds"): each
  /// policy submits its round as its own broker batch and absorbs it the
  /// moment its rows land, so a fast policy refreshes its shard and
  /// proposes again while a slow policy's measurements are still in flight
  /// on the fleet — no per-round barrier across policies. Round counters,
  /// refresh seeds, and the propose/absorb contract are per policy and
  /// unchanged; with a single policy (any broker mode, homogeneous
  /// backends) this is bit-identical to Run, and policies in distinct
  /// objective groups are bit-identical to their RunGrouped selves for any
  /// CampaignOptions::pipeline / refresh_threads setting. With several
  /// policies sharing a group, the interleaving of that shard's refreshes
  /// follows measurement completion order, which on a real fleet is
  /// timing-dependent — results stay valid but are not run-to-run
  /// deterministic.
  ///
  /// With CampaignOptions::pipeline (the default) this runs the pipelined
  /// campaign scheduler: completions stream in and are absorbed the moment
  /// a policy's batch fills; a policy whose next round wants a refresh
  /// hands its shard to the pool's asynchronous refresh workers and the
  /// scheduler keeps servicing every other policy meanwhile — dirty shards
  /// of different policies refresh as one parallel batch, hidden behind
  /// the fleet's device service time (ShardPoolStats::overlap_seconds /
  /// widest_cross_policy_batch report how well).
  /// Failure: as Run; a permanently failed measurement throws (outstanding
  /// asynchronous refreshes are drained before the exception leaves).
  void RunAsyncGrouped(const std::vector<GroupedPolicy>& policies);
  void RunAsync(const std::vector<CampaignPolicy*>& policies);

  /// Shared initial-sampling helper (the stage every loop and bench used to
  /// hand-roll): `count` uniform-random configurations drawn with `rng`.
  std::vector<std::vector<double>> SampleConfigs(size_t count, Rng* rng) const;

  /// Samples `count` configurations and measures them as one batch; rows
  /// come back in draw order.
  std::vector<std::vector<double>> MeasureUniform(size_t count, Rng* rng);

 private:
  // Refresh-seed stream shared by Run and RunAsync: the round-r refreshing
  // round reseeds with seed + (r - 1); round 0 is the bootstrap round and
  // aliases to seed + 0 (it only refreshes when the shard already has
  // rows). The single-policy async == sync bit-identity rests on both
  // loops drawing from this one formula; shards share the stream, so a
  // single-group campaign sees the exact pre-sharding seeds.
  uint64_t RefreshSeed(size_t round) const {
    return options_.seed + (round > 0 ? round - 1 : 0);
  }

  // The policy's context for one callback: its shard, the shared broker.
  CampaignContext ContextFor(size_t shard, size_t round) {
    return CampaignContext{broker_.task(), pool_.shard(shard), broker_, round, shard, &pool_};
  }

  static ShardPoolOptions MakePoolOptions(const CampaignOptions& options);

  // The two RunAsyncGrouped engines (see CampaignOptions::pipeline).
  void RunAsyncGroupedBarrier(const std::vector<GroupedPolicy>& policies);
  void RunAsyncGroupedPipelined(const std::vector<GroupedPolicy>& policies);

  CampaignOptions options_;
  MeasurementBroker broker_;  // owns the task
  EngineShardPool pool_;      // shard 0 (default group) exists from birth
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_CAMPAIGN_H_
