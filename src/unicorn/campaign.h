// The shared campaign runner: the generic propose → measure(batch) →
// absorb → refresh loop under every Unicorn policy.
//
// A campaign decouples the reasoning plane (the causal-discovery engine plus
// whatever policy proposes the next configurations) from the experiment
// plane (the measurement broker). UnicornDebugger and UnicornOptimizer are
// thin policies over this runner, and several policies — multi-fault,
// multi-objective, transfer source+target — can run concurrently against one
// shared engine (one measurement table, one model) and one shared
// measurement cache: every row any policy measures teaches the model all of
// them reason on, and a configuration one policy already paid for is free
// for the rest.
#ifndef UNICORN_UNICORN_CAMPAIGN_H_
#define UNICORN_UNICORN_CAMPAIGN_H_

#include <memory>
#include <vector>

#include "causal/counterfactual.h"
#include "unicorn/measurement_broker.h"
#include "unicorn/model_learner.h"
#include "unicorn/task.h"

namespace unicorn {

// Goal predicates shared by the debugger, the baselines, and the benches
// (previously copy-pasted in each).
//
// All goals satisfied by this measurement row?
bool GoalsMet(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals);
// Scalar "badness": max relative violation across goals (<= 0 means met).
double GoalViolation(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals);

// What a policy sees each round: the shared engine, the shared broker, the
// task metadata, and the round counter.
struct CampaignContext {
  const PerformanceTask& task;
  CausalModelEngine& engine;
  MeasurementBroker& broker;
  size_t round = 0;
};

// A reasoning policy driven by the CampaignRunner. Give concurrent policies
// distinct seeds unless shared bootstrap configurations are intended: the
// broker makes repeat measurements free, but each accepting policy still
// appends its rows to the shared table, and exact duplicate rows inflate the
// CI tests' effective sample size. Per-round contract:
// Propose() returns the configurations to measure this round; Absorb()
// receives the measured rows in proposal order and appends whatever it
// accepts to ctx.engine (so speculative batch rows a sequential loop would
// never have measured can be dropped, keeping batched == serial). A policy
// that proposes an empty batch must report Finished() — the runner retires
// it either way, since a policy proposing nothing can never finish itself.
class CampaignPolicy {
 public:
  virtual ~CampaignPolicy() = default;

  // Should the runner refresh the shared engine before this round's
  // Propose()? Refreshes are shared: one refresh serves every policy.
  virtual bool WantsRefresh(const CampaignContext& ctx) = 0;

  virtual std::vector<std::vector<double>> Propose(CampaignContext& ctx) = 0;

  virtual void Absorb(const std::vector<std::vector<double>>& configs,
                      const std::vector<std::vector<double>>& rows,
                      CampaignContext& ctx) = 0;

  virtual bool Finished() const = 0;

  // Called exactly once, when the policy leaves the campaign (finished or
  // round cap hit): capture result state from the shared engine/broker.
  virtual void Finalize(CampaignContext& ctx) = 0;
};

struct CampaignOptions {
  CausalModelOptions model;
  EngineOptions engine;
  BrokerOptions broker;
  // Refresh-seed stream: the round-r refresh uses seed + (r - 1) (round 0
  // is the bootstrap round), matching the per-iteration reseeding the
  // sequential loops did.
  uint64_t seed = 17;
  // Runaway guard; policies normally terminate themselves.
  size_t max_rounds = 100000;
};

// Owns the shared CausalModelEngine and MeasurementBroker of a campaign and
// drives its policies' rounds to completion.
class CampaignRunner {
 public:
  CampaignRunner(PerformanceTask task, CampaignOptions options = {});
  // Fleet-backed campaign: measurements dispatch through `fleet`
  // (per-backend queues, retries, circuit breaking) instead of the flat
  // thread pool. `task` still provides variable metadata and must match
  // what the backends measure.
  CampaignRunner(PerformanceTask task, CampaignOptions options,
                 std::unique_ptr<BackendFleet> fleet);

  CausalModelEngine& engine() { return engine_; }
  MeasurementBroker& broker() { return broker_; }
  const PerformanceTask& task() const { return broker_.task(); }

  // Runs rounds until every policy is finished. Each round: refresh the
  // engine if any active policy asks, collect every policy's proposal (in
  // the given order), measure them as ONE combined broker batch (shared
  // dedup, maximal fan-out), and hand each policy its slice of rows.
  void Run(const std::vector<CampaignPolicy*>& policies);

  // The barrier-free variant (ROADMAP "async campaign rounds"): each policy
  // submits its round as its own broker batch and absorbs it the moment its
  // rows land, so a fast policy refreshes the model and proposes again while
  // a slow policy's measurements are still in flight on the fleet — no
  // per-round barrier across policies. Round counters, refresh seeds, and
  // the propose/absorb contract are per policy and unchanged; with a single
  // policy (any broker mode, homogeneous backends) this is bit-identical to
  // Run. With several policies the interleaving of shared-engine refreshes
  // follows measurement completion order, which on a real fleet is timing-
  // dependent — results stay valid but are not run-to-run deterministic.
  void RunAsync(const std::vector<CampaignPolicy*>& policies);

  // Shared initial-sampling helper (the stage every loop and bench used to
  // hand-roll): `count` uniform-random configurations drawn with `rng`.
  std::vector<std::vector<double>> SampleConfigs(size_t count, Rng* rng) const;

  // Samples `count` configurations and measures them as one batch; rows come
  // back in draw order.
  std::vector<std::vector<double>> MeasureUniform(size_t count, Rng* rng);

 private:
  // Refresh-seed stream shared by Run and RunAsync: the round-r refreshing
  // round reseeds with seed + (r - 1); round 0 is the bootstrap round and
  // aliases to seed + 0 (it only refreshes when the engine already has
  // rows). The single-policy async == sync bit-identity rests on both
  // loops drawing from this one formula.
  uint64_t RefreshSeed(size_t round) const {
    return options_.seed + (round > 0 ? round - 1 : 0);
  }

  CampaignOptions options_;
  MeasurementBroker broker_;  // owns the task
  CausalModelEngine engine_;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_CAMPAIGN_H_
