#include "unicorn/debugger.h"

#include <algorithm>

#include "causal/constraints.h"

namespace unicorn {

CampaignOptions ToCampaignOptions(const DebugOptions& options) {
  CampaignOptions campaign;
  campaign.model = options.model;
  campaign.engine = options.engine;
  campaign.broker = options.broker;
  campaign.seed = options.seed;
  return campaign;
}

DebugPolicy::DebugPolicy(DebugOptions options, std::vector<double> fault_config,
                         std::vector<ObjectiveGoal> goals, const DataTable* warm_start)
    : options_(std::move(options)),
      fault_config_(std::move(fault_config)),
      goals_(std::move(goals)),
      warm_start_(warm_start),
      rng_(options_.seed) {
  for (const auto& goal : goals_) {
    goal_vars_.push_back(goal.var);
  }
}

std::vector<std::string> DebugPolicy::ProposalEnvironments(size_t proposal_size) {
  return options_.environment.empty()
             ? std::vector<std::string>{}
             : std::vector<std::string>(proposal_size, options_.environment);
}

bool DebugPolicy::WantsRefresh(const CampaignContext&) {
  // No model is needed for the bootstrap batch, and none after the budget is
  // spent; every repair round reasons on a fresh (incremental) refresh.
  return bootstrapped_ && !finished_ && iter_ < options_.max_iterations;
}

std::vector<std::vector<double>> DebugPolicy::Propose(CampaignContext& ctx) {
  if (!bootstrapped_) {
    // Stage II bootstrap: initial observational data plus the fault itself,
    // proposed as one batch so the broker can fan it out.
    ctx.engine.Reserve(ctx.engine.data().NumRows() +
                       (warm_start_ != nullptr ? warm_start_->NumRows() : 0) +
                       options_.initial_samples +
                       options_.repairs_per_iteration * options_.max_iterations + 2);
    if (warm_start_ != nullptr) {
      // Transferred observational data: tag it as source provenance so
      // DebugResult reports the reuse split the same way the fleet-backed
      // TransferPolicy path does.
      ctx.engine.AppendRows(*warm_start_, RowProvenance::kSource);
    }
    roles_ = StructuralConstraints(ctx.task.variables).roles();
    std::vector<std::vector<double>> batch;
    batch.reserve(options_.initial_samples + 1);
    for (size_t i = 0; i < options_.initial_samples; ++i) {
      batch.push_back(ctx.task.sample_config(&rng_));
    }
    batch.push_back(fault_config_);
    return batch;
  }

  if (iter_ >= options_.max_iterations) {
    finished_ = true;
    return {};
  }

  result_.tests_per_iteration.push_back(ctx.engine.stats().tests_requested);
  const CausalEffectEstimator& estimator = ctx.engine.Estimator();

  // Stage III: rank causal paths into the violated objectives.
  auto paths = estimator.RankPaths(goal_vars_, options_.top_k_paths);

  path_diagnosis_ = OptionsOnPaths(paths, roles_);
  const size_t options_on_paths = path_diagnosis_.size();
  constexpr size_t kMaxDiagnosis = 8;
  if (path_diagnosis_.size() > kMaxDiagnosis) {
    path_diagnosis_.resize(kMaxDiagnosis);
  }

  // Cold-start fallback: with few samples the learned paths may not reach
  // back to any option yet. Augment with the options that have the highest
  // direct ACE on the violated objectives (same heuristic, degenerate
  // two-node paths) so the repair generator always has candidates.
  if (options_on_paths < 3) {
    std::vector<std::pair<double, size_t>> scored;
    for (size_t opt : ctx.task.option_vars) {
      double ace = 0.0;
      for (size_t g : goal_vars_) {
        ace += estimator.Ace(g, opt);
      }
      scored.push_back({ace, opt});
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& x, const auto& y) { return x.first > y.first; });
    const size_t want = 6 - options_on_paths;
    for (size_t i = 0; i < scored.size() && i < want; ++i) {
      RankedPath pseudo;
      pseudo.nodes = {scored[i].second, goal_vars_.front()};
      pseudo.path_ace = scored[i].first;
      paths.push_back(std::move(pseudo));
    }
  }

  // Stage V: counterfactual repair generation + ICE scoring, then the
  // highest-ICE untried repairs become this round's measurement batch.
  const auto repairs =
      GenerateRepairs(estimator, paths, roles_, current_row_, goals_, options_.repairs);

  pending_.clear();
  std::vector<std::vector<double>> batch;
  for (const auto& repair : repairs) {
    if (pending_.size() >= options_.repairs_per_iteration) {
      break;
    }
    std::vector<double> candidate = current_config_;
    for (const auto& [var, level] : repair.assignments) {
      // Map global option var -> config slot.
      for (size_t i = 0; i < ctx.task.option_vars.size(); ++i) {
        if (ctx.task.option_vars[i] == var) {
          candidate[i] = estimator.ValueOfLevel(var, level);
        }
      }
    }
    if (tried_configs_.count(candidate)) {
      continue;
    }
    tried_configs_.insert(candidate);
    pending_.push_back({candidate, repair.assignments.front().first});
    batch.push_back(std::move(candidate));
  }
  if (batch.empty()) {
    // No untried repair left to measure: the loop cannot make progress.
    finished_ = true;
  }
  return batch;
}

void DebugPolicy::Absorb(const std::vector<std::vector<double>>&,
                         const std::vector<std::vector<double>>& rows,
                         CampaignContext& ctx) {
  if (!bootstrapped_) {
    for (const auto& row : rows) {
      ctx.engine.AddRow(row);
      ++result_.measurements_used;
    }
    fault_row_ = rows.back();
    current_config_ = fault_config_;
    current_row_ = fault_row_;
    best_config_ = fault_config_;
    best_row_ = fault_row_;
    best_badness_ = GoalViolation(fault_row_, goals_);
    tried_configs_ = {fault_config_};
    bootstrapped_ = true;
    return;
  }

  ++iter_;
  for (size_t k = 0; k < rows.size(); ++k) {
    const auto& row = rows[k];
    ctx.engine.AddRow(row);
    ++result_.measurements_used;

    std::vector<double> objective_values;
    for (size_t g : goal_vars_) {
      objective_values.push_back(row[g]);
    }
    result_.objective_trajectory.push_back(std::move(objective_values));
    result_.selected_options.push_back(pending_[k].first_option);

    const double badness = GoalViolation(row, goals_);
    if (badness < best_badness_) {
      best_badness_ = badness;
      best_row_ = row;
      best_config_ = pending_[k].config;
      current_config_ = pending_[k].config;  // greedy: continue from the improvement
      current_row_ = row;
      stall_ = 0;
    } else {
      ++stall_;
    }
    if (GoalsMet(row, goals_)) {
      result_.fixed = true;
      // The broker may have speculatively measured the rest of the batch; a
      // sequential loop would have stopped here, so drop the remainder
      // (neither appended nor counted) to keep batched == serial.
      break;
    }
  }
  if (result_.fixed || stall_ >= options_.stall_termination ||
      iter_ >= options_.max_iterations) {
    finished_ = true;
  }
  // The CI-state extension for this slice (the AbsorbIncremental contract)
  // is deliberately NOT paid here: Refresh() brings the test state up to
  // date in one O(appended-since-last-refresh) step on entry — on the
  // pipeline's refresh workers that work overlaps device service time and
  // parallelizes across shards instead of serializing on the scheduler
  // thread, and an engine that never refreshes again (a policy past its
  // last relearn) skips it entirely. Bit-identical either way: nothing
  // reads the test state between absorb and refresh.
}

void DebugPolicy::Finalize(CampaignContext& ctx) {
  if (ctx.engine.HasModel()) {
    result_.final_graph = ctx.engine.model().admg;
  }
  result_.engine_stats = ctx.engine.stats();
  result_.shard = ctx.shard;
  if (ctx.pool != nullptr) {
    result_.pool_stats = ctx.pool->stats();
  }
  result_.broker_stats = ctx.broker.stats();
  result_.source_rows = ctx.engine.ProvenanceRows(RowProvenance::kSource);
  result_.target_rows = ctx.engine.ProvenanceRows(RowProvenance::kTarget);
  result_.fixed_config = best_config_;
  result_.fixed_measurement = best_row_;
  // Diagnosis: the options the fix changed, plus the options on the final
  // model's top causal paths into the violated objectives.
  for (size_t i = 0; i < ctx.task.option_vars.size(); ++i) {
    if (!best_config_.empty() && best_config_[i] != fault_config_[i]) {
      result_.predicted_root_causes.push_back(ctx.task.option_vars[i]);
    }
  }
  for (size_t v : path_diagnosis_) {
    if (std::find(result_.predicted_root_causes.begin(), result_.predicted_root_causes.end(),
                  v) == result_.predicted_root_causes.end()) {
      result_.predicted_root_causes.push_back(v);
    }
  }
  std::sort(result_.predicted_root_causes.begin(), result_.predicted_root_causes.end());
}

UnicornDebugger::UnicornDebugger(PerformanceTask task, DebugOptions options)
    : task_(std::move(task)), options_(std::move(options)) {}

DebugResult UnicornDebugger::Debug(const std::vector<double>& fault_config,
                                   const std::vector<ObjectiveGoal>& goals,
                                   const DataTable* warm_start) {
  CampaignRunner runner(task_, ToCampaignOptions(options_));
  DebugPolicy policy(options_, fault_config, goals, warm_start);
  runner.Run({&policy});
  return policy.TakeResult();
}

}  // namespace unicorn
