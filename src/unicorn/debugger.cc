#include "unicorn/debugger.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace unicorn {
namespace {

// All goals satisfied by this measurement row?
bool GoalsMet(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals) {
  for (const auto& goal : goals) {
    if (row[goal.var] > goal.threshold) {
      return false;
    }
  }
  return true;
}

// Scalar "badness": max relative violation across goals (<= 0 means met).
double Badness(const std::vector<double>& row, const std::vector<ObjectiveGoal>& goals) {
  double worst = -1e18;
  for (const auto& goal : goals) {
    const double denom = std::max(1e-9, std::fabs(goal.threshold));
    worst = std::max(worst, (row[goal.var] - goal.threshold) / denom);
  }
  return worst;
}

}  // namespace

UnicornDebugger::UnicornDebugger(PerformanceTask task, DebugOptions options)
    : task_(std::move(task)), options_(std::move(options)) {}

DebugResult UnicornDebugger::Debug(const std::vector<double>& fault_config,
                                   const std::vector<ObjectiveGoal>& goals,
                                   const DataTable* warm_start) {
  Rng rng(options_.seed);
  DebugResult result;

  // The engine is the loop's long-lived state: it owns the growing
  // measurement table and re-learns the model incrementally each iteration.
  CausalModelEngine engine(task_.variables, options_.model, options_.engine);
  engine.Reserve(options_.initial_samples +
                 options_.repairs_per_iteration * options_.max_iterations + 2);

  // Stage II bootstrap: initial observational data.
  if (warm_start != nullptr) {
    engine.AppendRows(*warm_start);
  }
  for (size_t i = 0; i < options_.initial_samples; ++i) {
    engine.AddRow(task_.measure(task_.sample_config(&rng)));
    ++result.measurements_used;
  }
  const std::vector<double> fault_row = task_.measure(fault_config);
  ++result.measurements_used;
  engine.AddRow(fault_row);

  const StructuralConstraints constraints(task_.variables);
  const std::vector<VarRole>& roles = constraints.roles();
  std::vector<size_t> goal_vars;
  for (const auto& g : goals) {
    goal_vars.push_back(g.var);
  }

  std::vector<double> current_config = fault_config;
  std::vector<double> current_row = fault_row;
  std::vector<double> best_row = fault_row;
  std::vector<double> best_config = fault_config;
  double best_badness = Badness(fault_row, goals);

  std::set<std::vector<double>> tried_configs = {fault_config};
  size_t stall = 0;
  // Diagnosis from the most recent model: options on the top-ranked causal
  // paths into the violated objectives (paper §4: "the configurations in
  // this path are more likely to be associated with the root cause").
  std::vector<size_t> path_diagnosis;

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // Stage II/IV: incrementally refresh the causal performance model on all
    // data (warm-started from the previous iteration's model when enabled).
    engine.Refresh(options_.seed + iter);
    result.tests_per_iteration.push_back(engine.stats().tests_requested);
    const CausalEffectEstimator& estimator = engine.Estimator();

    // Stage III: rank causal paths into the violated objectives.
    auto paths = estimator.RankPaths(goal_vars, options_.top_k_paths);

    path_diagnosis = OptionsOnPaths(paths, roles);
    constexpr size_t kMaxDiagnosis = 8;
    if (path_diagnosis.size() > kMaxDiagnosis) {
      path_diagnosis.resize(kMaxDiagnosis);
    }

    // Cold-start fallback: with few samples the learned paths may not reach
    // back to any option yet. Augment with the options that have the highest
    // direct ACE on the violated objectives (same heuristic, degenerate
    // two-node paths) so the repair generator always has candidates.
    size_t options_on_paths = OptionsOnPaths(paths, roles).size();
    if (options_on_paths < 3) {
      std::vector<std::pair<double, size_t>> scored;
      for (size_t opt : task_.option_vars) {
        double ace = 0.0;
        for (size_t g : goal_vars) {
          ace += estimator.Ace(g, opt);
        }
        scored.push_back({ace, opt});
      }
      std::sort(scored.begin(), scored.end(),
                [](const auto& x, const auto& y) { return x.first > y.first; });
      const size_t want = 6 - options_on_paths;
      for (size_t i = 0; i < scored.size() && i < want; ++i) {
        RankedPath pseudo;
        pseudo.nodes = {scored[i].second, goal_vars.front()};
        pseudo.path_ace = scored[i].first;
        paths.push_back(std::move(pseudo));
      }
    }

    // Stage V: counterfactual repair generation + ICE scoring.
    auto repairs =
        GenerateRepairs(estimator, paths, roles, current_row, goals, options_.repairs);

    // Measure the highest-ICE untried repairs (a small batch per refresh).
    bool applied = false;
    size_t measured_this_iter = 0;
    for (const auto& repair : repairs) {
      if (measured_this_iter >= options_.repairs_per_iteration) {
        break;
      }
      std::vector<double> candidate = current_config;
      for (const auto& [var, level] : repair.assignments) {
        // Map global option var -> config slot.
        for (size_t i = 0; i < task_.option_vars.size(); ++i) {
          if (task_.option_vars[i] == var) {
            candidate[i] = estimator.ValueOfLevel(var, level);
          }
        }
      }
      if (tried_configs.count(candidate)) {
        continue;
      }
      tried_configs.insert(candidate);
      const std::vector<double> row = task_.measure(candidate);
      ++result.measurements_used;
      ++measured_this_iter;
      engine.AddRow(row);

      std::vector<double> objective_values;
      for (size_t g : goal_vars) {
        objective_values.push_back(row[g]);
      }
      result.objective_trajectory.push_back(std::move(objective_values));
      result.selected_options.push_back(repair.assignments.front().first);

      const double badness = Badness(row, goals);
      if (badness < best_badness) {
        best_badness = badness;
        best_row = row;
        best_config = candidate;
        current_config = candidate;  // greedy: continue from the improvement
        current_row = row;
        stall = 0;
      } else {
        ++stall;
      }
      applied = true;
      if (GoalsMet(row, goals)) {
        result.fixed = true;
        break;
      }
    }
    if (result.fixed) {
      break;
    }
    if (!applied || stall >= options_.stall_termination) {
      break;
    }
  }
  // The engine outlives the loop, so one capture covers every exit path.
  if (engine.HasModel()) {
    result.final_graph = engine.model().admg;
  }

  result.engine_stats = engine.stats();
  result.fixed_config = best_config;
  result.fixed_measurement = best_row;
  // Diagnosis: the options the fix changed, plus the options on the final
  // model's top causal paths into the violated objectives.
  for (size_t i = 0; i < task_.option_vars.size(); ++i) {
    if (best_config[i] != fault_config[i]) {
      result.predicted_root_causes.push_back(task_.option_vars[i]);
    }
  }
  for (size_t v : path_diagnosis) {
    if (std::find(result.predicted_root_causes.begin(), result.predicted_root_causes.end(),
                  v) == result.predicted_root_causes.end()) {
      result.predicted_root_causes.push_back(v);
    }
  }
  std::sort(result.predicted_root_causes.begin(), result.predicted_root_causes.end());
  return result;
}

}  // namespace unicorn
