// Unicorn performance debugging (paper §4, Stages I-V as one loop).
//
// Given a faulty configuration and QoS goals, iteratively:
//   1. learn/refresh the causal performance model from all measurements,
//   2. extract and rank causal paths into the violated objectives (ACE),
//   3. generate counterfactual repairs over the options on the top-K paths
//      and score them by ICE — purely on observational data,
//   4. measure the best untried repairs (a batch per model refresh, through
//      the measurement broker); stop when the goals are met, no new repair
//      can be proposed, or the budget is exhausted.
//
// The loop itself lives in DebugPolicy, a CampaignPolicy over the shared
// CampaignRunner: UnicornDebugger is the thin single-policy wrapper, and a
// campaign can run several DebugPolicy instances (multi-fault debugging)
// against one engine and one measurement cache.
#ifndef UNICORN_UNICORN_DEBUGGER_H_
#define UNICORN_UNICORN_DEBUGGER_H_

#include <set>
#include <vector>

#include "causal/counterfactual.h"
#include "causal/effects.h"
#include "unicorn/campaign.h"
#include "unicorn/model_learner.h"
#include "unicorn/task.h"

namespace unicorn {

struct DebugOptions {
  size_t initial_samples = 25;  // 10% of the sampling budget (paper §6)
  size_t max_iterations = 40;
  size_t top_k_paths = 10;          // K in [3, 25] per appendix B.2
  size_t stall_termination = 4;     // stop after this many non-improving steps
  size_t repairs_per_iteration = 2;  // repairs measured (as one batch) per refresh
  CausalModelOptions model;
  // Incremental-discovery knobs (warm starts, CI cache, skeleton threads)
  // for the engine held across the debug loop's iterations.
  EngineOptions engine;
  // Measurement-plane knobs: threads fanning out each repair/bootstrap batch
  // and the canonical-config dedup cache. Rows are bit-identical for any
  // thread count (harness measurement is pure per configuration).
  BrokerOptions broker;
  RepairOptions repairs;
  // Environment routing tag for every measurement this policy requests
  // (bootstrap and repairs). Empty = any backend. On a heterogeneous fleet
  // set it to the target hardware's tag so fresh measurements can never be
  // answered by a recorded source member or a wrong-environment device.
  std::string environment;
  uint64_t seed = 7;
};

// The campaign-level slice of DebugOptions (model/engine/broker knobs and
// the refresh-seed stream), for building a CampaignRunner that hosts a
// DebugPolicy. One definition instead of a hand-copied block per call site.
CampaignOptions ToCampaignOptions(const DebugOptions& options);

struct DebugResult {
  bool fixed = false;
  std::vector<double> fixed_config;       // best configuration found
  std::vector<double> fixed_measurement;  // its measurement row
  // Options whose value the fix changed relative to the fault (global index):
  // Unicorn's root-cause diagnosis.
  std::vector<size_t> predicted_root_causes;
  size_t measurements_used = 0;
  // Per-iteration objective values of the measured repair (for Fig. 11 b/c).
  std::vector<std::vector<double>> objective_trajectory;
  // Per-iteration repaired option (first option of the applied repair),
  // for Fig. 11 (d).
  std::vector<size_t> selected_options;
  MixedGraph final_graph;
  // Row-provenance split of the engine's table when the policy finalized:
  // how much of the model rests on replayed source-hardware rows versus
  // fresh measurements (transfer campaigns; equal to the engine-wide counts
  // when this was the only policy).
  size_t source_rows = 0;
  size_t target_rows = 0;
  // Discovery-cost accounting of the engine shard that ran the loop: CI
  // tests requested/evaluated, cache hits (cross-shard ones split out),
  // warm-start reuse, and wall time. Per-shard numbers — in a sharded
  // campaign this covers only this policy's objective group.
  EngineStats engine_stats;
  // Index of the objective group's shard in the campaign's EngineShardPool
  // (0 for single-group campaigns).
  size_t shard = 0;
  // Fleet-style aggregate over every shard of the campaign's pool at the
  // moment this policy finalized: total refreshes, the parallel-refresh
  // ledger, and the cross-shard cache-hit count the shared CI cache bought.
  ShardPoolStats pool_stats;
  // Measurement-plane accounting of the campaign's broker: requests,
  // dedup-cache hits, batch sizes, measuring wall time.
  BrokerStats broker_stats;
  // CI tests requested by each iteration's model refresh (Table 3 reports
  // how warm starts shrink these after the first few iterations).
  std::vector<long long> tests_per_iteration;
};

// The debugging loop as a campaign policy. Round 0 proposes the bootstrap
// batch (initial observational samples + the fault itself); every later
// round refreshes the model, ranks causal paths, and proposes the top
// untried counterfactual repairs as one batch. If the goals are met mid-
// batch, the remaining speculative rows are dropped (not appended, not
// counted), so a batched run is row-for-row identical to a serial one.
// Deliberate batching trade-off vs the one-at-a-time loop: all of a round's
// candidates derive from the round-start incumbent — an improvement found
// mid-batch rebases the *next* round, not the rest of the batch (with
// repairs_per_iteration = 1 the old greedy semantics are recovered exactly).
class DebugPolicy : public CampaignPolicy {
 public:
  DebugPolicy(DebugOptions options, std::vector<double> fault_config,
              std::vector<ObjectiveGoal> goals, const DataTable* warm_start = nullptr);

  bool WantsRefresh(const CampaignContext& ctx) override;
  std::vector<std::vector<double>> Propose(CampaignContext& ctx) override;
  std::vector<std::string> ProposalEnvironments(size_t proposal_size) override;
  void Absorb(const std::vector<std::vector<double>>& configs,
              const std::vector<std::vector<double>>& rows, CampaignContext& ctx) override;
  bool Finished() const override { return finished_; }
  void Finalize(CampaignContext& ctx) override;

  // Valid once the campaign has run (Finalize was called).
  const DebugResult& result() const { return result_; }
  DebugResult TakeResult() { return std::move(result_); }

 private:
  struct PendingRepair {
    std::vector<double> config;
    size_t first_option = 0;  // first option of the repair (Fig. 11 d)
  };

  DebugOptions options_;
  std::vector<double> fault_config_;
  std::vector<ObjectiveGoal> goals_;
  const DataTable* warm_start_;
  Rng rng_;

  bool bootstrapped_ = false;
  bool finished_ = false;
  size_t iter_ = 0;
  std::vector<VarRole> roles_;
  std::vector<size_t> goal_vars_;
  std::vector<double> fault_row_;
  std::vector<double> current_config_;
  std::vector<double> current_row_;
  std::vector<double> best_config_;
  std::vector<double> best_row_;
  double best_badness_ = 0.0;
  std::set<std::vector<double>> tried_configs_;
  size_t stall_ = 0;
  // Diagnosis from the most recent model: options on the top-ranked causal
  // paths into the violated objectives (paper §4: "the configurations in
  // this path are more likely to be associated with the root cause").
  std::vector<size_t> path_diagnosis_;
  std::vector<PendingRepair> pending_;
  DebugResult result_;
};

class UnicornDebugger {
 public:
  UnicornDebugger(PerformanceTask task, DebugOptions options);

  // Debugs the fault described by `fault_config` against the goals. An
  // optional warm-start table (transferability: model learned in a source
  // environment) seeds the observational data. Thin wrapper: builds a
  // single-policy campaign and runs it.
  DebugResult Debug(const std::vector<double>& fault_config,
                    const std::vector<ObjectiveGoal>& goals,
                    const DataTable* warm_start = nullptr);

 private:
  PerformanceTask task_;
  DebugOptions options_;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_DEBUGGER_H_
