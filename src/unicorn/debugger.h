// Unicorn performance debugging (paper §4, Stages I-V as one loop).
//
// Given a faulty configuration and QoS goals, iteratively:
//   1. learn/refresh the causal performance model from all measurements,
//   2. extract and rank causal paths into the violated objectives (ACE),
//   3. generate counterfactual repairs over the options on the top-K paths
//      and score them by ICE — purely on observational data,
//   4. measure the best untried repair; stop when the goals are met, the
//      same repair keeps being selected, or the budget is exhausted.
#ifndef UNICORN_UNICORN_DEBUGGER_H_
#define UNICORN_UNICORN_DEBUGGER_H_

#include "causal/counterfactual.h"
#include "causal/effects.h"
#include "unicorn/model_learner.h"
#include "unicorn/task.h"

namespace unicorn {

struct DebugOptions {
  size_t initial_samples = 25;  // 10% of the sampling budget (paper §6)
  size_t max_iterations = 40;
  size_t top_k_paths = 10;          // K in [3, 25] per appendix B.2
  size_t stall_termination = 4;     // stop after this many non-improving steps
  size_t repairs_per_iteration = 2;  // repairs measured per model refresh
  CausalModelOptions model;
  // Incremental-discovery knobs (warm starts, CI cache, skeleton threads)
  // for the engine held across the debug loop's iterations.
  EngineOptions engine;
  RepairOptions repairs;
  uint64_t seed = 7;
};

struct DebugResult {
  bool fixed = false;
  std::vector<double> fixed_config;       // best configuration found
  std::vector<double> fixed_measurement;  // its measurement row
  // Options whose value the fix changed relative to the fault (global index):
  // Unicorn's root-cause diagnosis.
  std::vector<size_t> predicted_root_causes;
  size_t measurements_used = 0;
  // Per-iteration objective values of the measured repair (for Fig. 11 b/c).
  std::vector<std::vector<double>> objective_trajectory;
  // Per-iteration repaired option (first option of the applied repair),
  // for Fig. 11 (d).
  std::vector<size_t> selected_options;
  MixedGraph final_graph;
  // Discovery-cost accounting of the engine that ran the loop: CI tests
  // requested/evaluated, cache hits, warm-start reuse, and wall time.
  EngineStats engine_stats;
  // CI tests requested by each iteration's model refresh (Table 3 reports
  // how warm starts shrink these after the first few iterations).
  std::vector<long long> tests_per_iteration;
};

class UnicornDebugger {
 public:
  UnicornDebugger(PerformanceTask task, DebugOptions options);

  // Debugs the fault described by `fault_config` against the goals. An
  // optional warm-start table (transferability: model learned in a source
  // environment) seeds the observational data.
  DebugResult Debug(const std::vector<double>& fault_config,
                    const std::vector<ObjectiveGoal>& goals,
                    const DataTable* warm_start = nullptr);

 private:
  PerformanceTask task_;
  DebugOptions options_;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_DEBUGGER_H_
