#include "unicorn/engine_pool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <exception>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace unicorn {

namespace {

// Process-wide shard-pool instruments (see FleetMetrics for the pattern).
struct PoolMetrics {
  obs::Counter* refreshes;
  obs::Counter* refresh_batches;
  obs::Gauge* running_refreshes;
  obs::Histogram* refresh_seconds;
};

const PoolMetrics& Metrics() {
  static const PoolMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return PoolMetrics{registry.Counter("pool.refreshes"),
                       registry.Counter("pool.refresh_batches"),
                       registry.Gauge("pool.running_refreshes"),
                       registry.Histogram("pool.refresh_seconds")};
  }();
  return metrics;
}

}  // namespace

EngineShardPool::EngineShardPool(std::vector<Variable> variables, ShardPoolOptions options)
    : variables_(std::move(variables)),
      options_(std::move(options)),
      shared_cache_(options_.shared_cache_entries) {
  if (options_.refresh_threads > 1) {
    ThreadPool::Options pool_options;
    pool_options.num_threads = options_.refresh_threads;
    pool_options.name = "refresh";
    refresh_pool_ = std::make_unique<ThreadPool>(pool_options);
  }
}

size_t EngineShardPool::ShardForGroup(const std::string& group) {
  const auto it = group_index_.find(group);
  if (it != group_index_.end()) {
    return it->second;
  }
  const size_t index = shards_.size();
  shards_.push_back(
      std::make_unique<CausalModelEngine>(variables_, options_.model, options_.engine));
  // Sharing kicks in lazily, from the second shard on: a lone shard keeps
  // its engine-private cache (cleared whenever its table grows — the
  // pre-sharding working-set behavior), because with nobody to share with
  // the process-wide cache would only accumulate unreachable entries.
  if (options_.share_ci_cache && shards_.size() >= 2) {
    shards_.back()->ShareCICache(&shared_cache_, static_cast<uint32_t>(index));
    if (shards_.size() == 2) {
      shards_.front()->ShareCICache(&shared_cache_, 0);
    }
  }
  groups_.push_back(group);
  group_index_.emplace(group, index);
  return index;
}

void EngineShardPool::RefreshShards(std::vector<size_t> shards, uint64_t seed) {
  // Dedup (two policies of one group may both mark their shard dirty) and
  // drop empty shards — a refresh needs at least one row.
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  shards.erase(std::remove_if(shards.begin(), shards.end(),
                              [&](size_t s) { return shard(s).data().NumRows() == 0; }),
               shards.end());
  if (shards.empty()) {
    return;
  }

  using Clock = std::chrono::steady_clock;
  obs::trace::Span span("pool.refresh_batch", "pool");
  span.SetArg("shards", static_cast<double>(shards.size()));
  Metrics().refresh_batches->Increment();
  const auto start = Clock::now();
  if (shards.size() == 1 || refresh_pool_ == nullptr) {
    for (const size_t s : shards) {
      shard(s).Refresh(seed);
    }
  } else {
    // Fan the dirty shards out over the refresh pool. Engines are mutually
    // independent and the shared cache is concurrent, so the only cross-item
    // coupling is memoization — pure, deterministic reuse. Exceptions are
    // captured per item and the first one rethrown after the barrier
    // (ParallelFor must never unwind from a worker thread).
    std::vector<std::exception_ptr> errors(shards.size());
    refresh_pool_->ParallelFor(shards.size(), [&](size_t i) {
      try {
        shard(shards[i]).Refresh(seed);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
    for (const std::exception_ptr& error : errors) {
      if (error != nullptr) {
        std::rethrow_exception(error);
      }
    }
  }
  ++refresh_batches_;
  // Observed concurrency is the batch width clamped to the workers that
  // actually ran it — a serial pool refreshing 16 dirty shards must report
  // 1, not 16, or the bench's no-serialization acceptance check would pass
  // on a regressed (serialized) refresh path.
  const size_t concurrency = std::min(
      shards.size(),
      static_cast<size_t>(refresh_pool_ != nullptr ? refresh_pool_->num_threads() : 1));
  max_concurrent_ = std::max(max_concurrent_, concurrency);
  batch_wall_seconds_ += std::chrono::duration<double>(Clock::now() - start).count();
}

void EngineShardPool::StartRefreshAsync(size_t shard_index, uint64_t seed, uint64_t token) {
  if (async_pool_ == nullptr) {
    TaskPool::Options pool_options;
    pool_options.num_threads = options_.refresh_threads < 1 ? 1 : options_.refresh_threads;
    pool_options.pin_threads = options_.pin_refresh_threads;
    pool_options.name = "refresh";
    async_pool_ = std::make_unique<TaskPool>(pool_options);
  }
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    ++async_outstanding_;
    AsyncShardState& state = async_shards_[shard_index];
    if (state.busy) {
      // The shard is already refreshing (or queued): serialize behind it.
      // Seeds apply in submission order, preserving the caller's refresh
      // stream exactly.
      state.pending.emplace_back(seed, token);
      return;
    }
    state.busy = true;
  }
  // Shortest-job-first: refresh cost grows superlinearly with the shard's
  // row count, so small shards jump the queue. Without this, a light
  // tenant's millisecond refresh convoys behind multi-second refreshes of
  // big shards and its policy (plus the fleet capacity it was feeding)
  // stalls for the whole backlog. Cross-shard dispatch order carries no
  // semantics — each shard's own refresh stream stays FIFO via `pending`.
  const int64_t priority = -static_cast<int64_t>(shard(shard_index).data().NumRows());
  async_pool_->Submit(
      [this, shard_index, seed, token] { RunAsyncRefresh(shard_index, seed, token); },
      priority);
}

void EngineShardPool::RunAsyncRefresh(size_t shard_index, uint64_t seed, uint64_t token) {
  using Clock = std::chrono::steady_clock;
  const std::atomic<size_t>* gauge = nullptr;
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    ++async_running_;
    // Every running job is a distinct shard (per-shard FIFO), i.e. a
    // distinct objective group: the gauge high-water mark IS the widest
    // cross-policy refresh batch.
    widest_async_ = std::max(widest_async_, async_running_);
    gauge = in_flight_gauge_;
  }
  const bool overlapped_at_start =
      gauge != nullptr && gauge->load(std::memory_order_relaxed) > 0;
  Metrics().running_refreshes->Add(1.0);
  obs::trace::Begin("pool.refresh", "pool");
  const auto start = Clock::now();
  ShardRefreshDone done;
  done.shard = shard_index;
  done.token = token;
  // Engine-internal refresh seconds for this job (0 for an empty-shard
  // skip). This, not the job's wall time, is what the overlap ledger
  // credits: wall also contains dispatch/snapshot overhead outside the
  // refresh, which used to nudge overlap_seconds past the summed
  // refresh_seconds it is a fraction of (overlap_fraction 1.0000004).
  double engine_seconds = 0.0;
  try {
    CausalModelEngine& engine = shard(shard_index);
    if (engine.data().NumRows() > 0) {  // RefreshShards' empty-shard guard
      const double before = engine.stats().total_seconds;
      engine.Refresh(seed);
      engine_seconds = engine.stats().total_seconds - before;
    }
  } catch (...) {
    done.error = std::current_exception();
  }
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  const bool overlapped_at_end =
      gauge != nullptr && gauge->load(std::memory_order_relaxed) > 0;
  const double overlap_credit =
      (overlapped_at_start ? 0.5 : 0.0) + (overlapped_at_end ? 0.5 : 0.0);
  // The span carries the ledger's own trapezoid sample: overlap_credit is
  // the fraction of this refresh counted as hidden behind in-flight
  // measurement — scaled by engine-seconds-over-wall so that sum(dur *
  // overlap_credit) over "pool.refresh" spans in a trace REPRODUCES
  // ShardPoolStats::overlap_seconds — the overlap ledger as derived trace
  // data (tools/trace_report recomputes it; the pipeline bench gates the
  // two against each other).
  obs::trace::End("overlap_credit",
                  wall > 0.0 ? overlap_credit * engine_seconds / wall : 0.0, "shard",
                  static_cast<double>(shard_index));
  Metrics().running_refreshes->Add(-1.0);
  Metrics().refreshes->Increment();
  Metrics().refresh_seconds->Record(wall);

  bool chain = false;
  uint64_t next_seed = 0;
  uint64_t next_token = 0;
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    --async_running_;
    // Trapezoid sample of "refresh time hidden behind in-flight
    // measurement": full credit when measurements were in flight at both
    // ends of the refresh, half when only at one. Credits engine-internal
    // refresh seconds so the ledger can never exceed the refresh_seconds
    // aggregate it is reported as a fraction of.
    overlap_seconds_ += engine_seconds * overlap_credit;
    AsyncShardState& state = async_shards_[shard_index];
    // Snapshot the engine's stats while the shard is quiescent, so stats()
    // callers never read a mid-refresh engine.
    state.snapshot = shard(shard_index).stats();
    state.has_snapshot = true;
    if (!state.pending.empty()) {
      next_seed = state.pending.front().first;
      next_token = state.pending.front().second;
      state.pending.pop_front();
      chain = true;  // state.busy stays set: the shard refreshes again next
    } else {
      state.busy = false;
    }
    async_done_.push_back(std::move(done));
  }
  async_cv_.notify_all();
  if (chain) {
    // Re-submit instead of looping inline, so a deep same-shard backlog
    // cannot starve other shards' queued jobs of this worker. Same
    // shortest-job-first priority as StartRefreshAsync (the shard is
    // quiescent between chained refreshes, so the row count is stable).
    const int64_t priority = -static_cast<int64_t>(shard(shard_index).data().NumRows());
    async_pool_->Submit(
        [this, shard_index, next_seed, next_token] {
          RunAsyncRefresh(shard_index, next_seed, next_token);
        },
        priority);
  }
}

bool EngineShardPool::TryPopRefreshDone(ShardRefreshDone* out) {
  std::lock_guard<std::mutex> lock(async_mu_);
  if (async_done_.empty()) {
    return false;
  }
  *out = std::move(async_done_.front());
  async_done_.pop_front();
  --async_outstanding_;
  return true;
}

bool EngineShardPool::WaitRefreshDone(ShardRefreshDone* out) {
  std::unique_lock<std::mutex> lock(async_mu_);
  if (async_outstanding_ == 0) {
    return false;
  }
  async_cv_.wait(lock, [&] { return !async_done_.empty(); });
  *out = std::move(async_done_.front());
  async_done_.pop_front();
  --async_outstanding_;
  return true;
}

size_t EngineShardPool::PendingAsyncRefreshes() const {
  std::lock_guard<std::mutex> lock(async_mu_);
  return async_outstanding_;
}

void EngineShardPool::DrainAsyncRefreshes() {
  ShardRefreshDone discarded;
  while (WaitRefreshDone(&discarded)) {
  }
}

void EngineShardPool::SetInFlightGauge(const std::atomic<size_t>* gauge) {
  std::lock_guard<std::mutex> lock(async_mu_);
  in_flight_gauge_ = gauge;
}

ShardPoolStats EngineShardPool::stats() const {
  ShardPoolStats stats;
  stats.shards = shards_.size();
  std::lock_guard<std::mutex> lock(async_mu_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    // A shard with an asynchronous refresh in flight is aggregated from its
    // last completed snapshot (taken under async_mu_ at job completion), so
    // this never reads an engine another thread is mutating. A busy shard
    // that never completed a refresh contributes zeros for one poll.
    const auto async_it = async_shards_.find(i);
    const bool busy = async_it != async_shards_.end() && async_it->second.busy;
    const EngineStats& s = busy ? async_it->second.snapshot : shards_[i]->stats();
    if (busy && !async_it->second.has_snapshot) {
      continue;
    }
    stats.refreshes += s.refreshes;
    stats.tests_requested += s.total_tests_requested;
    stats.tests_evaluated += s.total_tests_evaluated;
    stats.cache_hits += s.total_cache_hits;
    stats.cross_shard_hits += s.total_cross_shard_hits;
    stats.refresh_seconds += s.total_seconds;
  }
  stats.refresh_batches = refresh_batches_;
  stats.max_concurrent_refreshes = max_concurrent_;
  stats.batch_wall_seconds = batch_wall_seconds_;
  stats.widest_cross_policy_batch = widest_async_;
  // Overlap is a sub-portion of the summed refresh time by construction
  // (the ledger credits engine-internal seconds, each weighted <= 1).
  // Rounding in the per-shard float sums can still leave the aggregate a
  // few ulps past the bound, so clamp the report; anything beyond rounding
  // is a real accounting bug.
  assert(overlap_seconds_ <= stats.refresh_seconds * (1.0 + 1e-9) &&
         "overlap ledger exceeds summed refresh seconds");
  stats.overlap_seconds = std::min(overlap_seconds_, stats.refresh_seconds);
  return stats;
}

}  // namespace unicorn
