#include "unicorn/engine_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

namespace unicorn {

EngineShardPool::EngineShardPool(std::vector<Variable> variables, ShardPoolOptions options)
    : variables_(std::move(variables)),
      options_(std::move(options)),
      shared_cache_(options_.shared_cache_entries) {
  if (options_.refresh_threads > 1) {
    refresh_pool_ = std::make_unique<ThreadPool>(options_.refresh_threads);
  }
}

size_t EngineShardPool::ShardForGroup(const std::string& group) {
  const auto it = group_index_.find(group);
  if (it != group_index_.end()) {
    return it->second;
  }
  const size_t index = shards_.size();
  shards_.push_back(
      std::make_unique<CausalModelEngine>(variables_, options_.model, options_.engine));
  // Sharing kicks in lazily, from the second shard on: a lone shard keeps
  // its engine-private cache (cleared whenever its table grows — the
  // pre-sharding working-set behavior), because with nobody to share with
  // the process-wide cache would only accumulate unreachable entries.
  if (options_.share_ci_cache && shards_.size() >= 2) {
    shards_.back()->ShareCICache(&shared_cache_, static_cast<uint32_t>(index));
    if (shards_.size() == 2) {
      shards_.front()->ShareCICache(&shared_cache_, 0);
    }
  }
  groups_.push_back(group);
  group_index_.emplace(group, index);
  return index;
}

void EngineShardPool::RefreshShards(std::vector<size_t> shards, uint64_t seed) {
  // Dedup (two policies of one group may both mark their shard dirty) and
  // drop empty shards — a refresh needs at least one row.
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  shards.erase(std::remove_if(shards.begin(), shards.end(),
                              [&](size_t s) { return shard(s).data().NumRows() == 0; }),
               shards.end());
  if (shards.empty()) {
    return;
  }

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  if (shards.size() == 1 || refresh_pool_ == nullptr) {
    for (const size_t s : shards) {
      shard(s).Refresh(seed);
    }
  } else {
    // Fan the dirty shards out over the refresh pool. Engines are mutually
    // independent and the shared cache is concurrent, so the only cross-item
    // coupling is memoization — pure, deterministic reuse. Exceptions are
    // captured per item and the first one rethrown after the barrier
    // (ParallelFor must never unwind from a worker thread).
    std::vector<std::exception_ptr> errors(shards.size());
    refresh_pool_->ParallelFor(shards.size(), [&](size_t i) {
      try {
        shard(shards[i]).Refresh(seed);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
    for (const std::exception_ptr& error : errors) {
      if (error != nullptr) {
        std::rethrow_exception(error);
      }
    }
  }
  ++refresh_batches_;
  // Observed concurrency is the batch width clamped to the workers that
  // actually ran it — a serial pool refreshing 16 dirty shards must report
  // 1, not 16, or the bench's no-serialization acceptance check would pass
  // on a regressed (serialized) refresh path.
  const size_t concurrency = std::min(
      shards.size(),
      static_cast<size_t>(refresh_pool_ != nullptr ? refresh_pool_->num_threads() : 1));
  max_concurrent_ = std::max(max_concurrent_, concurrency);
  batch_wall_seconds_ += std::chrono::duration<double>(Clock::now() - start).count();
}

ShardPoolStats EngineShardPool::stats() const {
  ShardPoolStats stats;
  stats.shards = shards_.size();
  for (const auto& engine : shards_) {
    const EngineStats& s = engine->stats();
    stats.refreshes += s.refreshes;
    stats.tests_requested += s.total_tests_requested;
    stats.tests_evaluated += s.total_tests_evaluated;
    stats.cache_hits += s.total_cache_hits;
    stats.cross_shard_hits += s.total_cross_shard_hits;
    stats.refresh_seconds += s.total_seconds;
  }
  stats.refresh_batches = refresh_batches_;
  stats.max_concurrent_refreshes = max_concurrent_;
  stats.batch_wall_seconds = batch_wall_seconds_;
  return stats;
}

}  // namespace unicorn
