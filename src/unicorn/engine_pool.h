// The sharded reasoning plane: per-objective-group CausalModelEngine shards
// over one shared, concurrent CI-result cache.
//
// PR 2-4 scaled the *experiment* plane (batched broker, backend fleet,
// recorded-transfer replay); this layer scales the *reasoning* plane. A
// many-policy campaign used to serialize every policy on one shared engine —
// one table, one refresh per round — so adding policies made each policy's
// rounds slower. The pool instead assigns policies to objective groups, each
// group owns its own engine shard (its own table, streaming moments,
// warm-start state, per-shard EngineStats), and dirty shards refresh *in
// parallel* on the pool's util/thread_pool.
//
// What stays shared is the CI-result cache: all shards consult one
// process-wide CICache keyed on each shard's table fingerprint, so shards
// whose tables are bit-identical at refresh time (transfer campaigns seeded
// from the same source recording, replicated policies absorbing a common
// bootstrap) reuse each other's p-values. Cross-shard hits are accounted
// separately from shard-local ones, so "the shared cache bought X% of the
// tests" is a reportable number, not a belief.
//
// Determinism contract: a shard's refresh is the exact same computation a
// standalone engine would run — the shared cache is pure memoization of a
// deterministic test, so shard results are bit-identical to a monolithic
// engine fed the same rows, for any refresh_threads (pinned by
// tests/engine_pool_test.cc).
#ifndef UNICORN_UNICORN_ENGINE_POOL_H_
#define UNICORN_UNICORN_ENGINE_POOL_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/ci_cache.h"
#include "unicorn/model_learner.h"
#include "util/thread_pool.h"

namespace unicorn {

struct ShardPoolOptions {
  // Statistical and engine knobs every shard is built with. `engine.num_threads`
  // is the *per-shard* skeleton sweep; with many shards refreshing in
  // parallel, keep it at 1 and spend the cores on refresh_threads instead.
  CausalModelOptions model;
  EngineOptions engine;
  // Worker threads for parallel shard refreshes (1 = refresh dirty shards
  // one after another). Results are bit-identical for any value.
  int refresh_threads = 1;
  // All shards consult one process-wide CI cache (fingerprint-keyed; see
  // stats/ci_cache.h). Sharing engages lazily from the second shard on — a
  // single-shard pool keeps the engine-private cache and its clear-on-growth
  // working-set behavior, since there is nobody to share with. Off = every
  // shard keeps its private cache and the cross-shard counters stay zero.
  bool share_ci_cache = true;
  // Entry budget of the shared cache before coarse eviction kicks in
  // (~80 bytes/entry, so the default bounds it near 20 MB). Entries are
  // pure memoization, so eviction costs re-evaluation, never correctness.
  // Only meaningful with share_ci_cache.
  size_t shared_cache_entries = 1 << 18;
};

// Fleet-style aggregate over every shard's EngineStats, plus the pool-level
// refresh-concurrency ledger. Cross-shard cache hits are reported separately
// so the shared-cache dividend is visible next to the ordinary hit rate.
struct ShardPoolStats {
  size_t shards = 0;
  size_t refreshes = 0;                 // summed over shards
  long long tests_requested = 0;
  long long tests_evaluated = 0;
  long long cache_hits = 0;             // shard-local + cross-shard
  long long cross_shard_hits = 0;       // hits on entries another shard stored
  double refresh_seconds = 0.0;         // per-shard refresh time, summed
  // Parallel-refresh ledger: batches dispatched through RefreshShards, the
  // observed refresh concurrency (widest batch clamped to the refresh
  // threads that actually ran it — a serial pool reports 1 however many
  // shards were dirty), and the wall time the batches actually took
  // (refresh_seconds / batch_wall_seconds = the speedup parallel shard
  // refreshes bought).
  size_t refresh_batches = 0;
  size_t max_concurrent_refreshes = 0;
  double batch_wall_seconds = 0.0;

  double CacheHitRate() const {
    return tests_requested == 0
               ? 0.0
               : static_cast<double>(cache_hits) / static_cast<double>(tests_requested);
  }
  double CrossShardHitRate() const {
    return tests_requested == 0
               ? 0.0
               : static_cast<double>(cross_shard_hits) / static_cast<double>(tests_requested);
  }
};

// Owns the engine shards of a campaign (one per objective group, created on
// first use) and the shared CI cache they consult.
//
// Thread-safety: shard creation and RefreshShards are driven by one thread
// (the campaign runner); the concurrency lives *inside* RefreshShards, which
// fans the listed shards out over the pool's threads. Different shards may
// also be refreshed concurrently by external threads as long as no shard is
// refreshed twice at once — engines never touch each other, and the shared
// cache is concurrent. Shard references stay valid for the pool's lifetime.
class EngineShardPool {
 public:
  EngineShardPool(std::vector<Variable> variables, ShardPoolOptions options = {});

  // Index of the shard owning `group`, creating the shard on first use.
  size_t ShardForGroup(const std::string& group);

  size_t num_shards() const { return shards_.size(); }
  CausalModelEngine& shard(size_t index) { return *shards_[index]; }
  const CausalModelEngine& shard(size_t index) const { return *shards_[index]; }
  const std::string& group_name(size_t index) const { return groups_[index]; }

  CICache& shared_cache() { return shared_cache_; }

  // Refreshes every listed shard with `seed`, in parallel on the pool's
  // refresh threads. Shards without rows are skipped (same guard the
  // single-engine runner applied); duplicate indices are refreshed once.
  // Failure: exceptions from a shard refresh propagate; other shards of the
  // batch may or may not have refreshed.
  void RefreshShards(std::vector<size_t> shards, uint64_t seed);

  // Aggregate of every shard's EngineStats plus the pool refresh ledger.
  ShardPoolStats stats() const;

 private:
  std::vector<Variable> variables_;
  ShardPoolOptions options_;
  CICache shared_cache_;
  std::unique_ptr<ThreadPool> refresh_pool_;
  std::vector<std::unique_ptr<CausalModelEngine>> shards_;
  std::vector<std::string> groups_;
  std::unordered_map<std::string, size_t> group_index_;
  // Pool-level refresh ledger (see ShardPoolStats).
  size_t refresh_batches_ = 0;
  size_t max_concurrent_ = 0;
  double batch_wall_seconds_ = 0.0;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_ENGINE_POOL_H_
