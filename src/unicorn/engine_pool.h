// The sharded reasoning plane: per-objective-group CausalModelEngine shards
// over one shared, concurrent CI-result cache.
//
// PR 2-4 scaled the *experiment* plane (batched broker, backend fleet,
// recorded-transfer replay); this layer scales the *reasoning* plane. A
// many-policy campaign used to serialize every policy on one shared engine —
// one table, one refresh per round — so adding policies made each policy's
// rounds slower. The pool instead assigns policies to objective groups, each
// group owns its own engine shard (its own table, streaming moments,
// warm-start state, per-shard EngineStats), and dirty shards refresh *in
// parallel* on the pool's util/thread_pool.
//
// What stays shared is the CI-result cache: all shards consult one
// process-wide CICache keyed on each shard's table fingerprint, so shards
// whose tables are bit-identical at refresh time (transfer campaigns seeded
// from the same source recording, replicated policies absorbing a common
// bootstrap) reuse each other's p-values. Cross-shard hits are accounted
// separately from shard-local ones, so "the shared cache bought X% of the
// tests" is a reportable number, not a belief.
//
// Determinism contract: a shard's refresh is the exact same computation a
// standalone engine would run — the shared cache is pure memoization of a
// deterministic test, so shard results are bit-identical to a monolithic
// engine fed the same rows, for any refresh_threads (pinned by
// tests/engine_pool_test.cc).
#ifndef UNICORN_UNICORN_ENGINE_POOL_H_
#define UNICORN_UNICORN_ENGINE_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/ci_cache.h"
#include "unicorn/model_learner.h"
#include "util/thread_pool.h"

namespace unicorn {

struct ShardPoolOptions {
  // Statistical and engine knobs every shard is built with. `engine.num_threads`
  // is the *per-shard* skeleton sweep; with many shards refreshing in
  // parallel, keep it at 1 and spend the cores on refresh_threads instead.
  CausalModelOptions model;
  EngineOptions engine;
  // Worker threads for parallel shard refreshes (1 = refresh dirty shards
  // one after another). Results are bit-identical for any value.
  int refresh_threads = 1;
  // All shards consult one process-wide CI cache (fingerprint-keyed; see
  // stats/ci_cache.h). Sharing engages lazily from the second shard on — a
  // single-shard pool keeps the engine-private cache and its clear-on-growth
  // working-set behavior, since there is nobody to share with. Off = every
  // shard keeps its private cache and the cross-shard counters stay zero.
  bool share_ci_cache = true;
  // Entry budget of the shared cache before coarse eviction kicks in
  // (~80 bytes/entry, so the default bounds it near 20 MB). Entries are
  // pure memoization, so eviction costs re-evaluation, never correctness.
  // Only meaningful with share_ci_cache.
  size_t shared_cache_entries = 1 << 18;
  // Pin the asynchronous refresh workers to CPUs (ThreadPool::Options::
  // pin_threads). Off by default; a performance hint only.
  bool pin_refresh_threads = false;
};

// Fleet-style aggregate over every shard's EngineStats, plus the pool-level
// refresh-concurrency ledger. Cross-shard cache hits are reported separately
// so the shared-cache dividend is visible next to the ordinary hit rate.
struct ShardPoolStats {
  size_t shards = 0;
  size_t refreshes = 0;                 // summed over shards
  long long tests_requested = 0;
  long long tests_evaluated = 0;
  long long cache_hits = 0;             // shard-local + cross-shard
  long long cross_shard_hits = 0;       // hits on entries another shard stored
  double refresh_seconds = 0.0;         // per-shard refresh time, summed
  // Parallel-refresh ledger: batches dispatched through RefreshShards, the
  // observed refresh concurrency (widest batch clamped to the refresh
  // threads that actually ran it — a serial pool reports 1 however many
  // shards were dirty), and the wall time the batches actually took
  // (refresh_seconds / batch_wall_seconds = the speedup parallel shard
  // refreshes bought).
  size_t refresh_batches = 0;
  size_t max_concurrent_refreshes = 0;
  double batch_wall_seconds = 0.0;
  // Asynchronous-refresh ledger (StartRefreshAsync, the pipelined campaign
  // scheduler's path). `widest_cross_policy_batch` is the most asynchronous
  // shard refreshes ever observed running at once — each running job is a
  // distinct shard (per-shard FIFO serialization), i.e. a distinct objective
  // group, so this is exactly the widest cross-policy refresh batch the
  // coalescing achieved. `overlap_seconds` is engine-internal refresh time
  // spent while the registered in-flight gauge (SetInFlightGauge: the
  // scheduler's count of measurement rows on the fleet) was nonzero —
  // refresh compute hidden behind device service time. Sampled at job start
  // and end (trapezoid), so it is a coarse estimate, not an integral; it is
  // always <= refresh_seconds (clamped against float rounding), so
  // overlap_seconds / refresh_seconds is a true fraction.
  size_t widest_cross_policy_batch = 0;
  double overlap_seconds = 0.0;

  double CacheHitRate() const {
    return tests_requested == 0
               ? 0.0
               : static_cast<double>(cache_hits) / static_cast<double>(tests_requested);
  }
  double CrossShardHitRate() const {
    return tests_requested == 0
               ? 0.0
               : static_cast<double>(cross_shard_hits) / static_cast<double>(tests_requested);
  }
};

/// One finished asynchronous shard refresh (see
/// EngineShardPool::StartRefreshAsync). Value type.
struct ShardRefreshDone {
  size_t shard = 0;
  uint64_t token = 0;          ///< the caller's correlation tag, round-tripped
  std::exception_ptr error;    ///< null on success
};

// Owns the engine shards of a campaign (one per objective group, created on
// first use) and the shared CI cache they consult.
//
// Thread-safety: shard creation and RefreshShards are driven by one thread
// (the campaign runner); the concurrency lives *inside* RefreshShards, which
// fans the listed shards out over the pool's threads. Different shards may
// also be refreshed concurrently by external threads as long as no shard is
// refreshed twice at once — engines never touch each other, and the shared
// cache is concurrent. Shard references stay valid for the pool's lifetime.
class EngineShardPool {
 public:
  EngineShardPool(std::vector<Variable> variables, ShardPoolOptions options = {});

  // Joins the async refresh workers before the members they signal go away:
  // async_pool_ is declared above async_mu_/async_cv_, so the default
  // reverse-order destruction would tear down the condition variable while a
  // worker could still be inside its final notify_all.
  ~EngineShardPool() { async_pool_.reset(); }

  // Index of the shard owning `group`, creating the shard on first use.
  // Must not be called while asynchronous refreshes are outstanding (shard
  // storage may grow; workers hold references into it).
  size_t ShardForGroup(const std::string& group);

  size_t num_shards() const { return shards_.size(); }
  CausalModelEngine& shard(size_t index) { return *shards_[index]; }
  const CausalModelEngine& shard(size_t index) const { return *shards_[index]; }
  const std::string& group_name(size_t index) const { return groups_[index]; }

  CICache& shared_cache() { return shared_cache_; }

  // Refreshes every listed shard with `seed`, in parallel on the pool's
  // refresh threads. Shards without rows are skipped (same guard the
  // single-engine runner applied); duplicate indices are refreshed once.
  // Failure: exceptions from a shard refresh propagate; other shards of the
  // batch may or may not have refreshed.
  void RefreshShards(std::vector<size_t> shards, uint64_t seed);

  // --- asynchronous refreshes (the pipelined campaign scheduler) -----------
  //
  // StartRefreshAsync enqueues one shard refresh and returns immediately;
  // the refresh runs on a dedicated worker pool (refresh_threads workers,
  // created lazily), and completion surfaces as a ShardRefreshDone carrying
  // the caller's `token`. Same-shard requests are serialized in FIFO order
  // (a shard never refreshes twice at once; its seeds apply in submission
  // order), while requests for distinct shards run concurrently — that
  // concurrency is the cross-policy refresh coalescing the ledger reports.
  // An empty shard skips the engine refresh but still delivers its done
  // event (mirroring RefreshShards' guard).
  //
  // Contract: between StartRefreshAsync(shard, ...) and popping its done
  // event, the caller must not touch that shard's engine (no absorb, no
  // Propose reading it) and must not call RefreshShards on it. Exceptions
  // from the refresh are captured in ShardRefreshDone::error, never thrown
  // from the worker.
  //
  // Thread-safety: Start/TryPop/WaitRefreshDone/Drain are driven by one
  // scheduler thread; the workers run concurrently underneath. stats() may
  // be called while asynchronous refreshes are in flight — shards currently
  // refreshing are aggregated from their last completed snapshot.
  void StartRefreshAsync(size_t shard, uint64_t seed, uint64_t token);
  // Non-blocking: false when no done event is queued right now.
  bool TryPopRefreshDone(ShardRefreshDone* out);
  // Blocking: false only when no asynchronous refresh is outstanding.
  bool WaitRefreshDone(ShardRefreshDone* out);
  // Started (or queued) asynchronous refreshes whose done event has not been
  // popped yet.
  size_t PendingAsyncRefreshes() const;
  // Waits for every outstanding asynchronous refresh and discards the done
  // events (exception-path cleanup; errors are intentionally swallowed —
  // the caller is already unwinding on the first one).
  void DrainAsyncRefreshes();
  // Registers the in-flight measurement gauge the overlap ledger samples
  // (nullptr to unregister). Call only while no asynchronous refresh is
  // outstanding; the gauge must stay valid until unregistered.
  void SetInFlightGauge(const std::atomic<size_t>* gauge);

  // Aggregate of every shard's EngineStats plus the pool refresh ledger.
  ShardPoolStats stats() const;

 private:
  // Per-shard asynchronous bookkeeping, all under async_mu_.
  struct AsyncShardState {
    bool busy = false;  // a refresh job for this shard is queued or running
    std::deque<std::pair<uint64_t, uint64_t>> pending;  // (seed, token) FIFO
    EngineStats snapshot;     // engine stats at the last completed refresh
    bool has_snapshot = false;
  };

  // Runs one shard refresh on a worker: executes, snapshots stats, delivers
  // the done event, and chains the shard's next pending request if any.
  void RunAsyncRefresh(size_t shard_index, uint64_t seed, uint64_t token);

  std::vector<Variable> variables_;
  ShardPoolOptions options_;
  CICache shared_cache_;
  std::unique_ptr<ThreadPool> refresh_pool_;
  std::vector<std::unique_ptr<CausalModelEngine>> shards_;
  std::vector<std::string> groups_;
  std::unordered_map<std::string, size_t> group_index_;
  // Pool-level refresh ledger (see ShardPoolStats).
  size_t refresh_batches_ = 0;
  size_t max_concurrent_ = 0;
  double batch_wall_seconds_ = 0.0;

  // Asynchronous refresh plumbing (see the async section above).
  std::unique_ptr<TaskPool> async_pool_;  // lazily created
  mutable std::mutex async_mu_;
  std::condition_variable async_cv_;      // done event available
  std::unordered_map<size_t, AsyncShardState> async_shards_;
  std::deque<ShardRefreshDone> async_done_;
  size_t async_outstanding_ = 0;  // started, done event not yet popped
  size_t async_running_ = 0;      // jobs executing right now (distinct shards)
  size_t widest_async_ = 0;
  double overlap_seconds_ = 0.0;
  const std::atomic<size_t>* in_flight_gauge_ = nullptr;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_ENGINE_POOL_H_
