#include "unicorn/measurement_broker.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace unicorn {
namespace {

using Clock = std::chrono::steady_clock;

// Marks a request already resolved from the cross-batch cache.
constexpr size_t kResolved = std::numeric_limits<size_t>::max();

// Process-wide broker instruments, resolved once (registry lookup locks).
// All broker instances share them: the registry is the fleet-wide view, the
// per-instance BrokerStats ledger stays the per-broker one.
struct BrokerMetrics {
  obs::Counter* requests;
  obs::Counter* measured;
  obs::Counter* cache_hits;
  obs::Counter* failures;
  obs::Counter* batches;
  obs::Histogram* batch_size;
};

const BrokerMetrics& Metrics() {
  static const BrokerMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return BrokerMetrics{registry.Counter("broker.requests"),
                         registry.Counter("broker.measured"),
                         registry.Counter("broker.cache_hits"),
                         registry.Counter("broker.failures"),
                         registry.Counter("broker.batches"),
                         registry.Histogram("broker.batch_size")};
  }();
  return metrics;
}

}  // namespace

MeasurementBroker::MeasurementBroker(PerformanceTask task, BrokerOptions options)
    : task_(std::move(task)), options_(options) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

MeasurementBroker::MeasurementBroker(PerformanceTask task, std::unique_ptr<BackendFleet> fleet,
                                     BrokerOptions options)
    : task_(std::move(task)), options_(options), fleet_(std::move(fleet)) {}

std::vector<double> MeasurementBroker::Measure(const std::vector<double>& config,
                                               const std::string& environment) {
  return MeasureBatch({config}, environment.empty()
                                    ? std::vector<std::string>{}
                                    : std::vector<std::string>{environment})
      .front();
}

const std::string& MeasurementBroker::EnvOf(const std::vector<std::string>& environments,
                                            size_t i) {
  static const std::string kUntagged;
  return environments.empty() ? kUntagged : environments[i];
}

const std::vector<double>* MeasurementBroker::CachedRow(const std::vector<double>& config,
                                                        const std::string& environment) const {
  if (!options_.dedup_cache) {
    return nullptr;
  }
  const auto it = cache_index_.find(EnvConfig{environment, config});
  return it == cache_index_.end() ? nullptr : &cache_entries_[it->second].row;
}

void MeasurementBroker::InsertCache(const std::vector<double>& config,
                                    const std::string& environment, std::vector<double> row) {
  const auto [it, inserted] =
      cache_index_.emplace(EnvConfig{environment, config}, cache_entries_.size());
  if (inserted) {
    cache_entries_.push_back(MeasurementTable::Entry{config, std::move(row), environment});
  }
}

std::vector<std::vector<double>> MeasurementBroker::MeasureBatchOnPool(
    const std::vector<std::vector<double>>& configs,
    const std::vector<std::string>& environments) {
  ++stats_.batches;
  stats_.requests += configs.size();
  stats_.largest_batch = std::max(stats_.largest_batch, configs.size());
  Metrics().batches->Increment();
  Metrics().requests->Add(configs.size());
  Metrics().batch_size->Record(static_cast<double>(configs.size()));

  // Resolve every request to either a cached row or a slot in the unique
  // work list; duplicates within the batch share one slot.
  std::vector<std::vector<double>> out(configs.size());
  std::vector<size_t> unique_of(configs.size(), kResolved);
  std::vector<size_t> unique;  // request index of each unique work item
  std::unordered_map<EnvConfig, size_t, EnvConfigHash> pending;
  for (size_t i = 0; i < configs.size(); ++i) {
    if (!options_.dedup_cache) {
      unique_of[i] = unique.size();
      unique.push_back(i);
      continue;
    }
    const std::string& env = EnvOf(environments, i);
    if (const std::vector<double>* row = CachedRow(configs[i], env)) {
      out[i] = *row;
      ++stats_.cache_hits;
      continue;
    }
    const auto [it, inserted] = pending.emplace(EnvConfig{env, configs[i]}, unique.size());
    if (inserted) {
      unique.push_back(i);
    } else {
      ++stats_.cache_hits;  // within-batch duplicate: measured once
    }
    unique_of[i] = it->second;
  }

  // Fan out. Rows land in unique order, so request order (and thus the rows
  // the caller sees) is independent of thread interleaving. Per-item timing
  // lands in its own slot: busy time sums exactly once per measurement.
  std::vector<double> item_seconds(unique.size(), 0.0);
  obs::trace::Span span("broker.batch", "broker");
  span.SetArg("requests", static_cast<double>(configs.size()));
  span.SetArg("measured", static_cast<double>(unique.size()));
  const auto start = Clock::now();
  const auto rows = ParallelMap(pool_.get(), unique.size(), [&](size_t u) {
    const auto item_start = Clock::now();
    auto row = task_.measure(configs[unique[u]]);
    item_seconds[u] = std::chrono::duration<double>(Clock::now() - item_start).count();
    return row;
  });
  const double fan_out_wall = std::chrono::duration<double>(Clock::now() - start).count();
  stats_.batch_wall_seconds += fan_out_wall;
  // Pool mode measures synchronously, so the fan-out wall IS the time work
  // was outstanding (see BrokerStats::active_wall_seconds).
  stats_.active_wall_seconds += fan_out_wall;
  for (double seconds : item_seconds) {
    stats_.busy_seconds += seconds;
  }
  stats_.measured += unique.size();
  Metrics().measured->Add(unique.size());
  Metrics().cache_hits->Add(configs.size() - unique.size());

  for (size_t i = 0; i < configs.size(); ++i) {
    if (unique_of[i] != kResolved) {
      out[i] = rows[unique_of[i]];
    }
  }
  if (options_.dedup_cache) {
    for (size_t u = 0; u < unique.size(); ++u) {
      InsertCache(configs[unique[u]], EnvOf(environments, unique[u]), rows[u]);
    }
  }
  return out;
}

std::vector<std::vector<double>> MeasurementBroker::MeasureBatch(
    const std::vector<std::vector<double>>& configs,
    const std::vector<std::string>& environments) {
  if (!environments.empty() && environments.size() != configs.size()) {
    throw std::invalid_argument("MeasureBatch: environments must be empty or match configs");
  }
  if (!fleet_) {
    return MeasureBatchOnPool(configs, environments);
  }

  // Fleet mode rides the async path: submit, then drain our ticket's
  // completions, deferring any stale async completions for their own
  // consumers. Reassembly by index keeps request order deterministic no
  // matter how the fleet routed or retried.
  obs::trace::Span span("broker.batch", "broker");
  span.SetArg("requests", static_cast<double>(configs.size()));
  const auto start = Clock::now();
  const BatchTicket ticket = SubmitBatch(configs, environments);
  std::vector<std::vector<double>> out(configs.size());
  std::vector<BrokerCompletion> deferred;
  const auto restore_deferred = [&] {
    for (auto it = deferred.rbegin(); it != deferred.rend(); ++it) {
      Requeue(std::move(*it));
    }
  };
  // Drain the WHOLE batch even when a request fails: leaving its remaining
  // completions in flight would pollute every later batch on this broker.
  std::string first_error;
  size_t resolved = 0;
  while (resolved < ticket.size) {
    BrokerCompletion done;
    if (!WaitCompletion(&done)) {
      restore_deferred();
      throw std::runtime_error("measurement completion stream ended mid-batch");
    }
    if (done.batch != ticket.id) {
      deferred.push_back(std::move(done));
      continue;
    }
    ++resolved;
    if (!done.ok) {
      if (first_error.empty()) {
        first_error = done.error;
      }
      continue;
    }
    out[done.index] = std::move(done.row);
  }
  restore_deferred();
  stats_.batch_wall_seconds += std::chrono::duration<double>(Clock::now() - start).count();
  if (!first_error.empty()) {
    throw std::runtime_error("batch measurement failed permanently: " + first_error);
  }
  return out;
}

BatchTicket MeasurementBroker::SubmitBatch(const std::vector<std::vector<double>>& configs,
                                           const std::vector<std::string>& environments) {
  if (!environments.empty() && environments.size() != configs.size()) {
    throw std::invalid_argument("SubmitBatch: environments must be empty or match configs");
  }
  if (!fleet_) {
    // Pool mode has no completion engine: measure now (same dedup/stats
    // path), queue the completions. The async API stays mode-independent.
    auto rows = MeasureBatchOnPool(configs, environments);
    BatchTicket ticket{next_batch_++, configs.size()};
    for (size_t i = 0; i < configs.size(); ++i) {
      BrokerCompletion done;
      done.batch = ticket.id;
      done.index = i;
      done.config = configs[i];
      done.environment = EnvOf(environments, i);
      done.row = std::move(rows[i]);
      ready_.push_back(std::move(done));
    }
    outstanding_requests_ += configs.size();
    return ticket;
  }

  ++stats_.batches;
  stats_.requests += configs.size();
  stats_.largest_batch = std::max(stats_.largest_batch, configs.size());
  Metrics().batches->Increment();
  Metrics().requests->Add(configs.size());
  Metrics().batch_size->Record(static_cast<double>(configs.size()));
  obs::trace::Span span("broker.submit", "broker");
  span.SetArg("requests", static_cast<double>(configs.size()));
  BatchTicket ticket{next_batch_++, configs.size()};
  outstanding_requests_ += configs.size();
  size_t submitted = 0;
  for (size_t i = 0; i < configs.size(); ++i) {
    const std::string& env = EnvOf(environments, i);
    if (const std::vector<double>* row = CachedRow(configs[i], env)) {
      BrokerCompletion done;
      done.batch = ticket.id;
      done.index = i;
      done.config = configs[i];
      done.environment = env;
      done.row = *row;
      ready_.push_back(std::move(done));
      ++stats_.cache_hits;
      continue;
    }
    if (options_.dedup_cache) {
      const auto in_flight = in_flight_.find(EnvConfig{env, configs[i]});
      if (in_flight != in_flight_.end()) {
        // Already on a backend (this batch or an earlier one): wait on the
        // same fleet ticket instead of measuring twice.
        fleet_waiters_[in_flight->second].push_back(Waiter{ticket.id, i});
        ++stats_.cache_hits;
        continue;
      }
    }
    // Opening the active-wall window BEFORE Submit keeps the (blocking)
    // submit time inside it — the fleet is already measuring while Submit
    // waits for queue space.
    if (fleet_waiters_.empty()) {
      active_since_ = Clock::now();
    }
    const uint64_t fleet_ticket = fleet_->Submit(configs[i], env);
    fleet_waiters_[fleet_ticket].push_back(Waiter{ticket.id, i});
    if (options_.dedup_cache) {
      in_flight_.emplace(EnvConfig{env, configs[i]}, fleet_ticket);
    }
    ++stats_.measured;
    ++submitted;
  }
  Metrics().measured->Add(submitted);
  Metrics().cache_hits->Add(configs.size() - submitted);
  return ticket;
}

void MeasurementBroker::DrainOneFleetCompletion() {
  FleetCompletion done;
  if (!fleet_->WaitCompletion(&done)) {
    // Waiters exist but the fleet has nothing outstanding: every remaining
    // waiter is unservable (should not happen — Submit always completes).
    fleet_waiters_.clear();
    return;
  }
  ResolveFleetCompletion(std::move(done));
}

void MeasurementBroker::ResolveFleetCompletion(FleetCompletion done) {
  stats_.busy_seconds += done.measure_seconds;
  const auto waiters_it = fleet_waiters_.find(done.ticket);
  if (waiters_it == fleet_waiters_.end()) {
    return;  // a completion nobody asked for (impossible by construction)
  }
  const std::vector<Waiter> waiters = std::move(waiters_it->second);
  fleet_waiters_.erase(waiters_it);
  if (fleet_waiters_.empty()) {
    // Last outstanding fleet request resolved: close the active-wall window
    // opened by the first Submit of this burst. This runs on whichever
    // thread drains the stream, synchronous or pipelined alike — which is
    // exactly what batch_wall_seconds (caller-thread blocking time) missed
    // on overlapped SubmitBatch rounds.
    stats_.active_wall_seconds +=
        std::chrono::duration<double>(Clock::now() - active_since_).count();
  }
  if (options_.dedup_cache) {
    in_flight_.erase(EnvConfig{done.environment, done.config});
  }

  const bool ok = done.outcome.status == MeasureStatus::kOk;
  if (ok && options_.dedup_cache) {
    InsertCache(done.config, done.environment, done.outcome.row);
  }
  if (!ok) {
    stats_.failures += waiters.size();
    Metrics().failures->Add(waiters.size());
  }
  for (const Waiter& waiter : waiters) {
    BrokerCompletion completion;
    completion.batch = waiter.batch;
    completion.index = waiter.index;
    completion.config = done.config;
    completion.environment = done.environment;
    if (ok) {
      completion.row = done.outcome.row;
    } else {
      completion.ok = false;
      completion.error = done.outcome.error;
    }
    ready_.push_back(std::move(completion));
  }
}

void MeasurementBroker::Requeue(BrokerCompletion completion) {
  ready_.push_front(std::move(completion));
  ++outstanding_requests_;
}

bool MeasurementBroker::WaitCompletion(BrokerCompletion* out) {
  for (;;) {
    if (!ready_.empty()) {
      *out = std::move(ready_.front());
      ready_.pop_front();
      --outstanding_requests_;
      return true;
    }
    if (fleet_ && !fleet_waiters_.empty()) {
      DrainOneFleetCompletion();
      continue;
    }
    return false;
  }
}

bool MeasurementBroker::WaitCompletionFor(BrokerCompletion* out, double timeout_seconds) {
  if (!ready_.empty()) {
    *out = std::move(ready_.front());
    ready_.pop_front();
    --outstanding_requests_;
    return true;
  }
  if (fleet_ == nullptr || fleet_waiters_.empty()) {
    return false;  // nothing outstanding: a longer wait cannot help
  }
  FleetCompletion done;
  if (!fleet_->WaitCompletionFor(&done, timeout_seconds)) {
    return false;  // timed out (or the fleet drained under us)
  }
  ResolveFleetCompletion(std::move(done));
  // One fleet completion fans out to >= 1 waiting requests, so ready_ is
  // nonempty here by construction; fall through to hand the first one out.
  if (ready_.empty()) {
    return false;
  }
  *out = std::move(ready_.front());
  ready_.pop_front();
  --outstanding_requests_;
  return true;
}

size_t MeasurementBroker::OutstandingRequests() const { return outstanding_requests_; }

bool MeasurementBroker::SaveCache(const std::string& path) const {
  return SaveMeasurementTable(path, task_.option_vars.size(), task_.variables.size(),
                              cache_entries_);
}

size_t MeasurementBroker::LoadCache(const std::string& path) {
  MeasurementTable table;
  if (!LoadMeasurementTable(path, &table)) {
    return 0;
  }
  if (table.num_options != task_.option_vars.size() ||
      table.num_vars != task_.variables.size()) {
    return 0;  // a table for a different task shape would poison the cache
  }
  size_t added = 0;
  for (auto& entry : table.entries) {
    if (cache_index_.count(EnvConfig{entry.provenance, entry.config}) == 0) {
      InsertCache(entry.config, entry.provenance, std::move(entry.row));
      ++added;
    }
  }
  return added;
}

}  // namespace unicorn
