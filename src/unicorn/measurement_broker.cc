#include "unicorn/measurement_broker.h"

#include <algorithm>
#include <chrono>
#include <limits>

namespace unicorn {
namespace {

// Marks a request already resolved from the cross-batch cache.
constexpr size_t kResolved = std::numeric_limits<size_t>::max();

}  // namespace

MeasurementBroker::MeasurementBroker(PerformanceTask task, BrokerOptions options)
    : task_(std::move(task)), options_(options) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

std::vector<double> MeasurementBroker::Measure(const std::vector<double>& config) {
  return MeasureBatch({config}).front();
}

std::vector<std::vector<double>> MeasurementBroker::MeasureBatch(
    const std::vector<std::vector<double>>& configs) {
  using Clock = std::chrono::steady_clock;
  ++stats_.batches;
  stats_.requests += configs.size();
  stats_.largest_batch = std::max(stats_.largest_batch, configs.size());

  // Resolve every request to either a cached row or a slot in the unique
  // work list; duplicates within the batch share one slot.
  std::vector<std::vector<double>> out(configs.size());
  std::vector<size_t> unique_of(configs.size(), kResolved);
  std::vector<const std::vector<double>*> unique;
  std::unordered_map<std::vector<double>, size_t, ConfigHash> pending;
  for (size_t i = 0; i < configs.size(); ++i) {
    if (!options_.dedup_cache) {
      unique_of[i] = unique.size();
      unique.push_back(&configs[i]);
      continue;
    }
    const auto hit = cache_.find(configs[i]);
    if (hit != cache_.end()) {
      out[i] = hit->second;
      ++stats_.cache_hits;
      continue;
    }
    const auto [it, inserted] = pending.emplace(configs[i], unique.size());
    if (inserted) {
      unique.push_back(&configs[i]);
    } else {
      ++stats_.cache_hits;  // within-batch duplicate: measured once
    }
    unique_of[i] = it->second;
  }

  // Fan out. Rows land in unique order, so request order (and thus the rows
  // the caller sees) is independent of thread interleaving.
  const auto start = Clock::now();
  const auto rows = ParallelMap(pool_.get(), unique.size(),
                                [&](size_t u) { return task_.measure(*unique[u]); });
  stats_.measure_seconds += std::chrono::duration<double>(Clock::now() - start).count();
  stats_.measured += unique.size();

  for (size_t i = 0; i < configs.size(); ++i) {
    if (unique_of[i] != kResolved) {
      out[i] = rows[unique_of[i]];
    }
  }
  if (options_.dedup_cache) {
    for (size_t u = 0; u < unique.size(); ++u) {
      cache_.emplace(*unique[u], rows[u]);
    }
  }
  return out;
}

}  // namespace unicorn
