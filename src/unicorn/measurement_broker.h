// The measurement plane (paper §4 Stage II/V: the operation the active
// learning loop budgets).
//
// Every Unicorn loop — debugging, optimization, transfer, and the benches —
// used to call PerformanceTask::measure one configuration at a time from the
// reasoning thread. The broker makes measurement a first-class batched
// subsystem: it accepts batches of configuration requests, deduplicates
// repeat configurations through a canonical-config hash cache (within a
// batch and across a whole campaign), and executes them on one of two
// engines:
//
//   * a flat in-process thread pool (the original mode), or
//   * a BackendFleet — several MeasurementBackends (in-process, simulated
//     Jetson devices, recorded replays) with per-backend queues, least-
//     loaded + capability-aware routing, typed-failure retry, and circuit
//     breaking (src/unicorn/backend/).
//
// Synchronous MeasureBatch returns rows in deterministic request order in
// both modes. Because harness tasks measure as a pure function of the
// configuration (per-call RNG derived from the config hash), a batch of N
// through either engine — including a fleet of homogeneous backends with
// injected transient failures — is bit-identical to N serial calls: the
// dedup cache sits in front of the fleet and reassembly is ticket-ordered.
//
// The asynchronous path (SubmitBatch + WaitCompletion) exposes the fleet's
// completion stream: rows surface as they land, so a campaign can absorb
// one policy's batch while another's is still in flight instead of blocking
// every policy on a per-round barrier.
//
// Environments: every request optionally carries an environment tag. In
// fleet mode the tag restricts routing to exactly-matching backends (see
// BackendFleet) — the transfer campaigns' source/target split. The dedup
// cache is keyed on (environment, configuration), because the same
// configuration measures differently on different hardware; SaveCache
// persists the tag as the table's provenance column. In pool mode the tag
// does not change what is measured (task.measure is the only engine) — it
// only partitions the cache and labels the persisted rows, so use a fleet
// whenever tags must bind to genuinely distinct hardware.
#ifndef UNICORN_UNICORN_MEASUREMENT_BROKER_H_
#define UNICORN_UNICORN_MEASUREMENT_BROKER_H_

#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "unicorn/backend/backend_fleet.h"
#include "unicorn/backend/measurement_table.h"
#include "unicorn/task.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace unicorn {

struct BrokerOptions {
  // Threads measuring one batch in pool mode (<= 1: requests run inline, in
  // order). Ignored when the broker is fleet-backed — concurrency then comes
  // from the backends.
  int num_threads = 1;
  // Serve repeat configurations from the canonical-config cache instead of
  // re-measuring. Sound whenever task.measure is deterministic per
  // configuration (every harness task is); disable only for baselines where
  // each request must hit the system.
  bool dedup_cache = true;
};

// EngineStats-style accounting of the measurement plane.
struct BrokerStats {
  size_t requests = 0;    // configurations requested (incl. duplicates)
  size_t measured = 0;    // measurements actually dispatched
  size_t cache_hits = 0;  // requests served without measuring
  size_t batches = 0;     // MeasureBatch + SubmitBatch calls
  size_t largest_batch = 0;
  // Wall-clock of synchronous measuring fan-outs, recorded once per batch on
  // the calling thread — the number end-to-end speedup claims divide by.
  // Accounts only the *blocking* drains: an asynchronous SubmitBatch round
  // whose completions arrive while the caller is off doing other work adds
  // nothing here, which made busy/batch_wall overstate utilization under the
  // pipelined scheduler. Use active_wall_seconds as the denominator instead.
  double batch_wall_seconds = 0.0;
  // Wall-clock during which at least one broker request was genuinely
  // outstanding on the measuring engine — the union of [first submit, last
  // resolve] intervals, accumulated at the 1->0 transition of outstanding
  // work. On the synchronous path this equals batch_wall_seconds (pinned by
  // measurement_broker_test); on the async path it keeps counting while the
  // caller overlaps other work, so busy/active is the honest utilization.
  double active_wall_seconds = 0.0;
  // Per-measurement time summed across pool threads / fleet backends. With
  // N-way concurrency this exceeds the wall clock by up to Nx — keeping the
  // two separate is what makes utilization (busy/wall) reportable instead of
  // silently overstating the fan-out wall time.
  double busy_seconds = 0.0;
  size_t failures = 0;  // requests whose measurement ultimately failed

  double CacheHitRate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(cache_hits) / static_cast<double>(requests);
  }
  // Busy time per second of wall with outstanding measurement work — >1 in
  // fleet/pool mode means real concurrency, and the async path no longer
  // inflates it (see active_wall_seconds).
  double Utilization() const {
    return active_wall_seconds > 0.0 ? busy_seconds / active_wall_seconds : 0.0;
  }
};

// Handle for an asynchronous batch.
struct BatchTicket {
  uint64_t id = 0;
  size_t size = 0;
};

// One finished request on the broker's completion stream.
struct BrokerCompletion {
  uint64_t batch = 0;  // BatchTicket::id it belongs to
  size_t index = 0;    // request index within that batch
  std::vector<double> config;
  std::string environment;  // the tag the request was submitted with
  std::vector<double> row;  // valid iff ok
  bool ok = true;
  std::string error;
};

class MeasurementBroker {
 public:
  // Pool mode: measurements fan out over an in-process thread pool.
  explicit MeasurementBroker(PerformanceTask task, BrokerOptions options = {});
  // Fleet mode: measurements dispatch through the given backend fleet.
  // `task` still provides the variable/option metadata (and must match what
  // the backends measure).
  MeasurementBroker(PerformanceTask task, std::unique_ptr<BackendFleet> fleet,
                    BrokerOptions options = {});

  const PerformanceTask& task() const { return task_; }
  bool fleet_backed() const { return fleet_ != nullptr; }
  // Null in pool mode.
  const BackendFleet* fleet() const { return fleet_.get(); }

  // Measures one configuration (a batch of one, through the cache).
  // `environment` non-empty routes it to exactly-matching fleet backends.
  std::vector<double> Measure(const std::vector<double>& config,
                              const std::string& environment = "");

  // Measures a batch, returning rows in request order. Duplicate
  // (environment, configuration) requests — within the batch or already
  // measured by this broker — are measured once and counted as cache hits.
  // `environments` is parallel to `configs` (or empty: every request
  // untagged); a size mismatch throws std::invalid_argument. In fleet mode
  // a request that ultimately fails (retries exhausted, no eligible
  // backend) throws std::runtime_error: the synchronous contract has no
  // partial result.
  std::vector<std::vector<double>> MeasureBatch(
      const std::vector<std::vector<double>>& configs,
      const std::vector<std::string>& environments = {});

  // --- asynchronous path ---------------------------------------------------
  //
  // Submits a batch without waiting. Completions surface through
  // WaitCompletion as rows land (out of order across and within batches;
  // BrokerCompletion carries batch + index for reassembly). Cache hits
  // complete immediately; a configuration already in flight is not
  // re-submitted — its completion fans out to every waiting request. In
  // pool mode the batch is measured synchronously during SubmitBatch and
  // the completions queued, so the API is mode-independent. `environments`
  // as in MeasureBatch.
  BatchTicket SubmitBatch(const std::vector<std::vector<double>>& configs,
                          const std::vector<std::string>& environments = {});

  // Blocks for the next completed request of any outstanding batch; false
  // when nothing is outstanding. Failed requests come back ok=false (the
  // async path reports failures instead of throwing). Not thread-safe —
  // one thread drains the stream, like every other broker entry point.
  bool WaitCompletion(BrokerCompletion* out);

  // Timed WaitCompletion: false when nothing completed within
  // `timeout_seconds` as well as when nothing is outstanding (check
  // OutstandingRequests() to tell the two apart). Lets the pipelined
  // campaign scheduler multiplex this stream with the shard pool's
  // refresh-done events without stalling on either. Same single-consumer
  // contract as WaitCompletion. In pool mode completions are pre-queued by
  // SubmitBatch, so the timeout never actually sleeps there.
  bool WaitCompletionFor(BrokerCompletion* out, double timeout_seconds);

  // Hands a completion back to the stream (front of the queue). For
  // consumers that popped a completion belonging to a batch someone else is
  // draining — put it back instead of dropping the measured row.
  void Requeue(BrokerCompletion completion);

  // Requests submitted asynchronously and not yet handed out.
  size_t OutstandingRequests() const;

  // --- cache persistence (cross-campaign table sharing) --------------------
  //
  // Saves the dedup cache — every (configuration, row) this broker ever
  // measured or loaded — as a MeasurementTable CSV, in insertion order (the
  // same format RecordedBackend replays). Each entry's environment tag is
  // persisted as the table's provenance column. False on I/O failure.
  bool SaveCache(const std::string& path) const;
  // Pre-warms the dedup cache from a MeasurementTable CSV; loaded entries
  // key on their provenance label as the environment. Entries whose shape
  // does not match the task (option/variable counts) are rejected
  // wholesale. Returns the number of entries added (0 on failure/mismatch).
  size_t LoadCache(const std::string& path);

  const BrokerStats& stats() const { return stats_; }
  // Fleet-side ledger (dispatch/retry/circuit-break accounting); empty in
  // pool mode.
  FleetStats fleet_stats() const { return fleet_ ? fleet_->stats() : FleetStats{}; }

 private:
  struct Waiter {
    uint64_t batch = 0;
    size_t index = 0;
  };

  // Cache/in-flight key: the same configuration measured in two
  // environments is two distinct rows.
  struct EnvConfig {
    std::string environment;
    std::vector<double> config;
    bool operator==(const EnvConfig& other) const {
      return environment == other.environment && config == other.config;
    }
  };
  struct EnvConfigHash {
    size_t operator()(const EnvConfig& key) const {
      return static_cast<size_t>(
          HashDoubles(key.config, std::hash<std::string>{}(key.environment)));
    }
  };

  static const std::string& EnvOf(const std::vector<std::string>& environments, size_t i);
  std::vector<std::vector<double>> MeasureBatchOnPool(
      const std::vector<std::vector<double>>& configs,
      const std::vector<std::string>& environments);
  const std::vector<double>* CachedRow(const std::vector<double>& config,
                                       const std::string& environment) const;
  void InsertCache(const std::vector<double>& config, const std::string& environment,
                   std::vector<double> row);
  // Blocks on the fleet stream for one completion and resolves its waiters
  // into ready_. Requires outstanding fleet work.
  void DrainOneFleetCompletion();
  // Shared tail of the blocking and timed drains: cache/in-flight
  // bookkeeping plus waiter fan-out into ready_.
  void ResolveFleetCompletion(FleetCompletion done);

  PerformanceTask task_;
  BrokerOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<BackendFleet> fleet_;

  // Dedup cache, insertion-ordered so SaveCache output is deterministic.
  // Entry::provenance carries the environment tag.
  std::vector<MeasurementTable::Entry> cache_entries_;
  std::unordered_map<EnvConfig, size_t, EnvConfigHash> cache_index_;

  // Async bookkeeping: fleet ticket -> requests waiting on it, and which
  // (environment, config) requests are in flight (so repeats attach
  // instead of re-submit).
  std::unordered_map<uint64_t, std::vector<Waiter>> fleet_waiters_;
  std::unordered_map<EnvConfig, uint64_t, EnvConfigHash> in_flight_;
  std::deque<BrokerCompletion> ready_;
  uint64_t next_batch_ = 1;
  size_t outstanding_requests_ = 0;
  // Opens when fleet_waiters_ goes empty -> nonempty (first Submit of a
  // burst), closes into stats_.active_wall_seconds when it drains to empty.
  std::chrono::steady_clock::time_point active_since_{};

  BrokerStats stats_;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_MEASUREMENT_BROKER_H_
