// The measurement plane (paper §4 Stage II/V: the operation the active
// learning loop budgets).
//
// Every Unicorn loop — debugging, optimization, transfer, and the benches —
// used to call PerformanceTask::measure one configuration at a time from the
// reasoning thread. The broker makes measurement a first-class batched
// subsystem: it accepts batches of configuration requests, deduplicates
// repeat configurations through a canonical-config hash cache (within a
// batch and across a whole campaign), fans evaluations out over a thread
// pool, and returns rows in deterministic request order. Because harness
// tasks measure as a pure function of the configuration (per-call RNG
// derived from the config hash), a batch of N is bit-identical to N serial
// calls at any thread count — the same guarantee the skeleton sweep makes.
#ifndef UNICORN_UNICORN_MEASUREMENT_BROKER_H_
#define UNICORN_UNICORN_MEASUREMENT_BROKER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "unicorn/task.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace unicorn {

struct BrokerOptions {
  // Threads measuring one batch (<= 1: requests run inline, in order).
  int num_threads = 1;
  // Serve repeat configurations from the canonical-config cache instead of
  // re-measuring. Sound whenever task.measure is deterministic per
  // configuration (every harness task is); disable only for baselines where
  // each request must hit the system.
  bool dedup_cache = true;
};

// EngineStats-style accounting of the measurement plane.
struct BrokerStats {
  size_t requests = 0;    // configurations requested (incl. duplicates)
  size_t measured = 0;    // task.measure invocations actually made
  size_t cache_hits = 0;  // requests served without measuring
  size_t batches = 0;     // MeasureBatch calls
  size_t largest_batch = 0;
  double measure_seconds = 0.0;  // wall time inside the measuring fan-out

  double CacheHitRate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(cache_hits) / static_cast<double>(requests);
  }
};

class MeasurementBroker {
 public:
  explicit MeasurementBroker(PerformanceTask task, BrokerOptions options = {});

  const PerformanceTask& task() const { return task_; }

  // Measures one configuration (a batch of one, through the cache).
  std::vector<double> Measure(const std::vector<double>& config);

  // Measures a batch, returning rows in request order. Duplicate
  // configurations — within the batch or already measured by this broker —
  // are measured once and counted as cache hits.
  std::vector<std::vector<double>> MeasureBatch(
      const std::vector<std::vector<double>>& configs);

  const BrokerStats& stats() const { return stats_; }

 private:
  PerformanceTask task_;
  BrokerOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::unordered_map<std::vector<double>, std::vector<double>, ConfigHash> cache_;
  BrokerStats stats_;
};

}  // namespace unicorn

#endif  // UNICORN_UNICORN_MEASUREMENT_BROKER_H_
