#include "unicorn/model_learner.h"

#include <chrono>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "unicorn/backend/binary_table.h"
#include "util/hash.h"
#include "util/rng.h"

namespace unicorn {

namespace {

// Process-wide engine instruments, summed across every shard/engine (the
// per-instance EngineStats ledger stays the per-shard view).
struct EngineMetrics {
  obs::Counter* refreshes;
  obs::Counter* tests_requested;
  obs::Counter* tests_evaluated;
  obs::Counter* cache_hits;
  obs::Counter* cross_shard_hits;
  obs::Histogram* refresh_seconds;
};

const EngineMetrics& Metrics() {
  static const EngineMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return EngineMetrics{registry.Counter("engine.refreshes"),
                         registry.Counter("engine.tests_requested"),
                         registry.Counter("engine.tests_evaluated"),
                         registry.Counter("engine.cache_hits"),
                         registry.Counter("engine.cross_shard_hits"),
                         registry.Histogram("engine.refresh_seconds")};
  }();
  return metrics;
}

}  // namespace

CausalModelEngine::CausalModelEngine(std::vector<Variable> variables,
                                     CausalModelOptions model_options,
                                     EngineOptions engine_options)
    : model_options_(std::move(model_options)),
      engine_options_(std::move(engine_options)),
      constraints_(variables),
      data_(std::move(variables)),
      moments_(data_.NumVars()) {
  stats_.pairs_total = data_.NumVars() * (data_.NumVars() - 1) / 2;
  if (engine_options_.num_threads > 1) {
    ThreadPoolOptions pool_options;
    pool_options.num_threads = engine_options_.num_threads;
    pool_options.name = "engine";
    pool_ = std::make_unique<ThreadPool>(pool_options);
  }
}

void CausalModelEngine::AddRow(const std::vector<double>& row, RowProvenance provenance) {
  data_.AddRow(row);
  moments_.AddRow(row);
  row_provenance_.push_back(static_cast<uint8_t>(provenance));
  ++provenance_rows_[static_cast<size_t>(provenance)];
  // Chain the row into the table fingerprint: engines that absorbed the same
  // rows in the same order agree, and any divergence is permanent.
  data_fingerprint_ = HashDoubles(row, data_fingerprint_);
}

void CausalModelEngine::ShareCICache(CICache* shared, uint32_t shard_id) {
  shared_cache_ = shared;
  shard_id_ = shard_id;
}

void CausalModelEngine::AppendRows(const DataTable& rows, RowProvenance provenance) {
  for (size_t r = 0; r < rows.NumRows(); ++r) {
    AddRow(rows.Row(r), provenance);
  }
}

size_t CausalModelEngine::SeedFromTable(const MeasurementTable& table,
                                        RowProvenance provenance) {
  if (table.num_vars != data_.NumVars()) {
    return 0;  // a row of the wrong width would corrupt the streaming moments
  }
  size_t options = 0;
  for (VarRole role : constraints_.roles()) {
    options += role == VarRole::kOption ? 1 : 0;
  }
  if (table.num_options != options) {
    return 0;  // same width, different task: reject rather than mislearn
  }
  for (const auto& entry : table.entries) {
    if (entry.row.size() != table.num_vars) {
      return 0;  // malformed entry; loads normally catch this earlier
    }
  }
  for (const auto& entry : table.entries) {
    AddRow(entry.row, provenance);
  }
  return table.entries.size();
}

size_t CausalModelEngine::SeedFromFile(const std::string& path, RowProvenance provenance) {
  if (IsBinaryMeasurementTable(path)) {
    // Zero-copy warm start: stream rows straight out of the mapped payload
    // instead of materializing a MeasurementTable (two vectors per entry).
    BinaryTableView view;
    if (!view.Open(path)) {
      return 0;
    }
    if (view.num_vars() != data_.NumVars()) {
      return 0;  // same rejection rules as SeedFromTable
    }
    size_t options = 0;
    for (VarRole role : constraints_.roles()) {
      options += role == VarRole::kOption ? 1 : 0;
    }
    if (view.num_options() != options) {
      return 0;
    }
    Reserve(data_.NumRows() + view.num_rows());
    std::vector<double> row;
    for (size_t r = 0; r < view.num_rows(); ++r) {
      view.ReadRow(r, &row);
      AddRow(row, provenance);
    }
    return view.num_rows();
  }
  MeasurementTable table;
  if (!LoadMeasurementTable(path, &table)) {
    return 0;
  }
  return SeedFromTable(table, provenance);
}

void CausalModelEngine::Reserve(size_t rows) {
  data_.Reserve(rows);
  // Keep every parallel per-row vector on the same reservation so hot-loop
  // seeding never reallocates mid-append.
  row_provenance_.reserve(rows);
}

void CausalModelEngine::SyncAppendedRows() {
  if (test_ == nullptr || test_rows_ == data_.NumRows()) {
    // Nothing to extend: either no test state exists yet (the first Refresh
    // builds it from the full table) or it is already current.
    return;
  }
  // The same bring-up-to-date step Refresh() performs, hoisted so absorption
  // can pay it off the search path: G² codes extend over the appended rows
  // (recoding from scratch only where extension cannot be bit-identical),
  // Fisher-Z ranks refresh, strata re-derive lazily.
  test_->Update(data_, pool_.get());
  // Cached p-values are keyed on the table fingerprint, so every private
  // entry from the previous size is now unreachable; dropping them keeps
  // the cache at one refresh's working set. A shared cache is left alone:
  // other shards may still sit at a prefix this engine has grown past, and
  // it bounds its own memory.
  if (shared_cache_ == nullptr) {
    cache_.Clear();
  }
  test_rows_ = data_.NumRows();
}

void CausalModelEngine::AbsorbIncremental(const std::vector<std::vector<double>>& rows,
                                          RowProvenance provenance) {
  for (const auto& row : rows) {
    AddRow(row, provenance);
  }
  SyncAppendedRows();
}

void CausalModelEngine::AbsorbIncremental(const std::vector<double>& row,
                                          RowProvenance provenance) {
  AddRow(row, provenance);
  SyncAppendedRows();
}

size_t CausalModelEngine::ComputeDirtyPairs(std::vector<char>* dirty,
                                            const std::vector<double>& current) const {
  const size_t n = data_.NumVars();
  dirty->assign(n * n, 0);
  // Per-variable staleness: the largest move of any streaming Pearson
  // correlation involving the variable since the last refresh. The streaming
  // raw-value correlations are a cheap O(1)-per-pair proxy for the rank
  // correlations and contingency tables the CI tests actually use; the
  // batched scan in `current` carries bit-identical values to per-pair
  // Pearson calls.
  std::vector<double> delta(n, 0.0);
  size_t tri = 0;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a; b < n; ++b, ++tri) {
      if (a == b) {
        continue;
      }
      const double d = std::fabs(current[tri] - corr_snapshot_[tri]);
      if (d > delta[a]) {
        delta[a] = d;
      }
      if (d > delta[b]) {
        delta[b] = d;
      }
    }
  }
  // Correlation shifts below the sampling noise of the estimate are not
  // evidence of change; the floor keeps early refreshes (small n, noisy
  // correlations) from re-testing everything.
  const double noise_floor =
      data_.NumRows() > 0 && engine_options_.noise_floor_scale > 0.0
          ? engine_options_.noise_floor_scale / std::sqrt(static_cast<double>(data_.NumRows()))
          : 0.0;
  const double threshold = std::max(engine_options_.stale_epsilon, noise_floor);
  size_t clean = 0;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (delta[a] > threshold || delta[b] > threshold) {
        (*dirty)[a * n + b] = 1;
      } else {
        ++clean;
      }
    }
  }
  return clean;
}

const LearnedModel& CausalModelEngine::Refresh() {
  return Refresh(model_options_.seed + static_cast<uint64_t>(stats_.refreshes));
}

const LearnedModel& CausalModelEngine::Refresh(uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  obs::trace::Span refresh_span("engine.refresh", "engine");
  const auto start = Clock::now();
  const size_t n = data_.NumVars();
  refresh_span.SetArg("rows", static_cast<double>(data_.NumRows()));

  const bool warm = has_model_ && engine_options_.stale_epsilon > 0.0 &&
                    (engine_options_.full_refresh_every == 0 ||
                     stats_.refreshes % engine_options_.full_refresh_every != 0);

  // One batched correlation scan serves both the dirty-pair detection and
  // the end-of-refresh snapshot: the data cannot change mid-refresh, so the
  // correlations computed here are exactly the ones the old per-pair
  // snapshot would have recomputed afterwards.
  std::vector<double> correlations;
  moments_.PearsonUpperTri(&correlations);

  std::vector<char> dirty;
  SkeletonWarmStart warm_start;
  EdgeDecisionMap entropic_reuse;
  size_t reused = 0;
  if (warm) {
    reused = ComputeDirtyPairs(&dirty, correlations);
    warm_start.graph = &model_.admg;
    warm_start.sepsets = &sepsets_;
    warm_start.pair_dirty = &dirty;
    for (const auto& [pair, decision] : entropic_decisions_) {
      if (dirty[pair.first * n + pair.second] == 0) {
        entropic_reuse.emplace(pair, decision);
      }
    }
  }

  // Bring the CI tests up to date with the appended rows (streaming /
  // lazy: ranks are recomputed, codes and strata re-derive on demand). A
  // no-op when AbsorbIncremental already paid this during absorption.
  {
    TRACE_SPAN("engine.sync_rows", "engine");
    if (test_ == nullptr) {
      test_ = std::make_unique<CompositeTest>(data_, /*max_bins=*/5, pool_.get());
      test_rows_ = data_.NumRows();
    } else {
      SyncAppendedRows();
    }
  }

  const long long evaluated_before = test_->calls;

  CICache* cache = shared_cache_ != nullptr ? shared_cache_ : &cache_;
  CachedCITest cached(*test_, engine_options_.use_ci_cache ? cache : nullptr,
                      data_.NumRows(), data_fingerprint_, shard_id_);
  FciOptions fci_options = model_options_.fci;
  fci_options.skeleton.num_threads = engine_options_.num_threads;
  obs::trace::Begin("engine.fci", "engine");
  FciResult fci = RunFci(cached, constraints_, n, fci_options, warm_start, pool_.get());
  obs::trace::End("tests", static_cast<double>(fci.tests_performed));

  model_.independence_tests = fci.tests_performed;
  model_.circle_marks_resolved = fci.pag.NumCircleMarks();

  Rng rng(seed);
  EdgeDecisionMap decisions;
  {
    TRACE_SPAN("engine.entropic", "engine");
    ResolveWithEntropy(data_, constraints_, model_options_.entropic, &rng, &fci.pag,
                       warm ? &entropic_reuse : nullptr, &decisions, pool_.get());
  }

  model_.admg = std::move(fci.pag);
  sepsets_ = std::move(fci.sepsets);
  entropic_decisions_ = std::move(decisions);
  corr_snapshot_ = std::move(correlations);
  estimator_.reset();
  has_model_ = true;

  stats_.warm = warm;
  stats_.tests_requested = cached.calls;
  stats_.tests_evaluated = test_->calls - evaluated_before;
  stats_.cache_hits = cached.hits();
  stats_.cross_shard_hits = cached.cross_shard_hits();
  stats_.pairs_reused = reused;
  stats_.refresh_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  ++stats_.refreshes;
  stats_.total_tests_requested += stats_.tests_requested;
  stats_.total_tests_evaluated += stats_.tests_evaluated;
  stats_.total_cache_hits += stats_.cache_hits;
  stats_.total_cross_shard_hits += stats_.cross_shard_hits;
  stats_.total_seconds += stats_.refresh_seconds;
  Metrics().refreshes->Increment();
  Metrics().tests_requested->Add(static_cast<uint64_t>(stats_.tests_requested));
  Metrics().tests_evaluated->Add(static_cast<uint64_t>(stats_.tests_evaluated));
  Metrics().cache_hits->Add(static_cast<uint64_t>(stats_.cache_hits));
  Metrics().cross_shard_hits->Add(static_cast<uint64_t>(stats_.cross_shard_hits));
  Metrics().refresh_seconds->Record(stats_.refresh_seconds);
  refresh_span.SetArg("warm", warm ? 1.0 : 0.0);
  return model_;
}

const CausalEffectEstimator& CausalModelEngine::Estimator() {
  if (estimator_ == nullptr) {
    estimator_ = std::make_unique<CausalEffectEstimator>(model_.admg, data_);
  }
  return *estimator_;
}

LearnedModel LearnCausalPerformanceModel(const DataTable& data,
                                         const CausalModelOptions& options) {
  CausalModelEngine engine(data.Variables(), options);
  engine.AppendRows(data);
  return engine.Refresh(options.seed);
}

}  // namespace unicorn
