#include "unicorn/model_learner.h"

#include "stats/independence.h"
#include "util/rng.h"

namespace unicorn {

LearnedModel LearnCausalPerformanceModel(const DataTable& data,
                                         const CausalModelOptions& options) {
  LearnedModel out;
  const StructuralConstraints constraints(data.Variables());
  const CompositeTest test(data);

  FciResult fci = RunFci(test, constraints, data.NumVars(), options.fci);
  out.independence_tests = fci.tests_performed;
  out.circle_marks_resolved = fci.pag.NumCircleMarks();

  Rng rng(options.seed);
  ResolveWithEntropy(data, constraints, options.entropic, &rng, &fci.pag);
  out.admg = std::move(fci.pag);
  return out;
}

}  // namespace unicorn
