// Stage II of Unicorn: learning the causal performance model.
//
// Chains FCI (skeleton + sepsets + orientation rules, tolerant of latent
// confounders) with entropic resolution of the remaining circle marks,
// producing a fully resolved ADMG ready for do-calculus queries.
#ifndef UNICORN_UNICORN_MODEL_LEARNER_H_
#define UNICORN_UNICORN_MODEL_LEARNER_H_

#include "causal/constraints.h"
#include "causal/entropic.h"
#include "causal/fci.h"
#include "graph/mixed_graph.h"
#include "stats/table.h"

namespace unicorn {

struct CausalModelOptions {
  FciOptions fci;
  EntropicOptions entropic;
  uint64_t seed = 42;
};

struct LearnedModel {
  MixedGraph admg;
  long long independence_tests = 0;
  size_t circle_marks_resolved = 0;
};

// Learns the causal performance model from observational data. "Incremental
// update" (Stage IV) re-invokes this on the grown dataset: with the sparse
// graphs of this domain the skeleton search is cheap, and re-learning from
// all data is statistically equivalent to the paper's incremental refresh.
LearnedModel LearnCausalPerformanceModel(const DataTable& data,
                                         const CausalModelOptions& options = {});

}  // namespace unicorn

#endif  // UNICORN_UNICORN_MODEL_LEARNER_H_
