// Stage II of Unicorn: learning the causal performance model.
//
// Chains FCI (skeleton + sepsets + orientation rules, tolerant of latent
// confounders) with entropic resolution of the remaining circle marks,
// producing a fully resolved ADMG ready for do-calculus queries.
//
// The CausalModelEngine is the stateful heart of the iterative loop (paper
// §4, Stage IV): it owns the growing measurement table and re-learns the
// model *incrementally* — appended rows update streaming statistics instead
// of rebuilding them, p-values are memoized in a CI cache shared by the
// skeleton, Possible-D-SEP, and warm-start phases, warm-started refreshes
// re-test only the edges whose endpoint statistics changed materially, and
// the per-level skeleton sweep runs on a thread pool with results
// bit-identical to the serial search.
#ifndef UNICORN_UNICORN_MODEL_LEARNER_H_
#define UNICORN_UNICORN_MODEL_LEARNER_H_

#include <memory>
#include <string>
#include <vector>

#include "causal/constraints.h"
#include "causal/effects.h"
#include "causal/entropic.h"
#include "causal/fci.h"
#include "graph/mixed_graph.h"
#include "stats/ci_cache.h"
#include "stats/correlation.h"
#include "stats/table.h"
#include "unicorn/backend/measurement_table.h"
#include "util/thread_pool.h"

namespace unicorn {

// Where a measurement row in the engine's table came from. The learned model
// is provenance-blind (a row is a row), but transfer campaigns report how
// much of the model rests on reused source-hardware data versus fresh
// target measurements — the paper's Fig. 16/17 "Reuse / +25" accounting.
enum class RowProvenance : uint8_t {
  kTarget = 0,  // measured live by this campaign (the default)
  kSource = 1,  // imported from a recorded table / source environment
};
inline constexpr size_t kNumRowProvenances = 2;

struct CausalModelOptions {
  FciOptions fci;
  EntropicOptions entropic;
  uint64_t seed = 42;
};

// Engine-level knobs, orthogonal to the statistical options above.
struct EngineOptions {
  // Warm-start staleness threshold on the streaming Pearson correlations:
  // a refresh re-tests only pairs with an endpoint whose correlation profile
  // moved by more than this since the last refresh; clean pairs keep their
  // previous adjacency, separating set, and entropic orientation. 0 disables
  // warm starts entirely — every refresh is a full, exact relearn (the
  // default: incremental mode is an explicit opt-in because it trades exact
  // PC-stable semantics for speed, as the paper's Stage IV does).
  double stale_epsilon = 0.0;
  // The sampling noise of a correlation estimate is ~1/sqrt(n): with warm
  // starts enabled, the effective staleness threshold is
  // max(stale_epsilon, noise_floor_scale / sqrt(n_rows)), so shifts
  // indistinguishable from noise never mark a pair dirty. 0 disables the
  // floor (the fixed epsilon alone decides).
  double noise_floor_scale = 1.0;
  // With warm starts enabled, every k-th refresh is still a full relearn so
  // approximation error cannot accumulate across iterations.
  size_t full_refresh_every = 8;
  // Worker threads for the per-level skeleton sweep (1 = serial). Results
  // are bit-identical for any value.
  int num_threads = 1;
  // Memoize p-values in the engine's CI cache (sound: keys include the row
  // count). Off only for apples-to-apples "from-scratch" baselines.
  bool use_ci_cache = true;
};

struct LearnedModel {
  MixedGraph admg;
  long long independence_tests = 0;
  size_t circle_marks_resolved = 0;
};

// Discovery-cost accounting of an engine. "Requested" counts every CI test
// the search asked for; "evaluated" counts the p-values actually computed
// (requested minus cache hits). All numbers derive from CITest::calls and
// the CachedCITest counters — there is no second, hand-maintained count
// anywhere. Hits are counted on the engine's own decorator, so they stay
// exact even when the engine shares a process-wide CICache with other
// shards refreshing concurrently.
struct EngineStats {
  // Last refresh.
  bool warm = false;                 // was it warm-started?
  long long tests_requested = 0;
  long long tests_evaluated = 0;
  long long cache_hits = 0;
  long long cross_shard_hits = 0;    // hits on entries another shard stored
  size_t pairs_total = 0;            // unordered variable pairs
  size_t pairs_reused = 0;           // adopted from the previous refresh
  double refresh_seconds = 0.0;
  // Cumulative over the engine's lifetime.
  size_t refreshes = 0;
  long long total_tests_requested = 0;
  long long total_tests_evaluated = 0;
  long long total_cache_hits = 0;
  long long total_cross_shard_hits = 0;
  double total_seconds = 0.0;

  double CacheHitRate() const {
    return total_tests_requested == 0
               ? 0.0
               : static_cast<double>(total_cache_hits) /
                     static_cast<double>(total_tests_requested);
  }
};

// Stateful, cached, parallel causal-discovery engine. Held by the debugger
// and the optimizer across loop iterations; measurements stream in through
// AddRow and Refresh() re-learns the model on everything seen so far.
class CausalModelEngine {
 public:
  explicit CausalModelEngine(std::vector<Variable> variables,
                             CausalModelOptions model_options = {},
                             EngineOptions engine_options = {});

  // Appends one measurement row (rank-1 update of the streaming moments),
  // tagged with its provenance.
  void AddRow(const std::vector<double>& row,
              RowProvenance provenance = RowProvenance::kTarget);
  // Appends all rows of `rows` (variables must match the engine's).
  void AppendRows(const DataTable& rows,
                  RowProvenance provenance = RowProvenance::kTarget);
  // Engine-table warm start: seeds the engine straight from a persisted
  // MeasurementTable (the broker/RecordedBackend on-disk format), so a
  // transferred model refreshes incrementally on top of the recorded rows
  // instead of re-learning from scratch. Rows are appended in table order
  // with `provenance`. Shape is validated at this layer: a table whose
  // variable or option count does not match the engine's is rejected
  // wholesale. Returns the number of rows added (0 on mismatch or an empty
  // table; the engine is untouched on rejection).
  size_t SeedFromTable(const MeasurementTable& table,
                       RowProvenance provenance = RowProvenance::kSource);
  // Convenience: LoadMeasurementTable + SeedFromTable. Binary tables (see
  // unicorn/backend/binary_table.h) stream zero-copy from the mapped file
  // instead of materializing entries. Returns 0 on I/O or parse failure too.
  size_t SeedFromFile(const std::string& path,
                      RowProvenance provenance = RowProvenance::kSource);
  // Pre-allocates storage for `rows` total measurements.
  void Reserve(size_t rows);

  // First-class incremental absorption (the pipelined campaign scheduler's
  // absorb contract): appends the rows and immediately synchronizes the CI
  // test state with the grown table through the O(appended) incremental
  // paths — G² codes extend in place (full recode only where extension
  // cannot reproduce the from-scratch coding bit-identically), Fisher-Z
  // ranks refresh — instead of deferring that work to the next Refresh().
  // Bit-identical to AddRow-then-Refresh by the kernel equivalence contract
  // (stats/independence.h Update); a Refresh() after AbsorbIncremental finds
  // the test state already current and goes straight to the search. Rows
  // absorbed before the first Refresh are simply appended (there is no test
  // state to extend yet).
  void AbsorbIncremental(const std::vector<std::vector<double>>& rows,
                         RowProvenance provenance = RowProvenance::kTarget);
  void AbsorbIncremental(const std::vector<double>& row,
                         RowProvenance provenance = RowProvenance::kTarget);
  // The sync half of AbsorbIncremental, exposed for callers that appended
  // through AddRow/AppendRows: one incremental CI-state update covering every
  // row added since the last Refresh/Sync. No-op when already current.
  void SyncAppendedRows();

  // Shared-cache mode (the sharded reasoning plane, see unicorn/engine_pool):
  // from the next refresh on, CI results are memoized in `shared` instead of
  // the engine-private cache, attributed to `shard_id`. Entries are keyed on
  // data_fingerprint(), so two engines whose tables are bit-identical share
  // hits and diverged tables can never serve each other stale values. The
  // cache must outlive the engine; pass nullptr to return to private mode.
  void ShareCICache(CICache* shared, uint32_t shard_id);

  // Order-sensitive fingerprint chained over every absorbed row: two engines
  // have equal fingerprints iff their tables hold bit-identical rows in the
  // same order (modulo 64-bit hash collisions). The shared CI cache's
  // table_tag.
  uint64_t data_fingerprint() const { return data_fingerprint_; }

  const DataTable& data() const { return data_; }
  // Provenance tag of row `r` (parallel to data()).
  RowProvenance provenance_of(size_t r) const {
    return static_cast<RowProvenance>(row_provenance_[r]);
  }
  // How many rows carry the given provenance.
  size_t ProvenanceRows(RowProvenance provenance) const {
    return provenance_rows_[static_cast<size_t>(provenance)];
  }

  // Re-learns the causal performance model on all data seen so far. The
  // overload without a seed derives one from the base seed and the refresh
  // count, so repeated refreshes vary the entropic tie-breaking the same way
  // the old per-iteration relearn did.
  const LearnedModel& Refresh();
  const LearnedModel& Refresh(uint64_t seed);

  bool HasModel() const { return has_model_; }
  const LearnedModel& model() const { return model_; }

  // Effect estimator bound to the current model and data; built lazily after
  // a refresh and kept until the next one.
  const CausalEffectEstimator& Estimator();

  const EngineStats& stats() const { return stats_; }

 private:
  // Marks pairs whose endpoints' streaming correlation profile moved more
  // than stale_epsilon since the last refresh, comparing the batched
  // correlation scan `current` (PearsonUpperTri layout) against the last
  // snapshot. Returns the clean-pair count.
  size_t ComputeDirtyPairs(std::vector<char>* dirty,
                           const std::vector<double>& current) const;

  CausalModelOptions model_options_;
  EngineOptions engine_options_;
  StructuralConstraints constraints_;
  DataTable data_;
  std::vector<uint8_t> row_provenance_;  // parallel to data_'s rows
  size_t provenance_rows_[kNumRowProvenances] = {0, 0};
  StreamingMoments moments_;

  std::unique_ptr<CompositeTest> test_;  // updated in place as data grows
  size_t test_rows_ = 0;                 // rows test_ was last updated for
  CICache cache_;                        // private: persists across refreshes
  CICache* shared_cache_ = nullptr;      // shard mode: process-wide cache
  uint32_t shard_id_ = 0;                // this engine's tag in the shared cache
  uint64_t data_fingerprint_ = 0x5eed0fca11c0de01ULL;  // chained row hash
  std::unique_ptr<ThreadPool> pool_;

  LearnedModel model_;
  bool has_model_ = false;
  SepsetMap sepsets_;                    // last refresh's separating sets
  EdgeDecisionMap entropic_decisions_;   // last refresh's edge orientations
  std::vector<double> corr_snapshot_;    // streaming Pearson at last refresh
  std::unique_ptr<CausalEffectEstimator> estimator_;
  EngineStats stats_;
};

// Learns the causal performance model from observational data in one shot
// (a fresh engine fed `data` and refreshed once). The iterative loop should
// hold a CausalModelEngine instead and let it update incrementally.
LearnedModel LearnCausalPerformanceModel(const DataTable& data,
                                         const CausalModelOptions& options = {});

}  // namespace unicorn

#endif  // UNICORN_UNICORN_MODEL_LEARNER_H_
