#include "unicorn/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

namespace unicorn {

UnicornOptimizer::UnicornOptimizer(PerformanceTask task, OptimizeOptions options)
    : task_(std::move(task)), options_(std::move(options)) {}

OptimizeResult UnicornOptimizer::Minimize(size_t objective_var, const DataTable* warm_start) {
  return Run({objective_var}, warm_start);
}

OptimizeResult UnicornOptimizer::MinimizeMulti(const std::vector<size_t>& objective_vars,
                                               const DataTable* warm_start) {
  return Run(objective_vars, warm_start);
}

OptimizeResult UnicornOptimizer::Run(const std::vector<size_t>& objective_vars,
                                     const DataTable* warm_start) {
  Rng rng(options_.seed);
  OptimizeResult result;

  // Long-lived discovery state: measurements stream into the engine and the
  // periodic relearn below is an incremental refresh, not a from-scratch fit.
  CausalModelEngine engine(task_.variables, options_.model, options_.engine);
  engine.Reserve(options_.initial_samples + options_.max_iterations);
  if (warm_start != nullptr) {
    engine.AppendRows(*warm_start);
  }
  std::vector<std::vector<double>> configs;  // config per appended row

  auto record = [&](const std::vector<double>& config, const std::vector<double>& row) {
    std::vector<double> objs;
    objs.reserve(objective_vars.size());
    for (size_t v : objective_vars) {
      objs.push_back(row[v]);
    }
    result.evaluated.push_back(objs);
    configs.push_back(config);
    ++result.measurements_used;
  };

  // Scalarization for "best": equal weights (the Pareto front is recovered
  // from `evaluated` by the caller).
  auto scalar = [&](const std::vector<double>& row) {
    double acc = 0.0;
    for (size_t v : objective_vars) {
      acc += row[v];
    }
    return acc / static_cast<double>(objective_vars.size());
  };

  double best_value = std::numeric_limits<double>::infinity();
  std::vector<double> best_config;
  for (size_t i = 0; i < options_.initial_samples; ++i) {
    const auto config = task_.sample_config(&rng);
    const auto row = task_.measure(config);
    engine.AddRow(row);
    record(config, row);
    const double value = scalar(row);
    if (value < best_value) {
      best_value = value;
      best_config = config;
    }
    result.best_trajectory.push_back(best_value);
  }

  const CausalEffectEstimator* estimator = nullptr;
  std::vector<double> option_ace(task_.option_vars.size(), 1.0);

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    if (iter % options_.relearn_every == 0 || estimator == nullptr) {
      engine.Refresh(options_.seed + iter);
      estimator = &engine.Estimator();
      // ACE of each option on the (mean of the) objectives: the sampling
      // weights of the active learner.
      for (size_t i = 0; i < task_.option_vars.size(); ++i) {
        double acc = 0.0;
        for (size_t v : objective_vars) {
          acc += estimator->Ace(v, task_.option_vars[i]);
        }
        option_ace[i] = acc / static_cast<double>(objective_vars.size());
      }
    }

    std::vector<double> candidate;
    if (rng.Bernoulli(options_.explore_probability) || best_config.empty()) {
      candidate = task_.sample_config(&rng);
    } else {
      candidate = best_config;
      // Random scalarization weights diversify the Pareto search direction.
      std::vector<double> weights(objective_vars.size(), 1.0);
      if (objective_vars.size() > 1) {
        double total = 0.0;
        for (auto& w : weights) {
          w = rng.Uniform(0.05, 1.0);
          total += w;
        }
        for (auto& w : weights) {
          w /= total;
        }
      }
      for (size_t m = 0; m < options_.mutations_per_step; ++m) {
        // Option chosen proportionally to its causal effect.
        const size_t pick = rng.Categorical(option_ace);
        const size_t var = task_.option_vars[pick];
        // Choose the level the interventional estimate prefers under the
        // current scalarization (softmax-free: greedy with random ties).
        const int levels = estimator->NumLevels(var);
        int best_level = 0;
        double best_pred = std::numeric_limits<double>::infinity();
        for (int l = 0; l < levels; ++l) {
          double pred = 0.0;
          for (size_t o = 0; o < objective_vars.size(); ++o) {
            pred += weights[o] * estimator->ExpectationDo(objective_vars[o], var, l);
          }
          if (pred < best_pred) {
            best_pred = pred;
            best_level = l;
          }
        }
        // Occasionally explore a random level instead of the greedy one.
        if (rng.Bernoulli(0.25) && levels > 1) {
          best_level = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(levels)));
        }
        candidate[pick] = estimator->ValueOfLevel(var, best_level);
      }
    }

    const auto row = task_.measure(candidate);
    engine.AddRow(row);
    record(candidate, row);
    const double value = scalar(row);
    if (value < best_value) {
      best_value = value;
      best_config = candidate;
    }
    result.best_trajectory.push_back(best_value);
  }

  result.engine_stats = engine.stats();
  result.best_config = best_config;
  result.best_value = best_value;
  return result;
}

}  // namespace unicorn
